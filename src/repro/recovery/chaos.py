"""Chaos campaigns: seeded fault injection against the recovery loop.

A campaign sweeps widths × fault models.  Each trial builds a well-nested
workload, injects one seeded fault into a switch the fault can provably
corrupt (per :func:`~repro.recovery.quarantine.fault_reachable` — injecting
an unreachable fault would measure nothing), runs the
:class:`~repro.recovery.resilient.ResilientScheduler`, and scores

* **detection accuracy** — was the true faulty switch quarantined?
* **delivery rate** — what fraction of the workload still arrived?
* **partition soundness** — delivered ∪ undelivered must equal the input.

A per-width healthy control run checks that the resilient wrapper is
byte-for-byte the plain CSA when nothing is wrong.  All counts flow
through the ``recovery.*`` metrics when an
:class:`~repro.obs.Instrumentation` is supplied, labelled per cell
(``run=chaos-<model>-w<width>``), so campaign tables can be rebuilt from
a metrics snapshot alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.comms.communication import CommunicationSet
from repro.comms.generators import crossing_chain, random_well_nested
from repro.core.csa import PADRScheduler
from repro.cst.faults import (
    DeadSwitchFault,
    MisrouteFault,
    StuckSwitchFault,
    SwitchFault,
    inject,
)
from repro.cst.network import CSTNetwork
from repro.obs.instrument import Instrumentation
from repro.recovery.quarantine import fault_reachable
from repro.recovery.resilient import ResilientScheduler

__all__ = [
    "ChaosTrial",
    "CampaignCell",
    "CampaignResult",
    "run_campaign",
    "inject_reachable_fault",
    "FAULT_MODELS",
]

FAULT_MODELS: dict[str, type[SwitchFault]] = {
    "dead": DeadSwitchFault,
    "stuck": StuckSwitchFault,
    "misroute": MisrouteFault,
}


def inject_reachable_fault(
    network: CSTNetwork,
    cset: CommunicationSet,
    model: str,
    rng: random.Random,
) -> tuple[int, SwitchFault] | None:
    """Inject one seeded ``model`` fault into a switch that can provably
    corrupt ``cset`` on ``network``.

    The switch is drawn (via ``rng``) from the switches
    :func:`~repro.recovery.quarantine.fault_reachable` says the workload
    actually exercises — injecting anywhere else would measure nothing.
    Returns ``(switch_id, fault)``, or ``None`` when no switch is
    reachable (degenerate workloads only).  Shared by the offline
    campaign below and the in-service chaos drills
    (:mod:`repro.slo.drill`).
    """
    if model not in FAULT_MODELS:
        raise ValueError(
            f"unknown fault model {model!r}; choose from {sorted(FAULT_MODELS)}"
        )
    fault = FAULT_MODELS[model]()
    topo = network.topology
    eligible = sorted(
        v for v in network.switches if fault_reachable(fault, v, cset, topo)
    )
    if not eligible:
        return None
    target = rng.choice(eligible)
    inject(network, target, fault)
    return target, fault


@dataclass(frozen=True, slots=True)
class ChaosTrial:
    """One injected fault against one workload."""

    model: str
    width: int
    trial: int
    workload: str
    n_comms: int
    fault_switch: int
    quarantined: tuple[int, ...]
    detected: bool
    delivered: int
    undelivered: int
    partition_ok: bool
    attempts: int
    probe_rounds: int

    @property
    def delivery_rate(self) -> float:
        total = self.delivered + self.undelivered
        return self.delivered / total if total else 1.0


@dataclass(frozen=True, slots=True)
class CampaignCell:
    """Aggregate of all trials for one (model, width) pair."""

    model: str
    width: int
    n_trials: int
    n_detected: int
    mean_delivery_rate: float
    total_probe_rounds: int

    @property
    def detection_accuracy(self) -> float:
        return self.n_detected / self.n_trials if self.n_trials else 1.0


@dataclass(frozen=True, slots=True)
class CampaignResult:
    """Everything a chaos campaign measured."""

    n_leaves: int
    seed: int
    trials: tuple[ChaosTrial, ...]
    #: per-width: does the resilient scheduler reproduce the plain CSA's
    #: schedule exactly on a healthy network?
    control_parity: dict[int, bool]

    def cells(self) -> list[CampaignCell]:
        order: dict[tuple[str, int], list[ChaosTrial]] = {}
        for t in self.trials:
            order.setdefault((t.model, t.width), []).append(t)
        out = []
        for (model, width), ts in order.items():
            out.append(
                CampaignCell(
                    model=model,
                    width=width,
                    n_trials=len(ts),
                    n_detected=sum(t.detected for t in ts),
                    mean_delivery_rate=(
                        sum(t.delivery_rate for t in ts) / len(ts)
                    ),
                    total_probe_rounds=sum(t.probe_rounds for t in ts),
                )
            )
        return out

    def detection_accuracy(self, model: str) -> float:
        ts = [t for t in self.trials if t.model == model]
        return sum(t.detected for t in ts) / len(ts) if ts else 1.0

    @property
    def all_partitions_ok(self) -> bool:
        return all(t.partition_ok for t in self.trials)

    @property
    def all_controls_ok(self) -> bool:
        return all(self.control_parity.values())

    def rows(self) -> list[dict[str, object]]:
        """Table rows (one per model × width cell) for ``format_table``."""
        return [
            {
                "model": c.model,
                "width": c.width,
                "trials": c.n_trials,
                "detected": c.n_detected,
                "accuracy": f"{c.detection_accuracy:.0%}",
                "delivery": f"{c.mean_delivery_rate:.0%}",
                "probe_rounds": c.total_probe_rounds,
            }
            for c in self.cells()
        ]


def _schedule_fingerprint(schedule) -> tuple:
    """Round-by-round identity of a schedule (for control parity)."""
    return (
        schedule.n_rounds,
        tuple(tuple(r.performed) for r in schedule.rounds),
        tuple(tuple(r.writers) for r in schedule.rounds),
        schedule.power.total_units,
    )


def _workload(
    kind: str, width: int, n_leaves: int, rng: random.Random
) -> CommunicationSet:
    if kind == "crossing":
        return crossing_chain(width, n_leaves)
    # seeded random well-nested set of the same width budget; numpy's
    # generator is seeded from the trial's deterministic python RNG.
    np_rng = np.random.default_rng(rng.getrandbits(64))
    cset = random_well_nested(width, n_leaves, np_rng)
    if len(cset) == 0:  # width 0 cannot happen here, but stay safe
        return crossing_chain(width, n_leaves)
    return cset


def run_campaign(
    *,
    n_leaves: int = 64,
    widths: Sequence[int] = (2, 4, 8),
    models: Sequence[str] = ("dead", "stuck", "misroute"),
    trials: int = 4,
    seed: int = 0,
    max_attempts: int = 4,
    obs: "Instrumentation | None" = None,
) -> CampaignResult:
    """Run the full chaos sweep; fully deterministic for a given seed."""
    for model in models:
        if model not in FAULT_MODELS:
            raise ValueError(
                f"unknown fault model {model!r}; choose from {sorted(FAULT_MODELS)}"
            )
    results: list[ChaosTrial] = []
    control_parity: dict[int, bool] = {}

    for width in widths:
        # healthy control: the wrapper must be invisible when nothing fails.
        cset = crossing_chain(width, n_leaves)
        plain = PADRScheduler().schedule(cset, n_leaves=n_leaves)
        degraded = ResilientScheduler(max_attempts=max_attempts).schedule(
            cset, n_leaves
        )
        control_parity[width] = (
            degraded.schedule is not None
            and not degraded.degraded
            and _schedule_fingerprint(plain)
            == _schedule_fingerprint(degraded.schedule)
        )

        for model in models:
            cell_obs = (
                obs.labelled(f"chaos-{model}-w{width}") if obs is not None else None
            )
            for trial in range(trials):
                rng = random.Random(f"{seed}:{n_leaves}:{width}:{model}:{trial}")
                kind = "crossing" if trial % 2 == 0 else "random"
                cset = _workload(kind, width, n_leaves, rng)
                network = CSTNetwork.of_size(n_leaves)
                injected = inject_reachable_fault(network, cset, model, rng)
                if injected is None:  # defensive: cannot happen for len(cset) >= 1
                    continue
                target, _ = injected
                scheduler = ResilientScheduler(
                    max_attempts=max_attempts, obs=cell_obs
                )
                outcome = scheduler.schedule(cset, network=network)
                results.append(
                    ChaosTrial(
                        model=model,
                        width=width,
                        trial=trial,
                        workload=kind,
                        n_comms=len(cset),
                        fault_switch=target,
                        quarantined=outcome.quarantined,
                        detected=target in outcome.quarantined,
                        delivered=len(outcome.delivered),
                        undelivered=len(outcome.undelivered),
                        partition_ok=outcome.partitions(cset),
                        attempts=outcome.n_attempts,
                        probe_rounds=outcome.probe_rounds,
                    )
                )

    return CampaignResult(
        n_leaves=n_leaves,
        seed=seed,
        trials=tuple(results),
        control_parity=control_parity,
    )
