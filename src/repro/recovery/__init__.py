"""Fault detection and recovery on the CST.

Built on the fault models of :mod:`repro.cst.faults` and the evidence of
:mod:`repro.analysis.verifier`:

* :mod:`~repro.recovery.detector` — black-box probe-circuit localisation
  of the faulty switch (binary search over circuit prefixes);
* :mod:`~repro.recovery.quarantine` — splitting a communication set into
  routable and blocked around quarantined switches;
* :mod:`~repro.recovery.resilient` — :class:`ResilientScheduler`, the
  schedule → verify → detect → quarantine → retry loop returning a
  :class:`DegradedSchedule`;
* :mod:`~repro.recovery.chaos` — seeded fault campaigns measuring
  detection accuracy and delivery rate (``cst-padr chaos``).
"""

from repro.recovery.chaos import (
    CampaignResult,
    ChaosTrial,
    inject_reachable_fault,
    run_campaign,
)
from repro.recovery.detector import (
    DetectionResult,
    FaultDetector,
    Localisation,
    ProbeOutcome,
)
from repro.recovery.quarantine import (
    QuarantinePlan,
    circuit_crosses,
    degraded_leaves,
    fault_reachable,
    plan_quarantine,
)
from repro.recovery.resilient import (
    AttemptRecord,
    DegradedSchedule,
    ResilientScheduler,
)

__all__ = [
    "AttemptRecord",
    "CampaignResult",
    "ChaosTrial",
    "DegradedSchedule",
    "DetectionResult",
    "FaultDetector",
    "Localisation",
    "ProbeOutcome",
    "QuarantinePlan",
    "ResilientScheduler",
    "circuit_crosses",
    "degraded_leaves",
    "fault_reachable",
    "inject_reachable_fault",
    "plan_quarantine",
    "run_campaign",
]
