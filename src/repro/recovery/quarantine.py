"""Quarantine planning: which communications survive a faulty switch.

Once :mod:`repro.recovery.detector` has localised a fault, the planner
marks the faulted switch (and, transitively, everything that depends on
it) *degraded* and splits the communication set into

* **routable** communications — their unique tree circuit avoids every
  quarantined switch, so the CSA can still deliver them exactly as on a
  healthy network (circuits in a tree are unique, so avoiding a switch is
  a property of the endpoints, not a routing choice);
* **blocked** communications — their circuit must cross a quarantined
  switch; no schedule can deliver them until the hardware is repaired.

Because a subset of a right-oriented well-nested set is itself
right-oriented and well-nested, the routable part is always a legal
:class:`~repro.core.csa.PADRScheduler` input — quarantining never turns a
schedulable workload into an unschedulable one, it only shrinks it.

The module also answers the *reachability* question the detector's
soundness argument rests on (see ``tests/properties/test_property_faults``):
a fault is provably harmless when no circuit of the set exercises the
faulted switch in a way that fault model can corrupt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterable

from repro.comms.communication import Communication, CommunicationSet
from repro.cst.faults import MisrouteFault, SwitchFault
from repro.cst.topology import CSTTopology
from repro.types import OutPort

__all__ = [
    "QuarantinePlan",
    "circuit_crosses",
    "plan_quarantine",
    "degraded_leaves",
    "fault_reachable",
]


@dataclass(frozen=True, slots=True)
class QuarantinePlan:
    """The split of one communication set around a set of bad switches."""

    quarantined: frozenset[int]
    routable: CommunicationSet
    blocked: tuple[Communication, ...]

    @property
    def fully_routable(self) -> bool:
        return not self.blocked

    def summary(self) -> str:
        q = ",".join(str(v) for v in sorted(self.quarantined)) or "-"
        return (
            f"quarantine[{q}]: {len(self.routable)} routable, "
            f"{len(self.blocked)} blocked"
        )


def circuit_crosses(
    comm: Communication, switch_id: int, topo: CSTTopology
) -> bool:
    """True when ``comm``'s unique circuit traverses ``switch_id``.

    The circuit climbs from the source leaf to the LCA and descends to the
    destination leaf, so it crosses ``v`` iff ``v`` lies on one of those
    two root-ward chains at or below the LCA.
    """
    lca = topo.lca_of_pes(comm.src, comm.dst)
    for endpoint in (comm.src, comm.dst):
        v = topo.leaf_heap_id(endpoint) >> 1
        while v >= lca:
            if v == switch_id:
                return True
            if v == lca:
                break
            v >>= 1
    return False


def plan_quarantine(
    cset: CommunicationSet,
    quarantined: Iterable[int],
    topo: CSTTopology,
) -> QuarantinePlan:
    """Partition ``cset`` into routable and blocked around bad switches."""
    bad = frozenset(quarantined)
    routable: list[Communication] = []
    blocked: list[Communication] = []
    for comm in cset:
        if any(circuit_crosses(comm, v, topo) for v in bad):
            blocked.append(comm)
        else:
            routable.append(comm)
    return QuarantinePlan(
        quarantined=bad,
        routable=CommunicationSet(routable),
        blocked=tuple(blocked),
    )


def degraded_leaves(quarantined: Iterable[int], topo: CSTTopology) -> set[int]:
    """PE indices whose connectivity a quarantine degrades.

    Leaves *under* a quarantined switch can still talk among themselves
    inside an intact proper subtree, but every circuit leaving the
    quarantined subtree — and every circuit whose LCA is the bad switch —
    is blocked, so the whole subtree is reported as degraded capacity.
    """
    out: set[int] = set()
    for v in quarantined:
        out.update(topo.subtree_leaf_range(v))
    return out


def fault_reachable(
    fault: SwitchFault,
    switch_id: int,
    cset: CommunicationSet,
    topo: CSTTopology,
) -> bool:
    """Can this fault at this switch corrupt any circuit of ``cset``?

    The soundness side-condition of fault detection: when this returns
    ``False`` the fault is provably harmless for the workload (on a network
    whose crossbars start idle) and the verifier legitimately reports a
    clean schedule.

    * A dead or stuck switch corrupts every circuit that crosses it (a
      stuck switch freezes an idle crossbar, so any required connection is
      refused).
    * A misroute fault swaps only the two *child* outputs, so it corrupts
      a circuit iff the circuit's required connection at the switch drives
      ``l_o`` or ``r_o`` — i.e. the switch acts as the circuit's LCA or as
      a down-path hop.  Pure pass-through-up hops (``child -> p_o``) are
      untouched by the swap.
    """
    for comm in cset:
        if not circuit_crosses(comm, switch_id, topo):
            continue
        if not isinstance(fault, MisrouteFault):
            return True
        required = topo.path_connections(comm.src, comm.dst)[switch_id]
        if required.out_port in (OutPort.L, OutPort.R):
            return True
    return False
