"""Fault localisation: from verifier evidence to a switch heap id.

The verifier (:mod:`repro.analysis.verifier`) tells us *which
communications* failed; this module finds *which switch* broke them.  The
detector is black-box: it never inspects switch internals or per-hop
traces for its verdict — it stages **probe circuits** on the live
(possibly faulty) network, commits a round, and observes only where each
probe payload is delivered, exactly the evidence real hardware gives a
diagnostic controller.

Probe discipline
----------------
A failing communication ``(s, d)`` pins the fault (for the fault models in
:mod:`repro.cst.faults`, under the single-fault hypothesis) to one of the
``k = O(log n)`` switches on its circuit ``p_0 .. p_{k-1}`` (up-path
switches, the LCA at position ``q``, then down-path switches).  For each
prefix of that circuit there is a *prefix probe*: a circuit from ``s``
that follows the original connections up to some switch ``p_i`` and then
escapes into a disjoint, healthy-by-hypothesis subtree:

* at an up-path switch the escape **turns** into the sibling subtree
  (``p_i`` becomes the probe's LCA);
* at a down-path switch the escape descends into the **other child**;
* the full circuit ``s -> d`` itself is the final probe.

The escape circuit is simply the unique tree circuit from ``s`` to the
escape leaf, so each probe is one ``path_connections`` staging plus one
committed round.  A probe *passes* iff its payload is delivered to the
escape leaf.  For a fault that reproducibly corrupted the original
circuit, probe outcomes are monotone along the prefix order — every probe
whose circuit exercises the corrupted connection fails, every earlier one
passes — so a **binary search** over the ``O(log n)`` prefixes localises
the fault with ``O(log log n)`` probe rounds (``O(log n)`` probes is the
budget; we stay well under it).

One structural ambiguity needs a follow-up probe: the LCA's turn cannot
be exercised without also entering the destination arm through the LCA's
arm child, so when the binary search lands on that first arm position the
detector runs a *sibling-cross* probe entirely inside the arm child's
subtree (the arm child as LCA) to decide which of the two switches is
bad.

A probe round costs real power and rounds on the live network — the
recovery layer accounts for it under the ``recovery.*`` metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.comms.communication import Communication
from repro.cst.network import CSTNetwork
from repro.obs.instrument import Instrumentation
from repro.recovery.quarantine import circuit_crosses
from repro.types import OutPort

__all__ = ["ProbeOutcome", "Localisation", "DetectionResult", "FaultDetector"]


@dataclass(frozen=True, slots=True)
class ProbeOutcome:
    """One committed probe circuit and where its payload ended up."""

    src_pe: int
    dst_pe: int
    delivered_pe: int | None

    @property
    def passed(self) -> bool:
        return self.delivered_pe == self.dst_pe


@dataclass(frozen=True, slots=True)
class Localisation:
    """Result of binary-searching one failing communication's circuit."""

    comm: Communication
    suspect: int | None
    probes: tuple[ProbeOutcome, ...]

    @property
    def n_probes(self) -> int:
        return len(self.probes)


@dataclass(frozen=True, slots=True)
class DetectionResult:
    """Aggregate verdict of one detection pass over the evidence set."""

    fault_switches: frozenset[int]
    probe_rounds: int
    localisations: tuple[Localisation, ...]

    @property
    def found(self) -> bool:
        return bool(self.fault_switches)


class FaultDetector:
    """Localises faulty switches from failed communications via probes.

    Parameters
    ----------
    max_evidence:
        cap on how many failing communications one :meth:`detect` call
        binary-searches; evidence explained by an already-localised fault
        is skipped for free, so the cap only matters under multi-fault
        damage.
    obs:
        optional :class:`~repro.obs.Instrumentation`; probe rounds and
        detections are recorded under ``recovery.*``.
    """

    def __init__(
        self,
        *,
        max_evidence: int = 8,
        obs: "Instrumentation | None" = None,
    ) -> None:
        self.max_evidence = max_evidence
        self.obs = obs

    # -- public API --------------------------------------------------------

    def detect(
        self, network: CSTNetwork, evidence: Iterable[Communication]
    ) -> DetectionResult:
        """Localise faults behind the given failing communications.

        Evidence is processed in the given order (deterministic for a
        deterministic caller); a communication whose circuit crosses an
        already-localised fault is considered explained and not probed.
        """
        topo = network.topology
        found: dict[int, None] = {}
        localisations: list[Localisation] = []
        probe_rounds = 0
        examined = 0
        seen: set[Communication] = set()
        for comm in evidence:
            if comm in seen:
                continue
            seen.add(comm)
            if examined >= self.max_evidence:
                break
            if any(circuit_crosses(comm, v, topo) for v in found):
                continue
            examined += 1
            loc = self.localise(network, comm)
            localisations.append(loc)
            probe_rounds += loc.n_probes
            if loc.suspect is not None:
                found.setdefault(loc.suspect, None)
        result = DetectionResult(
            fault_switches=frozenset(found),
            probe_rounds=probe_rounds,
            localisations=tuple(localisations),
        )
        if self.obs is not None:
            self.obs.recovery_detection(
                switches=len(result.fault_switches), probe_rounds=probe_rounds
            )
        return result

    def localise(
        self, network: CSTNetwork, comm: Communication
    ) -> Localisation:
        """Binary-search ``comm``'s circuit for the corrupting switch.

        Returns a suspect heap id, or ``None`` when the full circuit now
        delivers correctly (the fault did not reproduce — transient, or
        sitting elsewhere).
        """
        topo = network.topology
        conns = topo.path_connections(comm.src, comm.dst)
        path: Sequence[int] = list(conns)
        k = len(path)
        # the LCA is the unique switch whose connection drives a child
        # output while entering from a child; up-path hops all drive p_o.
        q = next(
            i for i, v in enumerate(path) if conns[v].out_port is not OutPort.P
        )
        # probe index space: up turns 0..q-1, arm escapes q+1..k-1, and k
        # for the full circuit.  The LCA (index q) has no standalone probe:
        # exercising its turn necessarily enters the arm child's subtree.
        indices = list(range(0, q)) + list(range(q + 1, k)) + [k]

        outcomes: list[ProbeOutcome] = []

        def probe(i: int) -> ProbeOutcome:
            src, dst = self._probe_endpoints(network, comm, path, q, k, i)
            out = self._run_probe(network, src, dst)
            outcomes.append(out)
            return out

        # the full circuit must still fail, else nothing is localisable.
        if probe(k).passed:
            return Localisation(comm=comm, suspect=None, probes=tuple(outcomes))

        lo, hi = 0, len(indices) - 1  # indices[hi] == k, known failing
        while lo < hi:
            mid = (lo + hi) // 2
            if probe(indices[mid]).passed:
                lo = mid + 1
            else:
                hi = mid
        first_failing = indices[lo]

        if first_failing == k:
            suspect = path[k - 1]
        elif first_failing == q + 1:
            # probes through all up prefixes passed; the first failing
            # probe exercises both the LCA's turn and the arm child —
            # split the pair with a circuit wholly inside the arm child.
            arm_child = path[q + 1]
            out = self._sibling_cross(network, arm_child)
            outcomes.append(out)
            suspect = arm_child if not out.passed else path[q]
        else:
            suspect = path[first_failing]
        return Localisation(comm=comm, suspect=suspect, probes=tuple(outcomes))

    # -- probe plumbing ----------------------------------------------------

    def _probe_endpoints(
        self,
        network: CSTNetwork,
        comm: Communication,
        path: Sequence[int],
        q: int,
        k: int,
        i: int,
    ) -> tuple[int, int]:
        """Endpoints of prefix probe ``i`` (see module docstring)."""
        topo = network.topology
        if i == k:
            return comm.src, comm.dst
        if i < q:
            # turn at up switch path[i]: escape into the sibling of the
            # child the payload arrived from.
            arrived = path[i - 1] if i > 0 else topo.leaf_heap_id(comm.src)
            escape = arrived ^ 1
        else:
            # down switch path[i]: escape into the child the original
            # circuit does NOT continue through.
            cont = path[i + 1] if i + 1 < k else topo.leaf_heap_id(comm.dst)
            escape = cont ^ 1
        return comm.src, topo.subtree_leaf_range(escape).start

    def _sibling_cross(self, network: CSTNetwork, v: int) -> ProbeOutcome:
        """A probe circuit whose LCA is ``v``: leaf of its left subtree to
        leaf of its right subtree — exercises ``v`` without its parent."""
        topo = network.topology
        src = topo.subtree_leaf_range(v << 1).start
        dst = topo.subtree_leaf_range((v << 1) | 1).start
        return self._run_probe(network, src, dst)

    def _run_probe(
        self, network: CSTNetwork, src_pe: int, dst_pe: int
    ) -> ProbeOutcome:
        """Stage one probe circuit, commit a round, observe the delivery."""
        conns = network.topology.path_connections(src_pe, dst_pe)
        network.stage({v: (c,) for v, c in conns.items()})
        network.commit_round()
        tr = network.trace_from(src_pe)
        if self.obs is not None:
            self.obs.recovery_probe_round()
        return ProbeOutcome(
            src_pe=src_pe, dst_pe=dst_pe, delivered_pe=tr.delivered_pe
        )
