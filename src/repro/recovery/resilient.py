"""Schedule → verify → detect → quarantine → reschedule.

:class:`ResilientScheduler` wraps the paper's
:class:`~repro.core.csa.PADRScheduler` with a bounded recovery loop that
turns injected hardware faults from run-killers into handled conditions:

1. run the CSA (non-strict, so faulty rounds complete mechanically) and
   verify the result end to end;
2. on verification failure, hand the failing communications to the
   :class:`~repro.recovery.detector.FaultDetector`, which localises the
   corrupting switch with probe circuits;
3. quarantine the switch
   (:func:`~repro.recovery.quarantine.plan_quarantine`), drop the blocked
   communications, wait a deterministic backoff (``2^(a-1)`` idle
   committed rounds before retry ``a`` — gives transients a chance to
   clear, and keeps the round/power accounting honest about the cost of
   recovery), and reschedule the routable remainder;
4. after the attempt budget, report what was and was not delivered.

The loop **returns** a :class:`DegradedSchedule` instead of raising: the
``delivered`` and ``undelivered`` tuples exactly partition the input set,
so callers always learn the fate of every communication.  On a healthy
network the first attempt verifies clean and the result wraps a schedule
bit-identical to a plain :class:`~repro.core.csa.PADRScheduler` run — the
recovery machinery only ever engages on failure evidence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.verifier import verify_schedule
from repro.comms.communication import Communication, CommunicationSet
from repro.comms.wellnested import require_well_nested
from repro.core.csa import PADRScheduler
from repro.core.schedule import Schedule
from repro.cst.network import CSTNetwork
from repro.cst.power import PowerPolicy
from repro.exceptions import ReproError, SchedulingError
from repro.obs.instrument import Instrumentation
from repro.recovery.detector import FaultDetector
from repro.recovery.quarantine import plan_quarantine

__all__ = ["AttemptRecord", "DegradedSchedule", "ResilientScheduler"]


@dataclass(frozen=True, slots=True)
class AttemptRecord:
    """One iteration of the recovery loop."""

    index: int
    scheduled: int
    verified_ok: bool
    n_failures: int
    detected: tuple[int, ...]
    error: str | None = None


@dataclass(frozen=True, slots=True)
class DegradedSchedule:
    """Outcome of a resilient run: every input communication accounted for.

    ``delivered`` and ``undelivered`` are disjoint and their union is
    exactly the input set.  ``schedule`` is the verified schedule of the
    final (routable) subset, or ``None`` when nothing could be delivered.
    """

    schedule: Schedule | None
    delivered: tuple[Communication, ...]
    undelivered: tuple[Communication, ...]
    quarantined: tuple[int, ...]
    attempts: tuple[AttemptRecord, ...]
    probe_rounds: int
    backoff_rounds: int

    @property
    def degraded(self) -> bool:
        """True when recovery had to engage (quarantine or loss)."""
        return bool(self.undelivered) or bool(self.quarantined)

    # -- ScheduleResult protocol ------------------------------------------

    @property
    def rounds_used(self) -> int:
        """Data rounds of the final committed schedule (probe and backoff
        rounds are accounted separately in their own fields)."""
        return self.schedule.n_rounds if self.schedule is not None else 0

    @property
    def power_units(self) -> int:
        return self.schedule.power.total_units if self.schedule is not None else 0

    def stats(self) -> "ScheduleStats":
        from dataclasses import replace

        from repro.core.schedule import ScheduleStats

        n_comms = len(self.delivered) + len(self.undelivered)
        if self.schedule is None:
            return ScheduleStats(
                n_comms=n_comms,
                n_rounds=0,
                width=0,
                total_power_units=0,
                max_switch_power_units=0,
                max_switch_config_changes=0,
                control_messages=0,
                control_words=0,
            )
        return replace(self.schedule.stats(), n_comms=n_comms)

    @property
    def n_attempts(self) -> int:
        return len(self.attempts)

    @property
    def delivery_rate(self) -> float:
        total = len(self.delivered) + len(self.undelivered)
        return len(self.delivered) / total if total else 1.0

    def partitions(self, cset: CommunicationSet) -> bool:
        """Check the delivered/undelivered split against the input set."""
        got = set(self.delivered) | set(self.undelivered)
        disjoint = not (set(self.delivered) & set(self.undelivered))
        complete = len(self.delivered) + len(self.undelivered) == len(cset)
        return disjoint and complete and got == set(cset)

    def summary(self) -> str:
        q = ",".join(str(v) for v in self.quarantined) or "-"
        return (
            f"resilient: {len(self.delivered)}/"
            f"{len(self.delivered) + len(self.undelivered)} delivered, "
            f"quarantined [{q}], {self.n_attempts} attempt(s), "
            f"{self.probe_rounds} probe round(s)"
        )


class ResilientScheduler:
    """PADR scheduling with fault detection, quarantine and retry.

    Parameters
    ----------
    max_attempts:
        schedule attempts before giving up on whatever still fails.
    detector:
        fault localiser; defaults to a fresh
        :class:`~repro.recovery.detector.FaultDetector`.
    obs:
        optional :class:`~repro.obs.Instrumentation`; the wrapped CSA
        emits its usual metrics and the loop adds ``recovery.*`` counters
        and histograms.
    """

    name = "padr-resilient"

    def __init__(
        self,
        *,
        max_attempts: int = 4,
        detector: FaultDetector | None = None,
        obs: "Instrumentation | None" = None,
    ) -> None:
        if max_attempts < 1:
            raise SchedulingError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.obs = obs
        self.detector = detector if detector is not None else FaultDetector(obs=obs)

    def schedule(
        self,
        cset: CommunicationSet,
        n_leaves: int | None = None,
        *,
        policy: PowerPolicy | None = None,
        network: CSTNetwork | None = None,
    ) -> DegradedSchedule:
        """Route ``cset``, recovering from hardware faults along the way.

        Invalid *input* (non-well-nested sets, size conflicts) still
        raises — resilience is about the substrate misbehaving, not about
        accepting workloads the algorithm cannot express.
        """
        require_well_nested(cset)
        if network is None:
            n = n_leaves if n_leaves is not None else cset.min_leaves()
            network = CSTNetwork.of_size(n, policy=policy)
        elif n_leaves is not None and n_leaves != network.topology.n_leaves:
            raise SchedulingError(
                f"n_leaves={n_leaves} conflicts with the supplied "
                f"network of {network.topology.n_leaves} leaves"
            )
        topo = network.topology
        inner = PADRScheduler(
            validate_input=False,
            strict=False,
            check_postconditions=False,
            obs=self.obs,
        )

        remaining = cset
        blocked: list[Communication] = []
        quarantined: dict[int, None] = {}
        attempts: list[AttemptRecord] = []
        schedule: Schedule | None = None
        delivered: tuple[Communication, ...] = ()
        probe_rounds = 0
        backoff_rounds = 0
        finished = False

        for attempt in range(self.max_attempts):
            if not remaining:
                finished = True
                break
            if attempt:
                # deterministic exponential backoff, paid in idle rounds.
                wait = 1 << (attempt - 1)
                for _ in range(wait):
                    network.commit_round()
                backoff_rounds += wait

            error: str | None = None
            report = None
            sched: Schedule | None = None
            try:
                sched = inner.schedule(remaining, network=network)
                report = verify_schedule(sched, remaining)
            except ReproError as exc:
                error = str(exc)

            if report is not None and report.ok:
                schedule = sched
                delivered = tuple(remaining)
                attempts.append(
                    AttemptRecord(attempt, len(remaining), True, 0, ())
                )
                if self.obs is not None:
                    self.obs.recovery_attempt(
                        index=attempt, scheduled=len(remaining), verified_ok=True
                    )
                finished = True
                break

            evidence = report.failed_comms if report is not None else ()
            if not evidence:
                # no delivery evidence (raised mid-run, or only round-level
                # violations): every remaining circuit is suspect.
                evidence = tuple(remaining)
            detection = self.detector.detect(network, evidence)
            probe_rounds += detection.probe_rounds
            new_faults = tuple(
                v for v in sorted(detection.fault_switches) if v not in quarantined
            )
            attempts.append(
                AttemptRecord(
                    index=attempt,
                    scheduled=len(remaining),
                    verified_ok=False,
                    n_failures=len(report.failures) if report is not None else 0,
                    detected=new_faults,
                    error=error,
                )
            )
            if self.obs is not None:
                self.obs.recovery_attempt(
                    index=attempt, scheduled=len(remaining), verified_ok=False
                )

            if new_faults:
                for v in new_faults:
                    quarantined[v] = None
                plan = plan_quarantine(remaining, quarantined, topo)
                blocked.extend(plan.blocked)
                remaining = plan.routable
            else:
                # unlocalisable damage: give up on the provably failing
                # communications so the loop always makes progress.
                failing = set(evidence)
                blocked.extend(c for c in remaining if c in failing)
                remaining = CommunicationSet(
                    c for c in remaining if c not in failing
                )

        if not finished:
            # attempt budget exhausted with the tail still unverified.
            blocked.extend(remaining)
            remaining = CommunicationSet(())

        result = DegradedSchedule(
            schedule=schedule,
            delivered=delivered,
            undelivered=tuple(blocked),
            quarantined=tuple(sorted(quarantined)),
            attempts=tuple(attempts),
            probe_rounds=probe_rounds,
            backoff_rounds=backoff_rounds,
        )
        if self.obs is not None:
            self.obs.recovery_result(
                delivered=len(result.delivered),
                undelivered=len(result.undelivered),
                quarantined=len(result.quarantined),
                attempts=result.n_attempts,
                backoff_rounds=backoff_rounds,
            )
        return result
