"""Small shared utilities: bit math, validation, stats helpers."""

from repro.util.bitmath import (
    is_power_of_two,
    ceil_pow2,
    ilog2,
    level_of,
    common_prefix_node,
)
from repro.util.stats import percentile
from repro.util.validation import check_index, check_positive

__all__ = [
    "percentile",
    "is_power_of_two",
    "ceil_pow2",
    "ilog2",
    "level_of",
    "common_prefix_node",
    "check_index",
    "check_positive",
]
