"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Any

__all__ = ["check_index", "check_positive", "check_type"]


def check_index(value: int, limit: int, name: str) -> int:
    """Validate ``0 <= value < limit`` and return ``value``."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if not 0 <= value < limit:
        raise ValueError(f"{name} must be in [0, {limit}), got {value}")
    return value


def check_positive(value: int, name: str) -> int:
    """Validate ``value >= 1`` and return ``value``."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def check_type(value: Any, typ: type, name: str) -> Any:
    """Validate ``isinstance(value, typ)`` and return ``value``."""
    if not isinstance(value, typ):
        raise TypeError(f"{name} must be {typ.__name__}, got {type(value).__name__}")
    return value
