"""Tiny shared statistics helpers (no numpy — hot paths stay stdlib).

The streaming report and the SLO engine both summarise latency series
with the **nearest-rank** percentile (the value at rank ``ceil(q * n)``,
1-indexed).  Nearest-rank is exact on integer tick latencies — it always
returns an observed value, never an interpolation — which keeps latency
SLO assertions bit-stable across runs.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["percentile"]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an **already-sorted** sequence.

    ``q`` is a fraction in ``(0, 1]``; the empty series maps to ``0.0``
    (a report with no settled latencies reads as "no latency"), and
    ``n == 1`` returns the single observation for every ``q``.  The rank
    is computed with integer-exact :func:`math.ceil`, not float floor
    division, so representation boundaries (e.g. ``q=0.99, n=100`` →
    rank 99) cannot mis-rank.
    """
    if not sorted_values:
        return 0.0
    if not 0.0 < q <= 1.0:
        raise ValueError(f"percentile fraction must be in (0, 1], got {q}")
    rank = min(len(sorted_values), max(1, math.ceil(q * len(sorted_values))))
    return float(sorted_values[rank - 1])
