"""Bit-level helpers for heap-indexed complete binary trees.

The CST is addressed heap-style: the root is node ``1``; node ``v`` has
children ``2v`` and ``2v+1``; with ``N`` leaves (``N`` a power of two) the
leaves occupy heap ids ``N .. 2N-1``, left to right.  All topology math
reduces to bit operations on these ids.
"""

from __future__ import annotations

__all__ = [
    "is_power_of_two",
    "ceil_pow2",
    "ilog2",
    "level_of",
    "common_prefix_node",
]


def is_power_of_two(n: int) -> bool:
    """True iff ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def ceil_pow2(n: int) -> int:
    """Smallest power of two ``>= n`` (``n >= 1``)."""
    if n < 1:
        raise ValueError(f"ceil_pow2 requires n >= 1, got {n}")
    return 1 << (n - 1).bit_length()


def ilog2(n: int) -> int:
    """Exact integer log2 of a power of two."""
    if not is_power_of_two(n):
        raise ValueError(f"ilog2 requires a power of two, got {n}")
    return n.bit_length() - 1


def level_of(heap_id: int) -> int:
    """Depth of a heap node: root (id 1) is level 0."""
    if heap_id < 1:
        raise ValueError(f"heap ids start at 1, got {heap_id}")
    return heap_id.bit_length() - 1


def common_prefix_node(a: int, b: int) -> int:
    """Lowest common ancestor of two heap ids.

    Strips trailing bits of the deeper node until both ids share the same
    length, then strips both in lockstep until equal.  O(log) but typically
    executed via the shift trick below in O(1)-ish Python ops.
    """
    if a < 1 or b < 1:
        raise ValueError("heap ids start at 1")
    la, lb = a.bit_length(), b.bit_length()
    if la > lb:
        a >>= la - lb
    elif lb > la:
        b >>= lb - la
    while a != b:
        a >>= 1
        b >>= 1
    return a
