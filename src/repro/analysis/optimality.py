"""Round-count optimality checks (Theorem 5).

Width is a lower bound for any schedule: the communications congesting one
directed edge (a *maximum incompatible*, paper §4) must occupy distinct
rounds.  Theorem 5 states the CSA achieves the bound exactly for
right-oriented well-nested sets.  :func:`check_round_optimality` verifies
both directions on a finished schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comms.communication import CommunicationSet
from repro.comms.width import width, width_lower_bound_witness
from repro.core.schedule import Schedule
from repro.cst.topology import CSTTopology
from repro.exceptions import VerificationError

__all__ = ["OptimalityReport", "check_round_optimality"]


@dataclass(frozen=True, slots=True)
class OptimalityReport:
    scheduler_name: str
    n_rounds: int
    width: int

    @property
    def optimal(self) -> bool:
        return self.n_rounds == self.width

    @property
    def excess_rounds(self) -> int:
        return self.n_rounds - self.width

    def summary(self) -> str:
        verdict = "optimal" if self.optimal else f"+{self.excess_rounds} rounds"
        return (
            f"optimality[{self.scheduler_name}]: rounds={self.n_rounds}, "
            f"width={self.width} → {verdict}"
        )


def check_round_optimality(
    schedule: Schedule,
    cset: CommunicationSet,
    *,
    require_optimal: bool = False,
) -> OptimalityReport:
    """Compare a schedule's round count against the width lower bound.

    A schedule using fewer rounds than the width is impossible — if
    observed it means the schedule lost communications, and a
    :class:`~repro.exceptions.VerificationError` is raised.  With
    ``require_optimal`` the same error is raised for any excess round
    (what Theorem 5 forbids for the CSA).
    """
    topo = CSTTopology.of(schedule.n_leaves)
    w = width(cset, topo)
    report = OptimalityReport(schedule.scheduler_name, schedule.n_rounds, w)
    if schedule.n_rounds < w:
        edge, witness = width_lower_bound_witness(cset, topo)
        raise VerificationError(
            f"{schedule.scheduler_name} claims {schedule.n_rounds} rounds but "
            f"width is {w} (edge {edge} carries {len(witness)} communications) — "
            "the schedule must have dropped work"
        )
    if require_optimal and not report.optimal:
        raise VerificationError(
            f"{schedule.scheduler_name} used {schedule.n_rounds} rounds for a "
            f"width-{w} set; Theorem 5 requires exactly {w}"
        )
    return report
