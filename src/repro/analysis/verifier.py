"""End-to-end verification of schedules against ground truth (Theorem 4).

The verifier is deliberately independent of every scheduler: it receives
the finished :class:`~repro.core.schedule.Schedule` and the communication
set, and checks

1. **delivery** — each source's payload was observed (by crossbar tracing)
   to arrive at exactly its matching destination;
2. **completeness** — every communication completed in exactly one round;
3. **round validity** — the communications of every round form a
   compatible set (no directed edge claimed twice);
4. **conservation** — no spurious deliveries (nothing arrived anywhere that
   is not a destination of the set).

Because the CSA never learns the pairing (it sees counters and ranks only),
passing check 1 on adversarial workloads is genuine evidence for Lemma 3 /
Theorem 4 rather than a tautology.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.comms.communication import Communication, CommunicationSet
from repro.core.schedule import Schedule
from repro.analysis.compatibility import is_compatible_set
from repro.cst.topology import CSTTopology
from repro.exceptions import VerificationError

__all__ = ["VerificationReport", "verify_schedule"]


@dataclass
class VerificationReport:
    """Outcome of verifying one schedule.

    Besides the human-readable ``failures`` strings, the report carries
    structured evidence consumed by the recovery layer
    (:mod:`repro.recovery.detector`):

    ``missing``
        communications never observed to complete;
    ``misdelivered``
        ``(expected communication, actual destination PE)`` pairs for
        payloads that arrived at the wrong leaf;
    ``spurious``
        observed ``(src, dst)`` deliveries whose source or destination is
        not an endpoint of the set.
    """

    scheduler_name: str
    n_comms: int
    n_rounds: int
    failures: list[str] = field(default_factory=list)
    missing: list[Communication] = field(default_factory=list)
    misdelivered: list[tuple[Communication, int]] = field(default_factory=list)
    spurious: list[Communication] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def failed_comms(self) -> tuple[Communication, ...]:
        """Expected communications the schedule provably did not serve —
        the evidence set fault detection starts from (deduplicated, in
        set order)."""
        seen: dict[Communication, None] = {}
        for c in self.missing:
            seen.setdefault(c, None)
        for c, _actual in self.misdelivered:
            seen.setdefault(c, None)
        return tuple(seen)

    def raise_if_failed(self) -> "VerificationReport":
        if self.failures:
            head = "; ".join(self.failures[:5])
            more = f" (+{len(self.failures) - 5} more)" if len(self.failures) > 5 else ""
            raise VerificationError(
                f"schedule by {self.scheduler_name!r} failed verification: {head}{more}"
            )
        return self

    def summary(self) -> str:
        status = "OK" if self.ok else f"FAILED ({len(self.failures)} problems)"
        return (
            f"verify[{self.scheduler_name}]: {status} — "
            f"{self.n_comms} comms in {self.n_rounds} rounds"
        )


def verify_schedule(schedule: Schedule, cset: CommunicationSet) -> VerificationReport:
    """Run all Theorem-4 checks; collect every failure rather than stopping."""
    report = VerificationReport(
        scheduler_name=schedule.scheduler_name,
        n_comms=len(cset),
        n_rounds=schedule.n_rounds,
    )
    topo = CSTTopology.of(schedule.n_leaves)
    truth = dict(cset.partner_of())
    valid_dsts = set(cset.destinations())

    performed = Counter(schedule.performed())

    # 1. delivery: observed (src → delivered) must equal the true pairing.
    for comm in performed:
        expected = truth.get(comm.src)
        if expected is None:
            report.failures.append(f"PE {comm.src} transmitted but is not a source")
            report.spurious.append(comm)
        elif comm.dst != expected:
            report.failures.append(
                f"payload of PE {comm.src} delivered to PE {comm.dst}, "
                f"expected PE {expected}"
            )
            report.misdelivered.append((Communication(comm.src, expected), comm.dst))
        if comm.dst not in valid_dsts:
            report.failures.append(
                f"PE {comm.dst} latched a payload but is not a destination"
            )
            if expected is not None and comm not in report.spurious:
                report.spurious.append(comm)

    # 2. completeness / exactly-once.
    for c in cset:
        count = sum(n for comm, n in performed.items() if comm.src == c.src)
        if count == 0:
            report.failures.append(f"communication {c} never performed")
            report.missing.append(c)
        elif count > 1:
            report.failures.append(f"source PE {c.src} transmitted {count} times")

    # 3. every round is a compatible set.
    for rnd in schedule.rounds:
        if not is_compatible_set(rnd.performed, topo):
            report.failures.append(
                f"round {rnd.index} is not a compatible set: {list(rnd.performed)}"
            )
        if len(set(rnd.writers)) != len(rnd.writers):
            report.failures.append(f"round {rnd.index} lists duplicate writers")

    # 4. conservation: total deliveries equal total communications.
    total = sum(performed.values())
    if total != len(cset):
        report.failures.append(
            f"{total} deliveries observed for {len(cset)} communications"
        )

    return report
