"""Multi-scheduler comparison on a single workload.

:func:`compare_schedulers` runs every scheduler on the same communication
set, verifies every result against ground truth, and collects the
round/power quantities into one comparison record — the building block of
the Theorem-8 benchmark tables and of ``examples/power_comparison.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.optimality import check_round_optimality
from repro.analysis.verifier import verify_schedule
from repro.comms.communication import CommunicationSet
from repro.comms.width import width
from repro.core.base import Scheduler
from repro.core.schedule import Schedule
from repro.cst.power import PowerPolicy
from repro.cst.topology import CSTTopology

__all__ = ["SchedulerComparison", "compare_schedulers", "format_table"]


@dataclass(frozen=True, slots=True)
class SchedulerComparison:
    """All schedules of one workload plus the workload's width."""

    cset: CommunicationSet
    n_leaves: int
    width: int
    schedules: tuple[Schedule, ...]

    def rows(self) -> list[dict[str, object]]:
        out = []
        for s in self.schedules:
            out.append(
                {
                    "scheduler": s.scheduler_name,
                    "rounds": s.n_rounds,
                    "width": self.width,
                    "rounds/width": round(s.n_rounds / self.width, 3)
                    if self.width
                    else 0.0,
                    "power_total": s.power.total_units,
                    "power_max_switch": s.power.max_switch_units,
                    "changes_max_switch": s.power.max_switch_changes,
                }
            )
        return out

    def by_name(self, name: str) -> Schedule:
        for s in self.schedules:
            if s.scheduler_name == name:
                return s
        raise KeyError(f"no schedule named {name!r} in comparison")


def compare_schedulers(
    cset: CommunicationSet,
    schedulers: Sequence[Scheduler],
    n_leaves: int | None = None,
    *,
    policy: PowerPolicy | None = None,
    verify: bool = True,
) -> SchedulerComparison:
    """Run, verify and tabulate every scheduler on one workload."""
    n = n_leaves if n_leaves is not None else cset.min_leaves()
    topo = CSTTopology.of(n)
    w = width(cset, topo)
    schedules: list[Schedule] = []
    for scheduler in schedulers:
        s = scheduler.schedule(cset, n_leaves=n, policy=policy)
        if verify:
            verify_schedule(s, cset).raise_if_failed()
            check_round_optimality(s, cset)
        schedules.append(s)
    return SchedulerComparison(cset, n, w, tuple(schedules))


def format_table(rows: Sequence[dict[str, object]]) -> str:
    """Plain-text table, aligned columns — used by examples and benchmarks."""
    if not rows:
        return "(empty table)"
    headers = list(rows[0].keys())
    cols = [[str(h)] + [str(r.get(h, "")) for r in rows] for h in headers]
    widths = [max(len(v) for v in col) for col in cols]
    lines = []
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for i in range(len(rows)):
        lines.append(
            " | ".join(col[i + 1].ljust(w) for col, w in zip(cols, widths))
        )
    return "\n".join(lines)
