"""Tabulation helpers for power and configuration-change data (Theorem 8)."""

from __future__ import annotations

from collections import Counter
from typing import Mapping, Sequence

from repro.core.schedule import Schedule
from repro.cst.topology import CSTTopology

__all__ = ["power_table", "change_histogram", "per_level_changes"]


def power_table(schedules: Sequence[Schedule]) -> list[dict[str, object]]:
    """One row per schedule: the power quantities the paper's analysis compares."""
    rows: list[dict[str, object]] = []
    for s in schedules:
        rows.append(
            {
                "scheduler": s.scheduler_name,
                "rounds": s.n_rounds,
                "power_total": s.power.total_units,
                "power_max_switch": s.power.max_switch_units,
                "changes_max_switch": s.power.max_switch_changes,
                "power_mean_switch": round(s.power.mean_switch_units, 2),
            }
        )
    return rows


def change_histogram(schedule: Schedule) -> Mapping[int, int]:
    """How many switches changed configuration exactly ``k`` times.

    Under Theorem 8 the CSA's histogram has no mass beyond a small
    constant ``k`` regardless of the width.
    """
    counts = Counter(schedule.power.per_switch_changes.values())
    return dict(sorted(counts.items()))


def per_level_changes(schedule: Schedule) -> Mapping[int, int]:
    """Maximum configuration changes per tree level (root = level 0)."""
    topo = CSTTopology.of(schedule.n_leaves)
    out: dict[int, int] = {}
    for switch_id, changes in schedule.power.per_switch_changes.items():
        lvl = topo.level(switch_id)
        out[lvl] = max(out.get(lvl, 0), changes)
    return dict(sorted(out.items()))
