"""Tabulation helpers for power and configuration-change data (Theorem 8).

Since the observability layer landed, these tables are computed from
**metrics-registry snapshots** rather than from bespoke per-function
counter walks: a finished schedule is ingested with
:func:`repro.obs.observe_schedule` and every consumer reads the same
``power.units{switch=v}`` / ``config.changes{switch=v}`` counters — the
identical format a live-instrumented run (``PADRScheduler(obs=...)``),
a ``cst-padr metrics`` invocation or a perf-suite row produces.  The
``*_from_snapshot`` variants accept such a snapshot directly, so traces
captured elsewhere (a JSON-lines file, a CI artifact) can be tabulated
without re-running anything.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Mapping, Sequence

from repro.core.schedule import Schedule
from repro.cst.topology import CSTTopology
from repro.obs.instrument import observe_schedule, per_switch_changes_from
from repro.obs.registry import MetricsRegistry

__all__ = [
    "power_table",
    "change_histogram",
    "per_level_changes",
    "snapshot_of",
    "change_histogram_from_snapshot",
    "per_level_changes_from_snapshot",
]


def snapshot_of(schedule: Schedule, *, run: str = "run") -> dict[str, Any]:
    """A fresh registry snapshot holding one schedule's observable totals."""
    registry = MetricsRegistry()
    observe_schedule(registry, schedule, run=run)
    return registry.snapshot()


def power_table(schedules: Sequence[Schedule]) -> list[dict[str, object]]:
    """One row per schedule: the power quantities the paper's analysis compares."""
    rows: list[dict[str, object]] = []
    for s in schedules:
        snap = snapshot_of(s, run=s.scheduler_name)
        gauges = snap["gauges"]
        per_switch = [
            v for k, v in snap["counters"].items() if k.startswith("power.units{")
        ]
        rows.append(
            {
                "scheduler": s.scheduler_name,
                "rounds": gauges[f"rounds{{run={s.scheduler_name}}}"],
                "power_total": gauges[f"power.units.total{{run={s.scheduler_name}}}"],
                "power_max_switch": max(per_switch, default=0),
                "changes_max_switch": max(
                    per_switch_changes_from(snap, run=s.scheduler_name).values(),
                    default=0,
                ),
                "power_mean_switch": round(
                    sum(per_switch) / len(per_switch) if per_switch else 0.0, 2
                ),
            }
        )
    return rows


def change_histogram(schedule: Schedule) -> Mapping[int, int]:
    """How many switches changed configuration exactly ``k`` times.

    Under Theorem 8 the CSA's histogram has no mass beyond a small
    constant ``k`` regardless of the width.
    """
    return change_histogram_from_snapshot(snapshot_of(schedule))


def change_histogram_from_snapshot(
    snapshot: Mapping[str, Any], *, run: str | None = None
) -> Mapping[int, int]:
    """:func:`change_histogram` over a registry snapshot (any producer)."""
    changes = per_switch_changes_from(snapshot, run=run)
    return dict(sorted(Counter(changes.values()).items()))


def per_level_changes(schedule: Schedule) -> Mapping[int, int]:
    """Maximum configuration changes per tree level (root = level 0)."""
    return per_level_changes_from_snapshot(
        snapshot_of(schedule), n_leaves=schedule.n_leaves
    )


def per_level_changes_from_snapshot(
    snapshot: Mapping[str, Any], *, n_leaves: int, run: str | None = None
) -> Mapping[int, int]:
    """:func:`per_level_changes` over a registry snapshot (any producer)."""
    topo = CSTTopology.of(n_leaves)
    out: dict[int, int] = {}
    for switch_id, changes in per_switch_changes_from(snapshot, run=run).items():
        lvl = topo.level(switch_id)
        out[lvl] = max(out.get(lvl, 0), changes)
    return dict(sorted(out.items()))
