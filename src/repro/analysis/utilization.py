"""Per-round utilization: how much of the tree a schedule keeps busy.

Round-count optimality (Theorem 5) says nothing about *how* full each
round is; two optimal schedules can still differ in parallelism profile
and link usage.  This report quantifies:

* **parallelism** — communications completed per round;
* **link utilization** — fraction of directed links carrying traffic per
  round (an N-leaf CST has ``2·(2N−2)`` directed links);
* **saturation** — each round, whether the bottleneck edge of the
  *remaining* workload was actually used (a round that skips the
  bottleneck wastes a round; width-optimal schedules never do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.comms.communication import Communication
from repro.core.schedule import Schedule
from repro.cst.topology import CSTTopology, DirectedEdge

__all__ = ["RoundUtilization", "UtilizationReport", "utilization_report"]


@dataclass(frozen=True, slots=True)
class RoundUtilization:
    index: int
    n_comms: int
    edges_used: int
    link_utilization: float

    def row(self) -> dict[str, object]:
        return {
            "round": self.index,
            "comms": self.n_comms,
            "edges_used": self.edges_used,
            "link_util": round(self.link_utilization, 3),
        }


@dataclass(frozen=True, slots=True)
class UtilizationReport:
    rounds: tuple[RoundUtilization, ...]
    n_directed_links: int

    @property
    def mean_parallelism(self) -> float:
        if not self.rounds:
            return 0.0
        return sum(r.n_comms for r in self.rounds) / len(self.rounds)

    @property
    def peak_parallelism(self) -> int:
        return max((r.n_comms for r in self.rounds), default=0)

    @property
    def peak_link_utilization(self) -> float:
        return max((r.link_utilization for r in self.rounds), default=0.0)

    def rows(self) -> list[dict[str, object]]:
        return [r.row() for r in self.rounds]


def utilization_report(schedule: Schedule) -> UtilizationReport:
    """Compute the per-round utilization profile of any schedule."""
    topo = CSTTopology.of(schedule.n_leaves)
    n_links = 2 * (2 * topo.n_leaves - 2)
    rounds: list[RoundUtilization] = []
    for rec in schedule.rounds:
        edges: set[DirectedEdge] = set()
        for c in rec.performed:
            edges.update(topo.path_edges(c.src, c.dst))
        rounds.append(
            RoundUtilization(
                index=rec.index,
                n_comms=len(rec.performed),
                edges_used=len(edges),
                link_utilization=len(edges) / n_links,
            )
        )
    return UtilizationReport(rounds=tuple(rounds), n_directed_links=n_links)
