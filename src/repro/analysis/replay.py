"""Replay: re-execute a recorded schedule's round plan independently.

A :class:`~repro.core.schedule.Schedule` records *what happened*; replay
re-derives every switch setting from the tree geometry alone (the unique
circuit of each performed communication), re-runs the rounds through a
fresh network, and checks the outcome matches.  This closes two loops:

* **cross-validation of the CSA** — the distributed algorithm's rank-and-
  counter machinery must produce exactly realisable compatible rounds;
  replay re-realises them from first principles;
* **archive integrity** — a schedule serialized with :mod:`repro.io` can
  be restored and replayed on another machine; a tampered record fails.

Replay also yields an independent power measurement under any policy,
which is how recorded CSA runs can be re-costed under e.g. the rebuild
discipline without re-running the algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comms.communication import CommunicationSet
from repro.core.base import execute_round_plan
from repro.core.schedule import Schedule
from repro.cst.power import PowerPolicy
from repro.exceptions import VerificationError

__all__ = ["ReplayReport", "replay_schedule"]


@dataclass(frozen=True, slots=True)
class ReplayReport:
    """Outcome of replaying one schedule."""

    original: Schedule
    replayed: Schedule

    @property
    def deliveries_match(self) -> bool:
        orig = [tuple(sorted(r.performed)) for r in self.original.rounds]
        repl = [tuple(sorted(r.performed)) for r in self.replayed.rounds]
        return orig == repl

    @property
    def power_delta(self) -> int:
        """Replayed minus original total units (0 when policies match and
        the original staged nothing beyond the circuits)."""
        return self.replayed.power.total_units - self.original.power.total_units

    def raise_if_mismatched(self) -> "ReplayReport":
        if not self.deliveries_match:
            raise VerificationError(
                f"replay of {self.original.scheduler_name!r} diverged: "
                "per-round deliveries differ from the record"
            )
        return self


def replay_schedule(
    schedule: Schedule,
    cset: CommunicationSet,
    *,
    policy: PowerPolicy | None = None,
) -> ReplayReport:
    """Re-execute ``schedule``'s rounds on a fresh network.

    The plan is taken from the recorded per-round deliveries; each round
    is re-staged from ``path_connections`` and re-traced.  Raises
    :class:`~repro.exceptions.SchedulingError` if a recorded round is not
    realisable (incompatible), which for honestly-produced schedules can
    only mean the record was corrupted.
    """
    plan = [list(r.performed) for r in schedule.rounds]
    replayed = execute_round_plan(
        cset,
        schedule.n_leaves,
        plan,
        f"replay({schedule.scheduler_name})",
        policy=policy,
    )
    return ReplayReport(original=schedule, replayed=replayed)
