"""Compatibility of communications: the directed-edge-sharing predicate.

Paper §1 (after [3]): *"A set of communications can be performed
simultaneously if no two communications use the same edge in the same
direction."*  Such a set is a *compatible* set; each schedule round must be
one.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.comms.communication import Communication
from repro.cst.topology import CSTTopology, DirectedEdge

__all__ = ["is_compatible_set", "conflicting_pairs", "conflicts"]


def conflicts(
    a: Communication, b: Communication, topology: CSTTopology
) -> bool:
    """True when the two circuits share a directed edge."""
    ea = set(topology.path_edges(a.src, a.dst))
    return any(e in ea for e in topology.path_edges(b.src, b.dst))


def is_compatible_set(
    comms: Iterable[Communication], topology: CSTTopology
) -> bool:
    """True when no directed edge is claimed twice across the given circuits."""
    used: set[DirectedEdge] = set()
    for c in comms:
        for e in topology.path_edges(c.src, c.dst):
            if e in used:
                return False
            used.add(e)
    return True


def conflicting_pairs(
    comms: Sequence[Communication], topology: CSTTopology
) -> list[tuple[Communication, Communication, DirectedEdge]]:
    """Every conflicting pair with one witnessing directed edge.

    Quadratic in the number of communications per shared edge — meant for
    diagnostics and tests, not hot paths.
    """
    claimed: dict[DirectedEdge, list[Communication]] = {}
    for c in comms:
        for e in topology.path_edges(c.src, c.dst):
            claimed.setdefault(e, []).append(c)
    out: list[tuple[Communication, Communication, DirectedEdge]] = []
    seen: set[tuple[Communication, Communication]] = set()
    for e, users in claimed.items():
        if len(users) < 2:
            continue
        for i, a in enumerate(users):
            for b in users[i + 1 :]:
                key = (a, b) if a <= b else (b, a)
                if key not in seen:
                    seen.add(key)
                    out.append((key[0], key[1], e))
    return out
