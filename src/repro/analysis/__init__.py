"""Verification and measurement of schedules.

``compatibility`` — the directed-edge compatibility predicate of [3].
``verifier``      — end-to-end schedule verification against ground truth
                    (Theorem 4 checks).
``optimality``    — round-count optimality checks (Theorem 5).
``power_report``  — per-switch power/change tabulation (Theorem 8).
``comparison``    — run many schedulers on one workload, produce a table.
"""

from repro.analysis.compatibility import is_compatible_set, conflicting_pairs
from repro.analysis.verifier import VerificationReport, verify_schedule
from repro.analysis.optimality import check_round_optimality
from repro.analysis.power_report import power_table, change_histogram
from repro.analysis.comparison import SchedulerComparison, compare_schedulers
from repro.analysis.monotonicity import ChainServiceReport, chain_service_analysis
from repro.analysis.replay import ReplayReport, replay_schedule
from repro.analysis.utilization import UtilizationReport, utilization_report
from repro.analysis.stats import (
    WorkloadStats,
    random_width_distribution,
    workload_statistics,
)

__all__ = [
    "is_compatible_set",
    "conflicting_pairs",
    "VerificationReport",
    "verify_schedule",
    "check_round_optimality",
    "power_table",
    "change_histogram",
    "SchedulerComparison",
    "compare_schedulers",
    "ChainServiceReport",
    "chain_service_analysis",
    "ReplayReport",
    "replay_schedule",
    "UtilizationReport",
    "utilization_report",
    "WorkloadStats",
    "random_width_distribution",
    "workload_statistics",
]
