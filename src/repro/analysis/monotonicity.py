"""Chain-service monotonicity: *why* a schedule is power-cheap or -hungry.

Communications sharing a directed edge always form a nesting chain, and a
switch port's configuration changes track how that chain is *visited* over
the rounds: an outside-in (or inside-out) sweep lets the port hold each
setting for one contiguous run, while a zig-zag visit pays at every
reversal.  This analyzer quantifies the zig-zag: for every directed edge,
it counts **service inversions** — pairs of same-edge communications fired
in inside-before-outside order.

On single-chain workloads (every communication through one hot edge, e.g.
crossing chains) the CSA's inversion count is exactly zero while a random
round order accumulates Θ(w²) inversions — the starkest visible form of
the Lemma 6/7 mechanism.  On multi-chain workloads the CSA *can* show a
few inversions: a subtree idle at the top fires its inner pairs while an
outer communication waits on a busy ancestor (hypothesis finds e.g.
{(0,9),(1,8),(2,7),(4,6)} on 64 leaves).  Those early services are
power-harmless — the connections they establish are not demanded again —
which is why the paper's bound is phrased per-port (word-stream
alternations, tested in ``tests/integration/test_theorems.py``) rather
than per-edge.  The inversion count remains the right *comparative*
diagnostic: across schedulers on the same workload it tracks the power
gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.comms.communication import CommunicationSet
from repro.comms.width import edge_loads
from repro.core.schedule import Schedule
from repro.cst.topology import CSTTopology, DirectedEdge

__all__ = ["ChainServiceReport", "chain_service_analysis"]


@dataclass(frozen=True, slots=True)
class ChainServiceReport:
    """Per-edge inside-before-outside service counts for one schedule."""

    per_edge_inversions: Mapping[DirectedEdge, int]
    #: number of edges carrying at least two communications (chains)
    chain_edges: int

    @property
    def total_inversions(self) -> int:
        return sum(self.per_edge_inversions.values())

    @property
    def max_edge_inversions(self) -> int:
        return max(self.per_edge_inversions.values(), default=0)

    @property
    def is_outermost_monotone(self) -> bool:
        """True when every chain is served strictly outside-in."""
        return self.total_inversions == 0

    def summary(self) -> str:
        return (
            f"chain service: {self.chain_edges} chain edges, "
            f"{self.total_inversions} inversions "
            f"(max {self.max_edge_inversions} on one edge)"
        )


def chain_service_analysis(
    schedule: Schedule,
    cset: CommunicationSet,
    topology: CSTTopology | None = None,
) -> ChainServiceReport:
    """Count inside-before-outside service pairs on every directed edge.

    An inversion is a pair ``(inner, outer)`` of communications sharing an
    edge where ``inner`` (the enclosed one) fired in a strictly earlier
    round than ``outer``.  Ties (same round) are impossible on a shared
    edge — that would be an incompatible round.
    """
    topo = topology or CSTTopology.of(schedule.n_leaves)
    round_of = schedule.round_of()

    users_by_edge: dict[DirectedEdge, list] = {}
    for c in cset:
        fired = round_of.get(c)
        if fired is None:
            continue  # unperformed (broken schedules are still analysable)
        for e in topo.path_edges(c.src, c.dst):
            users_by_edge.setdefault(e, []).append((fired, c))

    per_edge: dict[DirectedEdge, int] = {}
    chain_edges = 0
    for edge, users in users_by_edge.items():
        if len(users) < 2:
            continue
        chain_edges += 1
        users.sort(key=lambda t: t[0])
        inversions = 0
        for i, (_, earlier) in enumerate(users):
            for _, later in users[i + 1 :]:
                if later.encloses(earlier):
                    inversions += 1
        per_edge[edge] = inversions

    # loads sanity: every multi-user edge is a chain (see the structural
    # lemma property test); edge_loads is the cheap cross-check.
    assert chain_edges == sum(
        1 for load in edge_loads(cset, topo).values() if load >= 2
    )
    return ChainServiceReport(per_edge_inversions=per_edge, chain_edges=chain_edges)
