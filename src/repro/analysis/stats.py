"""Workload statistics: the shape of communication sets, quantified.

Used by the benchmarks to characterise generated workloads (a width sweep
is only meaningful if the widths actually vary as intended) and by users
sizing CSTs for expected traffic: the expected width of a random
well-nested set grows much slower than its size, so round counts stay
small even for dense workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comms.communication import CommunicationSet
from repro.comms.generators import random_well_nested
from repro.comms.wellnested import nesting_depths
from repro.comms.width import edge_loads, width
from repro.cst.topology import CSTTopology

__all__ = ["WorkloadStats", "workload_statistics", "random_width_distribution"]


@dataclass(frozen=True, slots=True)
class WorkloadStats:
    """Descriptive statistics of one communication set on one tree."""

    n_comms: int
    width: int
    max_nesting_depth: int
    mean_span: float
    edges_used: int
    mean_edge_load: float
    root_crossings: int

    def row(self) -> dict[str, object]:
        return {
            "comms": self.n_comms,
            "width": self.width,
            "max_depth": self.max_nesting_depth,
            "mean_span": round(self.mean_span, 2),
            "edges_used": self.edges_used,
            "mean_edge_load": round(self.mean_edge_load, 3),
            "root_crossings": self.root_crossings,
        }


def workload_statistics(
    cset: CommunicationSet, topology: CSTTopology | None = None
) -> WorkloadStats:
    """Compute the stats; requires a right-oriented well-nested set for the
    depth figure (other fields are orientation-agnostic)."""
    topo = topology or CSTTopology.of(cset.min_leaves())
    loads = edge_loads(cset, topo)
    depths = nesting_depths(cset) if len(cset) else {}
    half = topo.n_leaves // 2
    crossings = sum(
        1 for c in cset if c.leftmost < half <= c.rightmost
    )
    spans = [c.rightmost - c.leftmost for c in cset]
    return WorkloadStats(
        n_comms=len(cset),
        width=max(loads.values(), default=0),
        max_nesting_depth=max(depths.values(), default=-1) + 1,
        mean_span=float(np.mean(spans)) if spans else 0.0,
        edges_used=len(loads),
        mean_edge_load=float(np.mean(list(loads.values()))) if loads else 0.0,
        root_crossings=crossings,
    )


def random_width_distribution(
    n_pairs: int,
    n_leaves: int,
    trials: int,
    rng: np.random.Generator,
) -> dict[str, float]:
    """Empirical width distribution of uniform random well-nested sets.

    Returns summary statistics over ``trials`` independent draws.  The
    mean width of a uniform Dyck set of M pairs grows like Θ(√M) (the
    expected height of a random Dyck path), which the benchmarks check as
    a shape: doubling M should multiply mean width by ≈ √2, not 2.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    topo = CSTTopology.of(n_leaves)
    widths = np.array(
        [
            width(random_well_nested(n_pairs, n_leaves, rng), topo)
            for _ in range(trials)
        ],
        dtype=float,
    )
    return {
        "n_pairs": float(n_pairs),
        "trials": float(trials),
        "mean": float(widths.mean()),
        "std": float(widths.std()),
        "min": float(widths.min()),
        "max": float(widths.max()),
        "p50": float(np.percentile(widths, 50)),
        "p95": float(np.percentile(widths, 95)),
    }
