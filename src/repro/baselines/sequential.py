"""The sequential baseline: one communication per round.

Trivially correct for any communication set (a single circuit can always be
established), maximally slow (M rounds for M communications), and a useful
calibration point for the power benchmarks: every switch on a path is
reconfigured in the round its communication fires, so total power scales
with the sum of path lengths.
"""

from __future__ import annotations

from repro.comms.communication import CommunicationSet
from repro.core.base import ScheduleContext, Scheduler, execute_round_plan
from repro.core.schedule import Schedule

__all__ = ["SequentialScheduler"]


class SequentialScheduler(Scheduler):
    """Schedule each communication in its own round, in ``(src, dst)`` order."""

    name = "sequential"

    def _schedule(self, cset: CommunicationSet, ctx: ScheduleContext) -> Schedule:
        plan = [[c] for c in cset]
        return execute_round_plan(
            cset, ctx.n_leaves, plan, self.name,
            policy=ctx.policy, network=ctx.network,
        )
