"""The sequential baseline: one communication per round.

Trivially correct for any communication set (a single circuit can always be
established), maximally slow (M rounds for M communications), and a useful
calibration point for the power benchmarks: every switch on a path is
reconfigured in the round its communication fires, so total power scales
with the sum of path lengths.
"""

from __future__ import annotations

from repro.comms.communication import CommunicationSet
from repro.core.base import Scheduler, execute_round_plan
from repro.core.schedule import Schedule
from repro.cst.power import PowerPolicy

__all__ = ["SequentialScheduler"]


class SequentialScheduler(Scheduler):
    """Schedule each communication in its own round, in ``(src, dst)`` order."""

    name = "sequential"

    def schedule(
        self,
        cset: CommunicationSet,
        n_leaves: int | None = None,
        *,
        policy: PowerPolicy | None = None,
    ) -> Schedule:
        n = n_leaves if n_leaves is not None else cset.min_leaves()
        plan = [[c] for c in cset]
        return execute_round_plan(cset, n, plan, self.name, policy=policy)
