"""Greedy maximal-compatible-set scheduling.

Each round, sweep the remaining communications in a priority order and
admit every communication that shares no directed edge with those already
admitted this round.  Any priority order yields a correct schedule; the
order matters for *power*:

* ``outermost`` mirrors the CSA's selection rule (Definition 1) centrally —
  enclosing communications go first, so a switch tends to finish all work
  needing one configuration before moving on;
* ``innermost`` is the adversarial order — the same switch flip-flops
  between configurations, which is the behaviour PADR is designed to avoid;
* ``lexical`` is the neutral ``(src, dst)`` order.

For right-oriented well-nested sets the *outermost* sweep completes in
exactly ``width`` rounds (property-tested); the other orders are usually
optimal but can exceed the width — peeling inner pairs first can leave a
chain of mutually-conflicting outer communications that then serialise
(see ``tests/properties/test_property_schedulers.py`` for a pinned
counterexample).  The outermost-first rule is thus load-bearing for round
optimality as well as for power.
"""

from __future__ import annotations

from typing import Callable, Literal

from repro.comms.communication import Communication, CommunicationSet
from repro.core.base import ScheduleContext, Scheduler, execute_round_plan
from repro.core.schedule import Schedule
from repro.cst.topology import CSTTopology, DirectedEdge

__all__ = ["GreedyScheduler"]

Order = Literal["outermost", "innermost", "lexical"]

_ORDER_KEYS: dict[Order, Callable[[Communication], tuple]] = {
    # enclosing intervals first: leftmost start, then longest
    "outermost": lambda c: (c.leftmost, -c.rightmost),
    # innermost intervals first: shortest spans first, ties left to right
    "innermost": lambda c: (c.rightmost - c.leftmost, c.leftmost),
    "lexical": lambda c: (c.src, c.dst),
}


class GreedyScheduler(Scheduler):
    """Maximal compatible set per round, in a configurable priority order."""

    def __init__(self, order: Order = "outermost") -> None:
        if order not in _ORDER_KEYS:
            raise ValueError(f"unknown order {order!r}; pick from {sorted(_ORDER_KEYS)}")
        self.order: Order = order
        self.name = f"greedy-{order}"

    def plan(
        self, cset: CommunicationSet, topology: CSTTopology
    ) -> list[list[Communication]]:
        """The per-round plan, exposed for analysis and tests."""
        remaining = sorted(cset.comms, key=_ORDER_KEYS[self.order])
        paths = {c: topology.path_edges(c.src, c.dst) for c in cset}
        rounds: list[list[Communication]] = []
        while remaining:
            used: set[DirectedEdge] = set()
            this_round: list[Communication] = []
            deferred: list[Communication] = []
            for c in remaining:
                edges = paths[c]
                if used.isdisjoint(edges):
                    used.update(edges)
                    this_round.append(c)
                else:
                    deferred.append(c)
            rounds.append(this_round)
            remaining = deferred
        return rounds

    def _schedule(self, cset: CommunicationSet, ctx: ScheduleContext) -> Schedule:
        n = ctx.n_leaves
        plan = self.plan(cset, CSTTopology.of(n))
        return execute_round_plan(
            cset, n, plan, self.name, policy=ctx.policy, network=ctx.network
        )
