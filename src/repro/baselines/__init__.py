"""Baseline schedulers the paper compares against (analytically).

``sequential`` — one communication per round: trivially correct, worst
                 rounds, and a floor for per-round power.
``greedy``     — repeated maximal compatible sets in a configurable
                 priority order (outermost-first mirrors the CSA's
                 selection rule centrally; innermost-first is the
                 power-adversarial order).
``roy``        — reconstruction of Roy, Vaidyanathan & Trahan (2006):
                 assign each communication an integer ID, route all
                 same-ID communications together.  Optimal rounds but
                 O(w) configuration changes per switch — the comparison
                 point of Theorem 8.
"""

from repro.baselines.sequential import SequentialScheduler
from repro.baselines.greedy import GreedyScheduler
from repro.baselines.roy import RoyIDScheduler, assign_ids
from repro.baselines.random_order import RandomOrderScheduler

__all__ = [
    "SequentialScheduler",
    "GreedyScheduler",
    "RoyIDScheduler",
    "assign_ids",
    "RandomOrderScheduler",
]
