"""Reconstruction of the Roy–Vaidyanathan–Trahan ID-based scheduler.

Roy et al. (IJFCS 2006) — the prior art the paper's Theorem 8 compares
against — "first assign an ID to each communication and use this ID to
configure the switches and set the path between the communicating PEs".
Communications sharing an ID are routed together; round ``i`` performs all
communications with ID ``i``.  The algorithm is round-optimal for
well-nested sets but reconfigures switches at every round: O(w)
configuration changes per switch.

The original ID assignment is in a journal we reconstruct from its stated
interface and properties.  We assign IDs by greedy conflict colouring in
*outermost-first* nesting order: a communication's ID is the smallest ID
not used by any already-coloured communication whose circuit shares a
directed edge with it.  Two facts make this faithful:

* **validity** — same-ID communications never share a directed edge, so
  every round is a compatible set;
* **optimality in practice** — for a well-nested set, conflicting
  already-coloured communications of ``c`` are precisely its conflicting
  enclosers, and the test-suite property checks (and the benchmarks
  report) that the number of IDs equals the width on all generated
  workloads.

What matters for the reproduction of Theorem 8 is the *power* behaviour:
because consecutive rounds route unrelated subsets, a switch's crossbar is
rewritten round after round — measured as Θ(w) changes per switch by
``benchmarks/bench_theorem8_power.py``.
"""

from __future__ import annotations

from typing import Mapping

from repro.comms.communication import Communication, CommunicationSet
from repro.core.base import ScheduleContext, Scheduler, execute_round_plan
from repro.core.schedule import Schedule
from repro.cst.topology import CSTTopology

__all__ = ["assign_ids", "RoyIDScheduler"]


def assign_ids(
    cset: CommunicationSet, topology: CSTTopology
) -> Mapping[Communication, int]:
    """Greedy conflict-colouring IDs, outermost-first.

    Returns a mapping communication → ID with IDs numbered from 0.  Two
    communications receive the same ID only if their circuits are
    edge-compatible.
    """
    order = sorted(cset.comms, key=lambda c: (c.leftmost, -c.rightmost))
    paths = {c: frozenset(topology.path_edges(c.src, c.dst)) for c in order}
    ids: dict[Communication, int] = {}
    for c in order:
        taken = {
            ids[other]
            for other in ids
            if not paths[other].isdisjoint(paths[c])
        }
        i = 0
        while i in taken:
            i += 1
        ids[c] = i
    return ids


class RoyIDScheduler(Scheduler):
    """Route all communications with ID ``i`` together in round ``i``."""

    name = "roy-id"

    def plan(
        self, cset: CommunicationSet, topology: CSTTopology
    ) -> list[list[Communication]]:
        ids = assign_ids(cset, topology)
        n_rounds = max(ids.values(), default=-1) + 1
        rounds: list[list[Communication]] = [[] for _ in range(n_rounds)]
        for c, i in ids.items():
            rounds[i].append(c)
        for rnd in rounds:
            rnd.sort()
        return rounds

    def _schedule(self, cset: CommunicationSet, ctx: ScheduleContext) -> Schedule:
        n = ctx.n_leaves
        plan = self.plan(cset, CSTTopology.of(n))
        return execute_round_plan(
            cset, n, plan, self.name, policy=ctx.policy, network=ctx.network
        )
