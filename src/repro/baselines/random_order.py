"""Power-oblivious baseline: compatible rounds built in a random order.

This scheduler isolates the *selection order* half of the paper's
contribution.  It builds rounds exactly like the greedy scheduler but
sweeps the communications in a seeded-random order, so the rounds are
valid compatible sets (and usually still close to width-optimal), yet the
order in which a switch's demands arrive is arbitrary.

Because every set of communications sharing a directed edge forms a
nesting chain, a schedule that visits each chain *monotonically* (outermost
first, as the CSA's ``O_c(u)`` rule guarantees, or innermost first) lets a
switch hold each crossbar connection for one contiguous run — O(1) changes.
A random visiting order breaks the runs into fragments, and the same switch
pays for a reconfiguration at each fragment boundary: measurably Θ(w)
changes on width-stress workloads even under the persistent-configuration
power model.  This is the ablation showing the outermost-first rule is
load-bearing, independent of configuration persistence.
"""

from __future__ import annotations

import numpy as np

from repro.comms.communication import Communication, CommunicationSet
from repro.core.base import ScheduleContext, Scheduler, execute_round_plan
from repro.core.schedule import Schedule
from repro.cst.topology import CSTTopology, DirectedEdge

__all__ = ["RandomOrderScheduler"]


class RandomOrderScheduler(Scheduler):
    """Greedy compatible rounds over a seeded-random communication order."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.name = f"random-order(seed={seed})"

    def plan(
        self, cset: CommunicationSet, topology: CSTTopology
    ) -> list[list[Communication]]:
        rng = np.random.default_rng(self.seed)
        remaining = list(cset.comms)
        rng.shuffle(remaining)  # type: ignore[arg-type]
        paths = {c: topology.path_edges(c.src, c.dst) for c in remaining}
        rounds: list[list[Communication]] = []
        while remaining:
            used: set[DirectedEdge] = set()
            this_round: list[Communication] = []
            deferred: list[Communication] = []
            for c in remaining:
                if used.isdisjoint(paths[c]):
                    used.update(paths[c])
                    this_round.append(c)
                else:
                    deferred.append(c)
            rounds.append(this_round)
            remaining = deferred
        return rounds

    def _schedule(self, cset: CommunicationSet, ctx: ScheduleContext) -> Schedule:
        n = ctx.n_leaves
        plan = self.plan(cset, CSTTopology.of(n))
        return execute_round_plan(
            cset, n, plan, self.name, policy=ctx.policy, network=ctx.network
        )
