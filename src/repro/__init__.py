"""repro — Power-Aware Routing for Well-Nested Communications on the CST.

A complete, executable reproduction of El-Boghdadi, *"Power-Aware Routing
for Well-Nested Communications On The Circuit Switched Tree"* (IPPS 2007):
the CST interconnect, the PADR Configuration & Scheduling Algorithm (CSA),
the baselines the paper compares against, and the verification/benchmark
machinery that regenerates every analytical claim as measured data.

Quickstart
----------
>>> import repro
>>> cs = repro.random_well_nested(8, 32, __import__("numpy").random.default_rng(0))
>>> schedule = repro.PADRScheduler().schedule(cs)
>>> schedule.n_rounds == repro.width(cs)
True
>>> repro.verify_schedule(schedule, cs).ok
True

Package map
-----------
``repro.cst``        the Circuit Switched Tree substrate (topology,
                     switches, power meter, network, message engine).
``repro.comms``      communication sets, well-nestedness, width, workload
                     generators.
``repro.core``       the paper's CSA (Phases 1 and 2) and schedule types.
``repro.baselines``  sequential, greedy, random-order and Roy-style
                     ID schedulers.
``repro.analysis``   verification (Theorem 4), optimality (Theorem 5) and
                     power reporting (Theorem 8).
``repro.extensions`` left-oriented/mixed sets and the SRGA grid substrate.
``repro.obs``        observability: metrics registry, structured trace
                     export, scheduler instrumentation.
``repro.recovery``   fault detection (probe circuits), quarantine planning
                     and the resilient schedule/verify/retry loop.
``repro.service``    batch serving: submit/drain service, canonical
                     schedule cache, worker pool, admission control.
``repro.fabric``     horizontal scale-out: a sharded forest of CSTs with
                     aggregation accounting and capacity planning.
``repro.viz``        ASCII figures.
"""

from repro.comms.communication import Communication, CommunicationSet
from repro.comms.decompose import Batch, Decomposition, crossing_lower_bound, decompose
from repro.comms.generators import (
    crossing_chain,
    disjoint_pairs,
    from_dyck_word,
    nested_chain,
    paper_figure2_set,
    random_arbitrary,
    random_well_nested,
    segmentable_bus,
    staircase,
)
from repro.comms.wellnested import is_well_nested, parenthesis_profile
from repro.comms.width import edge_loads, width
from repro.core.base import ScheduleContext, ScheduleResult, Scheduler
from repro.core.config import SchedulerConfig
from repro.core.csa import PADRScheduler
from repro.core.left import LeftPADRScheduler
from repro.core.plan import GeneralSchedule, schedule_general
from repro.core.schedule import Schedule
from repro.baselines import (
    GreedyScheduler,
    RandomOrderScheduler,
    RoyIDScheduler,
    SequentialScheduler,
)
from repro.analysis import (
    check_round_optimality,
    compare_schedulers,
    verify_schedule,
)
from repro.cst.network import CSTNetwork
from repro.cst.power import PowerPolicy
from repro.cst.topology import CSTTopology
from repro.extensions import (
    SRGA,
    GeneralSetScheduler,
    InterleavedGeneralScheduler,
    MirroredScheduler,
    OrientedDecompositionScheduler,
    StreamScheduler,
)
from repro.io import (
    cset_from_dict,
    cset_to_dict,
    load_workloads,
    save_workloads,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.obs import (
    Instrumentation,
    MetricsRegistry,
    TraceExporter,
    observe_schedule,
)
from repro.recovery import (
    DegradedSchedule,
    FaultDetector,
    QuarantinePlan,
    ResilientScheduler,
    plan_quarantine,
    run_campaign,
)
from repro.service import (
    BatchReport,
    CanonicalKey,
    RequestResult,
    RequestStatus,
    ScheduleCache,
    SchedulerService,
    ServiceParityError,
    Ticket,
    canonical_signature,
    mixed_workloads,
)

__version__ = "1.0.0"

__all__ = [
    "Communication",
    "CommunicationSet",
    "Batch",
    "Decomposition",
    "crossing_lower_bound",
    "decompose",
    "crossing_chain",
    "disjoint_pairs",
    "from_dyck_word",
    "nested_chain",
    "paper_figure2_set",
    "random_arbitrary",
    "random_well_nested",
    "segmentable_bus",
    "staircase",
    "is_well_nested",
    "parenthesis_profile",
    "edge_loads",
    "width",
    "Scheduler",
    "ScheduleContext",
    "ScheduleResult",
    "SchedulerConfig",
    "PADRScheduler",
    "LeftPADRScheduler",
    "Schedule",
    "GeneralSchedule",
    "schedule_general",
    "GreedyScheduler",
    "RandomOrderScheduler",
    "RoyIDScheduler",
    "SequentialScheduler",
    "check_round_optimality",
    "compare_schedulers",
    "verify_schedule",
    "CSTNetwork",
    "PowerPolicy",
    "CSTTopology",
    "SRGA",
    "GeneralSetScheduler",
    "InterleavedGeneralScheduler",
    "MirroredScheduler",
    "OrientedDecompositionScheduler",
    "StreamScheduler",
    "cset_from_dict",
    "cset_to_dict",
    "load_workloads",
    "save_workloads",
    "schedule_from_dict",
    "schedule_to_dict",
    "Instrumentation",
    "MetricsRegistry",
    "TraceExporter",
    "observe_schedule",
    "DegradedSchedule",
    "FaultDetector",
    "QuarantinePlan",
    "ResilientScheduler",
    "plan_quarantine",
    "run_campaign",
    "BatchReport",
    "CanonicalKey",
    "RequestResult",
    "RequestStatus",
    "ScheduleCache",
    "SchedulerService",
    "ServiceParityError",
    "Ticket",
    "canonical_signature",
    "mixed_workloads",
    "__version__",
]
