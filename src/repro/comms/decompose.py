"""Decompose an arbitrary communication set into well-nested batches.

The paper's scheduler requires a right-oriented well-nested input; real
traffic is arbitrary.  This module provides the bridge: any valid
communication set (each PE an endpoint of at most one communication) is
partitioned into a sequence of *uniformly oriented, well-nested* batches,
each of which the PADR core schedules in its optimal ``width`` rounds.

The partition is built per orientation by first-fit layering of the
interval *crossing graph* in outermost-first order.  Minimising the number
of layers is colouring of a circle graph — NP-hard — so first-fit is a
heuristic; both a certified lower bound (the largest pairwise-crossing
clique, computable exactly in polynomial time) and the greedy upper bound
(max crossing degree + 1) are reported so callers can see how far from
optimal a decomposition can be.

An already well-nested right-oriented input yields exactly one batch whose
set compares equal to the input — the guarantee the bit-identical
fast path in :mod:`repro.core.plan` rests on.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.comms.communication import Communication, CommunicationSet
from repro.comms.wellnested import is_well_nested

__all__ = [
    "Batch",
    "Decomposition",
    "crossing_lower_bound",
    "decompose",
    "max_crossing_degree",
]


def _crosses(a: Communication, b: Communication) -> bool:
    """Partial interval overlap — the relation well-nestedness forbids."""
    return (
        a.leftmost < b.leftmost <= a.rightmost < b.rightmost
        or b.leftmost < a.leftmost <= b.rightmost < a.rightmost
    )


@dataclass(frozen=True, slots=True)
class Batch:
    """One uniformly oriented, well-nested sub-batch of a decomposition.

    ``cset`` keeps the original coordinates and orientation; for left
    batches :meth:`well_nested_form` reflects it into the right-oriented
    set the PADR core actually schedules (the round plan is mirrored back
    by the planner).
    """

    index: int
    cset: CommunicationSet
    orientation: str  # "right" | "left"

    def well_nested_form(self, n_leaves: int) -> CommunicationSet:
        """The right-oriented well-nested set fed to the core scheduler."""
        if self.orientation == "right":
            return self.cset
        return self.cset.mirrored(n_leaves)

    def __len__(self) -> int:
        return len(self.cset)


@dataclass(frozen=True, slots=True)
class Decomposition:
    """An ordered partition of ``source`` into well-nested batches.

    ``lower_bound`` is the certified minimum batch count for *any*
    decomposition into uniformly oriented well-nested batches: the largest
    pairwise-crossing clique per orientation, summed (crossing pairs can
    never share a batch, and orientations can never mix).
    """

    source: CommunicationSet
    batches: tuple[Batch, ...]
    lower_bound: int

    @property
    def n_batches(self) -> int:
        return len(self.batches)

    @property
    def bound_gap(self) -> int:
        """Batches beyond the certified minimum (0 = provably optimal)."""
        return self.n_batches - self.lower_bound

    @property
    def is_trivial(self) -> bool:
        """True when the input was already schedulable directly."""
        return (
            self.n_batches <= 1
            and all(b.orientation == "right" for b in self.batches)
        )

    def union(self) -> CommunicationSet:
        """All batch members, recombined — always equals ``source``."""
        return CommunicationSet(c for b in self.batches for c in b.cset)

    def __iter__(self) -> Iterator[Batch]:
        return iter(self.batches)

    def __len__(self) -> int:
        return len(self.batches)


def _first_fit_layers(comms: Iterable[Communication]) -> list[list[Communication]]:
    """First-fit well-nested layering, outermost-first (orientation-blind)."""
    layers: list[list[Communication]] = []
    for c in sorted(comms, key=lambda c: (c.leftmost, -c.rightmost)):
        for layer in layers:
            if not any(_crosses(c, other) for other in layer):
                layer.append(c)
                break
        else:
            layers.append([c])
    return layers


def max_crossing_degree(comms: Iterable[Communication]) -> int:
    """Largest number of crossings any one interval participates in.

    First-fit layering never needs more than ``max_crossing_degree + 1``
    layers (greedy colouring bound) — the upper bound the smoke gate
    checks decompositions against.
    """
    items = list(comms)
    best = 0
    for i, a in enumerate(items):
        deg = sum(1 for j, b in enumerate(items) if i != j and _crosses(a, b))
        best = max(best, deg)
    return best


def crossing_lower_bound(comms: Iterable[Communication]) -> int:
    """Size of the largest pairwise-crossing clique among the intervals.

    A set of pairwise-crossing intervals, ordered by left endpoint, has
    strictly increasing left *and* right endpoints with every left endpoint
    at most the first right endpoint.  Anchoring the clique at its first
    interval ``f``, the rest is the longest increasing subsequence of right
    endpoints over ``{c : f.l < c.l <= f.r < c.r}`` sorted by left
    endpoint — O(n² log n) overall, exact.

    Any decomposition into well-nested layers must place each clique member
    in its own layer, so this is a certified lower bound on layer count.
    """
    items = sorted(comms, key=lambda c: c.leftmost)
    if not items:
        return 0
    best = 1
    for f in items:
        eligible = [
            c.rightmost
            for c in items
            if f.leftmost < c.leftmost <= f.rightmost < c.rightmost
        ]
        # eligible is already sorted by leftmost; LIS of rightmost values
        tails: list[int] = []
        for r in eligible:
            pos = bisect.bisect_left(tails, r)
            if pos == len(tails):
                tails.append(r)
            else:
                tails[pos] = r
        best = max(best, 1 + len(tails))
    return best


def decompose(cset: CommunicationSet) -> Decomposition:
    """Partition an arbitrary set into well-nested uniformly oriented batches.

    Right-oriented batches come first (outermost layer first), then
    left-oriented ones.  An already well-nested right-oriented input yields
    exactly one batch with ``batch.cset == cset``; the empty set yields no
    batches.  Every batch's :meth:`Batch.well_nested_form` passes
    :func:`repro.comms.wellnested.is_well_nested`.
    """
    right = cset.right_oriented_subset()
    left = cset.left_oriented_subset()

    batches: list[Batch] = []
    for orientation, subset in (("right", right), ("left", left)):
        if not len(subset):
            continue
        for layer in _first_fit_layers(subset.comms):
            batches.append(
                Batch(
                    index=len(batches),
                    cset=CommunicationSet(layer),
                    orientation=orientation,
                )
            )

    lower = 0
    if len(right):
        lower += crossing_lower_bound(right.comms)
    if len(left):
        lower += crossing_lower_bound(left.comms)

    dec = Decomposition(source=cset, batches=tuple(batches), lower_bound=lower)
    if __debug__:
        for b in dec.batches:
            assert is_well_nested(b.well_nested_form(cset.min_leaves()))
    return dec
