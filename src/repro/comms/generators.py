"""Workload generators: well-nested communication sets of controlled shape.

Every generator returns a :class:`~repro.comms.communication.CommunicationSet`
that is right-oriented and well-nested (validated), plus enough knobs to
control the two quantities the paper's analysis cares about: the *width* w
(maximum same-direction link congestion) and the set size M.

Generators
----------
``from_dyck_word``      place a parenthesis word onto chosen leaves.
``random_well_nested``  uniform Dyck word on uniformly chosen leaves.
``nested_chain``        ``((...))`` on adjacent leaves.
``crossing_chain``      ``w`` nested pairs straddling the root — width ``w``.
``disjoint_pairs``      ``()()...`` — width 1, arbitrarily many pairs.
``segmentable_bus``     neighbour broadcasts of a segmentable bus (the
                        motivating superset relationship of paper §1).
``staircase``           nested chains side by side — tunable width mix.
``paper_figure2_set``   the worked example of the paper's Figure 2.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.comms.communication import Communication, CommunicationSet
from repro.comms.dyck import is_dyck_word, random_dyck_word
from repro.comms.wellnested import require_well_nested
from repro.exceptions import CommunicationError
from repro.util.bitmath import ceil_pow2

__all__ = [
    "from_dyck_word",
    "random_arbitrary",
    "random_well_nested",
    "nested_chain",
    "crossing_chain",
    "disjoint_pairs",
    "segmentable_bus",
    "staircase",
    "paper_figure2_set",
]


def from_dyck_word(
    word: str, leaf_positions: Sequence[int] | None = None
) -> CommunicationSet:
    """Build the well-nested set encoded by a Dyck word.

    ``leaf_positions`` supplies one strictly increasing leaf index per
    character of ``word``; by default character ``i`` sits on leaf ``i``.
    """
    if not is_dyck_word(word):
        raise CommunicationError(f"not a Dyck word: {word!r}")
    if leaf_positions is None:
        leaf_positions = range(len(word))
    positions = list(leaf_positions)
    if len(positions) != len(word):
        raise CommunicationError(
            f"need {len(word)} leaf positions, got {len(positions)}"
        )
    if any(b <= a for a, b in zip(positions, positions[1:])):
        raise CommunicationError("leaf positions must be strictly increasing")
    stack: list[int] = []
    comms: list[Communication] = []
    for ch, pe in zip(word, positions):
        if ch == "(":
            stack.append(pe)
        else:
            comms.append(Communication(stack.pop(), pe))
    return require_well_nested(CommunicationSet(comms))


def random_well_nested(
    n_pairs: int,
    n_leaves: int,
    rng: np.random.Generator,
) -> CommunicationSet:
    """Uniformly random Dyck word on uniformly random distinct leaves.

    ``n_leaves`` must admit ``2 * n_pairs`` endpoints.
    """
    if 2 * n_pairs > n_leaves:
        raise CommunicationError(
            f"{n_pairs} pairs need {2 * n_pairs} leaves, only {n_leaves} available"
        )
    if n_pairs == 0:
        return CommunicationSet(())
    word = random_dyck_word(n_pairs, rng)
    positions = np.sort(rng.choice(n_leaves, size=2 * n_pairs, replace=False))
    return from_dyck_word(word, positions.tolist())


def random_arbitrary(
    n_pairs: int,
    n_leaves: int,
    rng: np.random.Generator,
) -> CommunicationSet:
    """Uniformly random pairing of distinct leaves, arbitrary orientation.

    The general-traffic counterpart of :func:`random_well_nested`: sources
    and destinations are drawn without structure, so the result typically
    contains crossings and both orientations — exactly what the
    decomposition path (``decompose="auto"``) exists to schedule.
    """
    if 2 * n_pairs > n_leaves:
        raise CommunicationError(
            f"{n_pairs} pairs need {2 * n_pairs} leaves, only {n_leaves} available"
        )
    if n_pairs == 0:
        return CommunicationSet(())
    endpoints = rng.permutation(rng.choice(n_leaves, size=2 * n_pairs, replace=False))
    return CommunicationSet(
        Communication(int(endpoints[2 * i]), int(endpoints[2 * i + 1]))
        for i in range(n_pairs)
    )


def nested_chain(depth: int, n_leaves: int | None = None) -> CommunicationSet:
    """``depth`` fully nested pairs on adjacent leaves: ``(((...)))``.

    Sources occupy leaves ``0..depth-1``, destinations ``depth..2*depth-1``
    reversed.  Note that nesting depth is *not* width: inner pairs sit in
    low subtrees and share fewer links (e.g. depth 3 on 8 leaves has width
    2).  Use :func:`crossing_chain` when an exact target width is needed.
    """
    if depth < 1:
        raise CommunicationError("nested_chain requires depth >= 1")
    need = 2 * depth
    if n_leaves is not None and n_leaves < need:
        raise CommunicationError(f"nested_chain depth {depth} needs >= {need} leaves")
    comms = [Communication(i, 2 * depth - 1 - i) for i in range(depth)]
    return require_well_nested(CommunicationSet(comms))


def crossing_chain(w: int, n_leaves: int | None = None) -> CommunicationSet:
    """``w`` nested pairs that all cross the root — width exactly ``w``.

    Sources sit on leaves ``0..w-1`` (left half), destination of source
    ``i`` is leaf ``n-1-i`` (right half), so all ``w`` circuits share the
    root's left upward link and the root's right downward link.  This is
    the canonical exact-width workload for Theorems 5 and 8.
    """
    if w < 1:
        raise CommunicationError("crossing_chain requires w >= 1")
    n = n_leaves if n_leaves is not None else 2 * ceil_pow2(w)
    if n < 2 * w or ceil_pow2(n) != n:
        raise CommunicationError(
            f"crossing_chain width {w} needs a power-of-two tree with >= {2 * w} leaves"
        )
    half = n // 2
    if w > half:
        raise CommunicationError(f"width {w} exceeds half the tree ({half})")
    comms = [Communication(i, n - 1 - i) for i in range(w)]
    return require_well_nested(CommunicationSet(comms))


def disjoint_pairs(n_pairs: int, stride: int = 2) -> CommunicationSet:
    """``n_pairs`` adjacent pairs ``()()()...`` — width 1.

    ``stride >= 2`` spaces consecutive pairs apart.
    """
    if n_pairs < 0:
        raise CommunicationError("n_pairs must be >= 0")
    if stride < 2:
        raise CommunicationError("stride must be >= 2 to keep endpoints distinct")
    comms = [Communication(i * stride, i * stride + 1) for i in range(n_pairs)]
    return require_well_nested(CommunicationSet(comms))


def segmentable_bus(segment_bounds: Sequence[int]) -> CommunicationSet:
    """Left-to-right neighbour transfers of a segmented bus.

    ``segment_bounds`` lists strictly increasing PE indices
    ``b_0 < b_1 < ... < b_k``; segment ``i`` communicates ``b_i -> b_{i+1}-1``
    ... more precisely, the bus master at the left end of each segment
    broadcasts to the right end of its segment: communications
    ``(b_i, b_{i+1} - 1)`` for consecutive bounds.  These are pairwise
    disjoint intervals, hence well-nested with width 1 — the fundamental
    pattern the paper cites the well-nested class as generalising (§1).
    """
    bounds = list(segment_bounds)
    if len(bounds) < 2:
        raise CommunicationError("need at least two segment bounds")
    if any(b <= a for a, b in zip(bounds, bounds[1:])):
        raise CommunicationError("segment bounds must be strictly increasing")
    comms = []
    for lo, hi in zip(bounds, bounds[1:]):
        if hi - 1 > lo:
            comms.append(Communication(lo, hi - 1))
        elif hi - 1 == lo:
            raise CommunicationError(
                f"segment [{lo}, {hi}) has a single PE; cannot self-communicate"
            )
    return require_well_nested(CommunicationSet(comms))


def staircase(n_chains: int, depth: int, gap: int = 0) -> CommunicationSet:
    """``n_chains`` nested chains of the given depth, side by side.

    Total size is ``n_chains * depth`` pairs while the width stays that of
    a single chain — useful for separating width effects from set-size
    effects in the power benchmarks.
    """
    if n_chains < 1 or depth < 1:
        raise CommunicationError("staircase requires n_chains >= 1 and depth >= 1")
    if gap < 0:
        raise CommunicationError("gap must be >= 0")
    comms: list[Communication] = []
    block = 2 * depth + gap
    for k in range(n_chains):
        base = k * block
        comms.extend(
            Communication(base + i, base + 2 * depth - 1 - i) for i in range(depth)
        )
    return require_well_nested(CommunicationSet(comms))


def paper_figure2_set(n_leaves: int = 16) -> CommunicationSet:
    """A transcription of the paper's Figure 2 well-nested example.

    The figure shows a right-oriented well-nested set with both nesting and
    adjacency: rendered as a parenthesis word it is ``(()(()))(())`` spread
    over the first 12 leaves — two outer communications, one containing a
    singleton and a depth-2 nest, the other a single nested pair.
    """
    word = "(()(()))(())"
    if n_leaves < len(word):
        raise CommunicationError(f"figure-2 set needs >= {len(word)} leaves")
    if ceil_pow2(n_leaves) != n_leaves:
        raise CommunicationError("n_leaves must be a power of two")
    return from_dyck_word(word)
