"""Communication sets on the CST: model, well-nestedness, width, generators."""

from repro.comms.communication import Communication, CommunicationSet
from repro.comms.decompose import (
    Batch,
    Decomposition,
    crossing_lower_bound,
    decompose,
    max_crossing_degree,
)
from repro.comms.wellnested import (
    is_well_nested,
    nesting_depths,
    nesting_forest,
    parenthesis_profile,
)
from repro.comms.width import edge_loads, width
from repro.comms.dyck import random_dyck_word, dyck_words, is_dyck_word
from repro.comms.generators import (
    from_dyck_word,
    random_arbitrary,
    random_well_nested,
    nested_chain,
    crossing_chain,
    disjoint_pairs,
    segmentable_bus,
    staircase,
    paper_figure2_set,
)

__all__ = [
    "Communication",
    "CommunicationSet",
    "Batch",
    "Decomposition",
    "crossing_lower_bound",
    "decompose",
    "max_crossing_degree",
    "is_well_nested",
    "nesting_depths",
    "nesting_forest",
    "parenthesis_profile",
    "edge_loads",
    "width",
    "random_dyck_word",
    "dyck_words",
    "is_dyck_word",
    "from_dyck_word",
    "random_arbitrary",
    "random_well_nested",
    "nested_chain",
    "crossing_chain",
    "disjoint_pairs",
    "segmentable_bus",
    "staircase",
    "paper_figure2_set",
]
