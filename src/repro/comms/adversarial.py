"""Adversarial workloads: sets constructed to stress specific claims.

Each generator targets one mechanism in the algorithm or its analysis and
is named for what it attacks.  They complement the statistical generators
in :mod:`repro.comms.generators`: random sets rarely visit these corners
(e.g. uniform Dyck sets have width Θ(√M), far from the worst case).
"""

from __future__ import annotations

from repro.comms.communication import Communication, CommunicationSet
from repro.comms.wellnested import require_well_nested
from repro.exceptions import CommunicationError
from repro.util.bitmath import ceil_pow2, is_power_of_two

__all__ = [
    "idle_subtree_inversion_set",
    "alternating_demand_set",
    "full_leaf_utilisation_set",
    "left_spine_hotspot_set",
]


def idle_subtree_inversion_set() -> CommunicationSet:
    """The pinned multi-chain example where the CSA fires an inner pair
    before an outer one: {(0,9),(1,8),(2,7),(4,6)} on 64 leaves.

    The subtree holding (4,6) is idle at round 0 while (2,7)'s LCA is busy
    forwarding source 0 upward, so the inner pair fires first — a service
    inversion that costs no power (see
    :mod:`repro.analysis.monotonicity`).
    """
    return require_well_nested(
        CommunicationSet(
            Communication(*p) for p in [(0, 9), (1, 8), (2, 7), (4, 6)]
        )
    )


def alternating_demand_set(k: int, n_leaves: int | None = None) -> CommunicationSet:
    """A chain that alternates a switch's demands: pass-up, matched,
    pass-up, matched, ... along one nesting chain.

    The focal switch is the root's left child of an ``8k``-leaf tree: ``k``
    outer communications pass *up through* it (sources under it,
    destinations in the right half) and ``k`` inner communications are
    matched *at* it, all on one nesting chain.  The CSA still pays O(1)
    there — the chain is served monotonically — but any order that
    zig-zags the chain pays per zig.
    """
    if k < 1:
        raise CommunicationError("alternating_demand_set requires k >= 1")
    n = n_leaves if n_leaves is not None else ceil_pow2(8 * k)
    if not is_power_of_two(n) or n < 8 * k:
        raise CommunicationError(
            f"alternating_demand_set k={k} needs a power-of-two tree >= {8 * k}"
        )
    half = n // 2
    quarter = n // 4
    comms: list[Communication] = []
    # outer group: sources in the first quarter, destinations in the right
    # half — they pass *up through* the quarter-subtree's root.
    for i in range(k):
        comms.append(Communication(i, n - 1 - i))
    # inner group: matched at the quarter-subtree's root (sources in its
    # left half, destinations in its right half), nested inside the outers.
    for i in range(k):
        comms.append(Communication(k + i, half - 1 - i))
    return require_well_nested(CommunicationSet(comms))


def full_leaf_utilisation_set(n_leaves: int) -> CommunicationSet:
    """Every leaf an endpoint, maximal nesting: ``(0,n-1),(1,n-2),...``.

    The densest width-stress set a tree admits: width ``n/2`` on the root
    links, every control counter at its maximum.
    """
    if n_leaves < 2 or not is_power_of_two(n_leaves):
        raise CommunicationError("n_leaves must be a power of two >= 2")
    return require_well_nested(
        CommunicationSet(
            Communication(i, n_leaves - 1 - i) for i in range(n_leaves // 2)
        )
    )


def left_spine_hotspot_set(depth: int) -> CommunicationSet:
    """Communications whose LCAs climb the left spine, one per level.

    Pair *j* (``j = 1..depth``) is ``(2^j − 1, 2^j)`` — adjacent leaves
    straddling the ``2^j`` alignment boundary, so its LCA is the left-spine
    switch whose subtree spans ``2^(j+1)`` leaves.  The pairs are disjoint
    intervals (width 1) but exercise a different spine switch each, which
    stresses the per-level counter bookkeeping and the rank arithmetic
    without any of them conflicting.
    """
    if depth < 1:
        raise CommunicationError("left_spine_hotspot_set requires depth >= 1")
    comms = [
        Communication((1 << j) - 1, 1 << j) for j in range(1, depth + 1)
    ]
    return require_well_nested(CommunicationSet(comms))
