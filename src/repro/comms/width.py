"""Width of a communication set: maximum same-direction link congestion.

Paper §1: *"If at most w communications require to use the same link in the
same direction, the communication set is of width w."*  Width is the
round-count lower bound — only one circuit can hold a directed edge per
round — and Theorem 5 shows the CSA meets it exactly for right-oriented
well-nested sets.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping

import numpy as np

from repro.comms.communication import Communication, CommunicationSet
from repro.cst.topology import CSTTopology, DirectedEdge
from repro.types import Direction

__all__ = [
    "edge_loads",
    "edge_loads_fast",
    "width",
    "width_fast",
    "width_lower_bound_witness",
    "comms_on_edge",
]


def edge_loads(
    cset: CommunicationSet, topology: CSTTopology
) -> Mapping[DirectedEdge, int]:
    """Number of communications requiring each directed edge."""
    loads: Counter[DirectedEdge] = Counter()
    for c in cset:
        loads.update(topology.path_edges(c.src, c.dst))
    return dict(loads)


def width(cset: CommunicationSet, topology: CSTTopology | None = None) -> int:
    """Width ``w`` of the set (0 for the empty set)."""
    if len(cset) == 0:
        return 0
    topo = topology or CSTTopology.of(cset.min_leaves())
    return max(edge_loads(cset, topo).values())


def comms_on_edge(
    cset: CommunicationSet, topology: CSTTopology, edge: DirectedEdge
) -> tuple[Communication, ...]:
    """The communications whose circuit uses ``edge`` — a *maximum
    incompatible* when the edge attains the width (paper §4)."""
    return tuple(
        c for c in cset if edge in topology.path_edges(c.src, c.dst)
    )


def width_lower_bound_witness(
    cset: CommunicationSet, topology: CSTTopology
) -> tuple[DirectedEdge | None, tuple[Communication, ...]]:
    """An edge attaining the width and the communications congesting it.

    Returns ``(None, ())`` for the empty set.  Useful in optimality checks:
    any valid schedule needs at least ``len(witness comms)`` rounds.
    """
    loads = edge_loads(cset, topology)
    if not loads:
        return None, ()
    edge = max(loads, key=lambda e: loads[e])
    return edge, comms_on_edge(cset, topology, edge)


# ---------------------------------------------------------------------------
# vectorized fast path (per the profiling-then-vectorise discipline):
# the per-communication path walk is the hot loop of width computation on
# large sweeps; the counting below replaces it with O(log N) bincounts.
# ---------------------------------------------------------------------------


def edge_loads_fast(
    cset: CommunicationSet, topology: CSTTopology
) -> Mapping[DirectedEdge, int]:
    """Vectorized :func:`edge_loads` — identical result, no path walks.

    Uses the subtree characterisation of circuit edges: the UP edge out of
    node ``v`` is used by a communication exactly when its source lies in
    ``v``'s leaf range and its destination does not (and symmetrically for
    DOWN edges).  Per tree level, those counts are two ``np.bincount``
    calls over the endpoints' node indices.
    """
    if len(cset) == 0:
        return {}
    n = topology.n_leaves
    src = np.fromiter((c.src for c in cset), dtype=np.int64, count=len(cset))
    dst = np.fromiter((c.dst for c in cset), dtype=np.int64, count=len(cset))

    loads: dict[DirectedEdge, int] = {}
    height = topology.height
    for level in range(1, height + 1):
        size = n >> level              # leaves per node at this level
        n_nodes = 1 << level
        idx_s = src // size
        idx_d = dst // size
        inside = idx_s == idx_d        # circuit never leaves this node
        up = np.bincount(idx_s, minlength=n_nodes) - np.bincount(
            idx_s[inside], minlength=n_nodes
        )
        down = np.bincount(idx_d, minlength=n_nodes) - np.bincount(
            idx_d[inside], minlength=n_nodes
        )
        base = n_nodes  # heap id of the first node at this level
        for i in np.nonzero(up)[0]:
            loads[DirectedEdge(int(base + i), Direction.UP)] = int(up[i])
        for i in np.nonzero(down)[0]:
            loads[DirectedEdge(int(base + i), Direction.DOWN)] = int(down[i])
    return loads


def width_fast(cset: CommunicationSet, topology: CSTTopology | None = None) -> int:
    """Vectorized :func:`width` (equivalence property-tested)."""
    if len(cset) == 0:
        return 0
    topo = topology or CSTTopology.of(cset.min_leaves())
    n = topo.n_leaves
    src = np.fromiter((c.src for c in cset), dtype=np.int64, count=len(cset))
    dst = np.fromiter((c.dst for c in cset), dtype=np.int64, count=len(cset))
    best = 0
    for level in range(1, topo.height + 1):
        size = n >> level
        n_nodes = 1 << level
        idx_s = src // size
        idx_d = dst // size
        inside = idx_s == idx_d
        up = np.bincount(idx_s, minlength=n_nodes) - np.bincount(
            idx_s[inside], minlength=n_nodes
        )
        down = np.bincount(idx_d, minlength=n_nodes) - np.bincount(
            idx_d[inside], minlength=n_nodes
        )
        best = max(best, int(up.max(initial=0)), int(down.max(initial=0)))
    return best
