"""Communications and communication sets.

A *communication* pairs a source PE with a destination PE (paper §1).  A
*communication set* is a collection of communications in which every PE is
an endpoint of at most one communication — each PE is a source, a
destination, or neither, which is precisely the local knowledge Step 1.1
transmits.

A set is *right-oriented* when every source lies to the left of its
destination; the core algorithm (and the paper) work on right-oriented
sets, with left-oriented sets handled by mirroring
(:mod:`repro.extensions.oriented`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.exceptions import CommunicationError
from repro.types import Role

__all__ = ["Communication", "CommunicationSet"]


@dataclass(frozen=True, slots=True, order=True)
class Communication:
    """A source→destination pair.  Ordering is by ``(src, dst)``."""

    src: int
    dst: int

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise CommunicationError(f"PE indices must be non-negative: {self}")
        if self.src == self.dst:
            raise CommunicationError(f"source and destination must differ: {self}")

    @property
    def right_oriented(self) -> bool:
        """True when the source is to the left of the destination."""
        return self.src < self.dst

    @property
    def left_oriented(self) -> bool:
        return self.dst < self.src

    @property
    def leftmost(self) -> int:
        return min(self.src, self.dst)

    @property
    def rightmost(self) -> int:
        return max(self.src, self.dst)

    @property
    def span(self) -> range:
        """Leaf interval covered by the communication, inclusive of both ends."""
        return range(self.leftmost, self.rightmost + 1)

    def encloses(self, other: "Communication") -> bool:
        """True when ``other``'s interval nests strictly inside this one."""
        return (
            self.leftmost <= other.leftmost
            and other.rightmost <= self.rightmost
            and self != other
        )

    def mirrored(self, n_leaves: int) -> "Communication":
        """Reflection through the centre of an ``n_leaves``-wide CST."""
        return Communication(n_leaves - 1 - self.src, n_leaves - 1 - self.dst)

    def __str__(self) -> str:
        return f"({self.src}->{self.dst})"


class CommunicationSet:
    """An immutable set of communications with disjoint endpoints.

    Stored sorted by ``(src, dst)``.  Construction validates the at-most-
    one-role-per-PE rule; orientation and well-nestedness are properties of
    particular sets, checked by the predicates in
    :mod:`repro.comms.wellnested` (and demanded by the core scheduler).
    """

    __slots__ = ("_comms",)

    def __init__(self, comms: Iterable[Communication]) -> None:
        ordered = tuple(sorted(comms))
        seen: set[int] = set()
        for c in ordered:
            for endpoint in (c.src, c.dst):
                if endpoint in seen:
                    raise CommunicationError(
                        f"PE {endpoint} is an endpoint of more than one communication"
                    )
                seen.add(endpoint)
        self._comms = ordered

    # -- container protocol ------------------------------------------------

    def __iter__(self) -> Iterator[Communication]:
        return iter(self._comms)

    def __len__(self) -> int:
        return len(self._comms)

    def __getitem__(self, i: int) -> Communication:
        return self._comms[i]

    def __contains__(self, c: object) -> bool:
        return c in self._comms

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CommunicationSet):
            return NotImplemented
        return self._comms == other._comms

    def __hash__(self) -> int:
        return hash(self._comms)

    def __repr__(self) -> str:
        inner = ", ".join(str(c) for c in self._comms)
        return f"CommunicationSet([{inner}])"

    # -- derived views ---------------------------------------------------------

    @property
    def comms(self) -> tuple[Communication, ...]:
        return self._comms

    @property
    def is_right_oriented(self) -> bool:
        return all(c.right_oriented for c in self._comms)

    @property
    def is_left_oriented(self) -> bool:
        return all(c.left_oriented for c in self._comms)

    @property
    def max_pe(self) -> int:
        """Largest PE index used (``-1`` for the empty set)."""
        return max((c.rightmost for c in self._comms), default=-1)

    def min_leaves(self) -> int:
        """Smallest power-of-two CST that can host this set."""
        from repro.util.bitmath import ceil_pow2

        return max(2, ceil_pow2(self.max_pe + 1)) if self._comms else 2

    def roles(self) -> Mapping[int, Role]:
        """Mapping PE index → role, omitting NEITHER PEs."""
        out: dict[int, Role] = {}
        for c in self._comms:
            out[c.src] = Role.SOURCE
            out[c.dst] = Role.DESTINATION
        return out

    def partner_of(self) -> Mapping[int, int]:
        """Ground-truth pairing: source PE → destination PE."""
        return {c.src: c.dst for c in self._comms}

    def sources(self) -> tuple[int, ...]:
        return tuple(c.src for c in self._comms)

    def destinations(self) -> tuple[int, ...]:
        return tuple(c.dst for c in self._comms)

    def restricted_to(self, comms: Iterable[Communication]) -> "CommunicationSet":
        """Subset containing exactly the given communications."""
        wanted = set(comms)
        missing = wanted - set(self._comms)
        if missing:
            raise CommunicationError(f"communications not in set: {sorted(missing)}")
        return CommunicationSet(c for c in self._comms if c in wanted)

    def right_oriented_subset(self) -> "CommunicationSet":
        return CommunicationSet(c for c in self._comms if c.right_oriented)

    def left_oriented_subset(self) -> "CommunicationSet":
        return CommunicationSet(c for c in self._comms if c.left_oriented)

    def mirrored(self, n_leaves: int) -> "CommunicationSet":
        """The set reflected through the centre of an ``n_leaves`` CST."""
        if self.max_pe >= n_leaves:
            raise CommunicationError(
                f"set uses PE {self.max_pe}, beyond n_leaves={n_leaves}"
            )
        return CommunicationSet(c.mirrored(n_leaves) for c in self._comms)
