"""Dyck words: recognition, enumeration, and uniform random sampling.

Right-oriented well-nested communication sets are exactly Dyck words spread
over the leaves (paper §2.1, Figure 2), so balanced-parenthesis machinery is
the natural workload generator substrate.

Uniform sampling uses the Cycle Lemma (Dvoretzky & Motzkin): shuffle a
multiset of ``n`` up-steps and ``n+1`` down-steps; exactly one rotation of
the resulting word is a Dyck word followed by a down-step, and taking that
rotation of a uniformly random arrangement yields a uniformly random Dyck
word of length ``2n``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["is_dyck_word", "dyck_words", "random_dyck_word", "catalan"]


def is_dyck_word(word: str) -> bool:
    """True iff ``word`` over ``()`` is balanced and never dips negative."""
    depth = 0
    for ch in word:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                return False
        else:
            raise ValueError(f"invalid character {ch!r} in Dyck word")
    return depth == 0


def catalan(n: int) -> int:
    """The n-th Catalan number — the count of Dyck words of length 2n."""
    if n < 0:
        raise ValueError("catalan requires n >= 0")
    c = 1
    for i in range(n):
        c = c * 2 * (2 * i + 1) // (i + 2)
    return c


def dyck_words(n_pairs: int) -> Iterator[str]:
    """All Dyck words with ``n_pairs`` pairs, in lexicographic order.

    Intended for exhaustive small-``n`` testing (``catalan(n)`` words).
    """
    if n_pairs < 0:
        raise ValueError("n_pairs must be >= 0")

    def rec(prefix: list[str], opens: int, closes: int) -> Iterator[str]:
        if opens == 0 and closes == 0:
            yield "".join(prefix)
            return
        if opens > 0:
            prefix.append("(")
            yield from rec(prefix, opens - 1, closes)
            prefix.pop()
        if closes > opens:
            prefix.append(")")
            yield from rec(prefix, opens, closes - 1)
            prefix.pop()

    return rec([], n_pairs, n_pairs)


def random_dyck_word(n_pairs: int, rng: np.random.Generator) -> str:
    """A uniformly random Dyck word with ``n_pairs`` pairs (Cycle Lemma)."""
    if n_pairs < 0:
        raise ValueError("n_pairs must be >= 0")
    if n_pairs == 0:
        return ""
    # steps: n up (+1), n+1 down (-1); shuffle, find the unique good rotation.
    steps = np.concatenate([np.ones(n_pairs, dtype=np.int64), -np.ones(n_pairs + 1, dtype=np.int64)])
    rng.shuffle(steps)
    # the good rotation starts just after the (unique) position where the
    # running prefix sum attains its minimum for the first... last time.
    prefix = np.cumsum(steps)
    pivot = int(np.argmin(prefix))  # first index attaining the minimum
    rotated = np.concatenate([steps[pivot + 1 :], steps[: pivot + 1]])
    # drop the trailing forced down-step; what remains is a Dyck word.
    body = rotated[:-1]
    word = "".join("(" if s == 1 else ")" for s in body)
    assert is_dyck_word(word), "cycle-lemma rotation failed to produce a Dyck word"
    return word
