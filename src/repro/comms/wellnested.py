"""Well-nestedness: recognition, parenthesis encoding, nesting structure.

Paper §2.1: *"In a well-nested communication set, the communications
correspond to a balanced well-nested parenthesis expression."*  For a
right-oriented set, write ``(`` at each source leaf, ``)`` at each
destination leaf, and ``.`` elsewhere, scanning leaves left to right; the
set is well-nested when this word is balanced **and** the stack-matching of
the parentheses recovers exactly the set's own source/destination pairing.

This module also computes the nesting *forest* (which communication
immediately encloses which) and nesting depths — the ingredients of the
Roy-style baseline and of several workload generators.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.comms.communication import Communication, CommunicationSet
from repro.exceptions import NotWellNestedError, OrientationError

__all__ = [
    "parenthesis_profile",
    "is_well_nested",
    "require_well_nested",
    "nesting_forest",
    "nesting_depths",
    "enclosing_chain",
]


def parenthesis_profile(cset: CommunicationSet, n_leaves: int | None = None) -> str:
    """Render the set as a parenthesis word over the leaves.

    ``(`` marks a source, ``)`` a destination, ``.`` an idle PE.  Requires a
    right-oriented set (sources precede their destinations).
    """
    if not cset.is_right_oriented:
        raise OrientationError("parenthesis profile requires a right-oriented set")
    n = n_leaves if n_leaves is not None else cset.max_pe + 1
    chars = ["."] * max(n, 0)
    for c in cset:
        chars[c.src] = "("
        chars[c.dst] = ")"
    return "".join(chars)


def _stack_matching(cset: CommunicationSet) -> dict[int, int] | None:
    """Stack-match the profile; return src→dst mapping or None if unbalanced."""
    events: list[tuple[int, bool]] = []  # (pe, is_source)
    for c in cset:
        events.append((c.src, True))
        events.append((c.dst, False))
    events.sort()
    stack: list[int] = []
    matched: dict[int, int] = {}
    for pe, is_source in events:
        if is_source:
            stack.append(pe)
        else:
            if not stack:
                return None
            matched[stack.pop()] = pe
    if stack:
        return None
    return matched


def is_well_nested(cset: CommunicationSet) -> bool:
    """True iff the set is right-oriented and well-nested.

    Well-nested means the parenthesis word is balanced and the balanced
    matching coincides with the set's own pairing — i.e. no two
    communications "cross" (partially overlap).
    """
    if not cset.is_right_oriented:
        return False
    matched = _stack_matching(cset)
    if matched is None:
        return False
    return matched == dict(cset.partner_of())


def require_well_nested(cset: CommunicationSet) -> CommunicationSet:
    """Validate and return ``cset``; raise otherwise."""
    if not cset.is_right_oriented:
        raise OrientationError("expected a right-oriented communication set")
    if not is_well_nested(cset):
        raise NotWellNestedError(
            "communication set is not well-nested (crossing pairs present)"
        )
    return cset


def nesting_forest(cset: CommunicationSet) -> Mapping[Communication, Communication | None]:
    """Immediate encloser of each communication (``None`` for roots).

    For a well-nested set, intervals either nest or are disjoint, so the
    "immediately encloses" relation forms a forest.  Computed by a single
    left-to-right sweep with a stack.
    """
    require_well_nested(cset)
    events: list[tuple[int, bool, Communication]] = []
    for c in cset:
        events.append((c.src, True, c))
        events.append((c.dst, False, c))
    events.sort(key=lambda t: t[0])
    stack: list[Communication] = []
    parent: dict[Communication, Communication | None] = {}
    for _, is_source, c in events:
        if is_source:
            parent[c] = stack[-1] if stack else None
            stack.append(c)
        else:
            stack.pop()
    return parent


def nesting_depths(cset: CommunicationSet) -> Mapping[Communication, int]:
    """Nesting depth of each communication (roots have depth 0)."""
    parent = nesting_forest(cset)
    depth: dict[Communication, int] = {}

    def depth_of(c: Communication) -> int:
        if c in depth:
            return depth[c]
        p = parent[c]
        d = 0 if p is None else depth_of(p) + 1
        depth[c] = d
        return d

    for c in cset:
        depth_of(c)
    return depth


def enclosing_chain(
    cset: CommunicationSet, c: Communication
) -> Sequence[Communication]:
    """All communications enclosing ``c``, outermost first."""
    parent = nesting_forest(cset)
    chain: list[Communication] = []
    cur = parent.get(c)
    while cur is not None:
        chain.append(cur)
        cur = parent[cur]
    chain.reverse()
    return chain
