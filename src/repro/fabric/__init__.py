"""Horizontal scale-out: a forest of CSTs behind one controller.

The paper's w-round optimum is per-tree; this package scales *out*
instead of *up*.  :class:`~repro.fabric.controller.FabricController`
partitions work across ``tree_count`` CSTs (sharding by canonical
signature for batch work, by tenant for streams),
:mod:`~repro.fabric.aggregation` routes the pairs that span shards over
a two-level aggregation spine with explicit round/power accounting, and
:class:`~repro.fabric.planner.CapacityPlanner` sizes the forest from a
recorded arrival trace.  ``docs/fabric.md`` is the operator's guide.
"""

from repro.fabric.aggregation import (
    CrossShardHop,
    FabricSchedule,
    GeneralFabricSchedule,
    pack_cross_rounds,
    shard_of,
    split,
)
from repro.fabric.controller import FabricController
from repro.fabric.planner import CapacityPlanner, FabricPlan, WorkloadProfile

__all__ = [
    "CapacityPlanner",
    "CrossShardHop",
    "FabricController",
    "FabricPlan",
    "FabricSchedule",
    "GeneralFabricSchedule",
    "WorkloadProfile",
    "pack_cross_rounds",
    "shard_of",
    "split",
]
