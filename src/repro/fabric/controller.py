""":class:`FabricController` — one controller, a forest of CSTs.

The controller owns ``tree_count`` shards, each a full CST of
``leaf_width`` leaves with its own single-process executor, and does
three jobs:

* **route** — deterministic request placement.  The shard key is the
  PR-4 relabelling-invariant canonical signature
  (:func:`repro.service.cache.canonical_signature`): hashing
  ``(placed profile, config signature)`` with CRC-32 means repeats of
  the same placed workload land on the same tree *and* produce the same
  cache key, so the shared :class:`~repro.service.cache.ScheduleCache`
  keeps working across the whole fabric.  Streaming tenants route by
  tenant id instead (:meth:`route_tenant`) — one tenant's stream stays
  on one tree.  CRC-32, not :func:`hash`: the builtin is salted per
  process and would route the same key differently in every worker.
* **execute** — fan a wave of requests out to their shards, one pickled
  :func:`~repro.service.worker.schedule_many` call per shard per wave.
  Shard executors are lazy fork-pool singletons initialised from the one
  :class:`~repro.core.config.SchedulerConfig`; ``parallel=False`` runs
  every shard in-process (same code path, no processes — the unit-test
  and single-core story).  A shard whose pool dies mid-call is torn
  down and its requests reported transient, mirroring the service's
  broken-pool recovery.
* **rebalance** — watch per-shard load over a sliding window and, when
  the max/mean skew exceeds ``rebalance_skew``, rotate the routing salt
  so future waves spread differently.  Rebalancing never touches the
  cache (keys are signatures, not shards) and never moves in-flight
  work; it is recorded as a ``fabric.rebalances`` event.

Single-cset runs wider than one tree go through
:meth:`schedule_global`, which splits the set over the forest and packs
the spanning pairs onto the aggregation spine
(:mod:`repro.fabric.aggregation`).
"""

from __future__ import annotations

import zlib
from typing import Any

from repro.comms.communication import CommunicationSet
from repro.comms.wellnested import is_well_nested
from repro.core.base import DECOMPOSE_MODES
from repro.core.config import SchedulerConfig
from repro.exceptions import NotWellNestedError, SchedulingError
from repro.fabric.aggregation import (
    FabricSchedule,
    GeneralFabricSchedule,
    pack_cross_rounds,
    split,
)
from repro.obs.instrument import Instrumentation
from repro.service.cache import CanonicalKey
from repro.service.worker import (
    WorkRequest,
    WorkResponse,
    init_worker,
    schedule_many,
)
from repro.util.bitmath import is_power_of_two

__all__ = ["FabricController"]


class FabricController:
    """Partition scheduling work across a forest of ``tree_count`` CSTs.

    Parameters
    ----------
    tree_count:
        number of shards (CSTs).  ``1`` is a legitimate fabric — it must
        behave bit-identically to the unsharded service path.
    leaf_width:
        leaves per tree; a power of two ``>= 2``.  Requests needing more
        leaves than this cannot be placed on a single shard (services
        reject them at the door; :meth:`schedule_global` is the
        spanning-set path).
    config:
        the one :class:`~repro.core.config.SchedulerConfig` every shard
        executor is initialised from.
    parallel:
        ``True`` gives each shard its own single-process fork pool;
        ``False`` executes every shard inline in this process (identical
        results — the executors run the same worker functions).
    rebalance_skew:
        max/mean per-shard load ratio above which the routing salt
        rotates.  ``0`` disables rebalancing.
    shard_timeout:
        seconds to wait for one shard's wave result before declaring the
        shard broken.  Shard executors are
        :class:`~concurrent.futures.ProcessPoolExecutor`\\ s rather than
        ``multiprocessing.Pool``\\ s deliberately: a SIGKILLed pool
        worker can die holding a queue lock and deadlock even
        ``Pool.terminate()``, while the executor detects the death and
        raises ``BrokenProcessPool`` promptly.  The timeout is the
        backstop for a *hung* (not dead) worker.  ``None`` waits
        forever.
    obs:
        optional :class:`~repro.obs.Instrumentation`; the controller
        emits ``fabric.*`` counters and gauges.
    """

    def __init__(
        self,
        tree_count: int,
        leaf_width: int,
        *,
        config: SchedulerConfig | None = None,
        parallel: bool = True,
        rebalance_skew: float = 4.0,
        rebalance_window: int = 64,
        shard_timeout: float | None = 60.0,
        obs: "Instrumentation | None" = None,
    ) -> None:
        if tree_count < 1:
            raise SchedulingError(f"tree_count must be >= 1, got {tree_count}")
        if not is_power_of_two(leaf_width) or leaf_width < 2:
            raise SchedulingError(
                f"leaf_width must be a power of two >= 2, got {leaf_width}"
            )
        if rebalance_skew < 0:
            raise SchedulingError(
                f"rebalance_skew must be >= 0, got {rebalance_skew}"
            )
        if rebalance_window < 1:
            raise SchedulingError(
                f"rebalance_window must be >= 1, got {rebalance_window}"
            )
        self.tree_count = tree_count
        self.leaf_width = leaf_width
        self.config = config if config is not None else SchedulerConfig()
        self.parallel = parallel
        self.rebalance_skew = rebalance_skew
        self.rebalance_window = rebalance_window
        self.shard_timeout = shard_timeout
        self.obs = obs
        self._salt = 0
        self._pools: dict[int, Any] = {}
        self._inline_ready = False
        self._direct = None  # lazy scheduler for schedule_global local legs
        #: lifetime requests executed per shard (metrics / bench surface)
        self.shard_load: list[int] = [0] * tree_count
        #: requests per shard since the last rebalance check
        self._window_load: list[int] = [0] * tree_count
        self._window_total = 0
        self.rebalances = 0
        #: (salt, per-shard window loads) at each rebalance, oldest first
        self.rebalance_events: list[tuple[int, tuple[int, ...]]] = []
        self.cross_pairs = 0
        self.local_pairs = 0

    # -- routing -------------------------------------------------------------

    def _bucket(self, token: str) -> int:
        digest = zlib.crc32(f"{self._salt}:{token}".encode())
        return digest % self.tree_count

    def route(self, key: CanonicalKey) -> int:
        """The shard a canonical signature lives on (deterministic)."""
        return self._bucket(f"sig:{key.n_leaves}:{key.placed}:{key.config}")

    def route_tenant(self, tenant: str) -> int:
        """The shard a streaming tenant's traffic pins to."""
        return self._bucket(f"tenant:{tenant}")

    # -- execution -----------------------------------------------------------

    def execute(
        self, requests: list[WorkRequest], shards: list[int]
    ) -> list[WorkResponse]:
        """Run one wave: ``requests[i]`` executes on ``shards[i]``.

        One ``schedule_many`` call per involved shard; shards run
        concurrently when ``parallel``.  Response order is unspecified
        (the services settle by ticket id).
        """
        if len(requests) != len(shards):
            raise SchedulingError(
                f"{len(requests)} requests but {len(shards)} shard ids"
            )
        by_shard: dict[int, list[WorkRequest]] = {}
        for request, shard in zip(requests, shards):
            if not 0 <= shard < self.tree_count:
                raise SchedulingError(
                    f"shard {shard} out of range 0..{self.tree_count - 1}"
                )
            by_shard.setdefault(shard, []).append(request)

        for shard, reqs in by_shard.items():
            self.shard_load[shard] += len(reqs)
            self._window_load[shard] += len(reqs)
            self._window_total += len(reqs)
            self._gauge("fabric.shard.load", self.shard_load[shard], shard=shard)
        self._inc("fabric.requests", len(requests))

        out: list[WorkResponse] = []
        if not self.parallel or self.tree_count == 1:
            if not self._inline_ready:
                init_worker(self.config.to_dict())
                self._inline_ready = True
            for reqs in by_shard.values():
                out.extend(schedule_many(reqs))
            return out

        inflight: list[tuple[int, list[WorkRequest], Any]] = []
        for shard, reqs in by_shard.items():
            pool = self._ensure_pool(shard)
            inflight.append((shard, reqs, pool.submit(schedule_many, reqs)))
        for shard, reqs, future in inflight:
            try:
                out.extend(future.result(timeout=self.shard_timeout))
            except Exception as exc:
                # this shard's worker died (BrokenProcessPool) or hung
                # past the timeout; discard its executor and let the
                # service retry these requests on a fresh one.
                self._abort_pool(shard)
                self._inc("fabric.shard.broken")
                err = f"shard {shard} worker failure: {exc!r}"
                out.extend((tid, "transient", err) for tid, _, _ in reqs)
        return out

    def _ensure_pool(self, shard: int):
        pool = self._pools.get(shard)
        if pool is None:
            import multiprocessing as mp
            from concurrent.futures import ProcessPoolExecutor

            try:
                ctx = mp.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX
                ctx = mp.get_context()
            pool = ProcessPoolExecutor(
                max_workers=1,
                mp_context=ctx,
                initializer=init_worker,
                initargs=(self.config.to_dict(),),
            )
            self._pools[shard] = pool
        return pool

    def _abort_pool(self, shard: int) -> None:
        pool = self._pools.pop(shard, None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # -- rebalancing ---------------------------------------------------------

    def maybe_rebalance(self) -> bool:
        """Rotate the routing salt when the load window is badly skewed.

        Judged only after ``rebalance_window`` requests have accumulated
        (a handful of requests always looks skewed).  Returns whether a
        rebalance happened.
        """
        if (
            self.rebalance_skew <= 0
            or self.tree_count == 1
            or self._window_total < self.rebalance_window
        ):
            return False
        mean = self._window_total / self.tree_count
        skew = max(self._window_load) / mean if mean else 0.0
        window = tuple(self._window_load)
        self._window_load = [0] * self.tree_count
        self._window_total = 0
        if skew < self.rebalance_skew:
            return False
        self._salt += 1
        self.rebalances += 1
        self.rebalance_events.append((self._salt, window))
        self._inc("fabric.rebalances")
        return True

    # -- spanning sets -------------------------------------------------------

    def schedule_global(
        self,
        cset: CommunicationSet,
        *,
        n_leaves: int | None = None,
        decompose: str | None = None,
    ) -> FabricSchedule | GeneralFabricSchedule:
        """Schedule one set over the *whole* fabric's leaf line.

        Local legs run on their shards under the ordinary per-tree
        optimum; spanning pairs are packed onto the aggregation spine.
        The result's :meth:`~repro.fabric.aggregation.FabricSchedule.delivered`
        set equals the input pairs — the fabric's parity surface.

        ``decompose`` overrides ``config.decompose`` for this call.  A
        non-well-nested set under ``"auto"`` is decomposed *globally* into
        uniformly oriented well-nested batches, each run as its own fabric
        phase; the phases serialize into a
        :class:`~repro.fabric.aggregation.GeneralFabricSchedule`.  Under
        ``"never"`` such a set is rejected up front; ``"strict"`` keeps
        the historical behaviour (the local legs' scheduler raises).
        """
        del n_leaves  # the fabric's leaf line is fixed by its geometry
        mode = decompose if decompose is not None else self.config.decompose
        if mode not in DECOMPOSE_MODES:
            raise SchedulingError(
                f"decompose must be one of {DECOMPOSE_MODES}, got {mode!r}"
            )
        if mode != "strict" and not is_well_nested(cset):
            if mode == "never":
                raise NotWellNestedError(
                    "fabric schedule_global requires a well-nested set "
                    "under decompose='never'"
                )
            return self._schedule_global_general(cset)
        return self._schedule_global_phase(cset)

    def _schedule_global_phase(
        self, cset: CommunicationSet, *, left: bool = False
    ) -> FabricSchedule:
        """One fabric phase: split, schedule local legs, pack the spine.

        ``left`` selects the mirror lens for the local legs — a left
        batch's shard-local pairs are left-oriented, and the per-tree
        scheduler only speaks the right-oriented input class.
        """
        local_sets, cross = split(cset, self.tree_count, self.leaf_width)
        if self._direct is None:
            self._direct = self.config.build()
        if left:
            from repro.extensions.oriented import MirroredScheduler

            scheduler = MirroredScheduler(self._direct)
        else:
            scheduler = self._direct
        local = {
            shard: scheduler.schedule(subset, n_leaves=self.leaf_width)
            for shard, subset in sorted(local_sets.items())
        }
        hops = pack_cross_rounds(cross)
        self.local_pairs += sum(len(s) for s in local_sets.values())
        self.cross_pairs += len(hops)
        self._inc("fabric.cross_shard.pairs", len(hops))
        self._inc(
            "fabric.local.pairs", sum(len(s) for s in local_sets.values())
        )
        schedule = FabricSchedule(
            tree_count=self.tree_count,
            leaf_width=self.leaf_width,
            local=local,
            cross=tuple(hops),
        )
        self._gauge("fabric.cross_shard.ratio", schedule.cross_ratio)
        return schedule

    def _schedule_global_general(
        self, cset: CommunicationSet
    ) -> GeneralFabricSchedule:
        """Decompose an arbitrary global set and run one phase per batch."""
        from repro.comms.decompose import decompose as _decompose

        decomposition = _decompose(cset)
        phases = tuple(
            self._schedule_global_phase(
                batch.cset, left=batch.orientation == "left"
            )
            for batch in decomposition.batches
        )
        schedule = GeneralFabricSchedule(
            tree_count=self.tree_count,
            leaf_width=self.leaf_width,
            phases=phases,
            batch_orientations=tuple(
                b.orientation for b in decomposition.batches
            ),
            lower_bound=decomposition.lower_bound,
        )
        self._inc("decompose.requests")
        self._inc("decompose.batches", schedule.n_batches)
        return schedule

    # -- introspection / lifecycle -------------------------------------------

    @property
    def cross_ratio(self) -> float:
        """Lifetime fraction of globally-scheduled pairs that crossed."""
        total = self.local_pairs + self.cross_pairs
        return self.cross_pairs / total if total else 0.0

    def stats(self) -> dict[str, Any]:
        """One snapshot for benches and the CLI."""
        return {
            "tree_count": self.tree_count,
            "leaf_width": self.leaf_width,
            "shard_load": list(self.shard_load),
            "requests": sum(self.shard_load),
            "rebalances": self.rebalances,
            "local_pairs": self.local_pairs,
            "cross_pairs": self.cross_pairs,
            "cross_ratio": self.cross_ratio,
        }

    def close(self) -> None:
        """Shut every shard executor down (idempotent)."""
        pools, self._pools = self._pools, {}
        for pool in pools.values():
            pool.shutdown(wait=True)

    def terminate(self) -> None:
        """Hard teardown — the abort path's counterpart to :meth:`close`."""
        pools, self._pools = self._pools, {}
        for pool in pools.values():
            pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "FabricController":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- metrics helpers -----------------------------------------------------

    def _inc(self, name: str, amount: int = 1, **labels: Any) -> None:
        if self.obs is not None and amount:
            self.obs.metrics.inc(name, amount, run=self.obs.run, **labels)

    def _gauge(self, name: str, value: float, **labels: Any) -> None:
        if self.obs is not None:
            self.obs.metrics.set(name, value, run=self.obs.run, **labels)
