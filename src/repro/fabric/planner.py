"""Capacity planning: pick ``(tree_count, leaf_width)`` from a workload.

The input is a recorded arrival trace — the PR-7 canary format
(:func:`repro.io.save_arrivals` / :func:`repro.io.load_arrivals`), a
production-like workload captured once.  :class:`WorkloadProfile`
reduces it to the three numbers sizing needs:

* the widest request (fixes ``leaf_width``: every request must fit one
  tree, so the leaf width is the smallest power of two covering it);
* the peak per-tick arrival count (fixes how much aggregate per-tick
  execution budget the forest needs);
* the tenant population (a floor on useful shard count for tenant-pinned
  streaming — more trees than tenants sit idle).

:class:`CapacityPlanner` then enumerates tree counts and costs each
feasible design in *switches*, the two-layer fat-tree accounting of the
sizing literature (PAPERS.md): a ``W``-leaf CST has ``W - 1`` internal
switches, and joining ``t`` roots takes a ``t - 1``-switch spine (one
two-port combiner per added tree; ``t = 1`` needs no spine).  The
cheapest feasible design wins; ties break toward fewer trees (less
cross-shard surface).  This is deliberately an *enumerate-and-cost*
planner, not a closed form — the candidate space is tiny (``t`` up to
``max_trees``) and the explicit loop keeps every rejected design
inspectable in :meth:`CapacityPlanner.plan`'s trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.exceptions import SchedulingError
from repro.util.bitmath import ceil_pow2

__all__ = ["CapacityPlanner", "FabricPlan", "WorkloadProfile"]


@dataclass(frozen=True, slots=True)
class WorkloadProfile:
    """The sizing-relevant summary of a recorded arrival trace."""

    n_requests: int
    max_leaves: int  # widest single request (power of two)
    peak_arrivals: int  # max submissions in any one tick
    mean_arrivals: float  # per tick with >= 1 arrival
    tenants: tuple[str, ...]  # distinct, sorted

    @classmethod
    def from_arrivals(cls, requests: Iterable[Any]) -> "WorkloadProfile":
        """Profile a list of ``StreamRequest``-shaped arrivals."""
        per_tick: dict[int, int] = {}
        max_leaves = 2
        tenants: set[str] = set()
        n = 0
        for req in requests:
            n += 1
            per_tick[req.release_time] = per_tick.get(req.release_time, 0) + 1
            width = (
                req.n_leaves
                if req.n_leaves is not None
                else req.cset.min_leaves()
            )
            max_leaves = max(max_leaves, ceil_pow2(width))
            tenants.add(req.tenant)
        if n == 0:
            raise SchedulingError("cannot profile an empty arrival trace")
        return cls(
            n_requests=n,
            max_leaves=max_leaves,
            peak_arrivals=max(per_tick.values()),
            mean_arrivals=n / len(per_tick),
            tenants=tuple(sorted(tenants)),
        )

    @classmethod
    def from_trace(cls, path: str | Path) -> "WorkloadProfile":
        """Profile a saved arrival trace file."""
        from repro.io import load_arrivals

        return cls.from_arrivals(load_arrivals(path))


@dataclass(frozen=True, slots=True)
class FabricPlan:
    """One sized fabric design, with its cost accounting."""

    tree_count: int
    leaf_width: int
    switches: int  # tree switches + spine switches
    spine_switches: int
    utilization: float  # peak arrivals over aggregate per-tick budget
    shard_capacity: int
    profile: WorkloadProfile

    @property
    def total_leaves(self) -> int:
        return self.tree_count * self.leaf_width

    def summary(self) -> str:
        return (
            f"plan: {self.tree_count} tree(s) x {self.leaf_width} leaves, "
            f"{self.switches} switches ({self.spine_switches} spine), "
            f"utilization {self.utilization:.0%} of "
            f"{self.tree_count * self.shard_capacity}/tick"
        )


def _design_cost(tree_count: int, leaf_width: int) -> tuple[int, int]:
    """``(total switches, spine switches)`` for a candidate design."""
    spine = tree_count - 1
    return tree_count * (leaf_width - 1) + spine, spine


class CapacityPlanner:
    """Enumerate-and-cost sizing over tree counts.

    ``shard_capacity`` is one shard's per-tick execution budget (the
    streaming service's ``max_inflight`` for that shard); a design is
    *feasible* when the forest's aggregate budget covers the profiled
    peak arrival rate.  ``max_trees`` bounds the enumeration — if even
    that many trees cannot cover the peak, planning fails loudly rather
    than under-provisioning silently.
    """

    def __init__(self, *, shard_capacity: int = 16, max_trees: int = 64) -> None:
        if shard_capacity < 1:
            raise SchedulingError(
                f"shard_capacity must be >= 1, got {shard_capacity}"
            )
        if max_trees < 1:
            raise SchedulingError(f"max_trees must be >= 1, got {max_trees}")
        self.shard_capacity = shard_capacity
        self.max_trees = max_trees

    def plan(self, profile: WorkloadProfile) -> FabricPlan:
        """The cheapest feasible design for ``profile``."""
        candidates = self.candidates(profile)
        feasible = [c for c in candidates if c.utilization <= 1.0]
        if not feasible:
            raise SchedulingError(
                f"no fabric of <= {self.max_trees} trees covers peak "
                f"{profile.peak_arrivals} arrivals/tick at capacity "
                f"{self.shard_capacity}/shard"
            )
        # min() is stable: equal-cost designs resolve to fewer trees
        # because candidates enumerate in ascending tree count.
        return min(feasible, key=lambda c: c.switches)

    def candidates(self, profile: WorkloadProfile) -> Sequence[FabricPlan]:
        """Every enumerated design, feasible or not, ascending tree count."""
        leaf_width = profile.max_leaves
        out = []
        for t in range(1, self.max_trees + 1):
            switches, spine = _design_cost(t, leaf_width)
            out.append(
                FabricPlan(
                    tree_count=t,
                    leaf_width=leaf_width,
                    switches=switches,
                    spine_switches=spine,
                    utilization=profile.peak_arrivals
                    / (t * self.shard_capacity),
                    shard_capacity=self.shard_capacity,
                    profile=profile,
                )
            )
        return out
