"""The two-level aggregation tree: cross-shard routing over a CST forest.

One CST tops out at one tree's worth of leaves.  The fabric scales
*horizontally* instead: ``tree_count`` CSTs of ``leaf_width`` leaves each
sit side by side, and a non-blocking spine joins their roots — the
two-layer fat-tree shape of the sizing literature (PAPERS.md).  Global
leaf ``g`` lives on shard ``g // leaf_width`` as local leaf
``g % leaf_width``.

A well-nested communication set over the global leaf line then splits
cleanly:

* **local pairs** — both endpoints on one shard — relabel onto that
  shard's tree and schedule under the per-tree w-round optimum exactly as
  before.  A subset of a well-nested set is well-nested (pairs either
  nest or are disjoint pairwise, and dropping pairs cannot create a
  crossing), and shifting every index by ``shard * leaf_width`` is a
  relabelling, so each local leg is a legitimate PADR input.
* **spanning pairs** — endpoints on different shards — decompose into an
  *up-leg* on the source shard (leaf to tree root,
  ``log2(leaf_width)`` switch settings), a *root hop* across the spine
  (one switch setting), and a *down-leg* on the destination shard
  (another ``log2(leaf_width)``).  The spine is non-blocking between
  distinct shard pairs, but each shard has one root port: a round can
  carry at most one up-leg and one down-leg per shard.  Spanning pairs
  are packed into rounds greedily (first fit) under that port constraint.

The decomposition is *accounted against the per-tree optimum*: a
spanning pair costs ``2 * log2(leaf_width) + 1`` power units (versus at
most ``2 * log2(leaf_width) - 1`` had both endpoints shared one tree —
the two legs each climb to a tree root instead of meeting at their LCA),
and the cross epoch's rounds are serialized after the local phase.
:meth:`FabricSchedule.cross_power_units` and
:meth:`FabricSchedule.total_rounds` make both costs visible, and the
``fabric.*`` metrics export them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.comms.communication import Communication, CommunicationSet
from repro.core.schedule import Schedule
from repro.exceptions import SchedulingError
from repro.util.bitmath import ceil_pow2, ilog2

__all__ = [
    "CrossShardHop",
    "FabricSchedule",
    "GeneralFabricSchedule",
    "pack_cross_rounds",
    "shard_of",
    "split",
]


def shard_of(leaf: int, leaf_width: int) -> int:
    """The shard a global leaf index lives on."""
    return leaf // leaf_width


@dataclass(frozen=True, slots=True)
class CrossShardHop:
    """One spanning pair, decomposed and placed in the cross epoch.

    ``round_index`` counts within the cross epoch (0-based); the fabric
    schedule serializes the epoch after the local phase, so the pair
    completes at global round ``max(local rounds) + round_index + 1``.
    """

    comm: Communication  # global leaf indices
    src_shard: int
    dst_shard: int
    round_index: int

    def power_units(self, leaf_width: int) -> int:
        """Up-leg + root hop + down-leg switch settings for this pair."""
        return 2 * ilog2(leaf_width) + 1


def split(
    cset: CommunicationSet, tree_count: int, leaf_width: int
) -> tuple[dict[int, CommunicationSet], list[tuple[Communication, int, int]]]:
    """Partition a global set into per-shard local sets and spanning pairs.

    Returns ``(local, cross)`` where ``local`` maps shard → relabelled
    :class:`CommunicationSet` (only shards with at least one local pair
    appear) and ``cross`` lists ``(global comm, src_shard, dst_shard)``.
    """
    if tree_count < 1:
        raise SchedulingError(f"tree_count must be >= 1, got {tree_count}")
    total = tree_count * leaf_width
    if cset.max_pe >= total:
        raise SchedulingError(
            f"set uses PE {cset.max_pe}, beyond the fabric's "
            f"{tree_count}x{leaf_width} = {total} leaves"
        )
    local_pairs: dict[int, list[Communication]] = {}
    cross: list[tuple[Communication, int, int]] = []
    for c in cset:
        s_src = shard_of(c.src, leaf_width)
        s_dst = shard_of(c.dst, leaf_width)
        if s_src == s_dst:
            base = s_src * leaf_width
            local_pairs.setdefault(s_src, []).append(
                Communication(c.src - base, c.dst - base)
            )
        else:
            cross.append((c, s_src, s_dst))
    local = {s: CommunicationSet(pairs) for s, pairs in local_pairs.items()}
    return local, cross


def pack_cross_rounds(
    cross: list[tuple[Communication, int, int]],
) -> list[CrossShardHop]:
    """Greedy first-fit packing of spanning pairs into cross-epoch rounds.

    Port constraint: one up-leg and one down-leg per shard per round
    (each tree has a single root port).  The spine is non-blocking, so
    distinct shard pairs in one round never conflict.  First fit over
    pairs sorted by (src_shard, dst_shard, comm) keeps the packing
    deterministic.
    """
    up_busy: list[set[int]] = []  # round -> shards with their uplink taken
    down_busy: list[set[int]] = []
    hops: list[CrossShardHop] = []
    for comm, s_src, s_dst in sorted(cross, key=lambda t: (t[1], t[2], t[0])):
        placed = None
        for r in range(len(up_busy)):
            if s_src not in up_busy[r] and s_dst not in down_busy[r]:
                placed = r
                break
        if placed is None:
            up_busy.append(set())
            down_busy.append(set())
            placed = len(up_busy) - 1
        up_busy[placed].add(s_src)
        down_busy[placed].add(s_dst)
        hops.append(CrossShardHop(comm, s_src, s_dst, placed))
    return hops


@dataclass(frozen=True, slots=True)
class FabricSchedule:
    """A complete fabric run: per-shard local schedules plus the cross epoch.

    ``local`` maps shard → the :class:`~repro.core.schedule.Schedule` of
    its relabelled local leg; ``cross`` is the packed cross epoch.  The
    fabric serializes the epochs: every local phase runs concurrently
    across shards, then the cross rounds run on the spine.
    """

    tree_count: int
    leaf_width: int
    local: Mapping[int, Schedule]
    cross: tuple[CrossShardHop, ...]

    @property
    def local_rounds(self) -> int:
        """The concurrent local phase: the slowest shard bounds it."""
        return max((s.n_rounds for s in self.local.values()), default=0)

    @property
    def cross_rounds(self) -> int:
        return 1 + max((h.round_index for h in self.cross), default=-1)

    @property
    def total_rounds(self) -> int:
        return self.local_rounds + self.cross_rounds

    @property
    def local_power_units(self) -> int:
        return sum(s.power.total_units for s in self.local.values())

    @property
    def cross_power_units(self) -> int:
        return sum(h.power_units(self.leaf_width) for h in self.cross)

    @property
    def total_power_units(self) -> int:
        return self.local_power_units + self.cross_power_units

    @property
    def cross_ratio(self) -> float:
        """Fraction of delivered pairs that had to cross the spine."""
        n = len(self.delivered)
        return len(self.cross) / n if n else 0.0

    @property
    def delivered(self) -> tuple[Communication, ...]:
        """Every pair the fabric delivered, in *global* leaf indices.

        This is the parity surface: for any shardable workload it must
        equal the pair set a single-tree run on the union delivers.
        """
        out: set[Communication] = set()
        for shard, schedule in self.local.items():
            base = shard * self.leaf_width
            for c in schedule.cset:
                out.add(Communication(c.src + base, c.dst + base))
        out.update(h.comm for h in self.cross)
        return tuple(sorted(out))

    # -- ScheduleResult protocol ------------------------------------------

    @property
    def rounds_used(self) -> int:
        return self.total_rounds

    @property
    def power_units(self) -> int:
        return self.total_power_units

    @property
    def undelivered(self) -> tuple[Communication, ...]:
        """The fabric schedules everything it admits; nothing is dropped."""
        return ()

    def stats(self) -> "ScheduleStats":
        """Fabric-wide aggregates in the shared stats shape.

        ``width`` is the single-tree width of the delivered set on the
        fabric's unified leaf line — the optimum the fabric's overhead is
        accounted against.  Per-switch maxima cover the local trees only
        (spine hops are not attributed to individual switches).
        """
        from repro.comms.width import width as _width
        from repro.core.schedule import ScheduleStats
        from repro.cst.topology import CSTTopology

        delivered = self.delivered
        w = 0
        if delivered:
            union = CommunicationSet(delivered)
            w = _width(union, CSTTopology.of(_union_width(self.tree_count, self.leaf_width)))
        return ScheduleStats(
            n_comms=len(delivered),
            n_rounds=self.total_rounds,
            width=w,
            total_power_units=self.total_power_units,
            max_switch_power_units=max(
                (s.power.max_switch_units for s in self.local.values()), default=0
            ),
            max_switch_config_changes=max(
                (s.power.max_switch_changes for s in self.local.values()), default=0
            ),
            control_messages=sum(s.control_messages for s in self.local.values()),
            control_words=sum(s.control_words for s in self.local.values()),
        )

    def overhead_vs_union(self, union: Schedule) -> tuple[int, int]:
        """``(extra rounds, extra power units)`` versus one giant tree.

        ``union`` is a single-tree schedule of the same global set on
        ``ceil_pow2(tree_count * leaf_width)`` leaves — the per-tree
        optimum the paper proves.  Positive values are the price of
        sharding; power can come out *negative* when locality wins (a
        shard's shallow tree reaches fewer switches than the giant
        tree's tall LCA climbs).
        """
        return (
            self.total_rounds - union.n_rounds,
            self.total_power_units - union.power.total_units,
        )

    def summary(self) -> str:
        return (
            f"fabric: {self.tree_count}x{self.leaf_width}, "
            f"{sum(len(s.cset) for s in self.local.values())} local + "
            f"{len(self.cross)} cross pairs, "
            f"{self.local_rounds}+{self.cross_rounds} rounds, "
            f"{self.total_power_units} power units"
        )


def _union_width(tree_count: int, leaf_width: int) -> int:
    """The single-tree width the fabric's leaf line would need."""
    return ceil_pow2(tree_count * leaf_width)


@dataclass(frozen=True, slots=True)
class GeneralFabricSchedule:
    """A decomposed fabric run: one :class:`FabricSchedule` phase per batch.

    Produced by ``FabricController.schedule_global`` when an arbitrary
    (non-well-nested) global set is admitted under ``decompose="auto"``:
    the set is decomposed *globally*, each uniformly oriented well-nested
    batch runs as its own fabric phase (local legs + cross epoch), and the
    phases serialize.  ``batch_orientations`` and ``lower_bound`` carry
    the decomposition accounting, mirroring
    :class:`~repro.core.plan.GeneralSchedule`.
    """

    tree_count: int
    leaf_width: int
    phases: tuple[FabricSchedule, ...]
    batch_orientations: tuple[str, ...]
    lower_bound: int

    @property
    def n_batches(self) -> int:
        return len(self.phases)

    @property
    def total_rounds(self) -> int:
        return sum(p.total_rounds for p in self.phases)

    @property
    def total_power_units(self) -> int:
        return sum(p.total_power_units for p in self.phases)

    @property
    def cross_pairs(self) -> int:
        return sum(len(p.cross) for p in self.phases)

    # -- ScheduleResult protocol ------------------------------------------

    @property
    def rounds_used(self) -> int:
        return self.total_rounds

    @property
    def power_units(self) -> int:
        return self.total_power_units

    @property
    def delivered(self) -> tuple[Communication, ...]:
        out: set[Communication] = set()
        for p in self.phases:
            out.update(p.delivered)
        return tuple(sorted(out))

    @property
    def undelivered(self) -> tuple[Communication, ...]:
        return ()

    def stats(self) -> "ScheduleStats":
        from repro.comms.width import width as _width
        from repro.core.schedule import ScheduleStats
        from repro.cst.topology import CSTTopology

        parts = [p.stats() for p in self.phases]
        delivered = self.delivered
        w = 0
        if delivered:
            union = CommunicationSet(delivered)
            w = _width(union, CSTTopology.of(_union_width(self.tree_count, self.leaf_width)))
        return ScheduleStats(
            n_comms=len(delivered),
            n_rounds=self.total_rounds,
            width=w,
            total_power_units=self.total_power_units,
            max_switch_power_units=max((s.max_switch_power_units for s in parts), default=0),
            max_switch_config_changes=max(
                (s.max_switch_config_changes for s in parts), default=0
            ),
            control_messages=sum(s.control_messages for s in parts),
            control_words=sum(s.control_words for s in parts),
        )

    def summary(self) -> str:
        return (
            f"fabric/general: {self.tree_count}x{self.leaf_width}, "
            f"{self.n_batches} batch(es) (lower bound {self.lower_bound}), "
            f"{len(self.delivered)} pairs, {self.total_rounds} rounds, "
            f"{self.total_power_units} power units"
        )
