"""repro.obs — the observability layer (metrics registry + trace export).

Public surface:

* :class:`MetricsRegistry` — counters, gauges, histograms, timing spans;
  near-zero overhead when disabled (:data:`NULL_REGISTRY`).
* :class:`TraceExporter` — per-round scheduler/engine events serialised as
  deterministic JSON-lines; :func:`export_schedule` for finished runs,
  :func:`read_jsonl` to load traces back.
* :class:`Instrumentation` — the bundle schedulers accept (``obs=`` on
  :class:`~repro.core.csa.PADRScheduler` and
  :class:`~repro.extensions.stream.StreamScheduler`); owns all metric
  names and the trace schema.
* :func:`observe_schedule` / :func:`per_switch_changes_from` — registry
  ingestion/extraction for after-the-fact analysis of any scheduler's
  output.

See ``docs/observability.md`` for the full schema and overhead contract.
"""

from repro.obs.instrument import (
    Instrumentation,
    observe_schedule,
    per_switch_changes_from,
    per_switch_counters_from,
)
from repro.obs.registry import (
    NULL_REGISTRY,
    PHYSICAL_PREFIX,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    metric_key,
    parse_key,
)
from repro.obs.trace import TraceExporter, export_schedule, read_jsonl

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "NULL_REGISTRY",
    "PHYSICAL_PREFIX",
    "metric_key",
    "parse_key",
    "TraceExporter",
    "export_schedule",
    "read_jsonl",
    "Instrumentation",
    "observe_schedule",
    "per_switch_changes_from",
    "per_switch_counters_from",
]
