"""The metrics registry: counters, gauges, histograms and timing spans.

Observability for the reproduction follows one rule: **the measured system
must not know it is being measured**.  Schedulers, engines and meters emit
into a :class:`MetricsRegistry` through injectable hooks that default to
``None``/no-op, so a run without observability attached executes the exact
hot path PR 1 benchmarked (the ``bench_perf_waves`` 3× floor guards this).

Two planes of metrics
---------------------

The engine distinguishes *logical* control traffic (the paper's model: one
message per link per wave) from *physical* traffic (what the simulator
actually walked; smaller on the frontier-pruned fast path).  Metrics follow
the same discipline by **name**: anything under the ``phys.`` prefix is a
simulator-plane quantity and may differ between the fast and reference
engines; everything else is logical-plane and must be bit-identical across
engine implementations (property-tested in
``tests/properties/test_property_differential.py``).

Key encoding
------------

Instruments are identified by a name plus optional labels.  Snapshots
flatten both into one string key — ``name{k=v,...}`` with labels sorted —
so exported JSON stays greppable and diffable:

>>> reg = MetricsRegistry()
>>> reg.inc("config.changes", 2, switch=5, run="csa")
>>> reg.snapshot()["counters"]
{'config.changes{run=csa,switch=5}': 2}
>>> parse_key("config.changes{run=csa,switch=5}")
('config.changes', {'run': 'csa', 'switch': '5'})

Disabled mode
-------------

``MetricsRegistry(enabled=False)`` (or the shared :data:`NULL_REGISTRY`)
hands out interned null instruments whose methods are ``pass`` and whose
spans never read the clock, so instrumented code can call unconditionally.
"""

from __future__ import annotations

import time
from typing import Any, Iterator, Mapping

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "NULL_REGISTRY",
    "PHYSICAL_PREFIX",
    "metric_key",
    "parse_key",
]

#: metrics whose name starts with this prefix are simulator-plane
#: quantities (physical traffic, pruning savings) and are exempt from the
#: fast-vs-reference engine equality property.
PHYSICAL_PREFIX = "phys."

#: default histogram bucket upper bounds (powers of two; +inf is implicit).
DEFAULT_BUCKETS: tuple[float, ...] = tuple(float(2**k) for k in range(0, 13))


def metric_key(name: str, labels: Mapping[str, Any] | None = None) -> str:
    """Flatten ``name`` + ``labels`` into the canonical snapshot key."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_key(key: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`metric_key` (label values come back as strings)."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: dict[str, str] = {}
    for part in inner[:-1].split(","):
        if part:
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


class Counter:
    """A monotonically increasing integer (e.g. rounds run, messages sent)."""

    __slots__ = ("key", "value")

    def __init__(self, key: str) -> None:
        self.key = key
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.key!r} cannot decrease (got {amount})")
        self.value += amount


class Gauge:
    """A point-in-time value that may move both ways (e.g. pending pairs)."""

    __slots__ = ("key", "value")

    def __init__(self, key: str) -> None:
        self.key = key
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """A distribution: count/sum/min/max plus cumulative bucket counts.

    Buckets are upper bounds (``value <= bound``); values beyond the last
    bound land in the implicit ``+inf`` bucket.  The export format mirrors
    the Prometheus convention so downstream tooling needs no adapter.
    """

    __slots__ = ("key", "buckets", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, key: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.key = key
        # dedupe: repeated bounds would export colliding ``le=`` keys,
        # silently dropping a bucket's cumulative count.
        self.buckets = tuple(sorted(set(buckets)))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +1: the +inf bucket
        self.count = 0
        self.total: float = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def export(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }
        cumulative = 0
        buckets: dict[str, int] = {}
        for bound, n in zip(self.buckets, self.bucket_counts):
            cumulative += n
            buckets[f"le={bound:g}"] = cumulative
        buckets["le=+inf"] = cumulative + self.bucket_counts[-1]
        out["buckets"] = buckets
        return out


class Span:
    """Aggregated wall-clock timings for one named region.

    Used as a context manager (``with registry.span("csa.phase1"): ...``);
    repeated entries aggregate.  Timings are *not* part of the structured
    trace (they are nondeterministic) — they live only in the metrics
    snapshot, under ``spans``.
    """

    __slots__ = ("key", "count", "total_s", "min_s", "max_s", "_t0")

    def __init__(self, key: str) -> None:
        self.key = key
        self.count = 0
        self.total_s = 0.0
        self.min_s: float | None = None
        self.max_s: float | None = None
        self._t0: float | None = None

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        assert self._t0 is not None, "span exited without entering"
        dt = time.perf_counter() - self._t0
        self._t0 = None
        self.count += 1
        self.total_s += dt
        if self.min_s is None or dt < self.min_s:
            self.min_s = dt
        if self.max_s is None or dt > self.max_s:
            self.max_s = dt

    def export(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
        }


class _NullInstrument:
    """Shared no-op stand-in for every instrument type when disabled."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


_NULL = _NullInstrument()


class MetricsRegistry:
    """Process-local registry of named instruments.

    Instruments are created on first use and identified by
    ``(name, labels)``; repeated lookups return the same object, so hot
    callers may hold the instrument directly instead of re-resolving the
    key.  With ``enabled=False`` every accessor returns the shared null
    instrument and ``snapshot()`` is empty.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._spans: dict[str, Span] = {}

    # -- instrument accessors (get-or-create) -------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = metric_key(name, labels)
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(key)
        return c

    def gauge(self, name: str, **labels: Any) -> Gauge:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = metric_key(name, labels)
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge(key)
        return g

    def histogram(
        self,
        name: str,
        *,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = metric_key(name, labels)
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(key, buckets)
        return h

    def span(self, name: str, **labels: Any) -> Span:
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        key = metric_key(name, labels)
        s = self._spans.get(key)
        if s is None:
            s = self._spans[key] = Span(key)
        return s

    # -- one-shot conveniences ----------------------------------------------

    def inc(self, name: str, amount: int = 1, **labels: Any) -> None:
        self.counter(name, **labels).inc(amount)

    def set(self, name: str, value: float, **labels: Any) -> None:
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self.histogram(name, **labels).observe(value)

    # -- export ---------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Everything recorded so far, as plain JSON-serialisable dicts.

        Keys within each section are sorted, so snapshots of deterministic
        runs compare equal structurally *and* textually.
        """
        return {
            "counters": {k: self._counters[k].value for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].export() for k in sorted(self._histograms)
            },
            "spans": {k: self._spans[k].export() for k in sorted(self._spans)},
        }

    def logical_counters(self) -> dict[str, int]:
        """Counters minus the ``phys.`` plane — the engine-independent view."""
        return {
            k: c.value
            for k, c in sorted(self._counters.items())
            if not k.startswith(PHYSICAL_PREFIX)
        }

    def counters_matching(self, name: str) -> Iterator[tuple[dict[str, str], int]]:
        """Yield ``(labels, value)`` for every counter with this base name."""
        for key, c in sorted(self._counters.items()):
            base, labels = parse_key(key)
            if base == name:
                yield labels, c.value

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._spans.clear()


#: shared disabled registry — safe to pass anywhere instrumentation is
#: expected when you want guaranteed-no-op behaviour.
NULL_REGISTRY = MetricsRegistry(enabled=False)
