"""Structured trace export: per-round scheduler/engine events as JSON-lines.

A :class:`TraceExporter` accumulates events (plain dicts) in run order and
serialises them one-JSON-object-per-line, the format every log pipeline
ingests.  Events carry **only deterministic quantities** — counts, deltas,
ids — never wall-clock times, so traces of the same workload are
byte-identical across hosts and engine implementations (the golden-file
test in ``tests/obs`` pins the schema).

Event kinds (full field-by-field schema in ``docs/observability.md``):

``run_start``
    workload and scheduler identity: ``run``, ``scheduler``, ``n_leaves``,
    ``n_comms``, ``width``, ``wave_depth`` (tree height — the latency of
    one synchronous wave).
``phase1``
    the single upward counter-distribution wave: ``live_switches``
    (switches storing a non-zero ``C_S``), ``logical_messages``,
    ``physical_messages``, ``cached`` (Phase-1 reuse hit).
``round``
    one Phase-2 round, all quantities **deltas for this round**:
    ``writers``, ``performed``, ``staged_switches``, ``config_changes``,
    ``power_units``, ``logical_messages``, ``physical_messages``,
    ``pruned_links`` (logical − physical), ``pruned_subtrees`` (dead
    subtrees the fast path skipped; 0 on the reference engine).
``run_end``
    totals plus the Theorem-8 evidence: ``rounds``, ``total_power_units``,
    ``max_switch_units``, ``max_switch_changes``, ``per_switch_changes``
    (heap id → count), traffic totals.

Every event also carries ``seq`` (global order) and ``event`` (the kind).
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Any, Iterator, Mapping, TextIO

__all__ = ["TraceExporter", "export_schedule", "read_jsonl"]


class TraceExporter:
    """Accumulates structured events and serialises them as JSON-lines."""

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    def emit(self, event: str, **fields: Any) -> None:
        """Append one event; ``seq`` and ``event`` are added automatically."""
        record = {"seq": len(self.events), "event": event}
        record.update(fields)
        self.events.append(record)

    def __len__(self) -> int:
        return len(self.events)

    # -- serialisation ---------------------------------------------------------

    def lines(self) -> Iterator[str]:
        """The events as JSON strings (sorted keys, compact separators)."""
        for e in self.events:
            yield json.dumps(e, sort_keys=True, separators=(",", ":"))

    def to_jsonl(self, target: str | Path | TextIO) -> int:
        """Write all events to ``target`` (path or text stream); returns count."""
        if isinstance(target, (str, Path)):
            with open(target, "w", encoding="utf-8") as fh:
                return self.to_jsonl(fh)
        for line in self.lines():
            target.write(line + "\n")
        return len(self.events)

    def dumps(self) -> str:
        buf = io.StringIO()
        self.to_jsonl(buf)
        return buf.getvalue()

    # -- summarisation ---------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """Fold the event stream into one dict per run label.

        For each ``run``: the run_end totals plus per-kind event counts —
        the quick-look view the CLI prints after writing a trace.
        """
        runs: dict[str, dict[str, Any]] = {}
        for e in self.events:
            run = e.get("run", "default")
            entry = runs.setdefault(run, {"events": 0, "rounds": 0})
            entry["events"] += 1
            if e["event"] == "round":
                entry["rounds"] += 1
            elif e["event"] == "run_end":
                per_switch = ("per_switch_changes", "per_switch_units")
                for k, v in e.items():
                    if k not in ("seq", "event", "run") + per_switch:
                        entry[k] = v
                if "per_switch_changes" in e:
                    changes = e["per_switch_changes"].values()
                    entry["max_switch_changes"] = max(changes, default=0)
        return runs


def export_schedule(
    trace: TraceExporter, schedule: Any, *, run: str = "run"
) -> None:
    """Emit a finished :class:`~repro.core.schedule.Schedule` as trace events.

    The after-the-fact exporter for schedulers that were not instrumented
    live (the centralized baselines): round events carry only what the
    schedule recorded (no per-round power/traffic deltas — those need live
    hooks), while ``run_end`` carries the full Theorem-8 per-switch data.
    """
    trace.emit(
        "run_start",
        run=run,
        scheduler=schedule.scheduler_name,
        n_leaves=schedule.n_leaves,
        n_comms=len(schedule.cset),
        wave_depth=schedule.n_leaves.bit_length() - 1,
    )
    for r in schedule.rounds:
        trace.emit(
            "round",
            run=run,
            round=r.index,
            writers=len(r.writers),
            performed=len(r.performed),
            staged_switches=len(r.staged),
        )
    power = schedule.power
    trace.emit(
        "run_end",
        run=run,
        rounds=schedule.n_rounds,
        total_power_units=power.total_units,
        max_switch_units=power.max_switch_units,
        max_switch_changes=power.max_switch_changes,
        per_switch_changes={
            str(v): c for v, c in sorted(power.per_switch_changes.items())
        },
        per_switch_units={
            str(v): u for v, u in sorted(power.per_switch_units.items())
        },
        logical_messages=schedule.control_messages,
        logical_words=schedule.control_words,
        physical_messages=schedule.physical_messages,
    )


def read_jsonl(source: str | Path | TextIO) -> list[dict[str, Any]]:
    """Parse a JSON-lines trace back into event dicts (for tests/tools)."""
    if isinstance(source, (str, Path)):
        with open(source, encoding="utf-8") as fh:
            return read_jsonl(fh)
    return [json.loads(line) for line in source if line.strip()]
