"""Glue between the measured system and the registry/trace exporter.

:class:`Instrumentation` bundles a :class:`~repro.obs.registry.MetricsRegistry`
and an optional :class:`~repro.obs.trace.TraceExporter` under one run label
and owns *all* knowledge of metric names and trace schemas — the scheduler
and engine only call its methods (guarded by ``if obs is not None``), so
the hot path carries no observability logic of its own.

Metric name map (logical plane unless noted):

=============================  ===============================================
``csa.rounds``                 Phase-2 rounds completed
``csa.phase1.runs``            Phase-1 upward waves actually executed
``csa.phase1.cache_hits``      Phase-1 reuses (stream scheduling)
``engine.waves``               wave invocations (up + down)
``ctrl.messages`` / ``.words`` logical control traffic (paper's model)
``phys.messages`` / ``.words`` physical traffic (simulator plane)
``phys.pruned_links``          logical − physical per wave (simulator plane)
``phys.pruned_subtrees``       dead subtrees skipped by the fast path
``power.units{switch=v}``      per-switch power units
``power.units.total``          total power bill
``config.changes{switch=v}``   per-switch configuration changes (Theorem 8)
``round.writers`` (histogram)  writers per round
``round.power_units`` (hist.)  power delta per round
``stream.steps``               stream steps scheduled
``stream.step_power_units``    per-step power (histogram)
``recovery.probe_rounds``      fault-localisation probe circuits committed
``recovery.detections``        detection passes that localised ≥1 switch
``recovery.fault_switches``    switches localised as faulty (cumulative)
``recovery.attempts``          resilient schedule attempts (success + retry)
``recovery.backoff_rounds``    idle rounds paid as retry backoff
``recovery.delivered``         communications delivered by resilient runs
``recovery.undelivered``       communications given up as blocked/unverified
``recovery.quarantined``       quarantined switches at run end (gauge)
``recovery.delivery_rate``     per-run delivered fraction (histogram)
``service.submitted``          batch requests admitted past the queue bound
``service.rejected``           batch requests refused at admission
``service.done``               batch requests settled with a schedule
``service.expired``            batch requests that out-waited their deadline
``service.failed``             batch requests out of retry budget / permanent
``service.retries``            transient worker failures retried with backoff
``service.cache.hits``         schedule-cache lookups served from memory
``service.cache.misses``       schedule-cache lookups that missed
``service.cache.evictions``    LRU entries evicted at capacity
``service.cache.size``         live cache entries (gauge)
``stream.chaos_drills``        drill victims requeued for healthy reroute
``slo.good`` / ``slo.bad``     per-objective good/bad events
``slo.burn_rate``              burn per objective+window (gauge; -1 = inf)
``slo.alerts``                 rising-edge burn alerts (page/ticket)
``slo.budget_remaining``       lifetime error budget left (gauge)
``chaos.drills``               in-service chaos drills executed
``chaos.detected``             drill faults localised by the recovery pass
``chaos.missed``               drill faults that escaped localisation
``chaos.detection_ticks``      ticks to localise a drill fault (histogram)
``chaos.reroute_ticks``        ticks to reroute the victim DONE (histogram)
``csa.schedule`` (span)        wall-clock of one ``schedule()`` call
``csa.phase1`` (span)          wall-clock of Phase 1
``service.drain`` (span)       wall-clock of one service drain
=============================  ===============================================
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TraceExporter

__all__ = [
    "Instrumentation",
    "observe_schedule",
    "per_switch_counters_from",
    "per_switch_changes_from",
]


class Instrumentation:
    """One run's hooks: a registry (required) + a trace exporter (optional).

    ``run`` labels every metric and trace event, so several runs (e.g. the
    CSA and the Roy baseline) can share one registry/trace and stay
    distinguishable — that is how ``cst-padr trace`` builds its Theorem-8
    comparison file.
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        trace: TraceExporter | None = None,
        *,
        run: str = "run",
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace = trace
        self.run = run

    def labelled(self, run: str) -> "Instrumentation":
        """A view over the same sinks under a different run label."""
        return Instrumentation(self.metrics, self.trace, run=run)

    # -- scheduler lifecycle -------------------------------------------------

    def run_start(self, *, scheduler: str, n_leaves: int, n_comms: int) -> None:
        if self.trace is not None:
            self.trace.emit(
                "run_start",
                run=self.run,
                scheduler=scheduler,
                n_leaves=n_leaves,
                n_comms=n_comms,
                wave_depth=n_leaves.bit_length() - 1,
            )

    def phase1(
        self,
        *,
        live_switches: int,
        logical_messages: int,
        physical_messages: int,
        cached: bool,
    ) -> None:
        m = self.metrics
        r = self.run
        if cached:
            m.inc("csa.phase1.cache_hits", run=r)
        else:
            m.inc("csa.phase1.runs", run=r)
        if self.trace is not None:
            self.trace.emit(
                "phase1",
                run=r,
                live_switches=live_switches,
                logical_messages=logical_messages,
                physical_messages=physical_messages,
                cached=cached,
            )

    def round(
        self,
        *,
        index: int,
        writers: int,
        performed: int,
        staged_switches: int,
        config_changes: int,
        power_units: int,
        logical_messages: int,
        physical_messages: int,
        pruned_subtrees: int,
    ) -> None:
        m = self.metrics
        r = self.run
        m.inc("csa.rounds", run=r)
        m.observe("round.writers", writers, run=r)
        m.observe("round.power_units", power_units, run=r)
        m.inc("phys.pruned_subtrees", pruned_subtrees, run=r)
        if self.trace is not None:
            self.trace.emit(
                "round",
                run=r,
                round=index,
                writers=writers,
                performed=performed,
                staged_switches=staged_switches,
                config_changes=config_changes,
                power_units=power_units,
                logical_messages=logical_messages,
                physical_messages=physical_messages,
                pruned_links=logical_messages - physical_messages,
                pruned_subtrees=pruned_subtrees,
            )

    def run_end(self, schedule: Any) -> None:
        """Fold a finished schedule's report into the registry (+ trace)."""
        observe_schedule(self.metrics, schedule, run=self.run)
        if self.trace is not None:
            power = schedule.power
            self.trace.emit(
                "run_end",
                run=self.run,
                rounds=schedule.n_rounds,
                total_power_units=power.total_units,
                max_switch_units=power.max_switch_units,
                max_switch_changes=power.max_switch_changes,
                per_switch_changes={
                    str(v): c for v, c in sorted(power.per_switch_changes.items())
                },
                per_switch_units={
                    str(v): u for v, u in sorted(power.per_switch_units.items())
                },
                logical_messages=schedule.control_messages,
                logical_words=schedule.control_words,
                physical_messages=schedule.physical_messages,
            )

    # -- fault recovery ------------------------------------------------------

    def recovery_probe_round(self) -> None:
        """One committed probe circuit (detector)."""
        self.metrics.inc("recovery.probe_rounds", run=self.run)

    def recovery_detection(self, *, switches: int, probe_rounds: int) -> None:
        """One :meth:`FaultDetector.detect` pass finished."""
        m = self.metrics
        r = self.run
        if switches:
            m.inc("recovery.detections", run=r)
            m.inc("recovery.fault_switches", switches, run=r)
        if self.trace is not None:
            self.trace.emit(
                "recovery_detection",
                run=r,
                switches=switches,
                probe_rounds=probe_rounds,
            )

    def recovery_attempt(
        self, *, index: int, scheduled: int, verified_ok: bool
    ) -> None:
        """One iteration of the resilient schedule/verify loop."""
        self.metrics.inc("recovery.attempts", run=self.run)
        if self.trace is not None:
            self.trace.emit(
                "recovery_attempt",
                run=self.run,
                attempt=index,
                scheduled=scheduled,
                verified_ok=verified_ok,
            )

    def recovery_result(
        self,
        *,
        delivered: int,
        undelivered: int,
        quarantined: int,
        attempts: int,
        backoff_rounds: int,
    ) -> None:
        """Final tally of one resilient run."""
        m = self.metrics
        r = self.run
        m.inc("recovery.delivered", delivered, run=r)
        m.inc("recovery.undelivered", undelivered, run=r)
        m.inc("recovery.backoff_rounds", backoff_rounds, run=r)
        m.set("recovery.quarantined", quarantined, run=r)
        total = delivered + undelivered
        m.observe(
            "recovery.delivery_rate",
            delivered / total if total else 1.0,
            run=r,
        )
        if self.trace is not None:
            self.trace.emit(
                "recovery_result",
                run=r,
                delivered=delivered,
                undelivered=undelivered,
                quarantined=quarantined,
                attempts=attempts,
                backoff_rounds=backoff_rounds,
            )

    # -- engine / meter hook factories ---------------------------------------

    def wave_hook(self):
        """Per-wave sink for :class:`~repro.cst.engine.EngineTrace`."""
        m = self.metrics
        r = self.run
        waves = m.counter("engine.waves", run=r)
        msgs = m.counter("ctrl.messages", run=r)
        words = m.counter("ctrl.words", run=r)
        pmsgs = m.counter("phys.messages", run=r)
        pwords = m.counter("phys.words", run=r)
        pruned = m.counter("phys.pruned_links", run=r)

        def on_wave(
            messages: int, n_words: int, physical_messages: int, physical_words: int
        ) -> None:
            waves.inc()
            msgs.inc(messages)
            words.inc(n_words)
            pmsgs.inc(physical_messages)
            pwords.inc(physical_words)
            pruned.inc(messages - physical_messages)

        return on_wave

    def charge_hook(self):
        """Per-charge sink for :class:`~repro.cst.power.PowerMeter`."""
        m = self.metrics
        r = self.run

        def on_charge(switch_id: int, cost: int) -> None:
            m.inc("power.units", cost, run=r, switch=switch_id)

        return on_charge

    def change_hook(self):
        """Per-configuration-change sink for the power meter."""
        m = self.metrics
        r = self.run

        def on_change(switch_id: int) -> None:
            m.inc("config.changes", run=r, switch=switch_id)

        return on_change

    def attach(self, network: Any) -> None:
        """Wire the live meter hooks onto a network before a run."""
        network.meter.on_charge = self.charge_hook()
        network.meter.on_change = self.change_hook()


def observe_schedule(
    metrics: MetricsRegistry, schedule: Any, *, run: str = "run"
) -> None:
    """Ingest a finished schedule's totals into a registry.

    This is the after-the-fact path (baselines, replayed schedules):
    per-switch power/change counters, traffic totals and round counts land
    under the same names the live hooks use, so analysis code consumes one
    format regardless of how the run was measured.  Live-instrumented runs
    get this automatically from :meth:`Instrumentation.run_end` — their
    per-switch counters are *set* here from the authoritative power report
    rather than incremented twice.
    """
    power = schedule.power
    metrics.set("power.units.total", power.total_units, run=run)
    metrics.set("rounds", schedule.n_rounds, run=run)
    metrics.set("ctrl.messages.total", schedule.control_messages, run=run)
    metrics.set("ctrl.words.total", schedule.control_words, run=run)
    metrics.set("phys.messages.total", schedule.physical_messages, run=run)
    for v, units in power.per_switch_units.items():
        c = metrics.counter("power.units", run=run, switch=v)
        c.value = units
    for v, changes in power.per_switch_changes.items():
        c = metrics.counter("config.changes", run=run, switch=v)
        c.value = changes


def per_switch_counters_from(
    metrics_snapshot: Mapping[str, Any],
    name: str,
    *,
    run: str | None = None,
) -> dict[int, int]:
    """Extract a ``name{switch=v}`` counter family from a snapshot.

    Accepts either a full ``snapshot()`` dict or its ``counters`` section.
    With ``run`` given, only that run's counters are considered.
    """
    from repro.obs.registry import parse_key

    counters = metrics_snapshot.get("counters", metrics_snapshot)
    out: dict[int, int] = {}
    for key, value in counters.items():
        base, labels = parse_key(key)
        if base != name or "switch" not in labels:
            continue
        if run is not None and labels.get("run") != run:
            continue
        out[int(labels["switch"])] = value
    return out


def per_switch_changes_from(
    metrics_snapshot: Mapping[str, Any], *, run: str | None = None
) -> dict[int, int]:
    """``config.changes{switch=v}`` counters from a snapshot (Theorem 8)."""
    return per_switch_counters_from(metrics_snapshot, "config.changes", run=run)
