"""Core value types shared across the library.

The 3-sided switch of the CST (paper Figure 3a) has three data inputs
``{l_i, r_i, p_i}`` and three data outputs ``{l_o, r_o, p_o}``; an input may
be connected to an output of either *other* side.  These ports, the legal
connections between them, and the directed tree edges they drive are the
vocabulary of the whole library, so they live here in one place.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Final

from repro.exceptions import IllegalConnectionError

__all__ = [
    "Side",
    "InPort",
    "OutPort",
    "Connection",
    "Direction",
    "Role",
    "LEGAL_CONNECTIONS",
    "CONN_L_TO_R",
    "CONN_R_TO_L",
    "CONN_L_UP",
    "CONN_R_UP",
    "CONN_DOWN_L",
    "CONN_DOWN_R",
]


class Side(enum.Enum):
    """One of the three sides of a CST switch."""

    LEFT = "left"
    RIGHT = "right"
    PARENT = "parent"


class InPort(enum.Enum):
    """Data inputs of a 3-sided switch (``l_i``, ``r_i``, ``p_i``)."""

    L = "l_i"
    R = "r_i"
    P = "p_i"

    @property
    def side(self) -> Side:
        return _IN_SIDE[self]


class OutPort(enum.Enum):
    """Data outputs of a 3-sided switch (``l_o``, ``r_o``, ``p_o``)."""

    L = "l_o"
    R = "r_o"
    P = "p_o"

    @property
    def side(self) -> Side:
        return _OUT_SIDE[self]


_IN_SIDE: Final = {InPort.L: Side.LEFT, InPort.R: Side.RIGHT, InPort.P: Side.PARENT}
_OUT_SIDE: Final = {OutPort.L: Side.LEFT, OutPort.R: Side.RIGHT, OutPort.P: Side.PARENT}


@dataclass(frozen=True, slots=True)
class Connection:
    """A single crossbar connection ``in_port -> out_port`` inside a switch.

    Only connections between *different* sides are legal; constructing an
    illegal one raises :class:`~repro.exceptions.IllegalConnectionError`.
    This restriction is what bounds path length to ``O(log N)`` switches
    (paper §2).
    """

    in_port: InPort
    out_port: OutPort

    def __post_init__(self) -> None:
        if self.in_port.side is self.out_port.side:
            raise IllegalConnectionError(
                f"cannot connect {self.in_port.value} to {self.out_port.value}: same side"
            )

    def __str__(self) -> str:  # e.g. "l_i->r_o"
        return f"{self.in_port.value}->{self.out_port.value}"


#: The six legal crossbar connections of a 3-sided switch.
CONN_L_TO_R: Final = Connection(InPort.L, OutPort.R)
CONN_R_TO_L: Final = Connection(InPort.R, OutPort.L)
CONN_L_UP: Final = Connection(InPort.L, OutPort.P)
CONN_R_UP: Final = Connection(InPort.R, OutPort.P)
CONN_DOWN_L: Final = Connection(InPort.P, OutPort.L)
CONN_DOWN_R: Final = Connection(InPort.P, OutPort.R)

LEGAL_CONNECTIONS: Final = (
    CONN_L_TO_R,
    CONN_R_TO_L,
    CONN_L_UP,
    CONN_R_UP,
    CONN_DOWN_L,
    CONN_DOWN_R,
)


class Direction(enum.Enum):
    """Direction of traffic on a full-duplex tree edge.

    An edge is identified by its *lower* endpoint (the child node);
    ``UP`` is child→parent, ``DOWN`` is parent→child.  Two communications
    are compatible iff they never use the same edge in the same direction
    (paper §1, citing [3]).
    """

    UP = "up"
    DOWN = "down"

    @property
    def opposite(self) -> "Direction":
        return Direction.DOWN if self is Direction.UP else Direction.UP


class Role(enum.Enum):
    """Role of a PE in a communication set (paper Step 1.1).

    Encoded on the wire as ``[1,0]`` (source), ``[0,1]`` (destination) or
    ``[0,0]`` (neither).
    """

    SOURCE = "source"
    DESTINATION = "destination"
    NEITHER = "neither"

    @property
    def wire_encoding(self) -> tuple[int, int]:
        if self is Role.SOURCE:
            return (1, 0)
        if self is Role.DESTINATION:
            return (0, 1)
        return (0, 0)

    @classmethod
    def from_wire(cls, word: tuple[int, int]) -> "Role":
        mapping = {(1, 0): cls.SOURCE, (0, 1): cls.DESTINATION, (0, 0): cls.NEITHER}
        try:
            return mapping[word]
        except KeyError:
            raise ValueError(f"invalid PE role encoding: {word!r}") from None
