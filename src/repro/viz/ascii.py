"""ASCII renderings — the library's stand-in for the paper's hand-drawn
figures (Figures 1–4), used by the examples and the FIG benchmarks.

Everything returns plain strings so the renderers stay testable and usable
from scripts, notebooks and CI logs alike.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.comms.communication import CommunicationSet
from repro.comms.wellnested import parenthesis_profile
from repro.core.schedule import Schedule
from repro.cst.topology import CSTTopology
from repro.obs.instrument import per_switch_counters_from

__all__ = [
    "render_leaf_roles",
    "render_tree",
    "render_round_configuration",
    "render_schedule_timeline",
    "render_change_profile",
    "render_change_profile_from_snapshot",
]


def render_leaf_roles(cset: CommunicationSet, n_leaves: int) -> str:
    """Leaves as a parenthesis word plus index ruler (Figure 2 style).

    ``(`` source, ``)`` destination, ``.`` idle, with arcs listed below.
    """
    profile = parenthesis_profile(cset, n_leaves)
    ruler = "".join(str(i % 10) for i in range(n_leaves))
    arcs = "  ".join(f"{c.src}->{c.dst}" for c in cset)
    return f"PE:    {ruler}\nrole:  {profile}\ncomms: {arcs}"


def render_tree(
    topology: CSTTopology,
    annotate: Callable[[int], str] | None = None,
) -> str:
    """The CST level by level; ``annotate(heap_id)`` labels each switch.

    Leaves are shown as their PE indices on the last line.
    """
    annotate = annotate or (lambda v: str(v))
    n = topology.n_leaves
    cell = max(4, max(len(annotate(v)) for v in topology.switches()) + 1)
    lines: list[str] = []
    for lvl in range(topology.height):
        nodes = topology.switches_at_level(lvl)
        span = (n // len(nodes)) * cell
        row = "".join(annotate(v).center(span) for v in nodes)
        lines.append(row.rstrip())
    leaf_row = "".join(str(pe).center(cell) for pe in range(n))
    lines.append(leaf_row.rstrip())
    return "\n".join(lines)


def render_round_configuration(schedule: Schedule, round_index: int) -> str:
    """The crossbar connections staged in one round, tree-shaped."""
    if not 0 <= round_index < schedule.n_rounds:
        raise IndexError(f"round {round_index} outside schedule of {schedule.n_rounds}")
    topo = CSTTopology.of(schedule.n_leaves)
    staged = schedule.rounds[round_index].staged

    def label(v: int) -> str:
        conns = staged.get(v)
        if not conns:
            return "."
        return ",".join(_short(c) for c in conns)

    header = (
        f"round {round_index}: writers={list(schedule.rounds[round_index].writers)} "
        f"performed={[str(c) for c in schedule.rounds[round_index].performed]}"
    )
    return header + "\n" + render_tree(topo, label)


def _short(conn) -> str:
    # l_i->r_o  =>  "l>r"
    return f"{conn.in_port.value[0]}>{conn.out_port.value[0]}"


def render_schedule_timeline(schedule: Schedule) -> str:
    """Gantt-style table: one row per communication, columns are rounds."""
    round_of = schedule.round_of()
    comms = sorted(round_of, key=lambda c: (round_of[c], c.src))
    n_rounds = schedule.n_rounds
    label_w = max((len(str(c)) for c in comms), default=4)
    lines = [
        f"{'comm'.ljust(label_w)} | " + " ".join(f"r{r}" for r in range(n_rounds))
    ]
    for c in comms:
        cells = []
        for r in range(n_rounds):
            mark = "##" if round_of[c] == r else "--"
            cells.append(mark.ljust(len(f"r{r}")))
        lines.append(f"{str(c).ljust(label_w)} | " + " ".join(cells))
    return "\n".join(lines)


def render_change_profile(schedule: Schedule) -> str:
    """Per-switch configuration-change counts, tree-shaped (Theorem 8 view)."""
    topo = CSTTopology.of(schedule.n_leaves)
    changes = schedule.power.per_switch_changes
    return render_tree(topo, lambda v: str(changes.get(v, 0)))


def render_change_profile_from_snapshot(
    snapshot: Mapping[str, Any],
    n_leaves: int,
    *,
    run: str | None = None,
    counter: str = "config.changes",
) -> str:
    """Theorem-8 change profile from a metrics-registry snapshot.

    Accepts any snapshot carrying per-switch counters — from a
    live-instrumented run, :func:`repro.obs.observe_schedule` output, or a
    row loaded back from ``results/BENCH_scaling.json``.  ``run`` selects
    one run label when the snapshot holds several (e.g. the CSA and the
    Roy baseline side by side); ``counter`` picks the counter family:
    ``config.changes`` (differing commits) or ``power.units``
    (connection establishments — under the ``rebuild`` policy this is the
    per-round reconfiguration count, the Θ(w) side of Theorem 8).
    Rendering the CSA's changes tree next to the Roy baseline's units tree
    is the visual O(1)-vs-O(w) comparison of
    ``examples/power_comparison.py``.
    """
    topo = CSTTopology.of(n_leaves)
    changes = per_switch_counters_from(snapshot, counter, run=run)
    return render_tree(topo, lambda v: str(changes.get(v, 0)))
