"""ASCII visualization of trees, communication sets and schedules."""

from repro.viz.ascii import (
    render_leaf_roles,
    render_tree,
    render_round_configuration,
    render_schedule_timeline,
    render_change_profile,
)

__all__ = [
    "render_leaf_roles",
    "render_tree",
    "render_round_configuration",
    "render_schedule_timeline",
    "render_change_profile",
]
