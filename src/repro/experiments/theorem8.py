"""T8 sweeps: per-switch power, CSA vs baselines (paper Theorem 8)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines import RandomOrderScheduler, RoyIDScheduler
from repro.comms.generators import crossing_chain, random_well_nested
from repro.comms.width import width
from repro.core.csa import PADRScheduler
from repro.cst.power import PowerPolicy
from repro.cst.topology import CSTTopology

__all__ = [
    "power_sweep_crossing",
    "power_sweep_random",
    "total_energy_comparison",
]


def power_sweep_crossing(
    widths: Sequence[int] = (4, 8, 16, 32, 64, 128),
    random_seed: int = 1,
) -> list[dict]:
    """The headline table: per-switch changes/units vs width."""
    rows: list[dict] = []
    for w in widths:
        cset = crossing_chain(w)
        csa = PADRScheduler().schedule(cset)
        roy = RoyIDScheduler().schedule(cset, policy=PowerPolicy.rebuild())
        rand = RandomOrderScheduler(seed=random_seed).schedule(cset)
        rows.append(
            {
                "width": w,
                "csa_max_changes": csa.power.max_switch_changes,
                "csa_max_units": csa.power.max_switch_units,
                "roy_rebuild_max_units": roy.power.max_switch_units,
                "random_lazy_max_changes": rand.power.max_switch_changes,
            }
        )
    return rows


def power_sweep_random(
    pair_counts: Sequence[int] = (16, 64, 128),
    n_leaves: int = 256,
    seed: int = 11,
) -> list[dict]:
    """The same comparison on uniformly random well-nested sets."""
    rng = np.random.default_rng(seed)
    topo = CSTTopology.of(n_leaves)
    rows: list[dict] = []
    for n_pairs in pair_counts:
        cset = random_well_nested(n_pairs, n_leaves, rng)
        w = width(cset, topo)
        csa = PADRScheduler().schedule(cset, n_leaves=n_leaves)
        roy = RoyIDScheduler().schedule(
            cset, n_leaves=n_leaves, policy=PowerPolicy.rebuild()
        )
        rows.append(
            {
                "pairs": n_pairs,
                "width": w,
                "csa_max_changes": csa.power.max_switch_changes,
                "roy_rebuild_max_units": roy.power.max_switch_units,
            }
        )
    return rows


def total_energy_comparison(
    widths: Sequence[int] = (8, 32, 128),
) -> list[dict]:
    """Whole-tree energy: CSA vs per-round reconfiguration."""
    rows: list[dict] = []
    for w in widths:
        cset = crossing_chain(w)
        csa = PADRScheduler().schedule(cset)
        roy = RoyIDScheduler().schedule(cset, policy=PowerPolicy.rebuild())
        rows.append(
            {
                "width": w,
                "csa_total": csa.power.total_units,
                "roy_rebuild_total": roy.power.total_units,
                "ratio": round(roy.power.total_units / csa.power.total_units, 2),
            }
        )
    return rows
