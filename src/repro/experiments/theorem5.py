"""T5 sweeps: rounds vs width (paper Theorem 5)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.optimality import check_round_optimality
from repro.baselines import SequentialScheduler
from repro.comms.generators import crossing_chain, random_well_nested
from repro.comms.width import width
from repro.core.csa import PADRScheduler
from repro.cst.topology import CSTTopology

__all__ = ["rounds_vs_width_crossing", "rounds_vs_width_random"]


def rounds_vs_width_crossing(
    widths: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    *,
    require_optimal: bool = True,
) -> list[dict]:
    """CSA vs sequential round counts on exact-width crossing chains."""
    rows: list[dict] = []
    for w in widths:
        cset = crossing_chain(w)
        s = PADRScheduler().schedule(cset)
        check_round_optimality(s, cset, require_optimal=require_optimal)
        seq = SequentialScheduler().schedule(cset)
        rows.append(
            {
                "width": w,
                "csa_rounds": s.n_rounds,
                "csa_rounds/width": s.n_rounds / w,
                "sequential_rounds": seq.n_rounds,
            }
        )
    return rows


def rounds_vs_width_random(
    pair_counts: Sequence[int] = (4, 8, 16, 32, 64),
    n_leaves: int = 128,
    seed: int = 7,
    *,
    require_optimal: bool = True,
) -> list[dict]:
    """CSA round counts on uniformly random well-nested sets."""
    rng = np.random.default_rng(seed)
    topo = CSTTopology.of(n_leaves)
    rows: list[dict] = []
    for n_pairs in pair_counts:
        cset = random_well_nested(n_pairs, n_leaves, rng)
        w = width(cset, topo)
        s = PADRScheduler().schedule(cset, n_leaves=n_leaves)
        check_round_optimality(s, cset, require_optimal=require_optimal)
        rows.append(
            {
                "pairs": n_pairs,
                "width": w,
                "csa_rounds": s.n_rounds,
                "ratio": round(s.n_rounds / w, 3) if w else 0.0,
            }
        )
    return rows
