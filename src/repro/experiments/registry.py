"""Registry of named experiments, keyed by DESIGN.md experiment ids."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments import ablation, efficiency, streams, theorem5, theorem8

__all__ = ["Experiment", "REGISTRY", "run_experiment"]


@dataclass(frozen=True, slots=True)
class Experiment:
    """A named, parameter-free experiment run."""

    id: str
    title: str
    fn: Callable[[], list[dict]]

    def run(self) -> list[dict]:
        return self.fn()


def _experiments() -> dict[str, Experiment]:
    specs = [
        ("T5-crossing", "rounds vs width, crossing chains",
         theorem5.rounds_vs_width_crossing),
        ("T5-random", "rounds vs width, random sets",
         theorem5.rounds_vs_width_random),
        ("T8-crossing", "per-switch power vs width, crossing chains",
         theorem8.power_sweep_crossing),
        ("T8-random", "per-switch power, random sets",
         theorem8.power_sweep_random),
        ("T8-total", "whole-tree energy, CSA vs rebuild",
         theorem8.total_energy_comparison),
        ("EFF-constants", "control-plane constants vs tree size",
         efficiency.control_constants),
        ("EFF-traffic", "per-wave traffic vs set width",
         efficiency.traffic_vs_width),
        ("ABL-teardown", "CSA under the three power disciplines",
         ablation.teardown_matrix),
        ("STREAM-repeat", "repeated pattern, persistent vs fresh",
         streams.repeated_pattern_stream),
        ("STREAM-evolve", "evolving random stream",
         streams.evolving_stream),
    ]
    return {eid: Experiment(eid, title, fn) for eid, title, fn in specs}


REGISTRY: dict[str, Experiment] = _experiments()


def run_experiment(experiment_id: str) -> list[dict]:
    """Run a registered experiment by id; KeyError lists valid ids."""
    try:
        exp = REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; valid ids: "
            f"{', '.join(sorted(REGISTRY))}"
        ) from None
    return exp.run()
