"""EFF sweeps: control-plane constants (Theorem 5, efficiency half)."""

from __future__ import annotations

from typing import Sequence

from repro.comms.generators import crossing_chain, disjoint_pairs
from repro.core.control import DownWord, StoredState, UpWord
from repro.core.csa import PADRScheduler

__all__ = ["control_constants", "traffic_vs_width"]


def control_constants(
    tree_sizes: Sequence[int] = (8, 32, 128, 512, 2048),
) -> list[dict]:
    """Per-switch storage and per-link traffic across tree sizes."""
    rows: list[dict] = []
    for n in tree_sizes:
        cset = disjoint_pairs(2)
        s = PADRScheduler().schedule(cset, n_leaves=n)
        links = 2 * n - 2
        waves = 1 + s.n_rounds
        rows.append(
            {
                "n_leaves": n,
                "stored_words_per_switch": StoredState.stored_words(),
                "up_words_per_link": UpWord.wire_words(),
                "down_words_per_link": DownWord.wire_words(),
                "messages_total": s.control_messages,
                "messages/(links*waves)": s.control_messages / (links * waves),
            }
        )
    return rows


def traffic_vs_width(
    widths: Sequence[int] = (1, 8, 64),
    n_leaves: int = 256,
) -> list[dict]:
    """Per-wave traffic must not depend on the communication set."""
    rows: list[dict] = []
    for w in widths:
        cset = crossing_chain(w, n_leaves)
        s = PADRScheduler().schedule(cset, n_leaves=n_leaves)
        rows.append(
            {
                "width": w,
                "rounds": s.n_rounds,
                "messages_per_wave": s.control_messages / (1 + s.n_rounds),
            }
        )
    return rows
