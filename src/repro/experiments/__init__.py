"""Executable experiments: the paper's claims as parameterised sweeps.

Each function returns a list of row-dicts (ready for
:func:`repro.analysis.comparison.format_table`); the benchmark harness
asserts shapes on these rows and pytest-benchmark times them, the CLI
prints them, and EXPERIMENTS.md records them — one implementation, three
consumers.

The registry maps experiment ids (DESIGN.md §4) to their functions:

>>> from repro.experiments import REGISTRY
>>> rows = REGISTRY["T5-crossing"].run()
"""

from repro.experiments.registry import REGISTRY, Experiment, run_experiment
from repro.experiments.theorem5 import rounds_vs_width_crossing, rounds_vs_width_random
from repro.experiments.theorem8 import (
    power_sweep_crossing,
    power_sweep_random,
    total_energy_comparison,
)
from repro.experiments.efficiency import control_constants, traffic_vs_width
from repro.experiments.ablation import teardown_matrix
from repro.experiments.streams import repeated_pattern_stream, evolving_stream

__all__ = [
    "REGISTRY",
    "Experiment",
    "run_experiment",
    "rounds_vs_width_crossing",
    "rounds_vs_width_random",
    "power_sweep_crossing",
    "power_sweep_random",
    "total_energy_comparison",
    "control_constants",
    "traffic_vs_width",
    "teardown_matrix",
    "repeated_pattern_stream",
    "evolving_stream",
]
