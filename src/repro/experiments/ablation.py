"""ABL sweep: the CSA under the three power-accounting disciplines."""

from __future__ import annotations

from typing import Sequence

from repro.comms.generators import crossing_chain
from repro.core.csa import PADRScheduler
from repro.cst.power import PowerPolicy

__all__ = ["teardown_matrix"]

_POLICIES = {
    "paper": PowerPolicy.paper,
    "eager": PowerPolicy.eager,
    "rebuild": PowerPolicy.rebuild,
}


def teardown_matrix(widths: Sequence[int] = (4, 16, 64)) -> list[dict]:
    """Max-units and total energy per policy, per width."""
    rows: list[dict] = []
    for w in widths:
        cset = crossing_chain(w)
        row: dict = {"width": w}
        for name, factory in _POLICIES.items():
            s = PADRScheduler().schedule(cset, policy=factory())
            row[f"{name}_max_units"] = s.power.max_switch_units
            row[f"{name}_total"] = s.power.total_units
        rows.append(row)
    return rows
