"""STREAM sweeps: configuration persistence across schedule sequences."""

from __future__ import annotations

import numpy as np

from repro.comms.generators import random_well_nested, segmentable_bus
from repro.extensions.stream import StreamScheduler

__all__ = ["repeated_pattern_stream", "evolving_stream"]


def repeated_pattern_stream(
    repetitions: int = 6,
    bounds: tuple[int, ...] = (0, 8, 16, 24, 32),
) -> list[dict]:
    """A fixed segmentation re-issued; persistent vs fresh networks."""
    cset = segmentable_bus(list(bounds))
    n = max(bounds)
    program = [cset] * repetitions
    persistent = StreamScheduler().run(program, n)
    fresh = StreamScheduler(fresh_network_per_step=True).run(program, n)
    return [
        {
            "discipline": "persistent",
            "profile": persistent.power_profile(),
            "total": persistent.total_power,
        },
        {
            "discipline": "fresh",
            "profile": fresh.power_profile(),
            "total": fresh.total_power,
        },
    ]


def evolving_stream(
    steps: int = 8,
    n_pairs: int = 10,
    n_leaves: int = 64,
    seed: int = 3,
) -> list[dict]:
    """Independent random sets drifting over time — reuse's worst case."""
    rng = np.random.default_rng(seed)
    program = [random_well_nested(n_pairs, n_leaves, rng) for _ in range(steps)]
    persistent = StreamScheduler().run(program, n_leaves)
    fresh = StreamScheduler(fresh_network_per_step=True).run(program, n_leaves)
    saving = (
        1 - persistent.total_power / fresh.total_power if fresh.total_power else 0.0
    )
    return [
        {
            "persistent_total": persistent.total_power,
            "fresh_total": fresh.total_power,
            "saving": f"{100 * saving:.0f}%",
        }
    ]
