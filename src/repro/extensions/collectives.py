"""Collective operations as CST communication *programs*.

The paper's §6 asks about "other communication patterns on the CST".  The
CST's primitive is the one-to-one circuit, so collectives become
*programs*: sequences of well-nested (or layered general) communication
sets executed step by step.

Provided collectives, all payload-verified — the data really rides the
simulated crossbars, so a wrong switch setting anywhere corrupts the
result:

``gather``     all N values collected, in index order, at PE N−1 in
               log2 N width-1 steps (binomial gather).
``scatter``    the reverse: a list at PE 0 distributed across all PEs in
               log2 N width-1 steps (binomial scatter).
``shift``      every value moves ``d`` leaves rightward; the set
               ``{(i, i+d)}`` is full of crossings, so it runs as
               well-nested layers.
``reverse``    the value at PE i ends at PE N−1−i, as a two-phase program
               (right-oriented half via the CSA, left-oriented half via
               the native left CSA).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.comms.communication import Communication, CommunicationSet
from repro.core.base import Scheduler
from repro.core.csa import PADRScheduler
from repro.core.left import LeftPADRScheduler
from repro.core.schedule import Schedule
from repro.cst.network import CSTNetwork
from repro.exceptions import ReproError
from repro.extensions.general import wellnested_layers
from repro.util.bitmath import ilog2, is_power_of_two

__all__ = ["CollectiveError", "CollectiveResult", "gather", "scatter", "shift", "reverse"]


class CollectiveError(ReproError):
    """Invalid input to a collective program."""


@dataclass(frozen=True, slots=True)
class CollectiveResult:
    """Outcome of one collective program.

    ``values`` maps PE index → final datum (only PEs holding results
    appear); the cost figures aggregate every step of the program.
    """

    values: Mapping[int, Any]
    steps: int
    total_rounds: int
    total_power_units: int


def _route_step(
    cset: CommunicationSet,
    n: int,
    payloads: Mapping[int, Any],
    scheduler: Scheduler,
) -> tuple[dict[int, Any], Schedule]:
    """Route one set carrying real payloads; return deliveries + schedule."""
    network = CSTNetwork.of_size(n)
    network.assign_roles(cset.roles())
    for c in cset:
        network.pes[c.src].payload = payloads[c.src]
    schedule = scheduler.schedule(cset, network=network)
    received: dict[int, Any] = {}
    for c in cset:
        inbox = network.pes[c.dst].received
        if len(inbox) != 1:
            raise CollectiveError(
                f"PE {c.dst} received {len(inbox)} payloads, expected 1"
            )
        received[c.dst] = inbox[0]
    return received, schedule


def _check_pow2(n: int, what: str) -> None:
    if n < 2 or not is_power_of_two(n):
        raise CollectiveError(f"{what} needs a power-of-two count >= 2, got {n}")


def gather(values: Sequence[Any]) -> CollectiveResult:
    """Binomial gather: all values end, in index order, at PE N−1."""
    n = len(values)
    _check_pow2(n, "gather")
    acc: dict[int, list[Any]] = {i: [v] for i, v in enumerate(values)}
    steps = ilog2(n)
    total_rounds = total_power = 0
    for k in range(steps):
        block, half = 1 << (k + 1), 1 << k
        cset = CommunicationSet(
            Communication(base + half - 1, base + block - 1)
            for base in range(0, n, block)
        )
        received, schedule = _route_step(
            cset, n, {c.src: acc[c.src] for c in cset}, PADRScheduler()
        )
        total_rounds += schedule.n_rounds
        total_power += schedule.power.total_units
        for c in cset:
            acc[c.dst] = received[c.dst] + acc[c.dst]
    return CollectiveResult(
        values={n - 1: acc[n - 1]},
        steps=steps,
        total_rounds=total_rounds,
        total_power_units=total_power,
    )


def scatter(items: Sequence[Any]) -> CollectiveResult:
    """Binomial scatter: item ``i`` of the list at PE 0 ends at PE ``i``."""
    n = len(items)
    _check_pow2(n, "scatter")
    holding: dict[int, list[Any]] = {0: list(items)}
    steps = ilog2(n)
    total_rounds = total_power = 0
    for k in reversed(range(steps)):
        half = 1 << k
        sends: dict[int, list[Any]] = {}
        comms = []
        for holder in list(holding):
            keep, give = holding[holder][:half], holding[holder][half:]
            holding[holder] = keep
            sends[holder] = give
            comms.append(Communication(holder, holder + half))
        cset = CommunicationSet(comms)
        received, schedule = _route_step(cset, n, sends, PADRScheduler())
        total_rounds += schedule.n_rounds
        total_power += schedule.power.total_units
        for c in cset:
            holding[c.dst] = received[c.dst]
    return CollectiveResult(
        values={pe: lst[0] for pe, lst in holding.items()},
        steps=steps,
        total_rounds=total_rounds,
        total_power_units=total_power,
    )


def shift(values: Sequence[Any], distance: int) -> CollectiveResult:
    """Non-cyclic right shift: the value at PE ``i`` ends at PE ``i+d``.

    A single set cannot express a shift (every interior PE is both a
    sender and a receiver), so the program has two *phases* split by the
    parity of ``i // d`` — within a phase no PE plays two roles; phases
    may still contain crossing pairs and are layered by
    :func:`~repro.extensions.general.wellnested_layers`.
    """
    n = len(values)
    _check_pow2(n, "shift")
    if not 1 <= distance < n:
        raise CollectiveError(f"distance must be in [1, {n}), got {distance}")

    out: dict[int, Any] = {}
    total_rounds = total_power = 0
    steps = 0
    for parity in (0, 1):
        comms = [
            Communication(i, i + distance)
            for i in range(n - distance)
            if (i // distance) % 2 == parity
        ]
        if not comms:
            continue
        for layer in wellnested_layers(CommunicationSet(comms)):
            received, schedule = _route_step(
                layer, n, {c.src: values[c.src] for c in layer}, PADRScheduler()
            )
            steps += 1
            total_rounds += schedule.n_rounds
            total_power += schedule.power.total_units
            out.update(received)
    return CollectiveResult(
        values=out,
        steps=steps,
        total_rounds=total_rounds,
        total_power_units=total_power,
    )


def reverse(values: Sequence[Any]) -> CollectiveResult:
    """Reverse: the value at PE ``i`` ends at PE ``N−1−i`` (two phases)."""
    n = len(values)
    _check_pow2(n, "reverse")
    half = n // 2
    out: dict[int, Any] = {}
    total_rounds = total_power = 0

    phases: list[tuple[CommunicationSet, Scheduler]] = [
        (
            CommunicationSet(Communication(i, n - 1 - i) for i in range(half)),
            PADRScheduler(),
        ),
        (
            CommunicationSet(
                Communication(i, n - 1 - i) for i in range(half, n)
            ),
            LeftPADRScheduler(),
        ),
    ]
    for cset, scheduler in phases:
        received, schedule = _route_step(
            cset, n, {c.src: values[c.src] for c in cset}, scheduler
        )
        total_rounds += schedule.n_rounds
        total_power += schedule.power.total_units
        out.update(received)
    return CollectiveResult(
        values=out,
        steps=2,
        total_rounds=total_rounds,
        total_power_units=total_power,
    )
