"""The Self-Reconfigurable Gate Array substrate (Sidhu et al. 2000).

The SRGA — the architecture the CST comes from (paper §1) — is an
``R × C`` grid of PEs in which every row and every column is connected by
its own CST.  This module provides a faithful, minimal SRGA: a grid that
owns one CST network per row and per column and schedules independent
well-nested sets on each of them with the core CSA, in parallel (rows and
columns are physically separate interconnects, so their schedules overlap
in time; the SRGA makespan is the maximum round count over the driven
trees).

This is the substrate used by ``examples/srga_row_routing.py`` and the EXT
benchmark: it demonstrates the paper's algorithm operating as the routing
layer of the architecture it was designed for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.comms.communication import CommunicationSet
from repro.core.csa import PADRScheduler
from repro.core.schedule import Schedule
from repro.cst.power import PowerPolicy
from repro.exceptions import TopologyError
from repro.util.bitmath import is_power_of_two

__all__ = ["SRGA", "SRGAScheduleResult"]


@dataclass(frozen=True, slots=True)
class SRGAScheduleResult:
    """Schedules of one SRGA routing step.

    ``row_schedules`` / ``col_schedules`` are keyed by row / column index;
    only driven rows/columns appear.  ``makespan`` is the number of rounds
    the whole step takes (trees run concurrently).
    """

    row_schedules: Mapping[int, Schedule]
    col_schedules: Mapping[int, Schedule]

    @property
    def makespan(self) -> int:
        all_scheds = list(self.row_schedules.values()) + list(
            self.col_schedules.values()
        )
        return max((s.n_rounds for s in all_scheds), default=0)

    @property
    def total_power(self) -> int:
        all_scheds = list(self.row_schedules.values()) + list(
            self.col_schedules.values()
        )
        return sum(s.power.total_units for s in all_scheds)

    @property
    def max_switch_changes(self) -> int:
        all_scheds = list(self.row_schedules.values()) + list(
            self.col_schedules.values()
        )
        return max((s.power.max_switch_changes for s in all_scheds), default=0)


class SRGA:
    """An ``rows × cols`` SRGA whose rows and columns are CSTs.

    Both dimensions must be powers of two (each is the leaf count of a
    CST).  The grid itself is stateless between routing steps; every call
    to :meth:`route` builds fresh networks, mirroring the paper's model
    where Phase 1 redistributes control data per communication set.
    """

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 2 or not is_power_of_two(rows):
            raise TopologyError(f"rows must be a power of two >= 2, got {rows}")
        if cols < 2 or not is_power_of_two(cols):
            raise TopologyError(f"cols must be a power of two >= 2, got {cols}")
        self.rows = rows
        self.cols = cols

    def __repr__(self) -> str:
        return f"SRGA({self.rows}x{self.cols})"

    def pe(self, row: int, col: int) -> tuple[int, int]:
        """Validated grid coordinate of a PE."""
        if not 0 <= row < self.rows:
            raise TopologyError(f"row {row} outside [0, {self.rows})")
        if not 0 <= col < self.cols:
            raise TopologyError(f"col {col} outside [0, {self.cols})")
        return (row, col)

    def route(
        self,
        row_sets: Mapping[int, CommunicationSet] | None = None,
        col_sets: Mapping[int, CommunicationSet] | None = None,
        *,
        policy: PowerPolicy | None = None,
    ) -> SRGAScheduleResult:
        """Run the CSA on each driven row and column tree.

        ``row_sets[r]`` is a right-oriented well-nested set over the PEs of
        row ``r`` (PE index = column); ``col_sets[c]`` likewise over column
        ``c`` (PE index = row).
        """
        row_sets = dict(row_sets or {})
        col_sets = dict(col_sets or {})
        row_out: dict[int, Schedule] = {}
        col_out: dict[int, Schedule] = {}
        for r, cset in row_sets.items():
            self._check_index(r, self.rows, "row")
            self._check_fits(cset, self.cols, f"row {r}")
            row_out[r] = PADRScheduler().schedule(cset, n_leaves=self.cols, policy=policy)
        for c, cset in col_sets.items():
            self._check_index(c, self.cols, "column")
            self._check_fits(cset, self.rows, f"column {c}")
            col_out[c] = PADRScheduler().schedule(cset, n_leaves=self.rows, policy=policy)
        return SRGAScheduleResult(row_schedules=row_out, col_schedules=col_out)

    @staticmethod
    def _check_index(i: int, limit: int, what: str) -> None:
        if not 0 <= i < limit:
            raise TopologyError(f"{what} index {i} outside [0, {limit})")

    @staticmethod
    def _check_fits(cset: CommunicationSet, n_leaves: int, where: str) -> None:
        if cset.max_pe >= n_leaves:
            raise TopologyError(
                f"communication set on {where} uses PE {cset.max_pe}, "
                f"but the tree has only {n_leaves} leaves"
            )
