"""Extensions sketched in the paper's concluding remarks (§6).

``oriented`` — left-oriented sets by mirroring, and scheduling of general
               (mixed-orientation) well-nested sets by decomposition into
               two oriented sets (paper §2.1: "Any set can be decomposed
               into two sets each of them is oriented").
``general``  — *arbitrary* communication sets (crossing pairs allowed) via
               well-nested layering, sequentially or with cross-layer
               round merging.
``stream``   — PADR across a sequence of communication sets on one
               persistent network: cross-set configuration reuse.
``algorithms`` — computational algorithms under PADR (tree reduction).
``collectives`` — gather / scatter / shift / reverse as CST programs.
``grid_routing`` — XY point-to-point routing across the SRGA grid.
``srga``     — the Self-Reconfigurable Gate Array substrate (Sidhu et al.
               2000): a PE grid whose every row and every column is a CST,
               with row/column scheduling built on the core algorithm.
"""

from repro.extensions.oriented import (
    MirroredScheduler,
    OrientedDecompositionScheduler,
    decompose_by_orientation,
)
from repro.extensions.general import (
    GeneralSetScheduler,
    InterleavedGeneralScheduler,
    LayeringReport,
    wellnested_layers,
)
from repro.extensions.stream import StreamResult, StreamScheduler, StreamStep
from repro.extensions.algorithms import ReductionResult, srga_row_reduce, tree_reduce
from repro.extensions.collectives import (
    CollectiveResult,
    gather,
    reverse,
    scatter,
    shift,
)
from repro.extensions.srga import SRGA, SRGAScheduleResult
from repro.extensions.grid_routing import GridMessage, GridRoutingResult, route_xy

__all__ = [
    "MirroredScheduler",
    "OrientedDecompositionScheduler",
    "decompose_by_orientation",
    "GeneralSetScheduler",
    "InterleavedGeneralScheduler",
    "LayeringReport",
    "wellnested_layers",
    "StreamResult",
    "StreamScheduler",
    "StreamStep",
    "ReductionResult",
    "srga_row_reduce",
    "tree_reduce",
    "CollectiveResult",
    "gather",
    "reverse",
    "scatter",
    "shift",
    "SRGA",
    "SRGAScheduleResult",
    "GridMessage",
    "GridRoutingResult",
    "route_xy",
]
