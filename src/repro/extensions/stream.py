"""Stream scheduling: PADR across a *sequence* of communication sets.

The paper bounds configuration changes within one schedule.  A natural
extension (in the spirit of §6) is a workload *stream* — e.g. the phases
of an algorithm on the SRGA, or successive segmentations of a bus — where
the same CST carries one well-nested set after another.

:class:`StreamScheduler` runs the CSA for each set **on the same network
without resetting the crossbars**.  Under the paper's persistent-
configuration power model, connections left over from step *t* that step
*t+1* needs again are free, so similar consecutive sets cost almost
nothing: the meter only ticks where the communication pattern actually
changed.  This quantifies PADR's advantage at a timescale the paper leaves
open.

Every step is still individually verified end to end (the stream reuses
crossbar *state*, never correctness assumptions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.verifier import verify_schedule
from repro.comms.communication import CommunicationSet
from repro.core.config import SchedulerConfig
from repro.core.csa import PADRScheduler
from repro.core.schedule import Schedule
from repro.cst.network import CSTNetwork
from repro.cst.power import PowerPolicy
from repro.obs.instrument import Instrumentation

__all__ = ["StreamStep", "StreamResult", "StreamScheduler"]


@dataclass(frozen=True, slots=True)
class StreamStep:
    """One set's outcome within a stream."""

    index: int
    schedule: Schedule
    #: power consumed by THIS step alone (the schedule's own report is
    #: cumulative because the meter persists across the stream).
    power_units: int
    rounds: int


@dataclass(frozen=True, slots=True)
class StreamResult:
    """Outcome of scheduling a whole stream on one persistent network."""

    steps: tuple[StreamStep, ...]
    n_leaves: int

    @property
    def total_power(self) -> int:
        return sum(s.power_units for s in self.steps)

    @property
    def total_rounds(self) -> int:
        return sum(s.rounds for s in self.steps)

    def power_profile(self) -> list[int]:
        """Per-step energy — flat tails mean the stream reuses circuits."""
        return [s.power_units for s in self.steps]


class StreamScheduler:
    """Run the CSA over a sequence of sets with persistent configurations.

    ``fresh_network_per_step=True`` is the control condition: every step
    starts from an idle crossbar (what a PADR-unaware system would do
    between phases); comparing the two quantifies the cross-step savings.
    """

    def __init__(
        self,
        *,
        policy: PowerPolicy | None = None,
        fresh_network_per_step: bool | None = None,
        verify: bool | None = None,
        obs: "Instrumentation | None" = None,
        config: SchedulerConfig | None = None,
    ) -> None:
        cfg = config if config is not None else SchedulerConfig()
        self.config = cfg
        self.policy = policy or PowerPolicy.paper()
        self.fresh_network_per_step = (
            cfg.fresh_network_per_step
            if fresh_network_per_step is None
            else fresh_network_per_step
        )
        self.verify = cfg.verify_steps if verify is None else verify
        #: optional :class:`~repro.obs.Instrumentation`; forwarded to the
        #: underlying :class:`PADRScheduler` (per-round/engine metrics) and
        #: extended here with per-step stream counters and histograms.
        self.obs = obs

    def run(
        self, csets: Sequence[CommunicationSet], n_leaves: int
    ) -> StreamResult:
        network = CSTNetwork.of_size(n_leaves, policy=self.policy)
        # With a persistent network, consecutive sets with identical role
        # assignments yield identical Phase-1 counters, so the upward wave
        # is skipped and the cached pristine states restored.  The fresh-
        # network control condition models a PADR-unaware system and pays
        # full price every step.
        obs = self.obs
        scheduler = PADRScheduler(
            reuse_phase1=not self.fresh_network_per_step,
            obs=obs,
            config=self.config,
        )
        steps: list[StreamStep] = []
        spent_before = 0
        stream_total = 0
        for index, cset in enumerate(csets):
            if self.fresh_network_per_step:
                network = CSTNetwork.of_size(n_leaves, policy=self.policy)
                spent_before = 0
            schedule = scheduler.schedule(cset, network=network)
            if self.verify:
                verify_schedule(schedule, cset).raise_if_failed()
            spent_now = network.meter.total_units
            step_units = spent_now - spent_before
            # accumulate the stream-wide bill ourselves: the meter's own
            # total resets with the network under fresh_network_per_step,
            # and a "total" gauge must never go backwards mid-stream.
            stream_total += step_units
            if obs is not None:
                m = obs.metrics
                m.inc("stream.steps", run=obs.run)
                m.observe("stream.step_power_units", step_units, run=obs.run)
                m.observe("stream.step_rounds", schedule.n_rounds, run=obs.run)
                m.set("stream.power_units.total", stream_total, run=obs.run)
            steps.append(
                StreamStep(
                    index=index,
                    schedule=schedule,
                    power_units=step_units,
                    rounds=schedule.n_rounds,
                )
            )
            spent_before = spent_now
        return StreamResult(steps=tuple(steps), n_leaves=n_leaves)
