"""Orientation handling: left-oriented sets and general-set decomposition.

The paper treats right-oriented sets and notes (§2.1) that left-oriented
sets are symmetric and that any set decomposes into one set of each
orientation.  This module makes both concrete:

* :class:`MirroredScheduler` schedules a *left-oriented* well-nested set by
  reflecting PE indices through the centre of the tree, running any
  right-oriented scheduler, and reflecting the resulting schedule back.
  Reflection swaps the roles of left/right children everywhere, so a
  schedule valid on the mirror image is valid on the original.
* :class:`OrientedDecompositionScheduler` splits a mixed set into its
  right- and left-oriented subsets, schedules each with the CSA (the left
  one via mirroring), and concatenates the rounds.  The combined length is
  ``w_right + w_left``; the paper makes no stronger claim for mixed sets.
"""

from __future__ import annotations

from repro.comms.communication import Communication, CommunicationSet
from repro.core.base import ScheduleContext, Scheduler
from repro.core.csa import PADRScheduler
from repro.core.schedule import RoundRecord, Schedule
from repro.cst.power import PowerReport
from repro.exceptions import OrientationError

__all__ = [
    "decompose_by_orientation",
    "MirroredScheduler",
    "OrientedDecompositionScheduler",
]


def decompose_by_orientation(
    cset: CommunicationSet,
) -> tuple[CommunicationSet, CommunicationSet]:
    """Split into (right-oriented, left-oriented) subsets (paper §2.1)."""
    return cset.right_oriented_subset(), cset.left_oriented_subset()


def _mirror_schedule(schedule: Schedule, cset: CommunicationSet, n: int) -> Schedule:
    """Reflect a schedule produced on the mirrored set back to the original."""
    rounds = []
    for r in schedule.rounds:
        performed = tuple(
            Communication(n - 1 - c.src, n - 1 - c.dst) for c in r.performed
        )
        writers = tuple(sorted(n - 1 - pe for pe in r.writers))
        # staged connections live on mirrored switch ids; keep them keyed by
        # the mirrored network's ids but note the mirroring in the name.
        rounds.append(
            RoundRecord(index=r.index, performed=performed, writers=writers, staged=r.staged)
        )
    return Schedule(
        cset=cset,
        n_leaves=n,
        scheduler_name=f"mirrored({schedule.scheduler_name})",
        rounds=tuple(rounds),
        power=schedule.power,
        control_messages=schedule.control_messages,
        control_words=schedule.control_words,
    )


class MirroredScheduler(Scheduler):
    """Schedule a left-oriented well-nested set via reflection."""

    supports_network = False

    def __init__(self, inner: Scheduler | None = None) -> None:
        self.inner = inner if inner is not None else PADRScheduler()
        self.name = f"mirrored({self.inner.name})"

    def _schedule(self, cset: CommunicationSet, ctx: ScheduleContext) -> Schedule:
        if not cset.is_left_oriented:
            raise OrientationError("MirroredScheduler expects a left-oriented set")
        n = ctx.n_leaves
        mirrored = cset.mirrored(n)
        inner_schedule = self.inner.schedule(mirrored, n_leaves=n, policy=ctx.policy)
        return _mirror_schedule(inner_schedule, cset, n)


class OrientedDecompositionScheduler(Scheduler):
    """Schedule a mixed-orientation set: right subset first, then left.

    Both subsets must individually be well-nested (each is validated by
    the inner CSA); the concatenated schedule uses
    ``width(right) + width(left)`` rounds and inherits the O(1) per-switch
    change bound within each half.
    """

    name = "oriented-decomposition"
    supports_network = False

    def __init__(self, *, native_left: bool = False) -> None:
        """``native_left`` schedules the left half with the mirror-lens
        :class:`~repro.core.left.LeftPADRScheduler` instead of reflecting
        the workload; the two are equivalent (cross-checked in the tests)
        and differ only in which implementation runs."""
        from repro.core.left import LeftPADRScheduler

        self._right = PADRScheduler()
        self._left: Scheduler = (
            LeftPADRScheduler() if native_left else MirroredScheduler(PADRScheduler())
        )

    def _schedule(self, cset: CommunicationSet, ctx: ScheduleContext) -> Schedule:
        n = ctx.n_leaves
        policy = ctx.policy
        right, left = decompose_by_orientation(cset)

        parts: list[Schedule] = []
        if len(right):
            parts.append(self._right.schedule(right, n_leaves=n, policy=policy))
        if len(left):
            parts.append(self._left.schedule(left, n_leaves=n, policy=policy))

        rounds: list[RoundRecord] = []
        for part in parts:
            for r in part.rounds:
                rounds.append(
                    RoundRecord(
                        index=len(rounds),
                        performed=r.performed,
                        writers=r.writers,
                        staged=r.staged,
                    )
                )
        power = _merge_power(parts)
        return Schedule(
            cset=cset,
            n_leaves=n,
            scheduler_name=self.name,
            rounds=tuple(rounds),
            power=power,
            control_messages=sum(p.control_messages for p in parts),
            control_words=sum(p.control_words for p in parts),
        )


def _merge_power(parts: list[Schedule]) -> PowerReport:
    """Sum power reports of sequentially-executed phases."""
    units: dict[int, int] = {}
    changes: dict[int, int] = {}
    rounds = 0
    for p in parts:
        rounds += p.power.rounds
        for k, v in p.power.per_switch_units.items():
            units[k] = units.get(k, 0) + v
        for k, v in p.power.per_switch_changes.items():
            changes[k] = changes.get(k, 0) + v
    return PowerReport(
        total_units=sum(units.values()),
        per_switch_units=units,
        per_switch_changes=changes,
        rounds=rounds,
    )
