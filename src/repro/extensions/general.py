"""Scheduling *arbitrary* communication sets — beyond well-nested.

The paper's concluding remarks pose "the study of other communication
patterns on the CST" as future work.  This module provides the natural
reduction: any valid communication set (each PE an endpoint of at most one
communication) can be

1. split by orientation (paper §2.1), then
2. each oriented subset partitioned into **well-nested layers** — subsets
   with no crossing pair — and
3. each layer scheduled with the CSA, layers and orientations running
   sequentially.

Layering uses first-fit in outermost-first order: a communication joins
the first layer it does not cross.  Finding the *minimum* number of
well-nested layers is graph colouring of the interval *crossing graph*
(a circle graph) — NP-hard in general — so first-fit is a heuristic; the
layer count is reported so callers can see the overhead.  For an already
well-nested oriented set this degenerates to exactly one layer and the
plain CSA schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comms.communication import Communication, CommunicationSet
from repro.comms.wellnested import is_well_nested
from repro.core.base import ScheduleContext, Scheduler
from repro.core.csa import PADRScheduler
from repro.core.schedule import RoundRecord, Schedule
from repro.extensions.oriented import MirroredScheduler, _merge_power

__all__ = [
    "wellnested_layers",
    "GeneralSetScheduler",
    "InterleavedGeneralScheduler",
    "LayeringReport",
]


def _crosses(a: Communication, b: Communication) -> bool:
    """Partial interval overlap — the relation well-nestedness forbids."""
    return (
        a.leftmost < b.leftmost <= a.rightmost < b.rightmost
        or b.leftmost < a.leftmost <= b.rightmost < a.rightmost
    )


def wellnested_layers(cset: CommunicationSet) -> list[CommunicationSet]:
    """Partition an oriented set into well-nested layers (first-fit).

    Accepts a purely right-oriented or purely left-oriented set (layering
    is orientation-agnostic since it only looks at intervals).  Each
    returned layer is well-nested when re-oriented rightward.
    """
    layers: list[list[Communication]] = []
    for c in sorted(cset.comms, key=lambda c: (c.leftmost, -c.rightmost)):
        for layer in layers:
            if not any(_crosses(c, other) for other in layer):
                layer.append(c)
                break
        else:
            layers.append([c])
    return [CommunicationSet(layer) for layer in layers]


@dataclass(frozen=True, slots=True)
class LayeringReport:
    """How a general set was decomposed."""

    n_right_layers: int
    n_left_layers: int

    @property
    def total_layers(self) -> int:
        return self.n_right_layers + self.n_left_layers


class GeneralSetScheduler(Scheduler):
    """Schedule any valid communication set on the CST.

    Orientation split → well-nested layering → CSA per layer.  The result
    is a single concatenated :class:`~repro.core.schedule.Schedule`;
    :attr:`last_layering` records the decomposition of the latest run.
    """

    name = "general-layered"
    supports_network = False

    def __init__(self) -> None:
        self._right = PADRScheduler()
        self._left = MirroredScheduler(PADRScheduler())
        self.last_layering: LayeringReport | None = None

    def _schedule(self, cset: CommunicationSet, ctx: ScheduleContext) -> Schedule:
        n = ctx.n_leaves
        policy = ctx.policy
        right, left = cset.right_oriented_subset(), cset.left_oriented_subset()

        right_layers = wellnested_layers(right) if len(right) else []
        left_layers = wellnested_layers(left) if len(left) else []
        self.last_layering = LayeringReport(
            n_right_layers=len(right_layers),
            n_left_layers=len(left_layers),
        )

        parts: list[Schedule] = []
        for layer in right_layers:
            assert is_well_nested(layer)
            parts.append(self._right.schedule(layer, n_leaves=n, policy=policy))
        for layer in left_layers:
            parts.append(self._left.schedule(layer, n_leaves=n, policy=policy))

        rounds: list[RoundRecord] = []
        for part in parts:
            for r in part.rounds:
                rounds.append(
                    RoundRecord(
                        index=len(rounds),
                        performed=r.performed,
                        writers=r.writers,
                        staged=r.staged,
                    )
                )
        return Schedule(
            cset=cset,
            n_leaves=n,
            scheduler_name=self.name,
            rounds=tuple(rounds),
            power=_merge_power(parts),
            control_messages=sum(p.control_messages for p in parts),
            control_words=sum(p.control_words for p in parts),
        )


class InterleavedGeneralScheduler(Scheduler):
    """General sets with cross-layer round merging.

    The plain :class:`GeneralSetScheduler` runs its layers sequentially,
    paying ``Σ width(layer)`` rounds.  But rounds from different layers —
    and from opposite orientations — are often edge-compatible (a
    right-oriented and a left-oriented circuit mostly use opposite
    directions of the links they share).  This scheduler takes each
    layer's CSA round decomposition as a *plan*, greedily first-fit merges
    the rounds across all plans, and replays the merged plan through one
    network.

    The merged schedule can beat the sequential round count substantially
    (e.g. a right chain plus its mirror image interleave almost freely);
    it trades away the CSA's distributed control story — merging is a
    centralized post-pass — which is why both schedulers exist.
    """

    name = "general-interleaved"
    supports_network = False

    def __init__(self) -> None:
        self._sequential = GeneralSetScheduler()
        self.last_layering: LayeringReport | None = None

    def _schedule(self, cset: CommunicationSet, ctx: ScheduleContext) -> Schedule:
        from repro.core.base import execute_round_plan
        from repro.cst.topology import CSTTopology

        n = ctx.n_leaves
        policy = ctx.policy
        topo = CSTTopology.of(n)

        # plan via the sequential scheduler (its rounds are CSA rounds)
        sequential = self._sequential.schedule(cset, n_leaves=n, policy=policy)
        self.last_layering = self._sequential.last_layering

        merged: list[list[Communication]] = []
        merged_edges: list[set] = []
        for r in sequential.rounds:
            round_comms = list(r.performed)
            edges = set()
            for c in round_comms:
                edges.update(topo.path_edges(c.src, c.dst))
            for i, used in enumerate(merged_edges):
                if used.isdisjoint(edges):
                    merged[i].extend(round_comms)
                    used.update(edges)
                    break
            else:
                merged.append(round_comms)
                merged_edges.append(edges)

        return execute_round_plan(cset, n, merged, self.name, policy=policy)
