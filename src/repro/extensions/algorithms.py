"""Computational algorithms on the CST under the PADR technique.

The paper's concluding remarks propose "using the PADR technique to
develop computational algorithms for reconfigurable models".  This module
provides the canonical first example: **tree reduction** — combining N
values with an associative operation in ``log2 N`` communication steps,
every step a width-1 well-nested set routed by the CSA, with real payloads
flowing through the simulated crossbars (no shortcut arithmetic: if the
routing were wrong, the answer would be wrong).  An SRGA row wrapper shows
the algorithm running on the architecture the paper targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.comms.communication import Communication, CommunicationSet
from repro.core.csa import PADRScheduler
from repro.cst.network import CSTNetwork
from repro.exceptions import ReproError
from repro.util.bitmath import ilog2, is_power_of_two

__all__ = ["AlgorithmError", "ReductionResult", "tree_reduce", "srga_row_reduce"]


class AlgorithmError(ReproError):
    """Invalid input to a CST algorithm."""


@dataclass(frozen=True, slots=True)
class ReductionResult:
    """Outcome of a tree reduction on the CST."""

    value: Any
    result_pe: int
    steps: int
    total_rounds: int
    total_power_units: int


def tree_reduce(
    values: Sequence[Any],
    op: Callable[[Any, Any], Any],
) -> ReductionResult:
    """Reduce ``values`` with associative ``op`` on an N-leaf CST.

    Step ``k`` (``k = 0..log2 N − 1``) pairs each block of ``2^(k+1)``
    leaves: the left half's accumulator (held at the block's left-half
    rightmost PE) is sent to the block's rightmost PE — a right-oriented
    set of disjoint pairs (width 1, one round).  After ``log2 N`` steps
    the full reduction sits at PE ``N−1``.

    Every transfer physically traverses the simulated crossbars; the
    returned power figure is the configuration energy of the whole
    reduction.
    """
    n = len(values)
    if n < 2 or not is_power_of_two(n):
        raise AlgorithmError(f"tree_reduce needs a power-of-two count >= 2, got {n}")

    acc: dict[int, Any] = {i: v for i, v in enumerate(values)}
    scheduler = PADRScheduler()
    total_rounds = 0
    total_power = 0
    steps = ilog2(n)

    for k in range(steps):
        block = 1 << (k + 1)
        half = 1 << k
        comms = []
        for base in range(0, n, block):
            src = base + half - 1   # carrier of the left half's accumulator
            dst = base + block - 1  # carrier of the block's accumulator
            comms.append(Communication(src, dst))
        cset = CommunicationSet(comms)

        network = CSTNetwork.of_size(n)
        network.assign_roles(cset.roles())
        for c in cset:
            network.pes[c.src].payload = acc[c.src]
        schedule = scheduler.schedule(cset, network=network)
        total_rounds += schedule.n_rounds
        total_power += schedule.power.total_units

        for c in cset:
            received = network.pes[c.dst].received
            if len(received) != 1:
                raise AlgorithmError(
                    f"step {k}: PE {c.dst} received {len(received)} payloads"
                )
            # the payload is the LEFT half's accumulator: left operand,
            # so non-commutative operations preserve index order.
            acc[c.dst] = op(received[0], acc[c.dst])

    return ReductionResult(
        value=acc[n - 1],
        result_pe=n - 1,
        steps=steps,
        total_rounds=total_rounds,
        total_power_units=total_power,
    )


def srga_row_reduce(
    grid,
    row: int,
    values: Sequence[Any],
    op: Callable[[Any, Any], Any],
) -> ReductionResult:
    """Tree-reduce one SRGA row (PE index = column) — the grid's row CST
    is exactly an ``cols``-leaf CST."""
    from repro.extensions.srga import SRGA

    if not isinstance(grid, SRGA):
        raise AlgorithmError("srga_row_reduce requires an SRGA grid")
    if not 0 <= row < grid.rows:
        raise AlgorithmError(f"row {row} outside [0, {grid.rows})")
    if len(values) != grid.cols:
        raise AlgorithmError(
            f"need exactly {grid.cols} values for a row, got {len(values)}"
        )
    return tree_reduce(values, op)
