"""Dimension-ordered point-to-point routing on the SRGA grid.

The SRGA's row and column CSTs compose into a 2D router: a message from
PE ``(r1, c1)`` to PE ``(r2, c2)`` travels its source *row* tree to the
destination column (phase 1), is handed off at the intermediate PE
``(r1, c2)``, then travels the destination *column* tree to its target
(phase 2) — classic XY routing, with every hop a CST circuit scheduled by
this library's machinery.

Each phase groups transfers by tree; a tree's transfer set may be
arbitrary (crossings, mixed orientation), so phases route through
:class:`~repro.extensions.general.GeneralSetScheduler` layers with real
payloads.  Messages already in their destination column skip phase 1;
messages already in their destination row skip phase 2.

Restrictions inherited from the one-role-per-PE model: within one routing
step, a PE may appear as at most one endpoint *per tree* it participates
in.  Violations raise :class:`GridRoutingError` — callers split their
traffic into multiple steps (the stream idiom).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.comms.communication import Communication, CommunicationSet
from repro.core.csa import PADRScheduler
from repro.cst.network import CSTNetwork
from repro.exceptions import CommunicationError, ReproError
from repro.extensions.general import wellnested_layers
from repro.extensions.srga import SRGA

__all__ = ["GridRoutingError", "GridMessage", "GridRoutingResult", "route_xy"]


class GridRoutingError(ReproError):
    """Invalid grid routing request (endpoint conflicts, out of range)."""


@dataclass(frozen=True, slots=True)
class GridMessage:
    """One point-to-point transfer on the grid."""

    src: tuple[int, int]
    dst: tuple[int, int]
    payload: Any

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise GridRoutingError(f"source and destination coincide: {self.src}")


@dataclass(frozen=True, slots=True)
class GridRoutingResult:
    """Deliveries plus aggregate cost of one XY routing step."""

    delivered: Mapping[tuple[int, int], Any]
    row_rounds: int
    col_rounds: int
    total_power_units: int

    @property
    def total_rounds(self) -> int:
        return self.row_rounds + self.col_rounds


def _route_tree_sets(
    per_tree: dict[int, list[tuple[int, int, Any]]],
    n_leaves: int,
) -> tuple[dict[tuple[int, int], Any], int, int]:
    """Route each tree's (src_pe, dst_pe, payload) transfers via layering.

    Returns (deliveries keyed by (tree, dst_pe), max rounds over trees,
    total power).  Trees run concurrently, so the phase's round cost is
    the slowest tree's.
    """
    delivered: dict[tuple[int, int], Any] = {}
    max_rounds = 0
    power = 0
    scheduler = PADRScheduler()
    for tree, transfers in per_tree.items():
        try:
            cset = CommunicationSet(
                Communication(s, d) for s, d, _ in transfers
            )
        except CommunicationError as exc:
            raise GridRoutingError(
                f"tree {tree}: conflicting endpoints within one step ({exc})"
            ) from exc
        payloads = {s: p for s, _, p in transfers}
        tree_rounds = 0
        from repro.extensions.oriented import decompose_by_orientation

        right, left = decompose_by_orientation(cset)
        oriented_parts = [part for part in (right, left) if len(part)]
        for part in oriented_parts:
            # layer each orientation; left-oriented layers are mirrored
            # into right-oriented form for layering, then routed natively.
            probe = part if part.is_right_oriented else part.mirrored(n_leaves)
            for probe_layer in wellnested_layers(probe):
                layer = (
                    probe_layer
                    if part.is_right_oriented
                    else probe_layer.mirrored(n_leaves)
                )
                network = CSTNetwork.of_size(n_leaves)
                network.assign_roles(layer.roles())
                for c in layer:
                    network.pes[c.src].payload = payloads[c.src]
                if layer.is_right_oriented:
                    schedule = scheduler.schedule(layer, network=network)
                else:
                    from repro.core.left import LeftPADRScheduler

                    schedule = LeftPADRScheduler().schedule(layer, network=network)
                tree_rounds += schedule.n_rounds
                power += schedule.power.total_units
                for c in layer:
                    delivered[(tree, c.dst)] = network.pes[c.dst].received[0]
        max_rounds = max(max_rounds, tree_rounds)
    return delivered, max_rounds, power


def route_xy(grid: SRGA, messages: Sequence[GridMessage]) -> GridRoutingResult:
    """Route every message row-first then column (XY dimension order)."""
    destinations: set[tuple[int, int]] = set()
    for m in messages:
        grid.pe(*m.src)
        grid.pe(*m.dst)
        if m.dst in destinations:
            raise GridRoutingError(
                f"two messages target PE {m.dst} in one step — split the "
                "traffic into multiple steps"
            )
        destinations.add(m.dst)

    # phase 1: along the source row to the destination column
    row_sets: dict[int, list[tuple[int, int, Any]]] = {}
    at_column: dict[int, list[tuple[tuple[int, int], Any]]] = {}
    skip_row: list[GridMessage] = []
    for m in messages:
        (r1, c1), (r2, c2) = m.src, m.dst
        if c1 == c2:
            skip_row.append(m)
        else:
            row_sets.setdefault(r1, []).append((c1, c2, m.payload))

    row_delivered, row_rounds, row_power = _route_tree_sets(row_sets, grid.cols)

    # hand off: build phase-2 column transfers
    col_sets: dict[int, list[tuple[int, int, Any]]] = {}
    delivered: dict[tuple[int, int], Any] = {}
    for m in messages:
        (r1, c1), (r2, c2) = m.src, m.dst
        payload = (
            m.payload if c1 == c2 else row_delivered[(r1, c2)]
        )
        if r1 == r2:
            delivered[(r2, c2)] = payload  # already on the target row
        else:
            col_sets.setdefault(c2, []).append((r1, r2, payload))

    col_delivered, col_rounds, col_power = _route_tree_sets(col_sets, grid.rows)
    for (col, row), payload in col_delivered.items():
        delivered[(row, col)] = payload

    return GridRoutingResult(
        delivered=delivered,
        row_rounds=row_rounds,
        col_rounds=col_rounds,
        total_power_units=row_power + col_power,
    )
