"""Command-line interface: demos and experiment runners.

Usage (installed as ``cst-padr``, also ``python -m repro``):

.. code-block:: text

    cst-padr demo                 # schedule the paper's Figure 2 set, verbose
    cst-padr compare --width 16   # scheduler comparison on a width-16 chain
    cst-padr random --pairs 32 --leaves 128 --seed 7
    cst-padr sweep --max-width 64 # Theorem 5/8 sweep table
    cst-padr experiment <id>      # any registered experiment (see --list)
    cst-padr trace --width 3      # structured event trace of a CSA run
    cst-padr trace --width 8 --jsonl run.jsonl   # JSON-lines trace, CSA + Roy
    cst-padr metrics --width 8    # metrics-registry snapshot of a run
    cst-padr chaos --leaves 64    # seeded fault-injection campaign
    cst-padr batch --count 64 --leaves 256 --workers 2   # service-layer batch
    cst-padr serve --count 96 --leaves 64 --burst        # streaming service demo
    cst-padr schedule --decompose auto --arbitrary --pairs 24 --leaves 128
                                  # arbitrary set via well-nested decomposition

All output is plain text; the same tables the benchmarks assert on.
``trace --jsonl`` and ``metrics`` are the observability layer's entry
points (see docs/observability.md for the schema).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

import numpy as np

from repro.analysis.comparison import compare_schedulers, format_table
from repro.baselines import (
    GreedyScheduler,
    RandomOrderScheduler,
    RoyIDScheduler,
    SequentialScheduler,
)
from repro.comms.generators import crossing_chain, paper_figure2_set, random_well_nested
from repro.comms.width import width
from repro.core.csa import PADRScheduler
from repro.cst.power import PowerPolicy
from repro.viz.ascii import (
    render_change_profile,
    render_leaf_roles,
    render_round_configuration,
    render_schedule_timeline,
)

__all__ = ["main"]


def _all_schedulers():
    return [
        PADRScheduler(),
        RoyIDScheduler(),
        GreedyScheduler("outermost"),
        GreedyScheduler("innermost"),
        RandomOrderScheduler(seed=1),
        SequentialScheduler(),
    ]


def _cmd_demo(args: argparse.Namespace) -> int:
    cset = paper_figure2_set()
    n = 16
    print("The paper's Figure 2 well-nested set on a 16-leaf CST")
    print(render_leaf_roles(cset, n))
    print()
    schedule = PADRScheduler().schedule(cset, n_leaves=n)
    print(f"CSA: width={width(cset)}, rounds={schedule.n_rounds}, "
          f"{schedule.power.summary()}")
    print()
    for r in range(schedule.n_rounds):
        print(render_round_configuration(schedule, r))
        print()
    print("timeline:")
    print(render_schedule_timeline(schedule))
    print()
    print("per-switch configuration changes (Theorem 8 view):")
    print(render_change_profile(schedule))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    cset = crossing_chain(args.width)
    comparison = compare_schedulers(cset, _all_schedulers())
    print(f"crossing chain, width={args.width}, {len(cset)} communications")
    print(format_table(comparison.rows()))
    return 0


def _cmd_random(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    cset = random_well_nested(args.pairs, args.leaves, rng)
    comparison = compare_schedulers(cset, _all_schedulers(), args.leaves)
    print(
        f"random well-nested set: pairs={args.pairs}, leaves={args.leaves}, "
        f"seed={args.seed}, width={comparison.width}"
    )
    print(format_table(comparison.rows()))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    rows = []
    w = 2
    while w <= args.max_width:
        cset = crossing_chain(w)
        csa = PADRScheduler().schedule(cset)
        roy = RoyIDScheduler().schedule(cset, policy=PowerPolicy.rebuild())
        rows.append(
            {
                "width": w,
                "csa_rounds": csa.n_rounds,
                "csa_max_changes": csa.power.max_switch_changes,
                "csa_max_units": csa.power.max_switch_units,
                "roy_rounds": roy.n_rounds,
                "roy_max_units": roy.power.max_switch_units,
            }
        )
        w *= 2
    print("Theorem 5 + Theorem 8 sweep (crossing chains):")
    print(format_table(rows))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.jsonl is not None:
        return _cmd_trace_jsonl(args)

    from repro.cst.events import EventLog
    from repro.cst.network import CSTNetwork

    cset = crossing_chain(args.width)
    n = cset.min_leaves()
    log = EventLog()
    network = CSTNetwork.of_size(n, event_log=log)
    schedule = PADRScheduler().schedule(cset, network=network)
    print(
        f"traced CSA run: width {args.width}, {schedule.n_rounds} rounds, "
        f"{len(log)} events"
    )
    print(log.render(changed_only=args.changed_only))
    print()
    print("summary:", log.summary())
    return 0


def _observed_workload(args: argparse.Namespace):
    """The workload an observability subcommand runs: random or chain."""
    if getattr(args, "pairs", None):
        rng = np.random.default_rng(args.seed)
        return random_well_nested(args.pairs, args.leaves, rng)
    return crossing_chain(args.width)


def _cmd_trace_jsonl(args: argparse.Namespace) -> int:
    """Structured JSON-lines trace: the CSA live-instrumented, plus the
    Roy baseline under its per-round-rebuild discipline — one file holding
    the Theorem-8 O(1)-vs-Θ(w) evidence (see docs/observability.md)."""
    from repro.obs import Instrumentation, MetricsRegistry, TraceExporter
    from repro.obs.trace import export_schedule

    cset = _observed_workload(args)
    registry = MetricsRegistry()
    trace = TraceExporter()

    obs = Instrumentation(registry, trace, run="csa")
    PADRScheduler(obs=obs).schedule(cset)

    roy = RoyIDScheduler().schedule(cset, policy=PowerPolicy.rebuild())
    export_schedule(trace, roy, run="roy-rebuild")
    from repro.obs import observe_schedule

    observe_schedule(registry, roy, run="roy-rebuild")

    if args.jsonl == "-":
        n_events = trace.to_jsonl(sys.stdout)
        report = sys.stderr
    else:
        n_events = trace.to_jsonl(args.jsonl)
        report = sys.stdout
    for run, entry in trace.summary().items():
        print(
            f"{run}: rounds={entry.get('rounds')} "
            f"total_power_units={entry.get('total_power_units')} "
            f"max_switch_changes={entry.get('max_switch_changes')}",
            file=report,
        )
    print(f"wrote {n_events} events to {args.jsonl}", file=report)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run a workload with the metrics registry attached and dump the
    snapshot (counters / gauges / histograms / spans)."""
    import json

    from repro.obs import Instrumentation, MetricsRegistry

    cset = _observed_workload(args)
    obs = Instrumentation(MetricsRegistry(), run="csa")
    schedule = PADRScheduler(obs=obs).schedule(cset)
    snapshot = obs.metrics.snapshot()

    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    print(
        f"metrics for one CSA run: {len(cset)} comms, "
        f"{schedule.n_leaves} leaves, {schedule.n_rounds} rounds"
    )
    for section in ("counters", "gauges"):
        if snapshot[section]:
            print(f"\n{section}:")
            for key, value in snapshot[section].items():
                print(f"  {key:<45s} {value}")
    if snapshot["histograms"]:
        print("\nhistograms:")
        for key, h in snapshot["histograms"].items():
            print(
                f"  {key:<45s} count={h['count']} sum={h['sum']:g} "
                f"min={h['min']:g} max={h['max']:g}"
            )
    if snapshot["spans"]:
        print("\nspans (wall-clock, nondeterministic):")
        for key, s in snapshot["spans"].items():
            print(f"  {key:<45s} count={s['count']} total={s['total_s'] * 1e3:.2f} ms")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Seeded fault-injection campaign against the resilient scheduler."""
    from repro.obs import Instrumentation, MetricsRegistry
    from repro.recovery import run_campaign

    obs = Instrumentation(MetricsRegistry(), run="chaos")
    result = run_campaign(
        n_leaves=args.leaves,
        widths=tuple(args.widths),
        models=tuple(args.models),
        trials=args.trials,
        seed=args.seed,
        obs=obs,
    )
    print(
        f"chaos campaign: {args.leaves} leaves, seed={args.seed}, "
        f"{len(result.trials)} faulted trials"
    )
    print(format_table(result.rows()))
    controls = ", ".join(
        f"w={w}:{'ok' if ok else 'MISMATCH'}"
        for w, ok in sorted(result.control_parity.items())
    )
    print(f"healthy-control parity: {controls}")
    print(f"delivered/undelivered partitions sound: {result.all_partitions_ok}")
    if args.json:
        import json

        print(json.dumps(obs.metrics.snapshot(), indent=2, sort_keys=True))
    if not (result.all_partitions_ok and result.all_controls_ok):
        return 1
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    """Schedule one communication set end-to-end under the selected
    decompose mode.  Arbitrary (crossing / mixed-orientation) sets are
    admitted under ``--decompose auto`` and lowered through well-nested
    decomposition; the report accounts rounds and power against the
    single-batch w-round optimum.  Exit 2 means the input was rejected
    (the ``strict``/``never`` door), exit 1 an incomplete delivery."""
    from repro.comms.generators import random_arbitrary
    from repro.core.config import SchedulerConfig
    from repro.core.plan import GeneralSchedule
    from repro.exceptions import ReproError
    from repro.io import load_workloads

    n_leaves: int | None = args.leaves
    if args.workload is not None:
        suite = load_workloads(args.workload)
        name = args.name if args.name is not None else sorted(suite)[0] if suite else None
        if name is None or name not in suite:
            print(
                f"workload {name!r} not in {args.workload} "
                f"(available: {', '.join(sorted(suite)) or 'none'})"
            )
            return 2
        cset = suite[name]
        n_leaves = None  # size from the set itself
        label = f"workload {name!r} from {args.workload}"
    else:
        rng = np.random.default_rng(args.seed)
        if args.arbitrary:
            cset = random_arbitrary(args.pairs, args.leaves, rng)
            label = "random arbitrary set"
        else:
            cset = random_well_nested(args.pairs, args.leaves, rng)
            label = "random well-nested set"
        label += f" (pairs={args.pairs}, leaves={args.leaves}, seed={args.seed})"

    config = SchedulerConfig(decompose=args.decompose, recfg_alpha=args.alpha)
    try:
        result = config.build().schedule(cset, n_leaves=n_leaves)
    except ReproError as exc:
        print(f"rejected under decompose={args.decompose!r}: {exc}")
        return 2

    stats = result.stats()
    print(f"{label}: {len(cset)} pairs, decompose={args.decompose}")
    if isinstance(result, GeneralSchedule):
        print(
            f"  batches: {result.n_batches} "
            f"(crossing-clique lower bound {result.lower_bound}), "
            f"orientations {'/'.join(result.batch_orientations)}"
        )
        print(
            f"  rounds: {result.rounds_used} vs single-batch optimum "
            f"{result.optimum_rounds} (overhead x{result.overhead_ratio:.2f}, "
            f"{result.merged_rounds} merged by packing at "
            f"alpha={result.alpha:g})"
        )
        print(
            f"  power: {result.power_units} units "
            f"({result.reconfig_changes} crossbar changes)"
        )
    else:
        print(
            f"  rounds={stats.n_rounds} (width optimum {stats.width}), "
            f"power={stats.total_power_units} units, "
            f"max per-switch changes={stats.max_switch_config_changes}"
        )
    complete = set(result.delivered) == set(cset.comms) and not result.undelivered
    print(f"  delivered: {len(result.delivered)}/{len(cset)} "
          f"({'complete' if complete else 'INCOMPLETE'})")
    return 0 if complete else 1


def _cmd_batch(args: argparse.Namespace) -> int:
    """Schedule a batch of mixed workloads through the service layer,
    twice — the resubmission shows the canonical cache doing its job —
    with parity against the direct scheduler asserted throughout."""
    from repro.core.config import SchedulerConfig
    from repro.obs import Instrumentation, MetricsRegistry
    from repro.service import SchedulerService, arbitrary_workloads, mixed_workloads

    obs = Instrumentation(MetricsRegistry(), run="service")
    batch = mixed_workloads(args.leaves, args.count, seed=args.seed)
    if args.decompose == "auto":
        # the auto door's demo: a quarter of the batch is arbitrary sets
        batch += arbitrary_workloads(
            args.leaves, max(1, args.count // 4), seed=args.seed
        )
    with SchedulerService(
        config=SchedulerConfig(decompose=args.decompose),
        workers=args.workers,
        cache_size=args.cache_size,
        parity_check=not args.no_parity,
        obs=obs,
    ) as service:
        first = service(batch, n_leaves=args.leaves)
        second = service(batch, n_leaves=args.leaves)
    print(
        f"service batch: {len(batch)} workloads on {args.leaves} leaves, "
        f"workers={args.workers}, decompose={args.decompose}, "
        f"parity={'off' if args.no_parity else 'on'}"
    )
    print(f"  first submission:  {first.summary()}")
    print(f"  resubmission:      {second.summary()}")
    print(
        f"  cache: {service.cache.hits} hits / {service.cache.misses} misses "
        f"({service.cache.hit_rate:.0%}), {service.cache.evictions} evictions, "
        f"resubmission hit-rate {second.hit_rate:.0%}"
    )
    if args.json:
        import json

        print(json.dumps(obs.metrics.snapshot(), indent=2, sort_keys=True))
    ok = (
        first.n_done == len(batch)
        and second.n_done == len(batch)
        and second.hit_rate >= 0.5
    )
    return 0 if ok else 1


def _synthetic_arrivals(args: argparse.Namespace):
    """The serve demo's arrival stream: mixed workloads cycled through
    LOW/NORMAL/HIGH priorities across two tenants.  With ``--burst`` the
    whole stream is front-loaded into the first few ticks (the overload
    drill); otherwise arrivals pace out one per tick."""
    from repro.service import (
        Priority,
        StreamRequest,
        arbitrary_workloads,
        mixed_workloads,
    )

    csets = mixed_workloads(args.leaves, min(args.count, 15), seed=args.seed)
    if getattr(args, "decompose", "strict") == "auto":
        csets += arbitrary_workloads(args.leaves, 5, seed=args.seed)
    priorities = [Priority.LOW, Priority.NORMAL, Priority.HIGH]
    arrivals = []
    for i in range(args.count):
        release = (i // (args.count // 4 + 1)) if args.burst else i
        arrivals.append(
            StreamRequest(
                cset=csets[i % len(csets)],
                n_leaves=args.leaves,
                release_time=release,
                deadline=args.deadline,
                priority=priorities[i % 3],
                tenant=f"tenant-{i % 2}",
            )
        )
    return arrivals


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the streaming scheduler service over a continuous arrival
    stream (synthetic, or replayed from a JSON file of stream-request
    records) on an asyncio event loop, and report the admission story:
    state trajectory, shed/defer accounting, p50/p99 latency."""
    import asyncio
    import json

    from repro.core.config import SchedulerConfig
    from repro.io import stream_request_from_dict
    from repro.obs import Instrumentation, MetricsRegistry
    from repro.service import StreamStatus, StreamingSchedulerService, TenantQuota

    if args.arrivals is not None:
        with open(args.arrivals) as fh:
            arrivals = [stream_request_from_dict(d) for d in json.load(fh)]
    else:
        arrivals = _synthetic_arrivals(args)

    obs = Instrumentation(MetricsRegistry(), run="stream")
    service = StreamingSchedulerService(
        config=SchedulerConfig(decompose=args.decompose),
        max_queue=args.max_queue,
        max_inflight=args.max_inflight,
        batch_window=args.batch_window,
        default_quota=TenantQuota(rate=args.quota_rate, burst=args.quota_burst),
        parity_check=not args.no_parity,
        obs=obs,
    )
    report = asyncio.run(service.aserve(arrivals))

    print(
        f"streaming service: {len(arrivals)} arrivals on {args.leaves} leaves, "
        f"inflight={args.max_inflight}, queue={args.max_queue}, "
        f"parity={'off' if args.no_parity else 'on'}"
    )
    print(f"  {report.summary()}")
    trajectory = " -> ".join(
        f"{state}@t{tick}" for tick, state in report.trajectory
    ) or "GREEN throughout"
    print(f"  admission trajectory: {trajectory}")
    for status in (StreamStatus.SHED, StreamStatus.EXPIRED, StreamStatus.REJECTED):
        per_prio = report.by_priority(status)
        if per_prio:
            detail = ", ".join(f"{k}={v}" for k, v in sorted(per_prio.items()))
            print(f"  {status.value} by priority: {detail}")
    if args.json:
        print(json.dumps(obs.metrics.snapshot(), indent=2, sort_keys=True))
    shed_above_low = {
        k: v for k, v in report.by_priority(StreamStatus.SHED).items() if k != "LOW"
    }
    return 0 if not shed_above_low else 1


def _cmd_canary(args: argparse.Namespace) -> int:
    """Record (or load) an arrival trace, replay it under the baseline and
    a candidate engine with the SLO burn-rate engine attached, and print
    the promotion decision.  Exit 0 promotes, 1 refuses."""
    from repro.core.config import SchedulerConfig
    from repro.io import load_arrivals, save_arrivals
    from repro.slo import DrillSpec, default_slos, promotion_gate, record_workload, replay

    if args.trace and os.path.exists(args.trace) and not args.record:
        arrivals = load_arrivals(args.trace)
        print(f"replaying {len(arrivals)} recorded arrival(s) from {args.trace}")
    else:
        arrivals = record_workload(
            n_leaves=args.leaves,
            count=args.count,
            seed=args.seed,
            deadline=args.deadline,
        )
        if args.trace:
            save_arrivals(args.trace, arrivals)
            print(f"recorded {len(arrivals)} arrival(s) to {args.trace}")

    specs = default_slos(
        latency_budget=args.latency_budget, detection_sla=args.detection_sla
    )
    drills = (
        ()
        if args.no_drill
        else (
            DrillSpec(
                tick=args.drill_tick,
                model=args.drill_model,
                detection_sla=args.detection_sla,
                seed=args.seed,
            ),
        )
    )
    baseline = replay(
        arrivals,
        label="baseline",
        config=SchedulerConfig(),
        specs=specs,
        max_inflight=args.max_inflight,
    )
    candidate = replay(
        arrivals,
        label=f"candidate-{args.engine}",
        config=SchedulerConfig(engine=args.engine),
        specs=specs,
        drills=drills,
        max_inflight=args.max_inflight,
    )
    decision = promotion_gate(baseline, candidate)

    print(f"baseline:  {baseline.report.summary()}")
    print(f"candidate: {candidate.report.summary()}")
    for alert in candidate.alerts:
        print(f"  ALERT [{alert.severity.upper()}] tick {alert.tick}: {alert.message}")
    for record in candidate.drills:
        print(
            f"  drill t{record.spec.tick} ({record.spec.model}): "
            f"detected={record.detected} in {record.detection_ticks} tick(s), "
            f"rerouted in {record.reroute_ticks} tick(s)"
        )
    print(decision.summary())
    return 0 if decision.promote else 1


def _cmd_fabric(args: argparse.Namespace) -> int:
    """``fabric plan``: profile an arrival trace and print the sized
    design.  ``fabric serve``: run the streaming service sharded across
    a live fabric and report per-shard load and the admission story."""
    import asyncio
    import json

    from repro.fabric import CapacityPlanner, FabricController, WorkloadProfile
    from repro.io import fabric_plan_to_dict, load_arrivals
    from repro.obs import Instrumentation, MetricsRegistry
    from repro.service import StreamingSchedulerService

    if args.fabric_command == "plan":
        if args.trace:
            profile = WorkloadProfile.from_trace(args.trace)
            print(f"profiled {profile.n_requests} arrival(s) from {args.trace}")
        else:
            from repro.slo import record_workload

            profile = WorkloadProfile.from_arrivals(
                record_workload(
                    n_leaves=args.leaves, count=args.count, seed=args.seed
                )
            )
            print(f"profiled {profile.n_requests} synthetic arrival(s)")
        print(
            f"  peak {profile.peak_arrivals}/tick, widest request "
            f"{profile.max_leaves} leaves, {len(profile.tenants)} tenant(s)"
        )
        planner = CapacityPlanner(
            shard_capacity=args.shard_capacity, max_trees=args.max_trees
        )
        plan = planner.plan(profile)
        print(f"  {plan.summary()}")
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(fabric_plan_to_dict(plan), fh, indent=2, sort_keys=True)
            print(f"  plan written to {args.out}")
        return 0

    # fabric serve
    arrivals = (
        load_arrivals(args.arrivals)
        if args.arrivals
        else _synthetic_arrivals(args)
    )
    from repro.core.config import SchedulerConfig

    fabric_config = SchedulerConfig(decompose=args.decompose)
    obs = Instrumentation(MetricsRegistry(), run="fabric")
    with FabricController(
        args.trees,
        args.leaves,
        config=fabric_config,
        parallel=not args.inline,
        obs=obs,
    ) as fabric:
        service = StreamingSchedulerService(
            config=fabric_config,
            max_queue=args.max_queue,
            max_inflight=args.max_inflight,
            parity_check=not args.no_parity,
            fabric=fabric,
            obs=obs,
        )
        report = asyncio.run(service.aserve(arrivals))
        stats = fabric.stats()

    print(
        f"fabric service: {len(arrivals)} arrivals over "
        f"{args.trees} tree(s) x {args.leaves} leaves, "
        f"parity={'off' if args.no_parity else 'on'}"
    )
    print(f"  {report.summary()}")
    print(
        f"  shard load: {stats['shard_load']} "
        f"({stats['rebalances']} rebalance(s))"
    )
    if args.json:
        print(json.dumps(obs.metrics.snapshot(), indent=2, sort_keys=True))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import REGISTRY, run_experiment

    if args.list or args.id is None:
        print("available experiments:")
        for eid in sorted(REGISTRY):
            print(f"  {eid:15s} {REGISTRY[eid].title}")
        return 0
    try:
        rows = run_experiment(args.id)
    except KeyError as exc:
        print(exc.args[0])
        return 2
    print(f"{args.id}: {REGISTRY[args.id].title}")
    print(format_table(rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cst-padr",
        description="Power-aware routing on the Circuit Switched Tree (IPPS 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="schedule the paper's Figure 2 set, verbosely")

    p = sub.add_parser("compare", help="scheduler comparison on a width-stress chain")
    p.add_argument("--width", type=int, default=16)

    p = sub.add_parser("random", help="scheduler comparison on a random well-nested set")
    p.add_argument("--pairs", type=int, default=32)
    p.add_argument("--leaves", type=int, default=128)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("sweep", help="Theorem 5/8 width sweep")
    p.add_argument("--max-width", type=int, default=64)

    p = sub.add_parser("experiment", help="run a registered experiment by id")
    p.add_argument("id", nargs="?", default=None)
    p.add_argument("--list", action="store_true", help="list experiment ids")

    p = sub.add_parser("trace", help="dump a structured event trace of a CSA run")
    p.add_argument("--width", type=int, default=3)
    p.add_argument(
        "--changed-only", action="store_true", help="hide no-op switch commits"
    )
    p.add_argument(
        "--jsonl",
        metavar="PATH",
        default=None,
        help="write a JSON-lines trace (CSA + Roy baseline) to PATH, or - for stdout",
    )
    _add_workload_options(p)

    p = sub.add_parser(
        "metrics", help="run a workload and dump the metrics-registry snapshot"
    )
    p.add_argument("--width", type=int, default=8)
    p.add_argument("--json", action="store_true", help="emit the snapshot as JSON")
    _add_workload_options(p)

    p = sub.add_parser(
        "chaos", help="seeded fault-injection campaign (detection/delivery table)"
    )
    p.add_argument("--leaves", type=int, default=64)
    p.add_argument(
        "--widths", type=int, nargs="+", default=[2, 4, 8], metavar="W"
    )
    p.add_argument(
        "--models",
        nargs="+",
        default=["dead", "stuck", "misroute"],
        choices=["dead", "stuck", "misroute"],
        metavar="MODEL",
    )
    p.add_argument("--trials", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--json", action="store_true", help="also dump the recovery metrics snapshot"
    )

    p = sub.add_parser(
        "schedule",
        help="schedule one set end-to-end (arbitrary sets with --decompose auto)",
    )
    p.add_argument("--pairs", type=int, default=24)
    p.add_argument("--leaves", type=int, default=128)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--arbitrary",
        action="store_true",
        help="draw a uniformly random pairing (crossings and both orientations)",
    )
    p.add_argument(
        "--alpha",
        type=float,
        default=0.0,
        help="reconfiguration weight when packing decomposed batches "
        "(0 minimises rounds)",
    )
    p.add_argument(
        "--workload",
        metavar="PATH",
        default=None,
        help="schedule a set from a saved workload suite instead of generating one",
    )
    p.add_argument(
        "--name", default=None, help="workload name inside --workload (default: first)"
    )
    _add_decompose_option(p)

    p = sub.add_parser(
        "batch", help="batch-schedule mixed workloads through the service layer"
    )
    _add_decompose_option(p)
    p.add_argument("--count", type=int, default=64)
    p.add_argument("--leaves", type=int, default=256)
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--cache-size", type=int, default=256)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--no-parity",
        action="store_true",
        help="skip the per-request parity check against the direct scheduler",
    )
    p.add_argument(
        "--json", action="store_true", help="also dump the service metrics snapshot"
    )

    p = sub.add_parser(
        "canary",
        help="record/replay a workload and gate an engine promotion on SLOs",
    )
    p.add_argument("--engine", default="columnar", choices=["reference", "fast", "columnar"])
    p.add_argument("--count", type=int, default=120)
    p.add_argument("--leaves", type=int, default=256)
    p.add_argument("--deadline", type=int, default=96)
    p.add_argument("--max-inflight", type=int, default=8)
    p.add_argument("--latency-budget", type=int, default=48)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="arrival-trace file: replayed if it exists, else recorded there",
    )
    p.add_argument(
        "--record",
        action="store_true",
        help="re-record the trace even if --trace exists",
    )
    p.add_argument("--drill-tick", type=int, default=4)
    p.add_argument(
        "--drill-model", default="dead", choices=["dead", "stuck", "misroute"]
    )
    p.add_argument("--detection-sla", type=int, default=4)
    p.add_argument(
        "--no-drill", action="store_true", help="skip the in-service chaos drill"
    )

    p = sub.add_parser(
        "serve", help="run the streaming service over a continuous arrival stream"
    )
    _add_decompose_option(p)
    p.add_argument("--count", type=int, default=96)
    p.add_argument("--leaves", type=int, default=64)
    p.add_argument("--deadline", type=int, default=64)
    p.add_argument("--max-queue", type=int, default=256)
    p.add_argument("--max-inflight", type=int, default=8)
    p.add_argument("--batch-window", type=int, default=0)
    p.add_argument("--quota-rate", type=float, default=16.0)
    p.add_argument("--quota-burst", type=float, default=64.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--burst",
        action="store_true",
        help="front-load all arrivals into a few ticks (overload drill)",
    )
    p.add_argument(
        "--arrivals",
        metavar="PATH",
        default=None,
        help="replay a JSON array of stream-request records instead of synthetic load",
    )
    p.add_argument(
        "--no-parity",
        action="store_true",
        help="skip the per-request parity check against the direct scheduler",
    )
    p.add_argument(
        "--json", action="store_true", help="also dump the streaming metrics snapshot"
    )

    p = sub.add_parser(
        "fabric",
        help="size a multi-tree fabric from a trace, or serve sharded across one",
    )
    fab_sub = p.add_subparsers(dest="fabric_command", required=True)
    fp = fab_sub.add_parser(
        "plan", help="pick (tree_count, leaf_width) from a recorded arrival trace"
    )
    fp.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="arrival-trace file (cst-padr canary --trace records one); "
        "omitted, a synthetic trace is profiled",
    )
    fp.add_argument("--count", type=int, default=96)
    fp.add_argument("--leaves", type=int, default=64)
    fp.add_argument("--seed", type=int, default=0)
    fp.add_argument("--shard-capacity", type=int, default=16)
    fp.add_argument("--max-trees", type=int, default=64)
    fp.add_argument(
        "--out", metavar="PATH", default=None, help="write the plan as JSON"
    )
    fs = fab_sub.add_parser(
        "serve", help="run the streaming service sharded across a fabric"
    )
    _add_decompose_option(fs)
    fs.add_argument("--trees", type=int, default=4)
    fs.add_argument("--count", type=int, default=96)
    fs.add_argument("--leaves", type=int, default=64)
    fs.add_argument("--deadline", type=int, default=64)
    fs.add_argument("--max-queue", type=int, default=256)
    fs.add_argument("--max-inflight", type=int, default=8)
    fs.add_argument("--seed", type=int, default=0)
    fs.add_argument(
        "--burst",
        action="store_true",
        help="front-load all arrivals into a few ticks (overload drill)",
    )
    fs.add_argument(
        "--arrivals",
        metavar="PATH",
        default=None,
        help="replay a saved arrival trace instead of synthetic load",
    )
    fs.add_argument(
        "--inline",
        action="store_true",
        help="run every shard in-process (no worker processes)",
    )
    fs.add_argument(
        "--no-parity",
        action="store_true",
        help="skip the per-request parity check against the direct scheduler",
    )
    fs.add_argument(
        "--json", action="store_true", help="also dump the fabric metrics snapshot"
    )

    return parser


def _add_decompose_option(p: argparse.ArgumentParser) -> None:
    """The shared decompose-mode switch: strict keeps the historical
    well-nested-only door, auto admits arbitrary sets via well-nested
    decomposition, never pre-rejects them explicitly."""
    p.add_argument(
        "--decompose",
        choices=("strict", "auto", "never"),
        default="strict",
        help="how non-well-nested sets are handled (default: strict)",
    )


def _add_workload_options(p: argparse.ArgumentParser) -> None:
    """Random-workload selection shared by the observability subcommands;
    with ``--pairs`` the run uses a random well-nested set instead of the
    crossing chain selected by ``--width``."""
    p.add_argument("--pairs", type=int, default=None)
    p.add_argument("--leaves", type=int, default=128)
    p.add_argument("--seed", type=int, default=0)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "compare": _cmd_compare,
        "random": _cmd_random,
        "sweep": _cmd_sweep,
        "experiment": _cmd_experiment,
        "trace": _cmd_trace,
        "metrics": _cmd_metrics,
        "chaos": _cmd_chaos,
        "schedule": _cmd_schedule,
        "batch": _cmd_batch,
        "serve": _cmd_serve,
        "canary": _cmd_canary,
        "fabric": _cmd_fabric,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
