"""Exception hierarchy for the CST-PADR reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the package
layout: topology errors, switch/configuration errors, communication-model
errors, and scheduling errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class TopologyError(ReproError):
    """Invalid tree topology parameter or node address."""


class InvalidNodeError(TopologyError):
    """A node id is outside the tree, or the wrong kind (leaf vs switch)."""


class SwitchError(ReproError):
    """Base class for switch configuration errors."""


class IllegalConnectionError(SwitchError):
    """Requested crossbar connection violates the 3-sided switch rules.

    An input may connect only to an output of a *different* side
    (paper §2: "It cannot be connected to the output of the same side").
    """


class PortConflictError(SwitchError):
    """Two simultaneous connections claim the same input or output port."""


class CommunicationError(ReproError):
    """Base class for communication-set model errors."""


class OrientationError(CommunicationError):
    """A communication or set has the wrong orientation for an operation."""


class NotWellNestedError(CommunicationError):
    """A set expected to be well-nested is not."""


class SchedulingError(ReproError):
    """A scheduler produced (or was asked to produce) an invalid schedule."""


class IncompatibleRoundError(SchedulingError):
    """A round contains communications that share a directed edge."""


class VerificationError(ReproError):
    """End-to-end verification of a schedule against ground truth failed."""


class ProtocolError(ReproError):
    """A distributed-algorithm invariant was violated at run time.

    Raised when control words received by a switch are inconsistent with its
    local Phase-1 state — this should never happen for valid well-nested
    inputs and indicates a bug (or a non-well-nested input slipping through).
    """
