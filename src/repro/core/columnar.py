"""Columnar struct-of-arrays execution of the CSA.

The fast-path engine still walks per-switch Python objects wave by wave:
every round is a DFS over ``StoredState`` dataclasses and ``DownWord``
flyweights.  This module re-expresses both CSA phases over parallel numpy
arrays indexed by flat heap id, so that

* Phase 1 is the batched form of the level-synchronous reduction in
  :func:`repro.core.phase1.run_phase1_vectorized` (one extra leading axis
  for the batch element);
* each Phase-2 round processes the live frontier one tree level at a time:
  the four CONFIGURE cases of :func:`repro.core.phase2.configure` become
  masked vector updates over the frontier's word columns, and crossbar
  staging/power charging become gather/scatter passes grouped by the
  thirteen possible connection tuples.

Level-synchronous processing is equivalent to the engine's DFS walk:
CONFIGURE mutates only the receiving switch's own counters, words flow
strictly parent to child, and the frontier-pruning predicate for a child
reads ``pending`` of that child's *own* subtree — which no switch outside
the subtree can have decremented before the child is visited (ancestors are
visited first; descendants only through the child).  Pending decrements may
therefore be applied in one batch at the end of each round.

Instead of tracing payloads through committed crossbars, the kernel pairs
writers with receivers by a *circuit id* threaded through the word columns:
the id travels with the source request to its writer leaf and with the
destination request to its receiver leaf.  On a healthy network every hop
of a carved circuit is freshly staged in the same round, so the physical
trace necessarily connects exactly these two leaves; the id is internal
bookkeeping, not extra information on the wire (words still carry
``[kind, x_s, x_d]`` and leaves still receive rank zero).

The kernel executes ``B`` independent same-tree communication sets at once
(struct-of-arrays over ``(element, heap id)``), which is what
:func:`schedule_batch` and the service layer's same-shape grouping exploit;
``B == 1`` is the single-schedule fast path behind
:class:`~repro.cst.engine.ColumnarWaveEngine`.

Bit-identical parity with the scalar engines is the contract: schedules,
power bills and logical control accounting all match; only wall-clock time
differs.  The differential property tests in
``tests/properties/test_property_columnar.py`` enforce this.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

import numpy as np

from repro.comms.communication import Communication, CommunicationSet
from repro.comms.wellnested import require_well_nested
from repro.core.control import UpWord
from repro.core.schedule import RoundRecord, Schedule
from repro.cst.power import PowerPolicy, PowerReport
from repro.exceptions import ProtocolError, SchedulingError
from repro.types import (
    CONN_DOWN_L,
    CONN_DOWN_R,
    CONN_L_TO_R,
    CONN_L_UP,
    CONN_R_UP,
    Connection,
    InPort,
    OutPort,
    Role,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import SchedulerConfig
    from repro.cst.network import CSTNetwork
    from repro.obs.instrument import Instrumentation

__all__ = ["ColumnarRun", "run_columnar", "schedule_batch"]


# -- word-kind and port codes -------------------------------------------------

K_NONE, K_SRC, K_DST, K_BOTH = 0, 1, 2, 3

_KIND_STR = ("[null,null]", "[s,null]", "[d,null]", "[s,d]")

#: in-port axis of the columnar crossbar: l_i, r_i, p_i.
_IN_L, _IN_R, _IN_P = 0, 1, 2
#: out-port codes: 0 = unconnected, then l_o, r_o, p_o.
_OUT_NONE, _OUT_L, _OUT_R, _OUT_P = 0, 1, 2, 3

#: the thirteen possible CONFIGURE staging outcomes (index 0 = stage
#: nothing); tuples match :func:`repro.core.phase2.configure` exactly,
#: including connection order, so per-round ``staged`` dicts compare equal.
_COMBOS: tuple[tuple[Connection, ...], ...] = (
    (),
    (CONN_L_TO_R,),                         # 1  [null,null], piggyback
    (CONN_L_UP,),                           # 2  [s,null], source left
    (CONN_R_UP,),                           # 3  [s,null], source right
    (CONN_R_UP, CONN_L_TO_R),               # 4  [s,null], right + piggyback
    (CONN_DOWN_R,),                         # 5  [d,null], dest right
    (CONN_DOWN_L,),                         # 6  [d,null], dest left
    (CONN_DOWN_L, CONN_L_TO_R),             # 7  [d,null], left + piggyback
    (CONN_L_UP, CONN_DOWN_R),               # 8  [s,d], src left / dst right
    (CONN_L_UP, CONN_DOWN_L),               # 9  [s,d], both left
    (CONN_R_UP, CONN_DOWN_R),               # 10 [s,d], both right
    (CONN_R_UP, CONN_DOWN_L),               # 11 [s,d], crossed, no matched
    (CONN_R_UP, CONN_DOWN_L, CONN_L_TO_R),  # 12 [s,d], crossed + piggyback
)

_CONN_PORTS: dict[Connection, tuple[int, int]] = {
    CONN_L_TO_R: (_IN_L, _OUT_R),
    CONN_L_UP: (_IN_L, _OUT_P),
    CONN_R_UP: (_IN_R, _OUT_P),
    CONN_DOWN_L: (_IN_P, _OUT_L),
    CONN_DOWN_R: (_IN_P, _OUT_R),
}

_COMBO_PORTS: tuple[tuple[tuple[int, int], ...], ...] = tuple(
    tuple(_CONN_PORTS[c] for c in combo) for combo in _COMBOS
)

_IN_PORTS = (InPort.L, InPort.R, InPort.P)
_OUT_BY_CODE = {_OUT_L: OutPort.L, _OUT_R: OutPort.R, _OUT_P: OutPort.P}


def _connections_of(row: np.ndarray) -> list[Connection]:
    """Decode one switch's columnar crossbar row back into connections."""
    return [
        Connection(_IN_PORTS[i], _OUT_BY_CODE[int(code)])
        for i, code in enumerate(row)
        if code
    ]


#: decoded ``SwitchConfiguration`` per packed crossbar row (l + 4r + 16p).
#: Configurations are immutable value objects, so one instance per distinct
#: row can be shared across every switch written back.
_CFG_CACHE: dict[int, Any] = {}


def _cached_config(code: int, row: np.ndarray) -> Any:
    conf = _CFG_CACHE.get(code)
    if conf is None:
        from repro.cst.switch import SwitchConfiguration

        conf = _CFG_CACHE.setdefault(code, SwitchConfiguration(_connections_of(row)))
    return conf


class _RoundStats:
    """Per-round accounting the single-schedule path feeds into obs/trace."""

    __slots__ = (
        "physical",
        "pruned",
        "power_units",
        "config_changes",
        "staged_switches",
        "writers",
        "performed",
    )

    def __init__(self) -> None:
        self.physical = 0
        self.pruned = 0
        self.power_units = 0
        self.config_changes = 0
        self.staged_switches = 0
        self.writers = 0
        self.performed = 0


class ColumnarRun:
    """One batched CSA execution over ``B`` same-tree communication sets.

    Array schema (``n`` leaves, ``B`` batch elements; flat views are the
    2-D arrays reshaped, indexed by ``b * n + v`` or ``b * 2n + node``):

    ==============  =========  ==================================================
    array           shape      contents
    ==============  =========  ==================================================
    ``m..t5``       (B, n)     the five ``C_S`` counters per switch
    ``pending``     (B, 2n)    subtree still-unscheduled matched totals
    ``srcs/dsts``   (B, 2n)    leaf slots ``[n:]`` keep the original role bits
    ``cfg``         (B*n, 3)   crossbar out-code per in-port (l_i, r_i, p_i)
    ``units``       (B*n,)     accumulated power units per switch
    ``changes``     (B*n,)     configuration-change count per switch
    ``commits``     (B*n,)     rounds in which the switch was staged
    ==============  =========  ==================================================

    Levels whose frontier holds at most :attr:`SCALAR_CUTOFF` entries are
    processed by a plain-Python loop over the same arrays
    (:meth:`_level_scalar`) — below that size numpy's per-call overhead
    exceeds the whole level's work.  Both paths implement identical
    arithmetic in identical order, so results are bit-identical regardless
    of where the cutoff lands (property-tested with the cutoff forced to
    0 and to ``inf``).
    """

    #: frontier size at/below which a level runs the scalar loop.
    SCALAR_CUTOFF = 64

    def __init__(
        self,
        n_leaves: int,
        roles_per_element: Sequence[Mapping[int, Role]],
        *,
        policy: PowerPolicy,
        strict: bool = True,
    ) -> None:
        if n_leaves < 2 or n_leaves & (n_leaves - 1):
            raise SchedulingError(
                f"columnar kernel requires a power-of-two leaf count, got {n_leaves}"
            )
        self.n = n_leaves
        self.B = len(roles_per_element)
        self.height = n_leaves.bit_length() - 1
        self.strict = strict
        self.scalar_cutoff = self.SCALAR_CUTOFF
        self.unit_cost = policy.unit_cost
        base = policy.wire_weight_base
        #: per-switch H-tree wire weight, ``base ** (height - level)``.
        self.weight = np.ones(n_leaves, dtype=np.int64)
        if base != 1:
            for lvl in range(self.height):
                self.weight[1 << lvl : 2 << lvl] = base ** (self.height - lvl)
        self._phase1(roles_per_element)
        B, n = self.B, self.n
        self.cfg = np.zeros((B * n, 3), dtype=np.int8)
        self.units = np.zeros(B * n, dtype=np.int64)
        self.changes = np.zeros(B * n, dtype=np.int64)
        self.commits = np.zeros(B * n, dtype=np.int64)
        self.rounds_by_element: list[list[RoundRecord]] = [[] for _ in range(B)]
        self.physical_total = np.zeros(B, dtype=np.int64)
        #: leaves that have written / latched, for obligation checks.
        self._w_done: list[set[int]] = [set() for _ in range(B)]
        self._r_done: list[set[int]] = [set() for _ in range(B)]

    # -- Phase 1 ---------------------------------------------------------------

    def _phase1(self, roles_per_element: Sequence[Mapping[int, Role]]) -> None:
        n, B = self.n, self.B
        srcs = np.zeros((B, 2 * n), dtype=np.int64)
        dsts = np.zeros((B, 2 * n), dtype=np.int64)
        for b, roles in enumerate(roles_per_element):
            for pe, role in roles.items():
                if role is Role.SOURCE:
                    srcs[b, n + pe] = 1
                elif role is Role.DESTINATION:
                    dsts[b, n + pe] = 1
        m = np.zeros((B, n), dtype=np.int64)
        t4 = np.zeros((B, n), dtype=np.int64)
        t3 = np.zeros((B, n), dtype=np.int64)
        t2 = np.zeros((B, n), dtype=np.int64)
        t5 = np.zeros((B, n), dtype=np.int64)
        for lvl in range(self.height - 1, -1, -1):
            lo, hi = 1 << lvl, 2 << lvl
            s_l, s_r = srcs[:, 2 * lo : 2 * hi : 2], srcs[:, 2 * lo + 1 : 2 * hi : 2]
            d_l, d_r = dsts[:, 2 * lo : 2 * hi : 2], dsts[:, 2 * lo + 1 : 2 * hi : 2]
            mm = np.minimum(s_l, d_r)  # Lemma 1
            m[:, lo:hi] = mm
            t4[:, lo:hi] = s_l - mm
            t3[:, lo:hi] = d_l
            t2[:, lo:hi] = s_r
            t5[:, lo:hi] = d_r - mm
            srcs[:, lo:hi] = s_l - mm + s_r
            dsts[:, lo:hi] = d_l + d_r - mm
        unbalanced = (srcs[:, 1] != 0) | (dsts[:, 1] != 0)
        if unbalanced.any():
            b = int(np.argmax(unbalanced))
            raise ProtocolError(
                f"unbalanced communication set: root would forward "
                f"{UpWord(int(srcs[b, 1]), int(dsts[b, 1]))} to a non-existent "
                "parent (some endpoint has no partner)"
            )
        pending = np.zeros((B, 2 * n), dtype=np.int64)
        for lvl in range(self.height - 1, -1, -1):
            lo, hi = 1 << lvl, 2 << lvl
            acc = m[:, lo:hi].copy()
            if 2 * lo < n:  # children are switches
                acc += pending[:, 2 * lo : 2 * hi : 2]
                acc += pending[:, 2 * lo + 1 : 2 * hi : 2]
            pending[:, lo:hi] = acc
        #: the five C_S counters stacked as one (5, B, n) block so the
        #: scalar level path can gather/scatter them in a single call;
        #: ``self.m`` .. ``self.t5`` are contiguous views into it.
        self.cnt = np.stack((m, t4, t3, t2, t5))
        self.m, self.t4, self.t3, self.t2, self.t5 = self.cnt
        self.pending = pending
        self.srcs, self.dsts = srcs, dsts

    def live_switch_counts(self) -> np.ndarray:
        """Per-element number of switches with any non-zero counter."""
        total = self.m + self.t4 + self.t3 + self.t2 + self.t5
        return np.count_nonzero(total, axis=1)

    def phase1_snapshot(self) -> tuple[np.ndarray, ...]:
        """Pristine copies for the scheduler's ``reuse_phase1`` cache."""
        return (self.cnt.copy(), self.pending.copy())

    def restore_phase1(self, snapshot: tuple[np.ndarray, ...]) -> None:
        cnt, pending = snapshot
        self.cnt = cnt.copy()
        self.m, self.t4, self.t3, self.t2, self.t5 = self.cnt
        self.pending = pending.copy()

    # -- Phase 2 ---------------------------------------------------------------

    @property
    def live_elements(self) -> np.ndarray:
        """Elements whose root still reports unscheduled matched pairs."""
        return np.nonzero(self.pending[:, 1] > 0)[0]

    def run_round(self, live: np.ndarray) -> list[_RoundStats]:
        """One Phase-2 down-wave over every element in ``live``.

        Returns per-live-element stats, aligned with ``live``; the round
        records themselves are appended to :attr:`rounds_by_element`.
        """
        n, B = self.n, self.B
        two_n = 2 * n
        mf = self.m.reshape(-1)
        t4f = self.t4.reshape(-1)
        t3f = self.t3.reshape(-1)
        t2f = self.t2.reshape(-1)
        t5f = self.t5.reshape(-1)
        pendf = self.pending.reshape(-1)
        srcsf = self.srcs.reshape(-1)
        dstsf = self.dsts.reshape(-1)

        E0 = live.size
        fb = live
        fv = np.ones(E0, dtype=np.int64)
        kind = np.zeros(E0, dtype=np.int64)
        xs = np.zeros(E0, dtype=np.int64)
        xd = np.zeros(E0, dtype=np.int64)
        sid = np.zeros(E0, dtype=np.int64)
        did = np.zeros(E0, dtype=np.int64)
        next_id = np.zeros(B, dtype=np.int64)

        staged_b: list[np.ndarray] = []
        staged_v: list[np.ndarray] = []
        staged_c: list[np.ndarray] = []
        sched_b: list[np.ndarray] = []
        sched_v: list[np.ndarray] = []
        wtr: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        rcv: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        phys = np.zeros(B, dtype=np.int64)
        pruned = np.zeros(B, dtype=np.int64)

        for lvl in range(self.height):
            if fv.size == 0:
                break
            last = lvl == self.height - 1
            if fv.size <= self.scalar_cutoff:
                fb, fv, kind, xs, xd, sid, did = self._level_scalar(
                    last, fb, fv, kind, xs, xd, sid, did, next_id,
                    staged_b, staged_v, staged_c, sched_b, sched_v,
                    wtr, rcv, phys, pruned,
                )
                continue
            keys = fb * n + fv
            out = self._configure_level(keys, fv, kind, xs, xd, sid, did, fb, next_id)
            combo, lk, lxs, lxd, lsid, rk, rxs, rxd, rsid, rdid, ldid = out

            staged = combo > 0
            if staged.any():
                staged_b.append(fb[staged])
                staged_v.append(fv[staged])
                staged_c.append(combo[staged])
            schedm = (combo == 1) | (combo == 4) | (combo == 7) | (combo == 12)
            if schedm.any():
                sched_b.append(fb[schedm])
                sched_v.append(fv[schedm])

            # interleave children: (left, right) per frontier entry.
            E = fv.size
            cb = np.repeat(fb, 2)
            cv = np.empty(2 * E, dtype=np.int64)
            cv[0::2] = 2 * fv
            cv[1::2] = 2 * fv + 1
            ck = np.empty(2 * E, dtype=np.int64)
            ck[0::2] = lk
            ck[1::2] = rk
            cxs = np.empty(2 * E, dtype=np.int64)
            cxs[0::2] = lxs
            cxs[1::2] = rxs
            cxd = np.empty(2 * E, dtype=np.int64)
            cxd[0::2] = lxd
            cxd[1::2] = rxd
            csid = np.empty(2 * E, dtype=np.int64)
            csid[0::2] = lsid
            csid[1::2] = rsid
            cdid = np.empty(2 * E, dtype=np.int64)
            cdid[0::2] = ldid
            cdid[1::2] = rdid

            if last:
                alive = ck != K_NONE
            else:
                alive = (ck != K_NONE) | (pendf[cb * two_n + cv] > 0)
            phys += np.bincount(cb[alive], minlength=B)
            dead_b = cb[~alive]
            if dead_b.size:
                pruned += np.bincount(dead_b, minlength=B)

            if last:
                self._leaf_words(cb, cv, ck, cxs, cxd, csid, cdid, alive, wtr, rcv,
                                 srcsf, dstsf, two_n)
            else:
                fb = cb[alive]
                fv = cv[alive]
                kind = ck[alive]
                xs = cxs[alive]
                xd = cxd[alive]
                sid = csid[alive]
                did = cdid[alive]

        return self._finish_round(
            live, staged_b, staged_v, staged_c, sched_b, sched_v, wtr, rcv,
            phys, pruned,
        )

    def _level_scalar(
        self,
        last: bool,
        fb: np.ndarray,
        fv: np.ndarray,
        kind: np.ndarray,
        xs: np.ndarray,
        xd: np.ndarray,
        sid: np.ndarray,
        did: np.ndarray,
        next_id: np.ndarray,
        staged_b: list,
        staged_v: list,
        staged_c: list,
        sched_b: list,
        sched_v: list,
        wtr: list,
        rcv: list,
        phys: np.ndarray,
        pruned: np.ndarray,
    ) -> tuple[np.ndarray, ...]:
        """Scalar CONFIGURE over one small frontier level.

        Same arithmetic as :meth:`_configure_level` plus the surrounding
        child/alive handling of :meth:`run_round`, as straight Python over
        the same arrays; used when the frontier is too small for the
        vector path's fixed per-op cost to pay off.  Entry order, staging
        order, id assignment and validation order all match the vector
        path exactly.
        """
        n = self.n
        two_n = 2 * n
        keys = fb * n + fv
        cntf = self.cnt.reshape(5, -1)
        mL, a4L, a3L, a2L, a5L = cntf[:, keys].tolist()
        fbl = fb.tolist()
        fvl = fv.tolist()
        kl = kind.tolist()
        xsl = xs.tolist()
        xdl = xd.tolist()
        sidl = sid.tolist()
        didl = did.tolist()
        E = len(fbl)

        # validation sweeps before any mutation, in the vector path's order.
        for i in range(E):
            k = kl[i]
            if (k == K_SRC or k == K_BOTH) and xsl[i] >= a4L[i] + a2L[i]:
                raise ProtocolError(
                    f"switch {fvl[i]}: source rank {xsl[i]} out of range "
                    f"(only {a4L[i] + a2L[i]} sources remain)"
                )
        for i in range(E):
            k = kl[i]
            if (k == K_DST or k == K_BOTH) and xdl[i] >= a5L[i] + a3L[i]:
                raise ProtocolError(
                    f"switch {fvl[i]}: destination rank {xdl[i]} out of "
                    f"range (only {a5L[i] + a3L[i]} destinations remain)"
                )

        nidl = next_id.tolist()
        st_b: list[int] = []
        st_v: list[int] = []
        st_c: list[int] = []
        sc_b: list[int] = []
        sc_v: list[int] = []
        # children, interleaved (left, right) per entry: (b, node, word).
        ch: list[tuple[int, int, int, int, int, int, int]] = []
        for i in range(E):
            b = fbl[i]
            v = fvl[i]
            k = kl[i]
            m0 = mL[i]
            a4 = a4L[i]
            a3 = a3L[i]
            a2 = a2L[i]
            a5 = a5L[i]
            x_s = xsl[i]
            x_d = xdl[i]
            s_id = sidl[i]
            d_id = didl[i]
            combo = 0
            lw = rw = (K_NONE, 0, 0, 0, 0)  # (kind, xs, xd, sid, did)
            if k == K_NONE:
                if m0 > 0:
                    combo = 1
                    nid = nidl[b]
                    nidl[b] = nid + 1
                    lw = (K_SRC, a4, 0, nid, 0)
                    rw = (K_DST, 0, a5, 0, nid)
                    mL[i] = m0 - 1
            elif k == K_SRC:
                if x_s < a4:
                    combo = 2
                    lw = (K_SRC, x_s, 0, s_id, 0)
                    a4L[i] = a4 - 1
                elif m0 > 0:
                    combo = 4
                    nid = nidl[b]
                    nidl[b] = nid + 1
                    lw = (K_SRC, a4, 0, nid, 0)
                    rw = (K_BOTH, x_s - a4, a5, s_id, nid)
                    a2L[i] = a2 - 1
                    mL[i] = m0 - 1
                else:
                    combo = 3
                    rw = (K_SRC, x_s - a4, 0, s_id, 0)
                    a2L[i] = a2 - 1
            elif k == K_DST:
                if x_d < a5:
                    combo = 5
                    rw = (K_DST, 0, x_d, 0, d_id)
                    a5L[i] = a5 - 1
                elif m0 > 0:
                    combo = 7
                    nid = nidl[b]
                    nidl[b] = nid + 1
                    lw = (K_BOTH, a4, x_d - a5, nid, d_id)
                    rw = (K_DST, 0, a5, 0, nid)
                    a3L[i] = a3 - 1
                    mL[i] = m0 - 1
                else:
                    combo = 6
                    lw = (K_DST, 0, x_d - a5, 0, d_id)
                    a3L[i] = a3 - 1
            else:  # K_BOTH
                if x_s < a4:
                    if x_d < a5:
                        combo = 8
                        lw = (K_SRC, x_s, 0, s_id, 0)
                        rw = (K_DST, 0, x_d, 0, d_id)
                        a4L[i] = a4 - 1
                        a5L[i] = a5 - 1
                    else:
                        combo = 9
                        lw = (K_BOTH, x_s, x_d - a5, s_id, d_id)
                        a4L[i] = a4 - 1
                        a3L[i] = a3 - 1
                elif x_d < a5:
                    combo = 10
                    rw = (K_BOTH, x_s - a4, x_d, s_id, d_id)
                    a2L[i] = a2 - 1
                    a5L[i] = a5 - 1
                elif m0 > 0:
                    combo = 12
                    nid = nidl[b]
                    nidl[b] = nid + 1
                    lw = (K_BOTH, a4, x_d - a5, nid, d_id)
                    rw = (K_BOTH, x_s - a4, a5, s_id, nid)
                    a2L[i] = a2 - 1
                    a3L[i] = a3 - 1
                    mL[i] = m0 - 1
                else:
                    combo = 11
                    lw = (K_DST, 0, x_d - a5, 0, d_id)
                    rw = (K_SRC, x_s - a4, 0, s_id, 0)
                    a2L[i] = a2 - 1
                    a3L[i] = a3 - 1
            if combo:
                st_b.append(b)
                st_v.append(v)
                st_c.append(combo)
                if combo == 1 or combo == 4 or combo == 7 or combo == 12:
                    sc_b.append(b)
                    sc_v.append(v)
            ch.append((b, 2 * v) + lw)
            ch.append((b, 2 * v + 1) + rw)

        # counter write-back (keys are unique within a level).
        cntf[:, keys] = (mL, a4L, a3L, a2L, a5L)
        next_id[:] = nidl
        if st_b:
            st = np.asarray((st_b, st_v, st_c), dtype=np.int64)
            staged_b.append(st[0])
            staged_v.append(st[1])
            staged_c.append(st[2])
        if sc_b:
            sc = np.asarray((sc_b, sc_v), dtype=np.int64)
            sched_b.append(sc[0])
            sched_v.append(sc[1])

        B = self.B
        alive_bs: list[int] = []
        dead_bs: list[int] = []
        if last:
            alive_ch = [c for c in ch if c[2] != K_NONE]
            dead_bs = [c[0] for c in ch if c[2] == K_NONE]
            alive_bs = [c[0] for c in alive_ch]
            # leaf validation/collection sweeps in _leaf_words order.
            for b, node, k, cxs, cxd, csid, cdid in alive_ch:
                if k == K_BOTH:
                    raise ProtocolError(
                        f"leaf PE {node - n} received [s,d] — a PE cannot be "
                        "both endpoints"
                    )
            for b, node, k, cxs, cxd, csid, cdid in alive_ch:
                if cxs != 0 or cxd != 0:
                    word = f"{_KIND_STR[k]}(x_s={cxs}, x_d={cxd})"
                    raise ProtocolError(
                        f"leaf PE {node - n} received non-zero rank in {word}"
                    )
            srcsf = self.srcs.reshape(-1)
            dstsf = self.dsts.reshape(-1)
            w_b: list[int] = []
            w_pe: list[int] = []
            w_id: list[int] = []
            for b, node, k, cxs, cxd, csid, cdid in alive_ch:
                if k == K_SRC:
                    key = b * two_n + node
                    if not srcsf[key]:
                        role = "destination" if dstsf[key] else "neither"
                        raise ProtocolError(
                            f"leaf PE {node - n} asked to transmit but role "
                            f"is {role}"
                        )
                    w_b.append(b)
                    w_pe.append(node - n)
                    w_id.append(csid)
            if w_b:
                w = np.asarray((w_b, w_pe, w_id), dtype=np.int64)
                wtr.append((w[0], w[1], w[2]))
            r_b: list[int] = []
            r_pe: list[int] = []
            r_id: list[int] = []
            for b, node, k, cxs, cxd, csid, cdid in alive_ch:
                if k == K_DST:
                    key = b * two_n + node
                    if not dstsf[key]:
                        role = "source" if srcsf[key] else "neither"
                        raise ProtocolError(
                            f"leaf PE {node - n} asked to receive but role "
                            f"is {role}"
                        )
                    r_b.append(b)
                    r_pe.append(node - n)
                    r_id.append(cdid)
            if r_b:
                r = np.asarray((r_b, r_pe, r_id), dtype=np.int64)
                rcv.append((r[0], r[1], r[2]))
            nxt: list[tuple[int, int, int, int, int, int, int]] = []
        else:
            pendf = self.pending.reshape(-1)
            nxt = []
            for c in ch:
                if c[2] != K_NONE or pendf[c[0] * two_n + c[1]] > 0:
                    alive_bs.append(c[0])
                    nxt.append(c)
                else:
                    dead_bs.append(c[0])
        if alive_bs:
            phys += np.bincount(
                np.asarray(alive_bs, dtype=np.int64), minlength=B
            )
        if dead_bs:
            pruned += np.bincount(
                np.asarray(dead_bs, dtype=np.int64), minlength=B
            )
        if not nxt:
            return (np.empty(0, dtype=np.int64),) * 7
        arr = np.asarray(nxt, dtype=np.int64)
        return tuple(arr[:, j] for j in range(7))

    def _configure_level(
        self,
        keys: np.ndarray,
        fv: np.ndarray,
        kind: np.ndarray,
        xs: np.ndarray,
        xd: np.ndarray,
        sid: np.ndarray,
        did: np.ndarray,
        fb: np.ndarray,
        next_id: np.ndarray,
    ) -> tuple[np.ndarray, ...]:
        """Vectorised CONFIGURE over one frontier level.

        Mutates the counter columns at ``keys`` and returns the staged-combo
        column plus the word columns for the left and right children.  Every
        masked update below mirrors one branch of
        :func:`repro.core.phase2.configure`; rank arithmetic uses the
        pre-decrement counters, exactly as the scalar code reads them.
        """
        E = keys.size
        m = self.m.reshape(-1)[keys]
        a4 = self.t4.reshape(-1)[keys]
        a3 = self.t3.reshape(-1)[keys]
        a2 = self.t2.reshape(-1)[keys]
        a5 = self.t5.reshape(-1)[keys]

        wants_src = kind == K_SRC
        wants_dst = kind == K_DST
        is_both = kind == K_BOTH
        any_src = wants_src | is_both
        any_dst = wants_dst | is_both
        if any_src.any():
            bad = any_src & (xs >= a4 + a2)
            if bad.any():
                i = int(np.argmax(bad))
                raise ProtocolError(
                    f"switch {int(fv[i])}: source rank {int(xs[i])} out of range "
                    f"(only {int(a4[i] + a2[i])} sources remain)"
                )
        if any_dst.any():
            bad = any_dst & (xd >= a5 + a3)
            if bad.any():
                i = int(np.argmax(bad))
                raise ProtocolError(
                    f"switch {int(fv[i])}: destination rank {int(xd[i])} out of "
                    f"range (only {int(a5[i] + a3[i])} destinations remain)"
                )

        combo = np.zeros(E, dtype=np.int64)
        lk = np.zeros(E, dtype=np.int64)
        rk = np.zeros(E, dtype=np.int64)
        lxs = np.zeros(E, dtype=np.int64)
        lxd = np.zeros(E, dtype=np.int64)
        rxs = np.zeros(E, dtype=np.int64)
        rxd = np.zeros(E, dtype=np.int64)
        lsid = np.zeros(E, dtype=np.int64)
        ldid = np.zeros(E, dtype=np.int64)
        rsid = np.zeros(E, dtype=np.int64)
        rdid = np.zeros(E, dtype=np.int64)

        has_m = m > 0
        src_left = xs < a4
        dst_right = xd < a5

        # [null,null] with a matched pair left: schedule O_c(u).
        mN1 = (kind == K_NONE) & has_m
        if mN1.any():
            combo[mN1] = 1
            lk[mN1] = K_SRC
            lxs[mN1] = a4[mN1]
            rk[mN1] = K_DST
            rxd[mN1] = a5[mN1]

        if wants_src.any():
            sL = wants_src & src_left
            if sL.any():
                combo[sL] = 2
                lk[sL] = K_SRC
                lxs[sL] = xs[sL]
                lsid[sL] = sid[sL]
            sR = wants_src & ~src_left
            if sR.any():
                xsr = xs - a4
                sR0 = sR & ~has_m
                if sR0.any():
                    combo[sR0] = 3
                    rk[sR0] = K_SRC
                    rxs[sR0] = xsr[sR0]
                    rsid[sR0] = sid[sR0]
                sR1 = sR & has_m
                if sR1.any():
                    combo[sR1] = 4
                    lk[sR1] = K_SRC
                    lxs[sR1] = a4[sR1]
                    rk[sR1] = K_BOTH
                    rxs[sR1] = xsr[sR1]
                    rxd[sR1] = a5[sR1]
                    rsid[sR1] = sid[sR1]
        else:
            sL = sR = sR0 = sR1 = _FALSE

        if wants_dst.any():
            dR = wants_dst & dst_right
            if dR.any():
                combo[dR] = 5
                rk[dR] = K_DST
                rxd[dR] = xd[dR]
                rdid[dR] = did[dR]
            dL = wants_dst & ~dst_right
            if dL.any():
                xdl = xd - a5
                dL0 = dL & ~has_m
                if dL0.any():
                    combo[dL0] = 6
                    lk[dL0] = K_DST
                    lxd[dL0] = xdl[dL0]
                    ldid[dL0] = did[dL0]
                dL1 = dL & has_m
                if dL1.any():
                    combo[dL1] = 7
                    lk[dL1] = K_BOTH
                    lxs[dL1] = a4[dL1]
                    lxd[dL1] = xdl[dL1]
                    ldid[dL1] = did[dL1]
                    rk[dL1] = K_DST
                    rxd[dL1] = a5[dL1]
            else:
                dL0 = dL1 = _FALSE
        else:
            dR = dL = dL0 = dL1 = _FALSE

        if is_both.any():
            xsr = xs - a4
            xdl = xd - a5
            b1 = is_both & src_left & dst_right
            if b1.any():
                combo[b1] = 8
                lk[b1] = K_SRC
                lxs[b1] = xs[b1]
                lsid[b1] = sid[b1]
                rk[b1] = K_DST
                rxd[b1] = xd[b1]
                rdid[b1] = did[b1]
            b2 = is_both & src_left & ~dst_right
            if b2.any():
                combo[b2] = 9
                lk[b2] = K_BOTH
                lxs[b2] = xs[b2]
                lxd[b2] = xdl[b2]
                lsid[b2] = sid[b2]
                ldid[b2] = did[b2]
            b3 = is_both & ~src_left & dst_right
            if b3.any():
                combo[b3] = 10
                rk[b3] = K_BOTH
                rxs[b3] = xsr[b3]
                rxd[b3] = xd[b3]
                rsid[b3] = sid[b3]
                rdid[b3] = did[b3]
            b4 = is_both & ~src_left & ~dst_right
            b40 = b4 & ~has_m
            if b40.any():
                combo[b40] = 11
                lk[b40] = K_DST
                lxd[b40] = xdl[b40]
                ldid[b40] = did[b40]
                rk[b40] = K_SRC
                rxs[b40] = xsr[b40]
                rsid[b40] = sid[b40]
            b41 = b4 & has_m
            if b41.any():
                combo[b41] = 12
                lk[b41] = K_BOTH
                lxs[b41] = a4[b41]
                lxd[b41] = xdl[b41]
                ldid[b41] = did[b41]
                rk[b41] = K_BOTH
                rxs[b41] = xsr[b41]
                rxd[b41] = a5[b41]
                rsid[b41] = sid[b41]
        else:
            b1 = b2 = b3 = b4 = b40 = b41 = _FALSE

        # a fresh circuit id for every pair scheduled at this level — the id
        # pairs the O_c(u) source request (left) with its destination (right).
        schedm = (combo == 1) | (combo == 4) | (combo == 7) | (combo == 12)
        if schedm.any():
            sb = fb[schedm]
            order = np.argsort(sb, kind="stable")
            inv = np.empty(sb.size, dtype=np.int64)
            inv[order] = np.arange(sb.size)
            sb_sorted = sb[order]
            starts = np.r_[0, np.nonzero(np.diff(sb_sorted))[0] + 1]
            rank = np.arange(sb.size) - np.repeat(
                starts, np.diff(np.r_[starts, sb.size])
            )
            new_ids = (next_id[sb_sorted] + rank)[inv]
            uniq = sb_sorted[starts]
            counts = np.diff(np.r_[starts, sb.size])
            next_id[uniq] += counts
            lsid[schedm] = new_ids
            rdid[schedm] = new_ids

        # counter decrements — after all rank arithmetic, as in the scalar code.
        flat = self.t4.reshape(-1)
        d = sL | b1 | b2
        if d.any():
            flat[keys] = a4 - d
        flat = self.t2.reshape(-1)
        d = sR | b3 | b4
        if d.any():
            flat[keys] = a2 - d
        flat = self.t5.reshape(-1)
        d = dR | b1 | b3
        if d.any():
            flat[keys] = a5 - d
        flat = self.t3.reshape(-1)
        d = dL | b2 | b4
        if d.any():
            flat[keys] = a3 - d
        if schedm.any():
            self.m.reshape(-1)[keys] = m - schedm

        return combo, lk, lxs, lxd, lsid, rk, rxs, rxd, rsid, rdid, ldid

    def _leaf_words(
        self,
        cb: np.ndarray,
        cv: np.ndarray,
        ck: np.ndarray,
        cxs: np.ndarray,
        cxd: np.ndarray,
        csid: np.ndarray,
        cdid: np.ndarray,
        alive: np.ndarray,
        wtr: list,
        rcv: list,
        srcsf: np.ndarray,
        dstsf: np.ndarray,
        two_n: int,
    ) -> None:
        """Validate the words delivered to leaves; collect writers/receivers."""
        n = self.n
        bad = alive & (ck == K_BOTH)
        if bad.any():
            i = int(np.argmax(bad))
            raise ProtocolError(
                f"leaf PE {int(cv[i]) - n} received [s,d] — a PE cannot be "
                "both endpoints"
            )
        bad = alive & ((cxs != 0) | (cxd != 0))
        if bad.any():
            i = int(np.argmax(bad))
            word = f"{_KIND_STR[int(ck[i])]}(x_s={int(cxs[i])}, x_d={int(cxd[i])})"
            raise ProtocolError(
                f"leaf PE {int(cv[i]) - n} received non-zero rank in {word}"
            )
        leaf_keys = cb * two_n + cv
        ws = alive & (ck == K_SRC)
        if ws.any():
            bad = ws & (srcsf[leaf_keys] == 0)
            if bad.any():
                i = int(np.argmax(bad))
                role = "destination" if dstsf[leaf_keys[i]] else "neither"
                raise ProtocolError(
                    f"leaf PE {int(cv[i]) - n} asked to transmit but role is {role}"
                )
            wtr.append((cb[ws], cv[ws] - n, csid[ws]))
        wd = alive & (ck == K_DST)
        if wd.any():
            bad = wd & (dstsf[leaf_keys] == 0)
            if bad.any():
                i = int(np.argmax(bad))
                role = "source" if srcsf[leaf_keys[i]] else "neither"
                raise ProtocolError(
                    f"leaf PE {int(cv[i]) - n} asked to receive but role is {role}"
                )
            rcv.append((cb[wd], cv[wd] - n, cdid[wd]))

    def _finish_round(
        self,
        live: np.ndarray,
        staged_b: list,
        staged_v: list,
        staged_c: list,
        sched_b: list,
        sched_v: list,
        wtr: list,
        rcv: list,
        phys: np.ndarray,
        pruned: np.ndarray,
    ) -> list[_RoundStats]:
        n, B = self.n, self.B
        stats = {int(b): _RoundStats() for b in live}
        round_units = np.zeros(B, dtype=np.int64)
        round_changes = np.zeros(B, dtype=np.int64)
        staged_counts = np.zeros(B, dtype=np.int64)

        # crossbar staging + power, grouped by connection tuple.
        if staged_b:
            sfb = np.concatenate(staged_b)
            sfv = np.concatenate(staged_v)
            sfc = np.concatenate(staged_c)
            keys = sfb * n + sfv
            self.commits[keys] += 1  # keys unique: one staging per switch/round
            staged_counts = np.bincount(sfb, minlength=B)
            cfg = self.cfg
            if sfb.size <= self.scalar_cutoff:
                # small round: per-entry Python beats 12 masked passes.
                rows = cfg[keys].tolist()
                wts = self.weight[sfv].tolist()
                unit_cost = self.unit_cost
                costs: list[int] = []
                changed_l: list[int] = []
                for i, combo in enumerate(sfc.tolist()):
                    row = rows[i]
                    charged = 0
                    for in_idx, out_code in _COMBO_PORTS[combo]:
                        if row[in_idx] != out_code:
                            charged += 1
                        for other in (_IN_L, _IN_R, _IN_P):
                            if other != in_idx and row[other] == out_code:
                                row[other] = 0
                        row[in_idx] = out_code
                    costs.append(charged * (unit_cost * wts[i]))
                    changed_l.append(1 if charged else 0)
                cfg[keys] = rows
                cost_a = np.asarray(costs, dtype=np.int64)
                changed_a = np.asarray(changed_l, dtype=np.int64)
                self.units[keys] += cost_a
                self.changes[keys] += changed_a
                np.add.at(round_units, sfb, cost_a)
                np.add.at(round_changes, sfb, changed_a)
            else:
                for code in range(1, 13):
                    sel = np.nonzero(sfc == code)[0]
                    if sel.size == 0:
                        continue
                    k = keys[sel]
                    charged = np.zeros(sel.size, dtype=np.int64)
                    for in_idx, out_code in _COMBO_PORTS[code]:
                        cur = cfg[k, in_idx]
                        charged += cur != out_code
                        # lazy displacement: another in-port driving this
                        # output loses its connection
                        # (SwitchConfiguration.with_connection).
                        for other in (_IN_L, _IN_R, _IN_P):
                            if other == in_idx:
                                continue
                            dis = cfg[k, other] == out_code
                            if dis.any():
                                cfg[k[dis], other] = 0
                        cfg[k, in_idx] = out_code
                    cost = charged * (self.unit_cost * self.weight[sfv[sel]])
                    self.units[k] += cost
                    changed = charged > 0
                    self.changes[k] += changed
                    np.add.at(round_units, sfb[sel], cost)
                    np.add.at(round_changes, sfb[sel], changed)

        # batched pending decrements: each scheduling switch and its ancestors.
        if sched_b:
            bb = np.concatenate(sched_b)
            nodes = np.concatenate(sched_v)
            pendf = self.pending.reshape(-1)
            two_n = 2 * n
            while nodes.size:
                np.subtract.at(pendf, bb * two_n + nodes, 1)
                keep = nodes > 1
                if not keep.all():
                    nodes = nodes[keep]
                    bb = bb[keep]
                nodes = nodes >> 1

        # pair writers with receivers by circuit id.
        if wtr:
            wb = np.concatenate([w[0] for w in wtr])
            wpe = np.concatenate([w[1] for w in wtr])
            wid = np.concatenate([w[2] for w in wtr])
        else:
            wb = wpe = wid = _EMPTY
        if rcv:
            rb = np.concatenate([r[0] for r in rcv])
            rpe = np.concatenate([r[1] for r in rcv])
            rid = np.concatenate([r[2] for r in rcv])
        else:
            rb = rpe = rid = _EMPTY

        nw = np.bincount(wb, minlength=B)
        nr = np.bincount(rb, minlength=B)
        mismatch = nw != nr
        if mismatch.any():
            b = int(np.argmax(mismatch))
            raise ProtocolError(
                f"round {len(self.rounds_by_element[b])}: {int(nw[b])} writers "
                f"but {int(nr[b])} receivers — the control wave is inconsistent"
            )

        recv_map: dict[tuple[int, int], int] = {}
        recv_by_b: dict[int, list[int]] = {}
        for b, pe, cid in zip(rb.tolist(), rpe.tolist(), rid.tolist()):
            recv_map[(b, cid)] = pe
            recv_by_b.setdefault(b, []).append(pe)

        order = np.lexsort((wpe, wb))
        performed_by_b: dict[int, list[Communication]] = {}
        writers_by_b: dict[int, list[int]] = {}
        for b, pe, cid in zip(
            wb[order].tolist(), wpe[order].tolist(), wid[order].tolist()
        ):
            dst = recv_map.get((b, cid))
            if dst is None:
                if self.strict:
                    rnd = len(self.rounds_by_element[b])
                    delivered = sorted(
                        c.dst for c in performed_by_b.get(b, [])
                    )
                    raise ProtocolError(
                        f"round {rnd}: control wave selected receivers "
                        f"{sorted(recv_by_b.get(b, []))} but data arrived at "
                        f"{delivered}"
                    )
                continue
            performed_by_b.setdefault(b, []).append(Communication(pe, dst))
            writers_by_b.setdefault(b, []).append(pe)

        staged_by_b: dict[int, dict[int, tuple[Connection, ...]]] = {}
        if staged_b:
            for b, v, c in zip(sfb.tolist(), sfv.tolist(), sfc.tolist()):
                staged_by_b.setdefault(b, {})[v] = _COMBOS[c]

        self.physical_total += phys
        out: list[_RoundStats] = []
        for b in live.tolist():
            rounds = self.rounds_by_element[b]
            performed = performed_by_b.get(b, [])
            writers = writers_by_b.get(b, [])
            record = RoundRecord(
                index=len(rounds),
                performed=tuple(performed),
                writers=tuple(writers),
                staged=staged_by_b.get(b, {}),
            )
            rounds.append(record)
            self._w_done[b].update(writers)
            self._r_done[b].update(c.dst for c in performed)
            st = stats[b]
            st.physical = int(phys[b])
            st.pruned = int(pruned[b])
            st.writers = len(writers)
            st.performed = len(performed)
            st.power_units = int(round_units[b])
            st.config_changes = int(round_changes[b])
            st.staged_switches = int(staged_counts[b])
            out.append(st)
        return out

    # -- postconditions & reporting --------------------------------------------

    def check_counters_exhausted(self) -> None:
        """The global invariant: every counter on every switch is spent."""
        total = self.m + self.t4 + self.t3 + self.t2 + self.t5
        leftover_elems = np.nonzero(total.any(axis=1))[0]
        if leftover_elems.size:
            b = int(leftover_elems[0])
            leftovers = {
                int(v): (
                    int(self.m[b, v]),
                    int(self.t4[b, v]),
                    int(self.t3[b, v]),
                    int(self.t2[b, v]),
                    int(self.t5[b, v]),
                )
                for v in np.nonzero(total[b])[0]
            }
            raise ProtocolError(
                f"CSA finished with non-exhausted switch counters: {leftovers}"
            )

    def check_obligations(self, element: int) -> None:
        """Array-level equivalent of ``CSTNetwork.all_done`` for one element."""
        n = self.n
        srcs = self.srcs[element, n:]
        dsts = self.dsts[element, n:]
        w_done, r_done = self._w_done[element], self._r_done[element]
        unsatisfied = [
            pe
            for pe in np.nonzero(srcs | dsts)[0].tolist()
            if (srcs[pe] and pe not in w_done) or (dsts[pe] and pe not in r_done)
        ]
        if unsatisfied:
            raise ProtocolError(
                f"CSA finished but PEs {unsatisfied} are unsatisfied"
            )

    def power_report(self, element: int) -> PowerReport:
        n = self.n
        units = self.units[element * n : (element + 1) * n]
        changes = self.changes[element * n : (element + 1) * n]
        per_units = {int(v): int(units[v]) for v in np.nonzero(units)[0]}
        per_changes = {int(v): int(changes[v]) for v in np.nonzero(changes)[0]}
        return PowerReport(
            total_units=int(units.sum()),
            per_switch_units=per_units,
            per_switch_changes=per_changes,
            rounds=len(self.rounds_by_element[element]),
        )

    def write_back(self, network: "CSTNetwork") -> None:
        """Install this run's final state on a (previously pristine) network.

        Keeps a caller-supplied network bit-identical to one the scalar
        engine ran on: switch crossbars, per-switch change counts, meter
        totals and ``rounds_run`` all match, so later scalar rounds on the
        same network (e.g. stream steps that fall off the columnar guards)
        continue from equivalent state.  Only valid for ``B == 1``.
        """
        if self.B != 1:
            raise SchedulingError("write_back requires a single-element run")
        n = self.n
        n_rounds = len(self.rounds_by_element[0])
        touched = np.nonzero(
            self.cfg.any(axis=1) | (self.commits[:n] > 0)
        )[0]
        switches = network.switches
        rows = self.cfg[touched]
        codes = (rows[:, 0] + 4 * rows[:, 1] + 16 * rows[:, 2]).tolist()
        t_changes = self.changes[touched].tolist()
        t_commits = self.commits[touched].tolist()
        for i, v in enumerate(touched.tolist()):
            if v == 0:
                continue
            sw = switches[v]
            sw._config = _cached_config(codes[i], rows[i])
            sw.config_changes = t_changes[i]
            sw.rounds_committed = t_commits[i]
        meter = network.meter
        for v in np.nonzero(self.units[:n])[0].tolist():
            meter._units[v] = meter._units.get(v, 0) + int(self.units[v])
        for v in np.nonzero(self.changes[:n])[0].tolist():
            meter._changes[v] = meter._changes.get(v, 0) + int(self.changes[v])
        network.rounds_run += n_rounds


_FALSE = np.zeros(1, dtype=bool)
_EMPTY = np.zeros(0, dtype=np.int64)


# -- single-schedule path (behind PADRScheduler) ------------------------------


def run_columnar(
    scheduler: Any,
    cset: CommunicationSet,
    n: int,
    network: "CSTNetwork | None",
    policy: PowerPolicy | None,
    obs: "Instrumentation | None",
) -> Schedule:
    """Execute one schedule through the columnar kernel.

    Drop-in replacement for the scalar body of ``PADRScheduler._run`` once
    the columnar guards hold (see ``PADRScheduler._columnar_applicable``).
    Emits the same logical observability stream and, when a network is
    supplied, leaves it in the same final state as the scalar engine.
    """
    from repro.cst.engine import EngineTrace

    roles = cset.roles()
    if network is not None:
        network.assign_roles(roles)
        engine = scheduler.engine_factory(network)
        trace = engine.trace
        pol = network.meter.policy
    else:
        engine = None
        trace = EngineTrace()
        cap = scheduler.config.trace_wave_cap
        if cap != EngineTrace.PER_WAVE_CAP:
            trace.PER_WAVE_CAP = cap
        pol = policy or PowerPolicy.paper()

    if obs is not None:
        obs.run_start(scheduler=scheduler.name, n_leaves=n, n_comms=len(cset))
        trace.on_wave = obs.wave_hook()
        if network is not None:
            obs.attach(network)

    n_links = 2 * n - 2
    fault_sig = network.fault_signature() if network is not None else ()
    key = (n, dict(roles), fault_sig)
    cached = (
        scheduler.reuse_phase1
        and key == scheduler._phase1_cols_key
        and scheduler._phase1_cols is not None
    )
    if cached:
        run, snapshot, live_count = scheduler._phase1_cols
        run.restore_phase1(snapshot)
        run.strict = scheduler.strict
        run.rounds_by_element = [[]]
        run.physical_total = np.zeros(1, dtype=np.int64)
        run.cfg[:] = 0
        run.units[:] = 0
        run.changes[:] = 0
        run.commits[:] = 0
        run._w_done = [set()]
        run._r_done = [set()]
        if obs is not None:
            obs.phase1(
                live_switches=live_count,
                logical_messages=0,
                physical_messages=0,
                cached=True,
            )
    else:
        if obs is not None:
            with obs.metrics.span("csa.phase1", run=obs.run):
                run = ColumnarRun(n, [roles], policy=pol, strict=scheduler.strict)
        else:
            run = ColumnarRun(n, [roles], policy=pol, strict=scheduler.strict)
        trace.record_wave(n_links, n_links * UpWord.wire_words())
        if obs is not None:
            obs.phase1(
                live_switches=int(run.live_switch_counts()[0]),
                logical_messages=n_links,
                physical_messages=n_links,
                cached=False,
            )
        if scheduler.reuse_phase1:
            live_count = int(run.live_switch_counts()[0])
            scheduler._phase1_cols_key = key
            scheduler._phase1_cols = (run, run.phase1_snapshot(), live_count)

    max_rounds = len(cset) + 1  # Theorem 5 promises exactly `width` rounds
    down_words = n_links * 3  # DownWord.wire_words()
    round_no = 0
    while True:
        live = run.live_elements
        if live.size == 0:
            break
        if round_no >= max_rounds:
            raise SchedulingError(
                f"CSA exceeded {max_rounds} rounds — algorithm failed to make "
                "progress (this indicates a bug or invalid input)"
            )
        (st,) = run.run_round(live)
        trace.record_wave(
            n_links,
            down_words,
            physical_messages=st.physical,
            physical_words=st.physical * 3,
        )
        if network is not None:
            record = run.rounds_by_element[0][round_no]
            pes = network.pes
            for comm in record.performed:
                datum = pes[comm.src].write(round_no)
                receiver = pes[comm.dst]
                if receiver.role is Role.DESTINATION:
                    receiver.latch(datum, round_no)
        if obs is not None:
            obs.round(
                index=round_no,
                writers=st.writers,
                performed=st.performed,
                staged_switches=st.staged_switches,
                config_changes=st.config_changes,
                power_units=st.power_units,
                logical_messages=n_links,
                physical_messages=st.physical,
                pruned_subtrees=st.pruned,
            )
        round_no += 1

    if scheduler.check_postconditions:
        run.check_counters_exhausted()
        if network is not None:
            if not network.all_done:
                unsat = [pe.index for pe in network.pes if not pe.done]
                raise ProtocolError(f"CSA finished but PEs {unsat} are unsatisfied")
        else:
            run.check_obligations(0)

    if network is not None:
        run.write_back(network)
        power = network.power_report()
    else:
        power = run.power_report(0)

    scheduler.last_network = network
    scheduler.last_states = None

    schedule = Schedule(
        cset=cset,
        n_leaves=n,
        scheduler_name=scheduler.name,
        rounds=tuple(run.rounds_by_element[0]),
        power=power,
        control_messages=trace.messages,
        control_words=trace.words,
        physical_messages=trace.physical_messages,
    )
    if obs is not None:
        obs.run_end(schedule)
    return schedule


# -- batched entry point ------------------------------------------------------


def schedule_batch(
    csets: Iterable[CommunicationSet],
    *,
    n_leaves: int,
    config: "SchedulerConfig | None" = None,
    policy: PowerPolicy | None = None,
) -> list[Schedule]:
    """Schedule many independent communication sets in one kernel invocation.

    Every set runs on its own (virtual) ``n_leaves``-leaf tree; results are
    bit-identical to calling ``PADRScheduler(config=...).schedule(cset,
    n_leaves)`` per set, but the per-wave work is batched across all sets
    still live in a given round, amortising the kernel's fixed per-level
    cost.  Sets of *any* mix are accepted — same-shape grouping (the
    service layer's heuristic) maximises how long elements stay in lockstep
    but is not required for correctness.

    Falls back to the per-set scalar scheduler when the configuration or
    power policy is outside the columnar guards (eager teardown,
    ``trace_compat``, reference engine), so callers never need to
    pre-validate.
    """
    from repro.core.config import SchedulerConfig

    cfg = config if config is not None else SchedulerConfig()
    cset_list = list(csets)
    if not cset_list:
        return []
    pol = policy or PowerPolicy.paper()
    if pol.eager_teardown or cfg.trace_compat or not cfg.fast_path or (
        cfg.engine == "reference"
    ):
        from repro.core.csa import PADRScheduler

        sched = PADRScheduler(config=cfg)
        return [
            sched.schedule(cs, n_leaves=n_leaves, policy=policy)
            for cs in cset_list
        ]

    if cfg.validate_input:
        for cs in cset_list:
            require_well_nested(cs)
    roles_list = [cs.roles() for cs in cset_list]
    run = ColumnarRun(n_leaves, roles_list, policy=pol, strict=cfg.strict)
    B = run.B
    max_rounds = np.array([len(cs) + 1 for cs in cset_list], dtype=np.int64)
    rounds_done = np.zeros(B, dtype=np.int64)
    while True:
        live = run.live_elements
        if live.size == 0:
            break
        over = rounds_done[live] >= max_rounds[live]
        if over.any():
            b = int(live[np.argmax(over)])
            raise SchedulingError(
                f"CSA exceeded {int(max_rounds[b])} rounds — algorithm failed "
                "to make progress (this indicates a bug or invalid input)"
            )
        run.run_round(live)
        rounds_done[live] += 1

    if cfg.check_postconditions:
        run.check_counters_exhausted()
        for b in range(B):
            run.check_obligations(b)

    n_links = 2 * n_leaves - 2
    schedules: list[Schedule] = []
    for b, cs in enumerate(cset_list):
        r = len(run.rounds_by_element[b])
        schedules.append(
            Schedule(
                cset=cs,
                n_leaves=n_leaves,
                scheduler_name="padr-csa",
                rounds=tuple(run.rounds_by_element[b]),
                power=run.power_report(b),
                control_messages=n_links * (1 + r),
                control_words=n_links * (UpWord.wire_words() + 3 * r),
                physical_messages=n_links + int(run.physical_total[b]),
            )
        )
    return schedules
