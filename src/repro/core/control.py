"""Control vocabulary of the CSA — everything is O(1) machine words.

Three kinds of control information flow through the CST (paper §2.2, §3):

* **Upward**, Phase 1 only: :class:`UpWord` ``[S, D]`` — how many sources /
  destinations below this link still need the link to reach their partner.
* **Stored**, per switch: :class:`StoredState`
  ``C_S = [M, S_L−M, D_L, S_R, D_R−M]`` — the five communication types of
  paper Figure 4(a).  Mutable: Phase 2 decrements a counter whenever the
  corresponding endpoint is scheduled, which is what keeps the rank
  arguments consistent along a path.
* **Downward**, each Phase-2 round: :class:`DownWord`
  ``[kind, x_s, x_d]`` where ``kind`` ∈ {``[null,null]``, ``[s,null]``,
  ``[d,null]``, ``[s,d]``} and the ranks select the ``x_s``-th remaining
  leftmost source / ``x_d``-th remaining rightmost destination
  (Definition 2) of the receiving subtree.

Word-size accounting (for the Theorem 5 efficiency claims) is exposed via
``wire_words()`` on each type.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import ProtocolError

__all__ = ["UpWord", "StoredState", "ZERO_STATE", "DownKind", "DownWord"]


@dataclass(frozen=True, slots=True)
class UpWord:
    """Phase-1 upward word ``[S, D]`` (paper Step 1.2)."""

    sources: int
    destinations: int

    def __post_init__(self) -> None:
        if self.sources < 0 or self.destinations < 0:
            raise ProtocolError(f"negative counts in up-word: {self}")

    @staticmethod
    def wire_words() -> int:
        """Machine words on the wire (constant — Theorem 5)."""
        return 2

    def __str__(self) -> str:
        return f"[S={self.sources}, D={self.destinations}]"


@dataclass
class StoredState:
    """Per-switch stored control information ``C_S`` (paper Step 1.3).

    ``matched``            type 1 — pairs matched at this switch (``M``).
    ``unmatched_left_src`` type 4 — left-subtree sources matched above
                           (``S_L − M``).
    ``left_dst``           type 3 — left-subtree destinations matched above
                           (``D_L``).
    ``right_src``          type 2 — right-subtree sources matched above
                           (``S_R``).
    ``unmatched_right_dst``type 5 — right-subtree destinations matched above
                           (``D_R − M``).

    Exactly one of types 4 and 5 can be non-zero (``M = min(S_L, D_R)``).
    Counters only ever decrease during Phase 2.
    """

    matched: int = 0
    unmatched_left_src: int = 0
    left_dst: int = 0
    right_src: int = 0
    unmatched_right_dst: int = 0

    def __post_init__(self) -> None:
        if min(
            self.matched,
            self.unmatched_left_src,
            self.left_dst,
            self.right_src,
            self.unmatched_right_dst,
        ) < 0:
            raise ProtocolError(f"negative counter in stored state: {self}")
        if self.unmatched_left_src and self.unmatched_right_dst:
            raise ProtocolError(
                "types 4 and 5 cannot both be non-zero when M = min(S_L, D_R)"
            )

    # -- remaining-endpoint views used by rank arithmetic ------------------

    @property
    def sources_up(self) -> int:
        """Sources still to climb through this switch (|S(u)| remaining)."""
        return self.unmatched_left_src + self.right_src

    @property
    def destinations_up(self) -> int:
        """Destinations still to descend through this switch (|D(u)|)."""
        return self.unmatched_right_dst + self.left_dst

    @property
    def exhausted(self) -> bool:
        """All five counters are zero — nothing left through this switch."""
        return (
            self.matched == 0
            and self.unmatched_left_src == 0
            and self.left_dst == 0
            and self.right_src == 0
            and self.unmatched_right_dst == 0
        )

    def copy(self) -> "StoredState":
        return StoredState(
            self.matched,
            self.unmatched_left_src,
            self.left_dst,
            self.right_src,
            self.unmatched_right_dst,
        )

    def as_tuple(self) -> tuple[int, int, int, int, int]:
        """``C_S`` in the paper's order ``[M, S_L−M, D_L, S_R, D_R−M]``."""
        return (
            self.matched,
            self.unmatched_left_src,
            self.left_dst,
            self.right_src,
            self.unmatched_right_dst,
        )

    @staticmethod
    def stored_words() -> int:
        """Machine words stored per switch (constant — Theorem 5)."""
        return 5

    def __str__(self) -> str:
        m, t4, t3, t2, t5 = self.as_tuple()
        return f"C_S[M={m}, S_L-M={t4}, D_L={t3}, S_R={t2}, D_R-M={t5}]"


#: Shared all-zero stored state, interned by Phase 1 for the (on sparse
#: workloads, overwhelming) majority of switches with no endpoints below.
#: Sharing one mutable instance is safe because an all-zero state is never
#: mutated: CONFIGURE only decrements counters of endpoints it schedules,
#: and no rank can legally select an endpoint from an empty subtree.
ZERO_STATE = StoredState()


class DownKind(enum.Enum):
    """The four values of ``C_{D-*_1}`` (paper Step 2.1)."""

    NONE = "[null,null]"
    SRC = "[s,null]"
    DST = "[d,null]"
    BOTH = "[s,d]"

    @property
    def wants_source(self) -> bool:
        return self in (DownKind.SRC, DownKind.BOTH)

    @property
    def wants_destination(self) -> bool:
        return self in (DownKind.DST, DownKind.BOTH)


@dataclass(frozen=True, slots=True)
class DownWord:
    """Phase-2 downward word ``[kind, x_s, x_d]``.

    ``x_s`` ranks the requested source among the subtree's *remaining*
    sources, counted from the left (Definition 2); ``x_d`` ranks the
    requested destination among remaining destinations, counted from the
    right.  Ranks are meaningful only when the kind requests them.
    """

    kind: DownKind
    x_s: int = 0
    x_d: int = 0

    def __post_init__(self) -> None:
        if self.x_s < 0 or self.x_d < 0:
            raise ProtocolError(f"negative rank in down-word: {self}")
        if not self.kind.wants_source and self.x_s:
            raise ProtocolError(f"{self.kind.value} carries no source rank: {self}")
        if not self.kind.wants_destination and self.x_d:
            raise ProtocolError(f"{self.kind.value} carries no destination rank: {self}")

    @staticmethod
    def none() -> "DownWord":
        return _NONE_WORD

    @staticmethod
    def src(x_s: int) -> "DownWord":
        if 0 <= x_s < _INTERNED_RANKS:
            return _SRC_WORDS[x_s]
        return DownWord(DownKind.SRC, x_s=x_s)

    @staticmethod
    def dst(x_d: int) -> "DownWord":
        if 0 <= x_d < _INTERNED_RANKS:
            return _DST_WORDS[x_d]
        return DownWord(DownKind.DST, x_d=x_d)

    @staticmethod
    def both(x_s: int, x_d: int) -> "DownWord":
        if 0 <= x_s < _INTERNED_BOTH and 0 <= x_d < _INTERNED_BOTH:
            return _BOTH_WORDS[x_s][x_d]
        return DownWord(DownKind.BOTH, x_s=x_s, x_d=x_d)

    @staticmethod
    def wire_words() -> int:
        """Machine words on the wire (constant — Theorem 5)."""
        return 3

    def __str__(self) -> str:
        return f"{self.kind.value}(x_s={self.x_s}, x_d={self.x_d})"


_NONE_WORD = DownWord(DownKind.NONE)

# Interned flyweights for the control words that dominate Phase-2 traffic.
# Low ranks are overwhelmingly common (a rank counts *remaining* endpoints,
# and the CSA drains them towards zero), so the factory methods above serve
# these shared immutable instances instead of re-validating fresh
# allocations once per switch per round.
_INTERNED_RANKS = 33
_INTERNED_BOTH = 9
_SRC_WORDS = tuple(DownWord(DownKind.SRC, x_s=x) for x in range(_INTERNED_RANKS))
_DST_WORDS = tuple(DownWord(DownKind.DST, x_d=x) for x in range(_INTERNED_RANKS))
_BOTH_WORDS = tuple(
    tuple(DownWord(DownKind.BOTH, x_s=s, x_d=d) for d in range(_INTERNED_BOTH))
    for s in range(_INTERNED_BOTH)
)
