"""Schedule arbitrary communication sets through the well-nested core.

:func:`schedule_general` is the lowering path behind
``Scheduler.schedule(..., decompose="auto")``: it partitions an arbitrary
set with :func:`repro.comms.decompose.decompose`, schedules every batch
through the inner scheduler (any engine — reference, fast or columnar),
then packs the per-batch round plans into one combined plan replayed on a
*single* network, so crossbar state carries across batches and the lazy
power model charges only real reconfigurations.

The packing step is where ``SchedulerConfig(recfg_alpha=...)`` bites.
Rounds from different batches are often edge-compatible (opposite
orientations mostly use opposite directions of shared links), so merging
them saves rounds — but a merged foreign round can displace a crossbar
connection a later round would have reused for free, costing extra
configuration changes.  Each candidate merge is accepted only when
``alpha * extra_changes <= 1.0`` (a saved round is worth ``1``): ``α = 0``
packs maximally (minimum rounds), large ``α`` preserves sequential
persistence (minimum switch changes).  With ``α > 0`` the batch order
itself is chosen greedily to minimise simulated reconfigurations.

On an already well-nested right-oriented input the decomposition is a
single batch and the inner scheduler's result is returned unchanged
(wrapped), bit-identical to the strict path regardless of ``α``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.comms.communication import Communication, CommunicationSet
from repro.comms.decompose import Decomposition, decompose
from repro.core.schedule import Schedule, ScheduleStats
from repro.cst.power import PowerPolicy
from repro.cst.topology import CSTTopology
from repro.exceptions import SchedulingError
from repro.types import Connection

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.base import Scheduler
    from repro.cst.network import CSTNetwork
    from repro.obs.instrument import Instrumentation

__all__ = ["GeneralSchedule", "schedule_general"]

GENERAL_SCHEDULER_NAME = "general-plan"


@dataclass(frozen=True)
class GeneralSchedule:
    """Result of scheduling an arbitrary set via well-nested decomposition.

    ``combined`` is the actually-executed schedule (one network, crossbar
    state carried across batches); the ``batch_*`` tuples record the
    per-batch reference runs in decomposition order, ``batch_order`` the
    order they were packed in.  ``optimum_rounds`` is the width of the
    *whole* input — the w-round bound a single well-nested batch would
    achieve — so :attr:`round_overhead` is the price of generality.
    """

    cset: CommunicationSet
    n_leaves: int
    alpha: float
    batch_orientations: tuple[str, ...]
    batch_rounds: tuple[int, ...]
    batch_power: tuple[int, ...]
    batch_order: tuple[int, ...]
    lower_bound: int
    optimum_rounds: int
    combined: Schedule
    decomposition: Decomposition | None = field(default=None, compare=False)

    # -- ScheduleResult protocol ------------------------------------------

    @property
    def scheduler_name(self) -> str:
        return self.combined.scheduler_name

    @property
    def rounds_used(self) -> int:
        return self.combined.n_rounds

    @property
    def power_units(self) -> int:
        return self.combined.power.total_units

    @property
    def delivered(self) -> tuple[Communication, ...]:
        return tuple(sorted(set(self.combined.performed())))

    @property
    def undelivered(self) -> tuple[Communication, ...]:
        return tuple(sorted(set(self.cset.comms) - set(self.combined.performed())))

    def stats(self) -> ScheduleStats:
        return replace(self.combined.stats(self.optimum_rounds), n_comms=len(self.cset))

    # -- decomposition accounting -----------------------------------------

    @property
    def n_batches(self) -> int:
        return len(self.batch_orientations)

    @property
    def sequential_rounds(self) -> int:
        """Rounds a naive batch-after-batch execution would take."""
        return sum(self.batch_rounds)

    @property
    def merged_rounds(self) -> int:
        """Rounds saved by cross-batch packing."""
        return self.sequential_rounds - self.combined.n_rounds

    @property
    def round_overhead(self) -> int:
        """Extra rounds vs the single-batch w-round optimum."""
        return self.combined.n_rounds - self.optimum_rounds

    @property
    def overhead_ratio(self) -> float:
        if not self.optimum_rounds:
            return 0.0
        return self.combined.n_rounds / self.optimum_rounds

    @property
    def power_overhead_units(self) -> int:
        """Executed power minus the per-batch sum (negative = persistence won)."""
        return self.combined.power.total_units - sum(self.batch_power)

    @property
    def reconfig_changes(self) -> int:
        """Total switch configuration changes in the executed run."""
        return sum(self.combined.power.per_switch_changes.values())

    def summary(self) -> dict[str, float | int]:
        return {
            "comms": len(self.cset),
            "batches": self.n_batches,
            "batch_lower_bound": self.lower_bound,
            "rounds": self.rounds_used,
            "optimum_rounds": self.optimum_rounds,
            "round_overhead": self.round_overhead,
            "overhead_ratio": round(self.overhead_ratio, 3),
            "merged_rounds": self.merged_rounds,
            "power_units": self.power_units,
            "power_overhead_units": self.power_overhead_units,
            "reconfig_changes": self.reconfig_changes,
            "alpha": self.alpha,
        }

    def __repr__(self) -> str:
        return (
            f"GeneralSchedule(batches={self.n_batches}, rounds={self.rounds_used}, "
            f"optimum={self.optimum_rounds}, power={self.power_units})"
        )


# -- crossbar-state simulation ---------------------------------------------


def _plan_change_cost(
    plan: Sequence[Sequence[Communication]],
    conns_of: Mapping[Communication, tuple[tuple[int, Connection], ...]],
) -> int:
    """Configuration changes a plan incurs under the lazy persistence model.

    Mirrors the meter's charging rule: a staged connection already held on
    both of its ports is free; anything else displaces the ports' current
    occupants and costs one change.
    """
    state: dict[int, dict[object, Connection]] = {}
    cost = 0
    for round_comms in plan:
        for c in round_comms:
            for switch_id, conn in conns_of[c]:
                ports = state.setdefault(switch_id, {})
                if (
                    ports.get(conn.in_port) == conn
                    and ports.get(conn.out_port) == conn
                ):
                    continue
                for occupant_key in (conn.in_port, conn.out_port):
                    old = ports.get(occupant_key)
                    if old is not None:
                        ports.pop(old.in_port, None)
                        ports.pop(old.out_port, None)
                ports[conn.in_port] = conn
                ports[conn.out_port] = conn
                cost += 1
    return cost


def _order_batches(
    batch_plans: Sequence[Sequence[Sequence[Communication]]],
    conns_of: Mapping[Communication, tuple[tuple[int, Connection], ...]],
    alpha: float,
) -> list[int]:
    """Pack order over batches: greedy nearest-neighbour on simulated changes.

    Only engaged for ``alpha > 0`` — at ``alpha = 0`` rounds are all that
    matters and the (deterministic) decomposition order is kept.
    """
    k = len(batch_plans)
    if alpha <= 0 or k <= 1:
        return list(range(k))
    order = [0]
    remaining = sorted(range(1, k))
    while remaining:
        best_j, best_cost = remaining[0], None
        for j in remaining:
            candidate = [r for i in order for r in batch_plans[i]]
            candidate.extend(batch_plans[j])
            cost = _plan_change_cost(candidate, conns_of)
            if best_cost is None or cost < best_cost:
                best_j, best_cost = j, cost
        order.append(best_j)
        remaining.remove(best_j)
    return order


def _pack_rounds(
    rounds: Sequence[Sequence[Communication]],
    conns_of: Mapping[Communication, tuple[tuple[int, Connection], ...]],
    topo: CSTTopology,
    alpha: float,
) -> list[list[Communication]]:
    """First-fit merge of edge-compatible rounds, gated by the α objective.

    A merge saves exactly one round; it is accepted iff
    ``alpha * max(0, extra_changes) <= 1.0``, where ``extra_changes`` is
    the simulated change-count delta of merging vs appending.
    """
    slots: list[list[Communication]] = []
    slot_edges: list[set] = []
    for round_comms in rounds:
        edges: set = set()
        for c in round_comms:
            edges.update(topo.path_edges(c.src, c.dst))
        placed = False
        for i in range(len(slots)):
            if not slot_edges[i].isdisjoint(edges):
                continue
            if alpha > 0:
                appended = _plan_change_cost([*slots, list(round_comms)], conns_of)
                merged_slots = [list(s) for s in slots]
                merged_slots[i].extend(round_comms)
                merged = _plan_change_cost(merged_slots, conns_of)
                if alpha * max(0, merged - appended) > 1.0:
                    continue
            slots[i].extend(round_comms)
            slot_edges[i].update(edges)
            placed = True
            break
        if not placed:
            slots.append(list(round_comms))
            slot_edges.append(edges)
    return slots


# -- the planner ------------------------------------------------------------


def schedule_general(
    cset: CommunicationSet,
    *,
    inner: "Scheduler | None" = None,
    n_leaves: int | None = None,
    policy: PowerPolicy | None = None,
    network: "CSTNetwork | None" = None,
    obs: "Instrumentation | None" = None,
    alpha: float | None = None,
    decomposition: Decomposition | None = None,
) -> GeneralSchedule:
    """Schedule an arbitrary set by well-nested decomposition.

    ``inner`` is the scheduler used per batch (a fresh
    :class:`~repro.core.csa.PADRScheduler` by default — its
    ``SchedulerConfig`` decides the engine).  ``alpha`` defaults to the
    inner scheduler's ``config.recfg_alpha`` (0.0 when absent).
    """
    if inner is None:
        from repro.core.csa import PADRScheduler

        inner = PADRScheduler()
    config = getattr(inner, "config", None)
    if alpha is None:
        alpha = getattr(config, "recfg_alpha", 0.0)
    if alpha < 0:
        raise SchedulingError(f"recfg_alpha must be >= 0, got {alpha}")

    if network is not None:
        n = network.topology.n_leaves
    else:
        n = n_leaves if n_leaves is not None else cset.min_leaves()
    if cset.max_pe >= n:
        raise SchedulingError(
            f"set uses PE {cset.max_pe}, beyond n_leaves={n}"
        )

    dec = decomposition if decomposition is not None else decompose(cset)

    if dec.is_trivial:
        # Already schedulable directly: the inner result IS the combined
        # schedule — bit-identical to the strict path, any α.
        direct = inner.schedule(
            cset,
            n_leaves=n,
            policy=policy,
            network=network,
            obs=obs,
            decompose="strict",
        )
        return GeneralSchedule(
            cset=cset,
            n_leaves=n,
            alpha=alpha,
            batch_orientations=tuple(b.orientation for b in dec.batches),
            batch_rounds=(direct.n_rounds,) if dec.batches else (),
            batch_power=(direct.power.total_units,) if dec.batches else (),
            batch_order=tuple(range(dec.n_batches)),
            lower_bound=dec.lower_bound,
            optimum_rounds=_input_width(cset, n),
            combined=direct,
            decomposition=dec,
        )

    # -- per-batch reference runs (plans) --------------------------------
    topo = CSTTopology.of(n)
    batch_plans: list[list[list[Communication]]] = []
    batch_rounds: list[int] = []
    batch_power: list[int] = []
    for batch in dec.batches:
        ref = inner.schedule(
            batch.well_nested_form(n),
            n_leaves=n,
            policy=policy,
            decompose="strict",
        )
        if batch.orientation == "right":
            plan = [list(r.performed) for r in ref.rounds]
        else:
            plan = [[c.mirrored(n) for c in r.performed] for r in ref.rounds]
        batch_plans.append(plan)
        batch_rounds.append(ref.n_rounds)
        batch_power.append(ref.power.total_units)

    conns_of = {
        c: tuple(topo.path_connections(c.src, c.dst).items()) for c in cset
    }

    order = _order_batches(batch_plans, conns_of, alpha)
    sequenced = [r for i in order for r in batch_plans[i]]
    packed = _pack_rounds(sequenced, conns_of, topo, alpha)

    from repro.core.base import execute_round_plan

    combined = execute_round_plan(
        cset, n, packed, GENERAL_SCHEDULER_NAME, policy=policy, network=network
    )

    result = GeneralSchedule(
        cset=cset,
        n_leaves=n,
        alpha=alpha,
        batch_orientations=tuple(b.orientation for b in dec.batches),
        batch_rounds=tuple(batch_rounds),
        batch_power=tuple(batch_power),
        batch_order=tuple(order),
        lower_bound=dec.lower_bound,
        optimum_rounds=_input_width(cset, n),
        combined=combined,
        decomposition=dec,
    )

    if obs is not None:
        _fold_general_obs(obs, result)
    return result


def _input_width(cset: CommunicationSet, n_leaves: int) -> int:
    """Width of the whole input — the single-batch w-round optimum."""
    from repro.comms.width import width

    return width(cset, CSTTopology.of(n_leaves))


def _fold_general_obs(obs: "Instrumentation", result: GeneralSchedule) -> None:
    from repro.core.base import Scheduler

    Scheduler._fold_obs(obs, result.combined)
    m, r = obs.metrics, obs.run
    m.inc("decompose.requests", run=r)
    m.inc("decompose.batches", result.n_batches, run=r)
    m.inc("decompose.merged_rounds", result.merged_rounds, run=r)
    m.set("decompose.round_overhead", result.round_overhead, run=r)
    m.set("decompose.reconfig_changes", result.reconfig_changes, run=r)
