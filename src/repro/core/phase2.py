"""Phase 2 of the CSA: the CONFIGURE procedure (paper Figure 5, §3).

Each round, every switch receives one :class:`~repro.core.control.DownWord`
from its parent (the root behaves as if it received ``[null,null]``),
configures its crossbar, updates its stored counters, and emits one word to
each child.  The selection rule is the heart of PADR: a switch always
schedules the **outermost** remaining communication matched at it
(``O_c(u)``, Definition 1), which makes the stream of words any child sees
alternate at most twice (Lemma 7) and hence bounds configuration changes by
a constant (Theorem 8).

Rank arithmetic (Definition 2), against *remaining* endpoints:

* the subtree's remaining sources, left to right, are the switch's
  ``unmatched_left_src`` left-subtree sources followed by its ``right_src``
  right-subtree sources — so a source rank ``x_s`` resolves left when
  ``x_s < unmatched_left_src``, else right with rank
  ``x_s − unmatched_left_src``;
* the remaining destinations, right to left, are ``unmatched_right_dst``
  right-subtree destinations followed by ``left_dst`` left-subtree ones.

When the switch schedules its own matched pair ``O_c(u)`` it asks the left
child for source rank ``unmatched_left_src`` (the matched sources sit just
right of the unmatched ones) and the right child for destination rank
``unmatched_right_dst`` (mirror image).

The printed pseudocode covers ``[null,null]`` and ``[s,null]``; the
``[d,null]`` and ``[s,d]`` cases are the documented mirror images ("similar
and omitted here for shortage of space"), implemented here in full.  Two
typo repairs relative to the printed figure are noted inline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.control import DownKind, DownWord, StoredState
from repro.exceptions import ProtocolError
from repro.types import (
    CONN_DOWN_L,
    CONN_DOWN_R,
    CONN_L_TO_R,
    CONN_L_UP,
    CONN_R_UP,
    Connection,
)

__all__ = ["ConfigureOutcome", "configure"]


@dataclass(frozen=True, slots=True)
class ConfigureOutcome:
    """Result of one switch's CONFIGURE call for one round."""

    connections: tuple[Connection, ...]
    left_word: DownWord
    right_word: DownWord
    #: True when this switch scheduled one of its own matched pairs
    #: (type 1) this round — used for termination accounting and tests.
    scheduled_matched: bool


_NONE = DownWord.none()

#: shared outcome for the quiescent case — by far the most common call on
#: large trees (every off-path switch hits it every round in the reference
#: walk); :class:`ConfigureOutcome` is frozen, so one instance is safe.
_IDLE_OUTCOME = ConfigureOutcome((), _NONE, _NONE, scheduled_matched=False)


def configure(switch_id: int, state: StoredState, received: DownWord) -> ConfigureOutcome:
    """Run CONFIGURE for one switch and one round.

    Mutates ``state`` (decrements the counters of every endpoint scheduled
    through this switch) and returns the crossbar connections to stage plus
    the words for the children.  Raises
    :class:`~repro.exceptions.ProtocolError` when a rank exceeds the
    remaining endpoints — impossible for valid well-nested input.
    """
    kind = received.kind
    if kind is DownKind.NONE:
        return _case_none(state)
    if kind is DownKind.SRC:
        return _case_src(switch_id, state, received.x_s)
    if kind is DownKind.DST:
        return _case_dst(switch_id, state, received.x_d)
    return _case_both(switch_id, state, received.x_s, received.x_d)


# ---------------------------------------------------------------------------
# [null,null]: the switch is not on any upper-level path this round; if it
# still has matched pairs it schedules its outermost one.
# ---------------------------------------------------------------------------


def _case_none(state: StoredState) -> ConfigureOutcome:
    if state.matched == 0:
        return _IDLE_OUTCOME
    state.matched -= 1
    # O_c(u): ask the left child for the source ranked just after the
    # unmatched left sources, the right child for the destination ranked
    # just after the unmatched right destinations.
    return ConfigureOutcome(
        (CONN_L_TO_R,),
        DownWord.src(state.unmatched_left_src),
        DownWord.dst(state.unmatched_right_dst),
        scheduled_matched=True,
    )


# ---------------------------------------------------------------------------
# [s,null]: the parent wants this subtree's x_s-th remaining leftmost source
# on the upward link.
# ---------------------------------------------------------------------------


def _case_src(switch_id: int, state: StoredState, x_s: int) -> ConfigureOutcome:
    if x_s >= state.sources_up:
        raise ProtocolError(
            f"switch {switch_id}: source rank {x_s} out of range "
            f"(only {state.sources_up} sources remain)"
        )
    if x_s < state.unmatched_left_src:
        # requested source is in the left subtree: l_i -> p_o.  The matched
        # pair cannot be piggybacked (l_i is busy), matching the paper's
        # priority "satisfy sources from the left subtree first".
        state.unmatched_left_src -= 1
        return ConfigureOutcome(
            (CONN_L_UP,), DownWord.src(x_s), _NONE, scheduled_matched=False
        )
    # requested source is in the right subtree: r_i -> p_o, leaving l_i and
    # r_o free — so the outermost matched pair rides along when one remains.
    x_sr = x_s - state.unmatched_left_src
    state.right_src -= 1
    if state.matched == 0:
        return ConfigureOutcome(
            (CONN_R_UP,), _NONE, DownWord.src(x_sr), scheduled_matched=False
        )
    state.matched -= 1
    return ConfigureOutcome(
        (CONN_R_UP, CONN_L_TO_R),
        DownWord.src(state.unmatched_left_src),
        # typo repair: the printed figure sends [s,d,x_sr,0]; the destination
        # rank of O_c(u) is the current unmatched-right count, by symmetry
        # with the [null,null] case.
        DownWord.both(x_sr, state.unmatched_right_dst),
        scheduled_matched=True,
    )


# ---------------------------------------------------------------------------
# [d,null]: the parent pushes a destination down; this subtree's x_d-th
# remaining rightmost destination must be connected to p_i.
# ---------------------------------------------------------------------------


def _case_dst(switch_id: int, state: StoredState, x_d: int) -> ConfigureOutcome:
    if x_d >= state.destinations_up:
        raise ProtocolError(
            f"switch {switch_id}: destination rank {x_d} out of range "
            f"(only {state.destinations_up} destinations remain)"
        )
    if x_d < state.unmatched_right_dst:
        # requested destination is in the right subtree: p_i -> r_o (the
        # mirror-image priority "satisfy destinations from the right first").
        state.unmatched_right_dst -= 1
        return ConfigureOutcome(
            (CONN_DOWN_R,), _NONE, DownWord.dst(x_d), scheduled_matched=False
        )
    # requested destination is in the left subtree: p_i -> l_o, leaving l_i
    # and r_o free for the outermost matched pair.
    x_dl = x_d - state.unmatched_right_dst
    state.left_dst -= 1
    if state.matched == 0:
        return ConfigureOutcome(
            (CONN_DOWN_L,), DownWord.dst(x_dl), _NONE, scheduled_matched=False
        )
    state.matched -= 1
    return ConfigureOutcome(
        (CONN_DOWN_L, CONN_L_TO_R),
        DownWord.both(state.unmatched_left_src, x_dl),
        DownWord.dst(state.unmatched_right_dst),
        scheduled_matched=True,
    )


# ---------------------------------------------------------------------------
# [s,d]: both links between this switch and its parent are in use — a source
# must go up and a destination must come down.  By Lemma 2 they belong to
# two different communications matched above.
# ---------------------------------------------------------------------------


def _case_both(
    switch_id: int, state: StoredState, x_s: int, x_d: int
) -> ConfigureOutcome:
    if x_s >= state.sources_up:
        raise ProtocolError(
            f"switch {switch_id}: source rank {x_s} out of range "
            f"(only {state.sources_up} sources remain)"
        )
    if x_d >= state.destinations_up:
        raise ProtocolError(
            f"switch {switch_id}: destination rank {x_d} out of range "
            f"(only {state.destinations_up} destinations remain)"
        )
    src_left = x_s < state.unmatched_left_src
    dst_right = x_d < state.unmatched_right_dst

    if src_left and dst_right:
        state.unmatched_left_src -= 1
        state.unmatched_right_dst -= 1
        return ConfigureOutcome(
            (CONN_L_UP, CONN_DOWN_R),
            DownWord.src(x_s),
            DownWord.dst(x_d),
            scheduled_matched=False,
        )

    if src_left and not dst_right:
        # both requested endpoints live in the left subtree.
        x_dl = x_d - state.unmatched_right_dst
        state.unmatched_left_src -= 1
        state.left_dst -= 1
        return ConfigureOutcome(
            (CONN_L_UP, CONN_DOWN_L),
            DownWord.both(x_s, x_dl),
            _NONE,
            scheduled_matched=False,
        )

    if not src_left and dst_right:
        # both requested endpoints live in the right subtree.
        x_sr = x_s - state.unmatched_left_src
        state.right_src -= 1
        state.unmatched_right_dst -= 1
        return ConfigureOutcome(
            (CONN_R_UP, CONN_DOWN_R),
            _NONE,
            DownWord.both(x_sr, x_d),
            scheduled_matched=False,
        )

    # source from the right subtree, destination into the left: the two
    # pass-throughs cross, freeing l_i and r_o for the matched pair.
    x_sr = x_s - state.unmatched_left_src
    x_dl = x_d - state.unmatched_right_dst
    state.right_src -= 1
    state.left_dst -= 1
    if state.matched == 0:
        return ConfigureOutcome(
            (CONN_R_UP, CONN_DOWN_L),
            DownWord.dst(x_dl),
            DownWord.src(x_sr),
            scheduled_matched=False,
        )
    state.matched -= 1
    return ConfigureOutcome(
        (CONN_R_UP, CONN_DOWN_L, CONN_L_TO_R),
        DownWord.both(state.unmatched_left_src, x_dl),
        DownWord.both(x_sr, state.unmatched_right_dst),
        scheduled_matched=True,
    )
