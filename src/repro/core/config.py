"""One config object for every scheduler knob that used to be scattered.

Constructor flags grew organically across PRs: the fast-path engine toggle
lives on :class:`~repro.core.csa.PADRScheduler` (``engine_factory``),
stream behaviour on :class:`~repro.extensions.stream.StreamScheduler`
(``fresh_network_per_step``, ``verify``), and the per-wave trace cap on
:class:`~repro.cst.engine.EngineTrace`.  :class:`SchedulerConfig`
consolidates them into a single frozen dataclass that

* both constructors accept (``PADRScheduler(config=...)``,
  ``StreamScheduler(config=...)``) — explicit keyword arguments still win,
  so existing call sites are untouched;
* round-trips through plain dicts (:meth:`to_dict` / :meth:`from_dict`),
  which is how the service layer ships it to multiprocessing workers;
* exposes a :meth:`cache_signature` that the service layer's schedule
  cache folds into its keys, so results computed under one configuration
  are never served to a request made under another.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Callable, Mapping

from repro.cst.engine import CSTEngine, EngineTrace, ReferenceWaveEngine
from repro.cst.network import CSTNetwork
from repro.exceptions import SchedulingError

__all__ = ["SchedulerConfig"]


@dataclass(frozen=True, slots=True)
class SchedulerConfig:
    """Consolidated scheduler configuration.

    ``fast_path``
        run the frontier-pruned :class:`~repro.cst.engine.CSTEngine`
        (default) or the naive :class:`~repro.cst.engine.ReferenceWaveEngine`
        differential oracle.  Schedules are bit-identical either way
        (property-tested); only physical-plane traffic differs.
    ``validate_input`` / ``check_postconditions`` / ``strict``
        the CSA's safety rails (see :class:`~repro.core.csa.PADRScheduler`).
    ``reuse_phase1``
        skip Phase 1's upward wave when roles repeat on the same network.
    ``fresh_network_per_step`` / ``verify_steps``
        stream scheduling: the PADR-unaware control condition, and per-step
        end-to-end verification.
    ``trace_wave_cap``
        per-wave sample retention cap on
        :class:`~repro.cst.engine.EngineTrace` (bounds memory on long
        streams; totals are always exact).
    """

    validate_input: bool = True
    check_postconditions: bool = True
    strict: bool = True
    fast_path: bool = True
    reuse_phase1: bool = False
    fresh_network_per_step: bool = False
    verify_steps: bool = True
    trace_wave_cap: int = EngineTrace.PER_WAVE_CAP

    def __post_init__(self) -> None:
        if self.trace_wave_cap < 0:
            raise SchedulingError(
                f"trace_wave_cap must be >= 0, got {self.trace_wave_cap}"
            )

    # -- engine wiring -------------------------------------------------------

    def engine_factory(self) -> Callable[[CSTNetwork], CSTEngine]:
        """The engine constructor this configuration selects.

        The default configuration returns the bare :class:`CSTEngine`
        class object, so the hot path is exactly the PR-1 fast path with no
        wrapper in between.
        """
        engine_cls = CSTEngine if self.fast_path else ReferenceWaveEngine
        if self.trace_wave_cap == EngineTrace.PER_WAVE_CAP:
            return engine_cls

        cap = self.trace_wave_cap

        def factory(network: CSTNetwork) -> CSTEngine:
            engine = engine_cls(network)
            engine.trace.PER_WAVE_CAP = cap  # instance override of the ClassVar
            return engine

        return factory

    # -- scheduler builders --------------------------------------------------

    def build(self, *, obs: Any = None) -> Any:
        """A :class:`~repro.core.csa.PADRScheduler` under this config."""
        from repro.core.csa import PADRScheduler

        return PADRScheduler(config=self, obs=obs)

    def build_stream(self, *, policy: Any = None, obs: Any = None) -> Any:
        """A :class:`~repro.extensions.stream.StreamScheduler` under this config."""
        from repro.extensions.stream import StreamScheduler

        return StreamScheduler(config=self, policy=policy, obs=obs)

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (picklable, JSON-serialisable)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SchedulerConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SchedulingError(
                f"unknown SchedulerConfig fields: {sorted(unknown)}"
            )
        return cls(**dict(data))

    def cache_signature(self) -> str:
        """Canonical string folded into schedule-cache keys."""
        return ",".join(
            f"{f.name}={getattr(self, f.name)}" for f in fields(self)
        )
