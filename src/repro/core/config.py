"""One config object for every scheduler knob that used to be scattered.

Constructor flags grew organically across PRs: the fast-path engine toggle
lives on :class:`~repro.core.csa.PADRScheduler` (``engine_factory``),
stream behaviour on :class:`~repro.extensions.stream.StreamScheduler`
(``fresh_network_per_step``, ``verify``), and the per-wave trace cap on
:class:`~repro.cst.engine.EngineTrace`.  :class:`SchedulerConfig`
consolidates them into a single frozen dataclass that

* both constructors accept (``PADRScheduler(config=...)``,
  ``StreamScheduler(config=...)``) — explicit keyword arguments still win,
  so existing call sites are untouched;
* round-trips through plain dicts (:meth:`to_dict` / :meth:`from_dict`),
  which is how the service layer ships it to multiprocessing workers;
* exposes a :meth:`cache_signature` that the service layer's schedule
  cache folds into its keys, so results computed under one configuration
  are never served to a request made under another.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Callable, Mapping

from repro.cst.engine import (
    ColumnarWaveEngine,
    CSTEngine,
    EngineTrace,
    ReferenceWaveEngine,
)
from repro.cst.network import CSTNetwork
from repro.exceptions import SchedulingError

__all__ = ["SchedulerConfig"]

_ENGINES = ("auto", "reference", "fast", "columnar")
_DECOMPOSE_MODES = ("auto", "strict", "never")


@dataclass(frozen=True, slots=True)
class SchedulerConfig:
    """Consolidated scheduler configuration.

    ``fast_path``
        run the frontier-pruned :class:`~repro.cst.engine.CSTEngine`
        (default) or the naive :class:`~repro.cst.engine.ReferenceWaveEngine`
        differential oracle.  Schedules are bit-identical either way
        (property-tested); only physical-plane traffic differs.
    ``validate_input`` / ``check_postconditions`` / ``strict``
        the CSA's safety rails (see :class:`~repro.core.csa.PADRScheduler`).
    ``reuse_phase1``
        skip Phase 1's upward wave when roles repeat on the same network.
    ``fresh_network_per_step`` / ``verify_steps``
        stream scheduling: the PADR-unaware control condition, and per-step
        end-to-end verification.
    ``trace_wave_cap``
        per-wave sample retention cap on
        :class:`~repro.cst.engine.EngineTrace` (bounds memory on long
        streams; totals are always exact).
    ``engine``
        explicit backend selection: ``"auto"`` (default — the columnar
        struct-of-arrays kernel for trees of at least
        ``columnar_threshold`` leaves, the frontier-pruned fast path
        below), ``"fast"``, ``"columnar"`` or ``"reference"``.  Schedules
        are bit-identical across all four (property-tested).
    ``columnar_threshold``
        the ``"auto"`` crossover: smallest ``n_leaves`` for which the
        columnar kernel beats the per-switch fast path (measured by
        ``scripts/run_perf_suite.py``; see DESIGN.md).
    ``trace_compat``
        force the per-switch slow path even where the columnar kernel
        would apply, preserving exact physical trace detail (event logs,
        per-switch object state, ``last_states`` introspection).
    ``decompose``
        what :meth:`~repro.core.base.Scheduler.schedule` does with inputs
        that are not right-oriented well-nested: ``"strict"`` (default —
        today's contract, engines validate their own inputs), ``"auto"``
        (lower arbitrary sets through
        :func:`repro.core.plan.schedule_general`; well-nested inputs stay
        bit-identical) or ``"never"`` (assert well-nestedness up front).
        The service doors admit arbitrary sets only under ``"auto"``.
    ``recfg_alpha``
        reconfiguration-cost weight of the decomposed-batch packing
        objective (``rounds + α·switch_changes``): ``0.0`` packs for
        minimum rounds, large values preserve crossbar persistence at the
        cost of extra rounds.  Only consulted on the decomposition path.
    """

    validate_input: bool = True
    check_postconditions: bool = True
    strict: bool = True
    fast_path: bool = True
    reuse_phase1: bool = False
    fresh_network_per_step: bool = False
    verify_steps: bool = True
    trace_wave_cap: int = EngineTrace.PER_WAVE_CAP
    engine: str = "auto"
    columnar_threshold: int = 4096
    trace_compat: bool = False
    decompose: str = "strict"
    recfg_alpha: float = 0.0

    def __post_init__(self) -> None:
        if self.trace_wave_cap < 0:
            raise SchedulingError(
                f"trace_wave_cap must be >= 0, got {self.trace_wave_cap}"
            )
        if self.engine not in _ENGINES:
            raise SchedulingError(
                f"unknown engine {self.engine!r}; expected one of {_ENGINES}"
            )
        if self.engine in ("fast", "columnar") and not self.fast_path:
            raise SchedulingError(
                f"engine={self.engine!r} contradicts fast_path=False"
            )
        if self.columnar_threshold < 1:
            raise SchedulingError(
                f"columnar_threshold must be >= 1, got {self.columnar_threshold}"
            )
        if self.decompose not in _DECOMPOSE_MODES:
            raise SchedulingError(
                f"unknown decompose mode {self.decompose!r}; "
                f"expected one of {_DECOMPOSE_MODES}"
            )
        if self.recfg_alpha < 0:
            raise SchedulingError(
                f"recfg_alpha must be >= 0, got {self.recfg_alpha}"
            )

    # -- engine wiring -------------------------------------------------------

    def engine_cls(self, n_leaves: int) -> type[CSTEngine]:
        """The engine class for a tree of ``n_leaves`` leaves.

        Resolvable without instantiating a network, which is what lets the
        scheduler skip building one entirely on the columnar path.
        """
        if not self.fast_path or self.engine == "reference":
            return ReferenceWaveEngine
        if self.engine == "fast":
            return CSTEngine
        if self.engine == "columnar":
            return ColumnarWaveEngine
        # "auto": columnar above the measured crossover, fast path below.
        if n_leaves >= self.columnar_threshold:
            return ColumnarWaveEngine
        return CSTEngine

    def selects_columnar(self, n_leaves: int) -> bool:
        """Whether a schedule on ``n_leaves`` leaves takes the columnar kernel
        (guards the network cannot veto — policy/fault state still can).

        The service layer uses this to decide same-shape batch grouping, so
        it must agree with the scheduler's own dispatch.
        """
        if self.trace_compat or not self.fast_path:
            return False
        if self.engine == "columnar":
            return True
        return self.engine == "auto" and n_leaves >= self.columnar_threshold

    def engine_factory(self) -> Callable[[CSTNetwork], CSTEngine]:
        """The engine constructor this configuration selects.

        Size-independent selections (``engine="fast"`` / ``"reference"`` /
        ``fast_path=False``) return the bare engine class object, so the
        hot path keeps no wrapper in between.  Size-dependent selections
        (``"auto"``, and ``"columnar"`` with a non-default trace cap)
        return a factory that resolves the class per network; it carries
        ``resolve_engine_cls`` so the scheduler can make the same decision
        before any network exists.
        """
        cap = self.trace_wave_cap
        default_cap = cap == EngineTrace.PER_WAVE_CAP
        if not self.fast_path or self.engine in ("fast", "reference"):
            engine_cls = self.engine_cls(0)
            if default_cap:
                return engine_cls

            def capped(network: CSTNetwork) -> CSTEngine:
                engine = engine_cls(network)
                engine.trace.PER_WAVE_CAP = cap  # instance override
                return engine

            return capped
        if self.engine == "columnar" and default_cap:
            return ColumnarWaveEngine

        def factory(network: CSTNetwork) -> CSTEngine:
            engine = self.engine_cls(network.topology.n_leaves)(network)
            if not default_cap:
                engine.trace.PER_WAVE_CAP = cap  # instance override
            return engine

        factory.resolve_engine_cls = self.engine_cls
        return factory

    # -- scheduler builders --------------------------------------------------

    def build(self, *, obs: Any = None) -> Any:
        """A :class:`~repro.core.csa.PADRScheduler` under this config."""
        from repro.core.csa import PADRScheduler

        return PADRScheduler(config=self, obs=obs)

    def build_stream(self, *, policy: Any = None, obs: Any = None) -> Any:
        """A :class:`~repro.extensions.stream.StreamScheduler` under this config."""
        from repro.extensions.stream import StreamScheduler

        return StreamScheduler(config=self, policy=policy, obs=obs)

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (picklable, JSON-serialisable)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SchedulerConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SchedulingError(
                f"unknown SchedulerConfig fields: {sorted(unknown)}"
            )
        return cls(**dict(data))

    def cache_signature(self) -> str:
        """Canonical string folded into schedule-cache keys."""
        return ",".join(
            f"{f.name}={getattr(self, f.name)}" for f in fields(self)
        )
