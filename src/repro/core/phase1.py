"""Phase 1 of the CSA: distributing control information (paper Steps 1.1–1.3).

Each PE transmits its role word; each switch ``u`` receives
``C_{U-L} = [S_L, D_L]`` and ``C_{U-R} = [S_R, D_R]``, matches
``M = min(S_L, D_R)`` source–destination pairs (justified for right-oriented
well-nested sets by Lemma 1), stores
``C_S = [M, S_L−M, D_L, S_R, D_R−M]``, and forwards
``C_U = [S_L−M+S_R, D_L+D_R−M]``.

The wave runs once; afterwards every switch knows *how many* communications
of each of the five types (Figure 4a) pass through it — never *which*.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.comms.communication import CommunicationSet
from repro.core.control import ZERO_STATE, StoredState, UpWord
from repro.cst.engine import CSTEngine
from repro.exceptions import ProtocolError
from repro.types import Role

__all__ = ["run_phase1", "run_phase1_vectorized", "phase1_states", "pending_matched"]


def run_phase1(engine: CSTEngine) -> dict[int, StoredState]:
    """Execute Phase 1 over the engine's network.

    PE roles must already be assigned on the network
    (:meth:`~repro.cst.network.CSTNetwork.assign_roles`).  Returns the
    stored state ``C_S`` of every switch, keyed by heap id.

    For a balanced (fully matched) communication set the root's outgoing
    word must be ``[0, 0]``; anything else means some endpoint has no
    partner inside the tree and is reported as a protocol error.
    """
    network = engine.network
    if network.event_log is not None:
        return _run_phase1_logged(engine)
    pes = network.pes
    states: dict[int, StoredState] = {}

    # the ``[S, D]`` pairs travel as plain tuples on the hot path — the
    # UpWord wrapper's validation is redundant here (counts are sums of
    # non-negative role words) and its per-node allocation is measurable at
    # large N; word-size accounting still uses ``UpWord.wire_words()``.
    # The logged variant above keeps recording real :class:`UpWord`\ s so
    # event traces render ``[S=…, D=…]`` as before.
    def leaf_word(pe: int) -> tuple[int, int]:
        return pes[pe].role_word()

    def combine(
        switch_id: int, left: tuple[int, int], right: tuple[int, int]
    ) -> tuple[int, int]:
        s_l, d_l = left
        s_r, d_r = right
        if not (s_l or d_l or s_r or d_r):
            # quiescent subtree: intern the shared all-zero state.
            states[switch_id] = ZERO_STATE
            return _ZERO_PAIR
        m = s_l if s_l < d_r else d_r  # Lemma 1: left sources pair right dsts
        states[switch_id] = StoredState(
            matched=m,
            unmatched_left_src=s_l - m,
            left_dst=d_l,
            right_src=s_r,
            unmatched_right_dst=d_r - m,
        )
        return (s_l - m + s_r, d_l + d_r - m)

    sent = engine.upward_wave(
        leaf_word, combine, words_per_message=UpWord.wire_words(), collect=False
    )
    root_s, root_d = sent[engine.topology.root]
    if root_s or root_d:
        raise ProtocolError(
            f"unbalanced communication set: root would forward "
            f"{UpWord(root_s, root_d)} to a non-existent parent (some endpoint "
            "has no partner)"
        )
    return states


_ZERO_PAIR = (0, 0)


def _run_phase1_logged(engine: CSTEngine) -> dict[int, StoredState]:
    """Phase 1 with an event log attached: words are real :class:`UpWord`\\ s
    so the recorded control events keep the seed's rendering and validation."""
    pes = engine.network.pes
    states: dict[int, StoredState] = {}

    def leaf_word(pe: int) -> UpWord:
        return UpWord(*pes[pe].role_word())

    def combine(switch_id: int, left: UpWord, right: UpWord) -> UpWord:
        m = min(left.sources, right.destinations)
        states[switch_id] = StoredState(
            matched=m,
            unmatched_left_src=left.sources - m,
            left_dst=left.destinations,
            right_src=right.sources,
            unmatched_right_dst=right.destinations - m,
        )
        return UpWord(
            left.sources - m + right.sources,
            left.destinations + right.destinations - m,
        )

    sent = engine.upward_wave(
        leaf_word, combine, words_per_message=UpWord.wire_words(), collect=False
    )
    root = sent[engine.topology.root]
    if root.sources or root.destinations:
        raise ProtocolError(
            f"unbalanced communication set: root would forward {root} to a "
            "non-existent parent (some endpoint has no partner)"
        )
    return states


def run_phase1_vectorized(engine: CSTEngine) -> dict[int, StoredState]:
    """Phase 1 as a level-synchronous numpy reduction.

    Computes exactly the same per-switch ``C_S`` counters as
    :func:`run_phase1` — ``M = min(S_L, D_R)`` level by level, leaves up —
    but in O(log N) numpy passes instead of 2N Python ``combine`` calls.
    The wave still *happens* in the modelled hardware (every link carries
    its ``[S, D]`` word), so the engine trace records the same logical and
    physical message counts as the callable-driven wave; only the
    simulator's work is vectorised.  Falls back to :func:`run_phase1` when
    an event log is attached, which wants the per-node wave for fidelity.
    """
    network = engine.network
    if network.event_log is not None:
        return run_phase1(engine)
    n = engine.topology.n_leaves
    srcs = np.zeros(2 * n, dtype=np.int64)
    dsts = np.zeros(2 * n, dtype=np.int64)
    pes = network.pes
    for i in network.roled_pes:
        s, d = pes[i].role_word()
        srcs[n + i] = s
        dsts[n + i] = d

    matched = np.zeros(n, dtype=np.int64)
    t4 = np.zeros(n, dtype=np.int64)  # S_L - M
    t3 = np.zeros(n, dtype=np.int64)  # D_L
    t2 = np.zeros(n, dtype=np.int64)  # S_R
    t5 = np.zeros(n, dtype=np.int64)  # D_R - M
    for lvl in range(engine.topology.height - 1, -1, -1):
        lo, hi = 1 << lvl, 2 << lvl
        s_l, s_r = srcs[2 * lo : 2 * hi : 2], srcs[2 * lo + 1 : 2 * hi : 2]
        d_l, d_r = dsts[2 * lo : 2 * hi : 2], dsts[2 * lo + 1 : 2 * hi : 2]
        m = np.minimum(s_l, d_r)  # Lemma 1
        matched[lo:hi] = m
        t4[lo:hi] = s_l - m
        t3[lo:hi] = d_l
        t2[lo:hi] = s_r
        t5[lo:hi] = d_r - m
        srcs[lo:hi] = s_l - m + s_r
        dsts[lo:hi] = d_l + d_r - m

    if srcs[1] or dsts[1]:
        raise ProtocolError(
            f"unbalanced communication set: root would forward "
            f"{UpWord(int(srcs[1]), int(dsts[1]))} to a non-existent parent "
            "(some endpoint has no partner)"
        )

    states: dict[int, StoredState] = dict.fromkeys(range(1, n), ZERO_STATE)
    live = (np.nonzero(matched + t4 + t3 + t2 + t5)[0]).tolist()
    for v in live:
        states[v] = StoredState(
            matched=int(matched[v]),
            unmatched_left_src=int(t4[v]),
            left_dst=int(t3[v]),
            right_src=int(t2[v]),
            unmatched_right_dst=int(t5[v]),
        )
    n_messages = 2 * n - 2
    engine.trace.record_wave(n_messages, n_messages * UpWord.wire_words())
    return states


def pending_matched(states: Mapping[int, StoredState], n_leaves: int) -> list[int]:
    """Subtree-matched totals for the frontier-pruned fast path.

    Returns a flat list indexed by heap id (size ``2 * n_leaves``) where
    entry ``v`` is the number of still-unscheduled matched pairs stored at
    switches in the subtree rooted at ``v`` (leaves are always 0).  A
    Phase-2 down-wave may skip any subtree whose incoming word is
    ``[null,null]`` and whose entry here is 0 — no descendant can stage a
    connection or emit a live word.  The scheduler decrements the entries
    of a switch and all its ancestors whenever that switch schedules one of
    its matched pairs, keeping the invariant current between rounds *and*
    for the not-yet-visited frontier within a round (ancestors are always
    visited first on a down-wave).
    """
    pending = [0] * (2 * n_leaves)
    for v in range(n_leaves - 1, 0, -1):
        acc = states[v].matched
        left = 2 * v
        if left < n_leaves:
            acc += pending[left] + pending[left + 1]
        pending[v] = acc
    return pending


def phase1_states(
    cset: CommunicationSet, n_leaves: int
) -> Mapping[int, StoredState]:
    """Pure helper: Phase-1 stored states for a set, without a live network.

    Convenient for tests and for the centralized baselines that want the
    same per-switch counters the distributed algorithm would compute.
    """
    from repro.cst.network import CSTNetwork

    network = CSTNetwork.of_size(n_leaves)
    roles: Mapping[int, Role] = cset.roles()
    network.assign_roles(roles)
    return run_phase1(CSTEngine(network))
