"""Phase 1 of the CSA: distributing control information (paper Steps 1.1–1.3).

Each PE transmits its role word; each switch ``u`` receives
``C_{U-L} = [S_L, D_L]`` and ``C_{U-R} = [S_R, D_R]``, matches
``M = min(S_L, D_R)`` source–destination pairs (justified for right-oriented
well-nested sets by Lemma 1), stores
``C_S = [M, S_L−M, D_L, S_R, D_R−M]``, and forwards
``C_U = [S_L−M+S_R, D_L+D_R−M]``.

The wave runs once; afterwards every switch knows *how many* communications
of each of the five types (Figure 4a) pass through it — never *which*.
"""

from __future__ import annotations

from typing import Mapping

from repro.comms.communication import CommunicationSet
from repro.core.control import StoredState, UpWord
from repro.cst.engine import CSTEngine
from repro.exceptions import ProtocolError
from repro.types import Role

__all__ = ["run_phase1", "phase1_states"]


def run_phase1(engine: CSTEngine) -> dict[int, StoredState]:
    """Execute Phase 1 over the engine's network.

    PE roles must already be assigned on the network
    (:meth:`~repro.cst.network.CSTNetwork.assign_roles`).  Returns the
    stored state ``C_S`` of every switch, keyed by heap id.

    For a balanced (fully matched) communication set the root's outgoing
    word must be ``[0, 0]``; anything else means some endpoint has no
    partner inside the tree and is reported as a protocol error.
    """
    network = engine.network
    states: dict[int, StoredState] = {}

    def leaf_word(pe: int) -> UpWord:
        s, d = network.pes[pe].role_word()
        return UpWord(s, d)

    def combine(switch_id: int, left: UpWord, right: UpWord) -> UpWord:
        s_l, d_l = left.sources, left.destinations
        s_r, d_r = right.sources, right.destinations
        m = min(s_l, d_r)  # Lemma 1: left sources pair with right destinations
        states[switch_id] = StoredState(
            matched=m,
            unmatched_left_src=s_l - m,
            left_dst=d_l,
            right_src=s_r,
            unmatched_right_dst=d_r - m,
        )
        return UpWord(s_l - m + s_r, d_l + d_r - m)

    sent = engine.upward_wave(leaf_word, combine, words_per_message=UpWord.wire_words())
    root_out = sent[engine.topology.root]
    if root_out.sources or root_out.destinations:
        raise ProtocolError(
            f"unbalanced communication set: root would forward {root_out} to a "
            "non-existent parent (some endpoint has no partner)"
        )
    return states


def phase1_states(
    cset: CommunicationSet, n_leaves: int
) -> Mapping[int, StoredState]:
    """Pure helper: Phase-1 stored states for a set, without a live network.

    Convenient for tests and for the centralized baselines that want the
    same per-switch counters the distributed algorithm would compute.
    """
    from repro.cst.network import CSTNetwork

    network = CSTNetwork.of_size(n_leaves)
    roles: Mapping[int, Role] = cset.roles()
    network.assign_roles(roles)
    return run_phase1(CSTEngine(network))
