"""The paper's contribution: the PADR Configuration & Scheduling Algorithm.

``control``  — the O(1)-word control vocabulary (C_U, C_S, C_D).
``phase1``   — Step 1.1–1.3: distribute counts up the tree (runs once).
``phase2``   — the CONFIGURE procedure (paper Figure 5, all four cases).
``csa``      — :class:`PADRScheduler`: the full distributed algorithm.
``left``     — :class:`LeftPADRScheduler`: the mirrored variant for
               left-oriented sets (paper §2.1 symmetry, made native).
``schedule`` — result types shared by all schedulers.
"""

from repro.core.control import DownKind, DownWord, StoredState, UpWord
from repro.core.phase1 import run_phase1
from repro.core.phase2 import ConfigureOutcome, configure
from repro.core.csa import PADRScheduler
from repro.core.left import LeftPADRScheduler
from repro.core.plan import GeneralSchedule, schedule_general
from repro.core.schedule import RoundRecord, Schedule, ScheduleStats

__all__ = [
    "DownKind",
    "DownWord",
    "StoredState",
    "UpWord",
    "run_phase1",
    "ConfigureOutcome",
    "configure",
    "PADRScheduler",
    "LeftPADRScheduler",
    "GeneralSchedule",
    "schedule_general",
    "RoundRecord",
    "Schedule",
    "ScheduleStats",
]
