"""The PADR Configuration & Scheduling Algorithm (paper §3).

:class:`PADRScheduler` runs the full distributed algorithm on a simulated
CST:

1. **Phase 1** (once): PE roles flow up; every switch stores its five-type
   counters ``C_S``.
2. **Phase 2** (repeated): a downward control wave in which every switch
   runs :func:`~repro.core.phase2.configure` on the word from its parent
   (the root synthesises ``[null,null]``), stages its crossbar connections
   and forwards words to its children.  Source leaves that receive
   ``[s,null]`` write their payloads (Step 2.2); the network traces each
   payload through the committed crossbars to its destination leaf.
3. Rounds repeat until no switch holds an unscheduled matched pair
   (Step 2.3).  Termination is detected with a 1-bit OR carried by the same
   wave discipline — an O(1)-word addition the paper leaves implicit.

The scheduler never consults the ground-truth pairing: switches see only
counters and ranks, leaves see only their own role.  Delivery correctness
is *observed* by the network's tracer and later checked by
:mod:`repro.analysis.verifier`.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.comms.communication import Communication, CommunicationSet
from repro.comms.wellnested import require_well_nested
from repro.core.base import ScheduleContext, Scheduler
from repro.core.config import SchedulerConfig
from repro.core.control import DownKind, DownWord, StoredState
from repro.core.phase1 import pending_matched, run_phase1, run_phase1_vectorized
from repro.core.phase2 import configure
from repro.core.schedule import RoundRecord, Schedule
from repro.cst.engine import CSTEngine
from repro.cst.network import CSTNetwork
from repro.exceptions import ProtocolError, SchedulingError
from repro.obs.instrument import Instrumentation
from repro.types import Connection, Role

__all__ = ["PADRScheduler"]


class PADRScheduler(Scheduler):
    """The paper's power-aware scheduler for right-oriented well-nested sets.

    Parameters
    ----------
    validate_input:
        check well-nestedness up front (O(M log M)); disable only for
        workloads already validated by a generator.
    check_postconditions:
        verify that every counter on every switch is exhausted when the
        algorithm stops (a cheap global invariant the distributed algorithm
        itself cannot see).
    obs:
        optional :class:`~repro.obs.Instrumentation` — when given, the run
        emits per-round metrics and trace events into it (registry hooks on
        the engine trace and power meter, round/phase deltas, run
        summaries).  ``None`` (default) keeps the uninstrumented hot path:
        the only residual cost is a handful of ``is not None`` checks.
        ``schedule(..., obs=...)`` overrides this per call.
    config:
        a :class:`~repro.core.config.SchedulerConfig` supplying defaults
        for every flag above (explicit keyword arguments win).
    """

    name = "padr-csa"
    native_obs = True

    def __init__(
        self,
        *,
        validate_input: bool | None = None,
        check_postconditions: bool | None = None,
        strict: bool | None = None,
        engine_factory: Callable[[CSTNetwork], CSTEngine] | None = None,
        reuse_phase1: bool | None = None,
        obs: "Instrumentation | None" = None,
        config: SchedulerConfig | None = None,
    ) -> None:
        cfg = config if config is not None else SchedulerConfig()
        self.config = cfg
        self.validate_input = (
            cfg.validate_input if validate_input is None else validate_input
        )
        self.check_postconditions = (
            cfg.check_postconditions
            if check_postconditions is None
            else check_postconditions
        )
        #: with ``strict`` the scheduler raises the moment a round's data
        #: transfer contradicts its control decisions (the healthy-hardware
        #: invariant).  Fault-injection experiments set ``strict=False`` so
        #: the schedule completes mechanically and the damage is surfaced
        #: by the verifier instead.
        self.strict = cfg.strict if strict is None else strict
        #: wave engine to run on; the differential tests swap in
        #: :class:`~repro.cst.engine.ReferenceWaveEngine` here.
        self.engine_factory = engine_factory or cfg.engine_factory()
        #: skip re-running Phase 1's upward wave when a consecutive set on
        #: the same tree has identical role assignments — the stored
        #: counters depend only on roles, so the cached pristine states are
        #: restored instead.  Off by default because skipping a wave also
        #: skips its (logical) control traffic; the stream scheduler opts
        #: in, single-set accounting stays untouched.
        self.reuse_phase1 = cfg.reuse_phase1 if reuse_phase1 is None else reuse_phase1
        self.obs = obs
        self._phase1_key: tuple | None = None
        self._phase1_states: dict[int, StoredState] | None = None
        self._phase1_pending: list[int] | None = None
        #: columnar-path Phase-1 cache (pristine counter arrays); kept
        #: separate from the dict cache so a run can bounce between paths.
        self._phase1_cols_key: tuple | None = None
        self._phase1_cols: tuple | None = None
        #: populated by :meth:`schedule` for introspection and tests.
        self.last_network: CSTNetwork | None = None
        self.last_states: dict[int, StoredState] | None = None

    def _schedule(self, cset: CommunicationSet, ctx: ScheduleContext) -> Schedule:
        obs = ctx.obs if ctx.obs is not None else self.obs
        if obs is None:
            return self._run(cset, ctx, None)
        with obs.metrics.span("csa.schedule", run=obs.run):
            return self._run(cset, ctx, obs)

    def _run(
        self,
        cset: CommunicationSet,
        ctx: ScheduleContext,
        obs: "Instrumentation | None",
    ) -> Schedule:
        if self.validate_input:
            require_well_nested(cset)
        n = ctx.n_leaves
        network = ctx.network
        if self._columnar_applicable(n, network, ctx.policy):
            from repro.core.columnar import run_columnar

            return run_columnar(self, cset, n, network, ctx.policy, obs)
        if network is None:
            network = CSTNetwork.of_size(n, policy=ctx.policy)
        roles = cset.roles()
        network.assign_roles(roles)
        engine = self.engine_factory(network)

        if obs is not None:
            obs.run_start(scheduler=self.name, n_leaves=n, n_comms=len(cset))
            engine.trace.on_wave = obs.wave_hook()
            obs.attach(network)

        states, pending = self._phase1(engine, n, roles, obs)
        self.last_network = network
        self.last_states = states

        rounds: list[RoundRecord] = []
        max_rounds = len(cset) + 1  # Theorem 5 promises exactly `width` rounds

        # pending[root] tracks the sum of all switches' matched counters, so
        # the Step-2.3 termination test is O(1) instead of an O(n) sweep.
        while pending[1] > 0:
            if len(rounds) >= max_rounds:
                raise SchedulingError(
                    f"CSA exceeded {max_rounds} rounds — algorithm failed to make "
                    "progress (this indicates a bug or invalid input)"
                )
            rounds.append(
                self._run_round(engine, states, pending, len(rounds), obs)
            )

        if self.check_postconditions:
            leftovers = {
                v: st.as_tuple() for v, st in states.items() if not st.exhausted
            }
            if leftovers:
                raise ProtocolError(
                    f"CSA finished with non-exhausted switch counters: {leftovers}"
                )
            if not network.all_done:
                pending = [pe.index for pe in network.pes if not pe.done]
                raise ProtocolError(f"CSA finished but PEs {pending} are unsatisfied")

        schedule = Schedule(
            cset=cset,
            n_leaves=n,
            scheduler_name=self.name,
            rounds=tuple(rounds),
            power=network.power_report(),
            control_messages=engine.trace.messages,
            control_words=engine.trace.words,
            physical_messages=engine.trace.physical_messages,
        )
        if obs is not None:
            obs.run_end(schedule)
        return schedule

    # ------------------------------------------------------------------

    def _columnar_applicable(
        self, n: int, network: CSTNetwork | None, policy
    ) -> bool:
        """Whether this run may take the struct-of-arrays Phase-2 kernel.

        The engine selection must ask for it (a
        :class:`~repro.cst.engine.ColumnarWaveEngine`, possibly resolved
        per-size by the config's ``"auto"`` factory), ``trace_compat`` must
        be off, the teardown policy lazy, and any caller-supplied network
        pristine and healthy — the kernel reproduces the scalar engines'
        final network state by write-back, which is only bit-identical from
        a clean start.  Outside these guards the scalar fast path runs;
        schedules are identical either way.
        """
        factory = self.engine_factory
        if isinstance(factory, type):
            cls = factory
        else:
            resolve = getattr(factory, "resolve_engine_cls", None)
            if resolve is None:
                return False
            cls = resolve(n)
        if not getattr(cls, "supports_columnar_phase2", False):
            return False
        if self.config.trace_compat:
            return False
        if network is None:
            return policy is None or not policy.eager_teardown
        meter = network.meter
        return (
            network.event_log is None
            and not network.fault_injected
            and network.rounds_run == 0
            and not meter.policy.eager_teardown
            and meter.total_units == 0
            and meter.total_changes == 0
        )

    def _phase1(
        self,
        engine: CSTEngine,
        n: int,
        roles: Mapping[int, Role],
        obs: "Instrumentation | None",
    ) -> tuple[dict[int, StoredState], list[int]]:
        """Run Phase 1, or restore it from cache when roles are unchanged.

        The cache key includes the network's fault signature: a fault
        injected or cleared between two runs on the same roles must force a
        fresh upward wave rather than silently restoring state recorded
        under different hardware conditions.
        """
        key = (n, dict(roles), engine.network.fault_signature())
        if self.reuse_phase1 and key == self._phase1_key:
            assert self._phase1_states is not None and self._phase1_pending is not None
            if obs is not None:
                obs.phase1(
                    live_switches=sum(
                        1 for st in self._phase1_states.values() if not st.exhausted
                    ),
                    logical_messages=0,
                    physical_messages=0,
                    cached=True,
                )
            return (
                {v: st.copy() for v, st in self._phase1_states.items()},
                list(self._phase1_pending),
            )
        msgs_before = engine.trace.messages
        phys_before = engine.trace.physical_messages
        if obs is not None:
            with obs.metrics.span("csa.phase1", run=obs.run):
                states = self._phase1_wave(engine)
        else:
            states = self._phase1_wave(engine)
        pending = pending_matched(states, n)
        if obs is not None:
            obs.phase1(
                live_switches=sum(1 for st in states.values() if not st.exhausted),
                logical_messages=engine.trace.messages - msgs_before,
                physical_messages=engine.trace.physical_messages - phys_before,
                cached=False,
            )
        if self.reuse_phase1:
            # cache pristine copies before Phase 2 mutates the counters.
            self._phase1_key = key
            self._phase1_states = {v: st.copy() for v, st in states.items()}
            self._phase1_pending = list(pending)
        return states, pending

    def _phase1_wave(self, engine: CSTEngine) -> dict[int, StoredState]:
        if getattr(engine, "prefers_vectorized_phase1", False):
            return run_phase1_vectorized(engine)
        return run_phase1(engine)

    def _run_round(
        self,
        engine: CSTEngine,
        states: dict[int, StoredState],
        pending: list[int],
        round_no: int,
        obs: "Instrumentation | None",
    ) -> RoundRecord:
        """One Phase-2 round: down-wave, commit, transfer, record."""
        network = engine.network
        staged: dict[int, tuple[Connection, ...]] = {}

        pruned_subtrees = 0
        if obs is not None:
            meter = network.meter
            units_before = meter.total_units
            changes_before = meter.total_changes
            msgs_before = engine.trace.messages
            phys_before = engine.trace.physical_messages

        def emit(switch_id: int, word: DownWord) -> tuple[DownWord, DownWord]:
            outcome = configure(switch_id, states[switch_id], word)
            if outcome.connections:
                staged[switch_id] = outcome.connections
            if outcome.scheduled_matched:
                v = switch_id
                while v:
                    pending[v] -= 1
                    v >>= 1
            return outcome.left_word, outcome.right_word

        def prune(node: int, word: DownWord) -> bool:
            # a [null,null] word into a subtree with no matched pairs left
            # is dead: every switch below would stage nothing and forward
            # [null,null], every leaf word would be [null,null] (skipped
            # below anyway).  Leaves always have pending 0.
            return word.kind is DownKind.NONE and not pending[node]

        if obs is not None:
            # counting wrapper, created only when observed — the unobserved
            # fast path keeps the bare predicate.  Each True is one dead
            # link at the live frontier, i.e. one skipped subtree.
            base_prune = prune

            def prune(node: int, word: DownWord) -> bool:
                nonlocal pruned_subtrees
                dead = base_prune(node, word)
                if dead:
                    pruned_subtrees += 1
                return dead

        leaf_words = engine.downward_wave(
            DownWord.none(),
            emit,
            words_per_message=DownWord.wire_words(),
            prune=prune,
        )

        writers: list[int] = []
        receivers: list[int] = []
        for pe_index, word in leaf_words.items():
            if word.kind is DownKind.NONE:
                continue
            if word.kind is DownKind.BOTH:
                raise ProtocolError(
                    f"leaf PE {pe_index} received [s,d] — a PE cannot be both endpoints"
                )
            if word.x_s or word.x_d:
                raise ProtocolError(
                    f"leaf PE {pe_index} received non-zero rank in {word}"
                )
            pe = network.pes[pe_index]
            if word.kind is DownKind.SRC:
                if pe.role is not Role.SOURCE:
                    raise ProtocolError(
                        f"leaf PE {pe_index} asked to transmit but role is {pe.role.value}"
                    )
                writers.append(pe_index)
            else:
                if pe.role is not Role.DESTINATION:
                    raise ProtocolError(
                        f"leaf PE {pe_index} asked to receive but role is {pe.role.value}"
                    )
                receivers.append(pe_index)

        if len(writers) != len(receivers):
            raise ProtocolError(
                f"round {round_no}: {len(writers)} writers but {len(receivers)} "
                "receivers — the control wave is inconsistent"
            )

        network.stage(staged)
        network.commit_round(staged.keys())

        traces = network.transfer(sorted(writers), round_no)
        performed: list[Communication] = []
        for tr in traces:
            if tr.delivered_pe is None:
                if self.strict:
                    raise ProtocolError(
                        f"round {round_no}: payload from PE {tr.source_pe} was "
                        f"dropped after switches {tr.hops}"
                    )
                continue  # non-strict: drop recorded by omission; verifier flags
            performed.append(Communication(tr.source_pe, tr.delivered_pe))
        delivered_set = {c.dst for c in performed}
        if self.strict and delivered_set != set(receivers):
            raise ProtocolError(
                f"round {round_no}: control wave selected receivers "
                f"{sorted(receivers)} but data arrived at {sorted(delivered_set)}"
            )

        if obs is not None:
            obs.round(
                index=round_no,
                writers=len(writers),
                performed=len(performed),
                staged_switches=len(staged),
                config_changes=meter.total_changes - changes_before,
                power_units=meter.total_units - units_before,
                logical_messages=engine.trace.messages - msgs_before,
                physical_messages=engine.trace.physical_messages - phys_before,
                pruned_subtrees=pruned_subtrees,
            )

        return RoundRecord(
            index=round_no,
            performed=tuple(performed),
            writers=tuple(sorted(writers)),
            staged=staged,
        )
