"""Schedule result types shared by every scheduler in the library.

A :class:`Schedule` is the complete, machine-checkable record of one run:
which communications were *observed* to complete in each round (observed by
tracing payloads through the configured crossbars — never by trusting the
scheduler), what each round staged into each switch, and the power report.

These records are what the analysis layer verifies (Theorem 4), counts
(Theorem 5) and compares (Theorem 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.comms.communication import Communication, CommunicationSet
from repro.cst.power import PowerReport
from repro.types import Connection

__all__ = ["RoundRecord", "ScheduleStats", "Schedule"]


@dataclass(frozen=True, slots=True)
class RoundRecord:
    """One round of a schedule.

    ``performed``
        communications completed this round as observed by data tracing:
        ``Communication(src, delivered_pe)`` for every writer whose payload
        reached a leaf.
    ``writers``
        source PEs that transmitted this round.
    ``staged``
        connections staged into each switch this round (what the round's
        control decisions *requested*; the crossbar may hold more due to
        persisting connections).
    """

    index: int
    performed: tuple[Communication, ...]
    writers: tuple[int, ...]
    staged: Mapping[int, tuple[Connection, ...]]

    def __len__(self) -> int:
        return len(self.performed)


@dataclass(frozen=True, slots=True)
class ScheduleStats:
    """Aggregates the analysis layer reads off a finished schedule."""

    n_comms: int
    n_rounds: int
    width: int
    total_power_units: int
    max_switch_power_units: int
    max_switch_config_changes: int
    control_messages: int
    control_words: int

    @property
    def rounds_over_width(self) -> float:
        """Optimality ratio — Theorem 5 says exactly 1.0 for the CSA."""
        return self.n_rounds / self.width if self.width else 0.0

    def row(self) -> dict[str, float | int]:
        return {
            "comms": self.n_comms,
            "rounds": self.n_rounds,
            "width": self.width,
            "rounds/width": round(self.rounds_over_width, 3),
            "power_total": self.total_power_units,
            "power_max_switch": self.max_switch_power_units,
            "changes_max_switch": self.max_switch_config_changes,
        }


class Schedule:
    """The complete record of one scheduling run on one CST."""

    __slots__ = (
        "cset",
        "n_leaves",
        "scheduler_name",
        "rounds",
        "power",
        "control_messages",
        "control_words",
        "physical_messages",
    )

    def __init__(
        self,
        cset: CommunicationSet,
        n_leaves: int,
        scheduler_name: str,
        rounds: tuple[RoundRecord, ...],
        power: PowerReport,
        *,
        control_messages: int = 0,
        control_words: int = 0,
        physical_messages: int | None = None,
    ) -> None:
        self.cset = cset
        self.n_leaves = n_leaves
        self.scheduler_name = scheduler_name
        self.rounds = rounds
        self.power = power
        self.control_messages = control_messages
        self.control_words = control_words
        #: transmissions the simulator actually walked; equals
        #: ``control_messages`` (the paper-model logical count) unless the
        #: frontier-pruned engine skipped dead subtrees.
        self.physical_messages = (
            control_messages if physical_messages is None else physical_messages
        )

    # -- views ----------------------------------------------------------------

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    # -- ScheduleResult protocol ----------------------------------------------

    @property
    def rounds_used(self) -> int:
        return len(self.rounds)

    @property
    def power_units(self) -> int:
        return self.power.total_units

    @property
    def delivered(self) -> tuple[Communication, ...]:
        """Unique communications observed to complete, sorted."""
        return tuple(sorted(set(self.performed())))

    @property
    def undelivered(self) -> tuple[Communication, ...]:
        """Requested communications never observed to complete, sorted."""
        return tuple(sorted(set(self.cset.comms) - set(self.performed())))

    def performed(self) -> Iterator[Communication]:
        """All observed completions across rounds, in round order."""
        for r in self.rounds:
            yield from r.performed

    def round_of(self) -> Mapping[Communication, int]:
        """Round index each communication completed in (first completion)."""
        out: dict[Communication, int] = {}
        for r in self.rounds:
            for c in r.performed:
                out.setdefault(c, r.index)
        return out

    def stats(self, width: int | None = None) -> ScheduleStats:
        """Aggregates for the analysis layer.

        ``width`` is the round-count lower bound the stats are normalised
        against; when omitted it is computed from the schedule's own set
        (the :class:`ScheduleResult` protocol form).
        """
        if width is None:
            from repro.comms.width import width as _width
            from repro.cst.topology import CSTTopology

            width = _width(self.cset, CSTTopology.of(self.n_leaves))
        return ScheduleStats(
            n_comms=len(self.cset),
            n_rounds=self.n_rounds,
            width=width,
            total_power_units=self.power.total_units,
            max_switch_power_units=self.power.max_switch_units,
            max_switch_config_changes=self.power.max_switch_changes,
            control_messages=self.control_messages,
            control_words=self.control_words,
        )

    def __repr__(self) -> str:
        return (
            f"Schedule({self.scheduler_name!r}, comms={len(self.cset)}, "
            f"rounds={self.n_rounds}, power={self.power.total_units})"
        )
