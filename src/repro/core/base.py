"""Scheduler abstraction and the shared round-plan executor.

Every scheduler — the paper's CSA and all baselines — produces a
:class:`~repro.core.schedule.Schedule` by actually driving a
:class:`~repro.cst.network.CSTNetwork`: staging crossbar connections,
committing rounds (which is where power is charged), transferring payloads
and recording what tracing observed.  Centralized baselines share
:func:`execute_round_plan`, which replays a precomputed per-round plan
through the network; the CSA drives the network round by round from its
distributed control waves instead.

Using one executor for all baselines keeps the power comparison fair: the
meter, the teardown policy and the tracing are identical — only the round
decomposition differs.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.comms.communication import Communication, CommunicationSet
from repro.core.schedule import RoundRecord, Schedule
from repro.cst.network import CSTNetwork
from repro.cst.power import PowerPolicy
from repro.exceptions import SchedulingError
from repro.types import Connection

__all__ = ["Scheduler", "execute_round_plan"]


class Scheduler(abc.ABC):
    """Common interface of all CST schedulers."""

    #: short identifier used in reports and benchmark tables.
    name: str = "abstract"

    @abc.abstractmethod
    def schedule(
        self,
        cset: CommunicationSet,
        n_leaves: int | None = None,
        *,
        policy: PowerPolicy | None = None,
    ) -> Schedule:
        """Route ``cset`` on a CST with ``n_leaves`` leaves.

        ``n_leaves`` defaults to the smallest power-of-two tree hosting the
        set; ``policy`` selects the power-accounting discipline (the paper's
        lazy model by default).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def execute_round_plan(
    cset: CommunicationSet,
    n_leaves: int,
    plan: Sequence[Sequence[Communication]],
    scheduler_name: str,
    *,
    policy: PowerPolicy | None = None,
) -> Schedule:
    """Replay a per-round plan through a real network and record everything.

    Each round's communications are routed along their unique tree paths;
    the required crossbar connections are staged, the round committed
    (power charged per newly-established connection), payloads transferred
    and completions observed by tracing.  Raises
    :class:`~repro.exceptions.SchedulingError` when the plan's rounds are
    internally inconsistent (two communications claiming the same switch
    port — the symptom of an incompatible round).
    """
    planned = [c for rnd in plan for c in rnd]
    if sorted(planned) != sorted(cset.comms):
        raise SchedulingError(
            f"{scheduler_name}: plan performs {len(planned)} communications, "
            f"set has {len(cset)} (or contents differ)"
        )

    network = CSTNetwork.of_size(n_leaves, policy=policy)
    network.assign_roles(cset.roles())
    topo = network.topology

    rounds: list[RoundRecord] = []
    for index, round_comms in enumerate(plan):
        staged: dict[int, list[Connection]] = {}
        for c in round_comms:
            for switch_id, conn in topo.path_connections(c.src, c.dst).items():
                staged.setdefault(switch_id, []).append(conn)
        try:
            network.stage({k: tuple(v) for k, v in staged.items()})
            network.commit_round()
        except Exception as exc:  # port conflicts surface here
            raise SchedulingError(
                f"{scheduler_name}: round {index} is not realisable on the "
                f"crossbars ({exc})"
            ) from exc
        writers = tuple(sorted(c.src for c in round_comms))
        traces = network.transfer(writers, index)
        performed = tuple(
            Communication(t.source_pe, t.delivered_pe)
            for t in traces
            if t.delivered_pe is not None
        )
        if len(performed) != len(writers):
            dropped = [t.source_pe for t in traces if t.delivered_pe is None]
            raise SchedulingError(
                f"{scheduler_name}: round {index} dropped payloads from PEs {dropped}"
            )
        rounds.append(
            RoundRecord(
                index=index,
                performed=performed,
                writers=writers,
                staged={k: tuple(v) for k, v in staged.items()},
            )
        )

    return Schedule(
        cset=cset,
        n_leaves=n_leaves,
        scheduler_name=scheduler_name,
        rounds=tuple(rounds),
        power=network.power_report(),
    )
