"""Scheduler abstraction and the shared round-plan executor.

Every scheduler — the paper's CSA and all baselines — produces a
:class:`~repro.core.schedule.Schedule` by actually driving a
:class:`~repro.cst.network.CSTNetwork`: staging crossbar connections,
committing rounds (which is where power is charged), transferring payloads
and recording what tracing observed.  Centralized baselines share
:func:`execute_round_plan`, which replays a precomputed per-round plan
through the network; the CSA drives the network round by round from its
distributed control waves instead.

Using one executor for all baselines keeps the power comparison fair: the
meter, the teardown policy and the tracing are identical — only the round
decomposition differs.

The unified calling convention
------------------------------

Every scheduler is invoked the same way::

    scheduler.schedule(cset, n_leaves=None, policy=None, network=None, obs=None)

``schedule`` itself is a template method implemented once on
:class:`Scheduler`: it resolves the tree size, checks ``network``/``policy``
consistency, and hands a fully-resolved :class:`ScheduleContext` to the
subclass hook ``_schedule``.  Schedulers that drive their own
instrumentation (the CSA) consume ``ctx.obs`` live; for every other
scheduler the base class folds the finished schedule into the registry and
trace after the fact, so ``obs=`` works uniformly across the whole surface.

All options are keyword-only.  Passing ``n_leaves`` positionally
(``schedule(cset, 64)``) was deprecated for one release and now raises
:class:`TypeError`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    ClassVar,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.comms.communication import Communication, CommunicationSet
from repro.comms.wellnested import is_well_nested
from repro.core.schedule import RoundRecord, Schedule, ScheduleStats
from repro.cst.network import CSTNetwork
from repro.cst.power import PowerPolicy
from repro.exceptions import NotWellNestedError, SchedulingError
from repro.types import Connection

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.instrument import Instrumentation

__all__ = [
    "DECOMPOSE_MODES",
    "ScheduleContext",
    "ScheduleResult",
    "Scheduler",
    "execute_round_plan",
]

#: Legal values for ``Scheduler.schedule(..., decompose=)`` and
#: ``SchedulerConfig.decompose``: ``"strict"`` preserves today's contract
#: (engines validate their own inputs), ``"never"`` asserts well-nestedness
#: up front and raises :class:`~repro.exceptions.NotWellNestedError`
#: otherwise, ``"auto"`` lowers arbitrary sets through
#: :func:`repro.core.plan.schedule_general` (well-nested inputs pass
#: through the strict path unchanged, bit-identically).
DECOMPOSE_MODES = ("auto", "strict", "never")


@runtime_checkable
class ScheduleResult(Protocol):
    """The uniform read surface of every scheduling result.

    ``Schedule``, ``DegradedSchedule``, ``FabricSchedule``,
    ``GeneralFabricSchedule`` and ``GeneralSchedule`` all expose it, so
    callers can account rounds, power and delivery without caring which
    path produced the result.  ``delivered``/``undelivered`` are sorted
    tuples of unique :class:`~repro.comms.communication.Communication`;
    ``stats()`` aggregates for the analysis layer.
    """

    @property
    def rounds_used(self) -> int: ...

    @property
    def power_units(self) -> int: ...

    @property
    def delivered(self) -> tuple[Communication, ...]: ...

    @property
    def undelivered(self) -> tuple[Communication, ...]: ...

    def stats(self) -> ScheduleStats: ...


@dataclass(slots=True)
class ScheduleContext:
    """Everything a scheduler run needs, resolved once by the base class.

    ``n_leaves`` is always a concrete power of two here (defaulting rules
    already applied); ``network`` is the caller-supplied pre-built network
    or ``None`` when the scheduler should build its own; ``obs`` is the
    per-call instrumentation (``None`` keeps the uninstrumented hot path).
    """

    n_leaves: int
    policy: PowerPolicy | None = None
    network: CSTNetwork | None = None
    obs: "Instrumentation | None" = None


class Scheduler(abc.ABC):
    """Common interface of all CST schedulers.

    Subclasses implement :meth:`_schedule`; the public :meth:`schedule`
    template method is shared and gives every scheduler the same signature.
    """

    #: short identifier used in reports and benchmark tables.
    name: str = "abstract"

    #: whether :meth:`schedule` accepts a caller-supplied pre-built
    #: ``network=``.  Composite schedulers that internally reflect or
    #: decompose the workload run on derived networks and reject one.
    supports_network: ClassVar[bool] = True

    #: set by subclasses that consume ``ctx.obs`` live during the run (the
    #: CSA); for everyone else the base class folds the finished schedule
    #: into the registry/trace after ``_schedule`` returns.
    native_obs: ClassVar[bool] = False

    def schedule(
        self,
        cset: CommunicationSet,
        *,
        n_leaves: int | None = None,
        policy: PowerPolicy | None = None,
        network: CSTNetwork | None = None,
        obs: "Instrumentation | None" = None,
        decompose: str | None = None,
    ) -> Schedule:
        """Route ``cset`` on a CST.

        ``n_leaves`` defaults to the smallest power-of-two tree hosting the
        set; ``policy`` selects the power-accounting discipline (the
        paper's lazy model by default).  ``network`` supplies a pre-built
        (possibly pre-configured, possibly faulty) network to run on — used
        by fault-injection tests and by the stream scheduler; when given,
        ``n_leaves`` and ``policy`` must not conflict with it.  ``obs``
        attaches an :class:`~repro.obs.Instrumentation` for this call only.

        ``decompose`` controls what happens to inputs that are not
        right-oriented well-nested (see :data:`DECOMPOSE_MODES`); ``None``
        defers to the scheduler's ``config.decompose`` (``"strict"`` when
        the scheduler carries no config).  Under ``"auto"`` an arbitrary
        set returns a :class:`~repro.core.plan.GeneralSchedule` instead of
        a plain :class:`~repro.core.schedule.Schedule`; both satisfy
        :class:`ScheduleResult`.
        """
        mode = decompose
        if mode is None:
            mode = getattr(getattr(self, "config", None), "decompose", "strict")
        if mode not in DECOMPOSE_MODES:
            raise SchedulingError(
                f"unknown decompose mode {mode!r}; expected one of {DECOMPOSE_MODES}"
            )
        if mode != "strict" and not is_well_nested(cset):
            if mode == "never":
                raise NotWellNestedError(
                    f"{type(self).__name__}: input is not a right-oriented "
                    "well-nested set and decompose='never' forbids lowering"
                )
            from repro.core.plan import schedule_general

            return schedule_general(
                cset,
                inner=self,
                n_leaves=n_leaves,
                policy=policy,
                network=network,
                obs=obs,
            )
        if network is not None:
            if not self.supports_network:
                raise SchedulingError(
                    f"{type(self).__name__} schedules on internally derived "
                    "networks and does not accept a pre-built network"
                )
            if n_leaves is not None and n_leaves != network.topology.n_leaves:
                raise SchedulingError(
                    f"n_leaves={n_leaves} conflicts with the supplied "
                    f"network of {network.topology.n_leaves} leaves"
                )
            if policy is not None and policy != network.meter.policy:
                raise SchedulingError(
                    "policy conflicts with the supplied network's meter policy"
                )
            n = network.topology.n_leaves
        else:
            n = n_leaves if n_leaves is not None else cset.min_leaves()

        ctx = ScheduleContext(n_leaves=n, policy=policy, network=network, obs=obs)
        schedule = self._schedule(cset, ctx)
        if obs is not None and not self.native_obs:
            self._fold_obs(obs, schedule)
        return schedule

    @abc.abstractmethod
    def _schedule(self, cset: CommunicationSet, ctx: ScheduleContext) -> Schedule:
        """Produce the schedule for an already-resolved request."""

    # ------------------------------------------------------------------

    @staticmethod
    def _fold_obs(obs: "Instrumentation", schedule: Schedule) -> None:
        """After-the-fact observability for non-native schedulers."""
        from repro.obs.instrument import observe_schedule
        from repro.obs.trace import export_schedule

        observe_schedule(obs.metrics, schedule, run=obs.run)
        if obs.trace is not None:
            export_schedule(obs.trace, schedule, run=obs.run)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def execute_round_plan(
    cset: CommunicationSet,
    n_leaves: int,
    plan: Sequence[Sequence[Communication]],
    scheduler_name: str,
    *,
    policy: PowerPolicy | None = None,
    network: CSTNetwork | None = None,
) -> Schedule:
    """Replay a per-round plan through a real network and record everything.

    Each round's communications are routed along their unique tree paths;
    the required crossbar connections are staged, the round committed
    (power charged per newly-established connection), payloads transferred
    and completions observed by tracing.  ``network`` replays the plan on a
    caller-supplied network instead of a fresh one.  Raises
    :class:`~repro.exceptions.SchedulingError` when the plan's rounds are
    internally inconsistent (two communications claiming the same switch
    port — the symptom of an incompatible round).
    """
    planned = [c for rnd in plan for c in rnd]
    if sorted(planned) != sorted(cset.comms):
        raise SchedulingError(
            f"{scheduler_name}: plan performs {len(planned)} communications, "
            f"set has {len(cset)} (or contents differ)"
        )

    if network is None:
        network = CSTNetwork.of_size(n_leaves, policy=policy)
    network.assign_roles(cset.roles())
    topo = network.topology

    rounds: list[RoundRecord] = []
    for index, round_comms in enumerate(plan):
        staged: dict[int, list[Connection]] = {}
        for c in round_comms:
            for switch_id, conn in topo.path_connections(c.src, c.dst).items():
                staged.setdefault(switch_id, []).append(conn)
        try:
            network.stage({k: tuple(v) for k, v in staged.items()})
            network.commit_round()
        except Exception as exc:  # port conflicts surface here
            raise SchedulingError(
                f"{scheduler_name}: round {index} is not realisable on the "
                f"crossbars ({exc})"
            ) from exc
        writers = tuple(sorted(c.src for c in round_comms))
        traces = network.transfer(writers, index)
        performed = tuple(
            Communication(t.source_pe, t.delivered_pe)
            for t in traces
            if t.delivered_pe is not None
        )
        if len(performed) != len(writers):
            dropped = [t.source_pe for t in traces if t.delivered_pe is None]
            raise SchedulingError(
                f"{scheduler_name}: round {index} dropped payloads from PEs {dropped}"
            )
        rounds.append(
            RoundRecord(
                index=index,
                performed=performed,
                writers=writers,
                staged={k: tuple(v) for k, v in staged.items()},
            )
        )

    return Schedule(
        cset=cset,
        n_leaves=n_leaves,
        scheduler_name=scheduler_name,
        rounds=tuple(rounds),
        power=network.power_report(),
    )
