"""Native CSA for *left-oriented* well-nested sets (paper §2.1).

The paper notes that "dealing with right oriented sets can be adjusted
easily to left oriented sets".  :class:`LeftPADRScheduler` makes that
adjustment concrete without re-deriving any logic: every switch views the
tree through a **mirror lens** —

* Phase 1 matches right-subtree sources with left-subtree destinations
  (``M = min(S_R, D_L)``, the reflection of Lemma 1) and stores its
  counters in mirrored slots of the ordinary
  :class:`~repro.core.control.StoredState`;
* Phase 2 runs the ordinary :func:`~repro.core.phase2.configure` on those
  mirrored states, then swaps left↔right in its outputs: the word computed
  "for the left child" goes to the real right child and every crossbar
  connection is reflected (``l_i→r_o`` ⇒ ``r_i→l_o`` etc.).

Because the lens is applied per switch, leaves keep their real indices and
payloads flow through the real network — unlike
:class:`~repro.extensions.oriented.MirroredScheduler`, which schedules a
*reflected copy* of the workload.  The two must agree on round counts and
power; the test-suite cross-checks them, closing the loop on the paper's
symmetry claim from both directions.
"""

from __future__ import annotations

from typing import Final

from repro.comms.communication import Communication, CommunicationSet
from repro.comms.wellnested import require_well_nested
from repro.core.base import ScheduleContext, Scheduler
from repro.core.control import DownKind, DownWord, StoredState, UpWord
from repro.core.phase2 import configure
from repro.core.schedule import RoundRecord, Schedule
from repro.cst.engine import CSTEngine
from repro.cst.network import CSTNetwork
from repro.exceptions import OrientationError, ProtocolError, SchedulingError
from repro.types import (
    CONN_DOWN_L,
    CONN_DOWN_R,
    CONN_L_TO_R,
    CONN_L_UP,
    CONN_R_TO_L,
    CONN_R_UP,
    Connection,
    Role,
)

__all__ = ["LeftPADRScheduler"]

#: reflection of every legal crossbar connection (left↔right swap).
_MIRROR: Final[dict[Connection, Connection]] = {
    CONN_L_TO_R: CONN_R_TO_L,
    CONN_R_TO_L: CONN_L_TO_R,
    CONN_L_UP: CONN_R_UP,
    CONN_R_UP: CONN_L_UP,
    CONN_DOWN_L: CONN_DOWN_R,
    CONN_DOWN_R: CONN_DOWN_L,
}


class LeftPADRScheduler(Scheduler):
    """The CSA for left-oriented well-nested sets, via a mirror lens."""

    name = "padr-csa-left"

    def __init__(self, *, validate_input: bool = True) -> None:
        self.validate_input = validate_input

    def _schedule(self, cset: CommunicationSet, ctx: ScheduleContext) -> Schedule:
        if not cset.is_left_oriented:
            raise OrientationError(
                "LeftPADRScheduler expects a left-oriented communication set"
            )
        n = ctx.n_leaves
        if self.validate_input:
            require_well_nested(cset.mirrored(n))

        network = ctx.network
        if network is None:
            network = CSTNetwork.of_size(n, policy=ctx.policy)
        network.assign_roles(cset.roles())
        engine = CSTEngine(network)

        states = self._phase1(engine)

        rounds: list[RoundRecord] = []
        max_rounds = len(cset) + 1
        while any(st.matched for st in states.values()):
            if len(rounds) >= max_rounds:
                raise SchedulingError(
                    "left CSA failed to make progress — invalid input or bug"
                )
            rounds.append(self._run_round(engine, states, len(rounds)))

        leftovers = {v: st.as_tuple() for v, st in states.items() if not st.exhausted}
        if leftovers:
            raise ProtocolError(
                f"left CSA finished with non-exhausted counters: {leftovers}"
            )

        return Schedule(
            cset=cset,
            n_leaves=n,
            scheduler_name=self.name,
            rounds=tuple(rounds),
            power=network.power_report(),
            control_messages=engine.trace.messages,
            control_words=engine.trace.words,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _phase1(engine: CSTEngine) -> dict[int, StoredState]:
        """Phase 1 through the mirror lens: M = min(S_R, D_L)."""
        network = engine.network
        states: dict[int, StoredState] = {}

        def leaf_word(pe: int) -> UpWord:
            s, d = network.pes[pe].role_word()
            return UpWord(s, d)

        def combine(switch_id: int, left: UpWord, right: UpWord) -> UpWord:
            # mirrored-left child == real right child: feed the ordinary
            # matching rule the children in swapped order.
            m = min(right.sources, left.destinations)
            states[switch_id] = StoredState(
                matched=m,
                unmatched_left_src=right.sources - m,   # mirrored slot
                left_dst=right.destinations,            # mirrored slot
                right_src=left.sources,                 # mirrored slot
                unmatched_right_dst=left.destinations - m,  # mirrored slot
            )
            return UpWord(
                right.sources - m + left.sources,
                right.destinations + left.destinations - m,
            )

        sent = engine.upward_wave(
            leaf_word, combine, words_per_message=UpWord.wire_words()
        )
        root_out = sent[engine.topology.root]
        if root_out.sources or root_out.destinations:
            raise ProtocolError(
                f"unbalanced left-oriented set: root would forward {root_out}"
            )
        return states

    def _run_round(
        self,
        engine: CSTEngine,
        states: dict[int, StoredState],
        round_no: int,
    ) -> RoundRecord:
        network = engine.network
        staged: dict[int, tuple[Connection, ...]] = {}

        def emit(switch_id: int, word: DownWord) -> tuple[DownWord, DownWord]:
            outcome = configure(switch_id, states[switch_id], word)
            if outcome.connections:
                staged[switch_id] = tuple(
                    _MIRROR[c] for c in outcome.connections
                )
            # mirrored-left word belongs to the real right child
            return outcome.right_word, outcome.left_word

        leaf_words = engine.downward_wave(
            DownWord.none(), emit, words_per_message=DownWord.wire_words()
        )

        writers: list[int] = []
        for pe_index, word in leaf_words.items():
            if word.kind is DownKind.NONE:
                continue
            if word.kind is DownKind.BOTH or word.x_s or word.x_d:
                raise ProtocolError(f"leaf PE {pe_index} received invalid {word}")
            pe = network.pes[pe_index]
            if word.kind is DownKind.SRC:
                if pe.role is not Role.SOURCE:
                    raise ProtocolError(
                        f"leaf PE {pe_index} asked to transmit, role {pe.role.value}"
                    )
                writers.append(pe_index)
            elif pe.role is not Role.DESTINATION:
                raise ProtocolError(
                    f"leaf PE {pe_index} asked to receive, role {pe.role.value}"
                )

        network.stage(staged)
        network.commit_round()

        traces = network.transfer(sorted(writers), round_no)
        performed = []
        for tr in traces:
            if tr.delivered_pe is None:
                raise ProtocolError(
                    f"round {round_no}: payload from PE {tr.source_pe} dropped"
                )
            performed.append(Communication(tr.source_pe, tr.delivered_pe))

        return RoundRecord(
            index=round_no,
            performed=tuple(performed),
            writers=tuple(sorted(writers)),
            staged=staged,
        )
