"""Serialization: workloads and schedules to/from JSON.

Lets users pin down workload suites (e.g. regression corpora of
communication sets), archive schedules produced on one machine and verify
them on another, and feed external tools.  The format is deliberately
plain:

.. code-block:: json

    {"format": "cst-padr/communication-set", "version": 1, "schema": 2,
     "comms": [[0, 7], [1, 2]]}

Schedules export everything the verifier needs (observed per-round
deliveries) plus the power report; they are re-verifiable after a
round-trip without re-running the scheduler.

Schema evolution
----------------

Payloads carry an explicit ``"schema"`` integer.  Schema 1 (the original
release) predates the field, so a payload without one *is* schema 1;
schema 2 introduced the field itself, schema 3 added the fabric layer's
shard-annotated payloads (fabric plans and fabric schedules, whose
per-shard sections carry explicit shard ids), and schema 4 adds the
decomposition-annotated general-schedule payload (an arbitrary set
scheduled as a sequence of well-nested batches, with the batch and
packing accounting alongside the combined executed schedule).  The
current writers emit :data:`SCHEDULE_SCHEMA` (= 4).  Loaders accept the
current schema and the previous one — the read window is (3, 4) —
exactly what the service layer's schedule cache and batch results need
to round-trip safely across one release boundary — and reject anything
newer *or older* with a clear error instead of misreading it.  The
legacy ``"version"`` field is still written for old readers, which
ignore ``"schema"``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.comms.communication import Communication, CommunicationSet
from repro.core.schedule import RoundRecord, Schedule
from repro.cst.power import PowerReport
from repro.exceptions import ReproError

__all__ = [
    "SCHEDULE_SCHEMA",
    "SerializationError",
    "config_to_dict",
    "config_from_dict",
    "cset_to_dict",
    "cset_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "general_schedule_to_dict",
    "general_schedule_from_dict",
    "result_to_dict",
    "result_from_dict",
    "stream_request_to_dict",
    "stream_request_from_dict",
    "fabric_plan_to_dict",
    "fabric_plan_from_dict",
    "fabric_schedule_to_dict",
    "fabric_schedule_from_dict",
    "save_arrivals",
    "load_arrivals",
    "save_workloads",
    "load_workloads",
]

_CSET_FORMAT = "cst-padr/communication-set"
_SCHEDULE_FORMAT = "cst-padr/schedule"
_SUITE_FORMAT = "cst-padr/workload-suite"
_CONFIG_FORMAT = "cst-padr/scheduler-config"
_STREAM_REQUEST_FORMAT = "cst-padr/stream-request"
_ARRIVAL_TRACE_FORMAT = "cst-padr/arrival-trace"
_FABRIC_PLAN_FORMAT = "cst-padr/fabric-plan"
_FABRIC_SCHEDULE_FORMAT = "cst-padr/fabric-schedule"
_GENERAL_SCHEDULE_FORMAT = "cst-padr/general-schedule"
_VERSION = 1

#: current schema generation; loaders also accept ``SCHEDULE_SCHEMA - 1``.
SCHEDULE_SCHEMA = 4
_ACCEPTED_SCHEMAS = (SCHEDULE_SCHEMA - 1, SCHEDULE_SCHEMA)


class SerializationError(ReproError):
    """Malformed or unsupported serialized payload."""


# ---------------------------------------------------------------------------
# communication sets
# ---------------------------------------------------------------------------


def cset_to_dict(cset: CommunicationSet) -> dict[str, Any]:
    return {
        "format": _CSET_FORMAT,
        "version": _VERSION,
        "schema": SCHEDULE_SCHEMA,
        "comms": [[c.src, c.dst] for c in cset],
    }


def cset_from_dict(data: Mapping[str, Any]) -> CommunicationSet:
    _expect(data, _CSET_FORMAT)
    try:
        comms = [Communication(int(s), int(d)) for s, d in data["comms"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed communication list: {exc}") from exc
    return CommunicationSet(comms)


# ---------------------------------------------------------------------------
# scheduler configuration
# ---------------------------------------------------------------------------


def config_to_dict(config: Any) -> dict[str, Any]:
    """Serialize a :class:`~repro.core.config.SchedulerConfig`.

    This is the form the service layer ships to multiprocessing workers;
    every field — including engine selection (``engine``,
    ``columnar_threshold``, ``trace_compat``) — round-trips exactly, so a
    worker schedules under precisely the backend the caller selected.
    """
    return {
        "format": _CONFIG_FORMAT,
        "version": _VERSION,
        "schema": SCHEDULE_SCHEMA,
        "config": config.to_dict(),
    }


def config_from_dict(data: Mapping[str, Any]) -> Any:
    """Inverse of :func:`config_to_dict`; also accepts a bare field dict."""
    from repro.core.config import SchedulerConfig

    if "format" in data:
        _expect(data, _CONFIG_FORMAT)
        try:
            fields = data["config"]
        except KeyError as exc:
            raise SerializationError("missing 'config' payload") from exc
    else:  # bare SchedulerConfig.to_dict() output
        fields = data
    try:
        return SchedulerConfig.from_dict(fields)
    except ReproError:
        raise
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"malformed scheduler config: {exc}") from exc


# ---------------------------------------------------------------------------
# schedules
# ---------------------------------------------------------------------------


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    return {
        "format": _SCHEDULE_FORMAT,
        "version": _VERSION,
        "schema": SCHEDULE_SCHEMA,
        "scheduler": schedule.scheduler_name,
        "n_leaves": schedule.n_leaves,
        "cset": cset_to_dict(schedule.cset),
        "rounds": [
            {
                "index": r.index,
                "performed": [[c.src, c.dst] for c in r.performed],
                "writers": list(r.writers),
            }
            for r in schedule.rounds
        ],
        "power": {
            "total_units": schedule.power.total_units,
            "per_switch_units": {
                str(k): v for k, v in schedule.power.per_switch_units.items()
            },
            "per_switch_changes": {
                str(k): v for k, v in schedule.power.per_switch_changes.items()
            },
            "rounds": schedule.power.rounds,
        },
        "control": {
            "messages": schedule.control_messages,
            "words": schedule.control_words,
            "physical_messages": schedule.physical_messages,
        },
    }


def schedule_from_dict(data: Mapping[str, Any]) -> Schedule:
    """Rebuild a schedule record (staged connections are not round-tripped;
    they are an execution detail, not needed for verification)."""
    _expect(data, _SCHEDULE_FORMAT)
    try:
        cset = cset_from_dict(data["cset"])
        rounds = tuple(
            RoundRecord(
                index=int(r["index"]),
                performed=tuple(
                    Communication(int(s), int(d)) for s, d in r["performed"]
                ),
                writers=tuple(int(w) for w in r["writers"]),
                staged={},
            )
            for r in data["rounds"]
        )
        p = data["power"]
        power = PowerReport(
            total_units=int(p["total_units"]),
            per_switch_units={int(k): int(v) for k, v in p["per_switch_units"].items()},
            per_switch_changes={
                int(k): int(v) for k, v in p["per_switch_changes"].items()
            },
            rounds=int(p["rounds"]),
        )
        control = data.get("control", {})
        return Schedule(
            cset=cset,
            n_leaves=int(data["n_leaves"]),
            scheduler_name=str(data["scheduler"]),
            rounds=rounds,
            power=power,
            control_messages=int(control.get("messages", 0)),
            control_words=int(control.get("words", 0)),
            physical_messages=(
                int(control["physical_messages"])
                if "physical_messages" in control
                else None
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed schedule payload: {exc}") from exc


# ---------------------------------------------------------------------------
# decomposition-annotated general schedules (schema 4)
# ---------------------------------------------------------------------------


def general_schedule_to_dict(gs: Any) -> dict[str, Any]:
    """Serialize a :class:`~repro.core.plan.GeneralSchedule`.

    The schema-4 payload family: the combined executed schedule (same
    shape as a plain schedule payload) plus the decomposition accounting —
    per-batch orientations, reference round/power counts, pack order,
    the certified batch lower bound and the w-round optimum the overhead
    is measured against.
    """
    return {
        "format": _GENERAL_SCHEDULE_FORMAT,
        "version": _VERSION,
        "schema": SCHEDULE_SCHEMA,
        "n_leaves": gs.n_leaves,
        "alpha": gs.alpha,
        "cset": cset_to_dict(gs.cset),
        "decompose": {
            "n_batches": gs.n_batches,
            "orientations": list(gs.batch_orientations),
            "batch_rounds": list(gs.batch_rounds),
            "batch_power": list(gs.batch_power),
            "batch_order": list(gs.batch_order),
            "lower_bound": gs.lower_bound,
        },
        "optimum_rounds": gs.optimum_rounds,
        "combined": schedule_to_dict(gs.combined),
    }


def general_schedule_from_dict(data: Mapping[str, Any]) -> Any:
    """Inverse of :func:`general_schedule_to_dict`.

    The live :class:`~repro.comms.decompose.Decomposition` object is not
    round-tripped (its accounting is flattened into the payload); the
    rebuilt result carries ``decomposition=None``.
    """
    from repro.core.plan import GeneralSchedule

    _expect(data, _GENERAL_SCHEDULE_FORMAT)
    try:
        d = data["decompose"]
        return GeneralSchedule(
            cset=cset_from_dict(data["cset"]),
            n_leaves=int(data["n_leaves"]),
            alpha=float(data["alpha"]),
            batch_orientations=tuple(str(o) for o in d["orientations"]),
            batch_rounds=tuple(int(r) for r in d["batch_rounds"]),
            batch_power=tuple(int(p) for p in d["batch_power"]),
            batch_order=tuple(int(i) for i in d["batch_order"]),
            lower_bound=int(d["lower_bound"]),
            optimum_rounds=int(data["optimum_rounds"]),
            combined=schedule_from_dict(data["combined"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed general schedule: {exc}") from exc


def result_to_dict(result: Any) -> dict[str, Any]:
    """Serialize any :class:`~repro.core.base.ScheduleResult` the scheduling
    paths emit over the wire (plain or general) — the dispatch the worker
    pool uses, so one code path ships both result kinds."""
    if isinstance(result, Schedule):
        return schedule_to_dict(result)
    if hasattr(result, "combined"):  # GeneralSchedule
        return general_schedule_to_dict(result)
    raise SerializationError(
        f"cannot serialize result of type {type(result).__name__}"
    )


def result_from_dict(data: Mapping[str, Any]) -> Any:
    """Inverse of :func:`result_to_dict`, dispatching on ``"format"``."""
    fmt = data.get("format")
    if fmt == _SCHEDULE_FORMAT:
        return schedule_from_dict(data)
    if fmt == _GENERAL_SCHEDULE_FORMAT:
        return general_schedule_from_dict(data)
    raise SerializationError(f"unknown result format {fmt!r}")


# ---------------------------------------------------------------------------
# streaming requests
# ---------------------------------------------------------------------------


def stream_request_to_dict(request: Any) -> dict[str, Any]:
    """Serialize a :class:`~repro.service.streaming.StreamRequest`.

    The wire form a ``cst-padr serve`` arrival file holds: one record per
    request with its release tick, deadline, priority name and tenant id,
    wrapping the standard communication-set payload.
    """
    return {
        "format": _STREAM_REQUEST_FORMAT,
        "version": _VERSION,
        "schema": SCHEDULE_SCHEMA,
        "cset": cset_to_dict(request.cset),
        "n_leaves": request.n_leaves,
        "release_time": request.release_time,
        "deadline": request.deadline,
        "priority": request.priority.name,
        "tenant": request.tenant,
    }


def stream_request_from_dict(data: Mapping[str, Any]) -> Any:
    """Inverse of :func:`stream_request_to_dict`."""
    from repro.service.admission import Priority
    from repro.service.streaming import StreamRequest

    _expect(data, _STREAM_REQUEST_FORMAT)
    try:
        n_leaves = data.get("n_leaves")
        return StreamRequest(
            cset=cset_from_dict(data["cset"]),
            n_leaves=int(n_leaves) if n_leaves is not None else None,
            release_time=int(data.get("release_time", 0)),
            deadline=int(data.get("deadline", 64)),
            priority=Priority[str(data.get("priority", "NORMAL")).upper()],
            tenant=str(data.get("tenant", "default")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed stream request: {exc}") from exc


# ---------------------------------------------------------------------------
# arrival traces (recorded streaming workloads)
# ---------------------------------------------------------------------------


def save_arrivals(path: str | Path, requests: Any) -> None:
    """Write a recorded arrival trace — an ordered list of streaming
    requests with their release ticks, deadlines, priorities and tenant
    mix — as one JSON file.

    This is the canary harness's recording format: a production-like
    workload captured once and replayed bit-identically against both the
    baseline and a candidate configuration (``cst-padr canary``).
    """
    payload = {
        "format": _ARRIVAL_TRACE_FORMAT,
        "version": _VERSION,
        "schema": SCHEDULE_SCHEMA,
        "arrivals": [stream_request_to_dict(r) for r in requests],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_arrivals(path: str | Path) -> list[Any]:
    """Inverse of :func:`save_arrivals` (returns ``StreamRequest`` objects)."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read arrival trace {path}: {exc}") from exc
    _expect(data, _ARRIVAL_TRACE_FORMAT)
    return [stream_request_from_dict(r) for r in data.get("arrivals", [])]


# ---------------------------------------------------------------------------
# fabric plans and shard-annotated fabric schedules (schema 3)
# ---------------------------------------------------------------------------


def fabric_plan_to_dict(plan: Any) -> dict[str, Any]:
    """Serialize a :class:`~repro.fabric.planner.FabricPlan`.

    The shard-annotated payload family introduced with schema 3: the
    plan carries the profiled workload it was sized from, so an operator
    can audit *why* a fabric has the shape it has.
    """
    return {
        "format": _FABRIC_PLAN_FORMAT,
        "version": _VERSION,
        "schema": SCHEDULE_SCHEMA,
        "tree_count": plan.tree_count,
        "leaf_width": plan.leaf_width,
        "switches": plan.switches,
        "spine_switches": plan.spine_switches,
        "utilization": plan.utilization,
        "shard_capacity": plan.shard_capacity,
        "profile": {
            "n_requests": plan.profile.n_requests,
            "max_leaves": plan.profile.max_leaves,
            "peak_arrivals": plan.profile.peak_arrivals,
            "mean_arrivals": plan.profile.mean_arrivals,
            "tenants": list(plan.profile.tenants),
        },
    }


def fabric_plan_from_dict(data: Mapping[str, Any]) -> Any:
    """Inverse of :func:`fabric_plan_to_dict`."""
    from repro.fabric.planner import FabricPlan, WorkloadProfile

    _expect(data, _FABRIC_PLAN_FORMAT)
    try:
        p = data["profile"]
        profile = WorkloadProfile(
            n_requests=int(p["n_requests"]),
            max_leaves=int(p["max_leaves"]),
            peak_arrivals=int(p["peak_arrivals"]),
            mean_arrivals=float(p["mean_arrivals"]),
            tenants=tuple(str(t) for t in p["tenants"]),
        )
        return FabricPlan(
            tree_count=int(data["tree_count"]),
            leaf_width=int(data["leaf_width"]),
            switches=int(data["switches"]),
            spine_switches=int(data["spine_switches"]),
            utilization=float(data["utilization"]),
            shard_capacity=int(data["shard_capacity"]),
            profile=profile,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed fabric plan: {exc}") from exc


def fabric_schedule_to_dict(fs: Any) -> dict[str, Any]:
    """Serialize a :class:`~repro.fabric.aggregation.FabricSchedule`.

    Every per-shard local schedule is annotated with its shard id (JSON
    object keys), and each cross-epoch hop carries its source/destination
    shards and packed round — enough to re-verify delivery and re-derive
    the round/power accounting without re-running the fabric.
    """
    return {
        "format": _FABRIC_SCHEDULE_FORMAT,
        "version": _VERSION,
        "schema": SCHEDULE_SCHEMA,
        "tree_count": fs.tree_count,
        "leaf_width": fs.leaf_width,
        "local": {
            str(shard): schedule_to_dict(schedule)
            for shard, schedule in sorted(fs.local.items())
        },
        "cross": [
            {
                "src": h.comm.src,
                "dst": h.comm.dst,
                "src_shard": h.src_shard,
                "dst_shard": h.dst_shard,
                "round": h.round_index,
            }
            for h in fs.cross
        ],
    }


def fabric_schedule_from_dict(data: Mapping[str, Any]) -> Any:
    """Inverse of :func:`fabric_schedule_to_dict`."""
    from repro.fabric.aggregation import CrossShardHop, FabricSchedule

    _expect(data, _FABRIC_SCHEDULE_FORMAT)
    try:
        return FabricSchedule(
            tree_count=int(data["tree_count"]),
            leaf_width=int(data["leaf_width"]),
            local={
                int(shard): schedule_from_dict(payload)
                for shard, payload in data.get("local", {}).items()
            },
            cross=tuple(
                CrossShardHop(
                    comm=Communication(int(h["src"]), int(h["dst"])),
                    src_shard=int(h["src_shard"]),
                    dst_shard=int(h["dst_shard"]),
                    round_index=int(h["round"]),
                )
                for h in data.get("cross", ())
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed fabric schedule: {exc}") from exc


# ---------------------------------------------------------------------------
# workload suites on disk
# ---------------------------------------------------------------------------


def save_workloads(path: str | Path, workloads: Mapping[str, CommunicationSet]) -> None:
    """Write a named suite of communication sets as one JSON file."""
    payload = {
        "format": _SUITE_FORMAT,
        "version": _VERSION,
        "schema": SCHEDULE_SCHEMA,
        "workloads": {name: cset_to_dict(cs) for name, cs in workloads.items()},
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_workloads(path: str | Path) -> dict[str, CommunicationSet]:
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read workload suite {path}: {exc}") from exc
    _expect(data, _SUITE_FORMAT)
    return {
        name: cset_from_dict(cs) for name, cs in data.get("workloads", {}).items()
    }


def _expect(data: Mapping[str, Any], fmt: str) -> None:
    got = data.get("format")
    if got != fmt:
        raise SerializationError(f"expected format {fmt!r}, got {got!r}")
    version = data.get("version")
    if version != _VERSION:
        raise SerializationError(f"unsupported {fmt} version: {version!r}")
    # schema-1 payloads predate the field entirely.
    schema = data.get("schema", 1)
    if schema not in _ACCEPTED_SCHEMAS:
        raise SerializationError(
            f"unsupported {fmt} schema {schema!r}; this release reads "
            f"schemas {list(_ACCEPTED_SCHEMAS)}"
        )
