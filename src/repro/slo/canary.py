"""The canary promotion gate: record once, replay twice, compare hard.

Promoting a new :class:`~repro.core.config.SchedulerConfig` (a different
engine, threshold or cache policy) should never be a judgement call.
The harness here makes it mechanical:

1. **record** a production-like workload — an arrival trace with tenant
   mix, priorities, release bursts and deadlines — and persist it via
   :func:`repro.io.save_arrivals` so the exact bytes are replayable
   forever;
2. **replay** the trace against the baseline config and the candidate,
   each in its own :class:`~repro.service.streaming.StreamingSchedulerService`
   with the SLO burn-rate engine attached (and, optionally, in-service
   chaos drills — a candidate must detect faults *while serving*);
3. **gate** on three hard conditions: every request the baseline settled
   DONE settles DONE under the candidate with a **bit-identical**
   serialized schedule (the repo-wide parity contract), the candidate's
   replay raised **zero SLO burn alerts**, and its p50/p99 latency stays
   within a bounded regression of the baseline's.

The decision object lists every violated condition; an empty list is a
promotion.  ``scripts/run_canary.py --smoke`` runs the whole story —
including a deliberately degraded replay that the gate must refuse —
and writes the latency trajectory under the ``"slo"`` key of
``results/BENCH_scaling.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.core.config import SchedulerConfig
from repro.obs.instrument import Instrumentation
from repro.service.admission import Priority
from repro.service.streaming import (
    StreamingSchedulerService,
    StreamReport,
    StreamRequest,
    StreamStatus,
)
from repro.service.tenants import TenantQuota
from repro.service.workloads import mixed_workloads
from repro.slo.drill import ChaosDrillController, DrillRecord, DrillSpec
from repro.slo.engine import Alert, SLOEngine, SLOSpec, default_slos

__all__ = [
    "CanaryRun",
    "PromotionDecision",
    "promotion_gate",
    "record_workload",
    "replay",
]

#: the tenant mix a recorded workload cycles through (weights by repetition).
DEFAULT_TENANTS = ("acme", "acme", "globex", "initech")

_PRIORITIES = (Priority.NORMAL, Priority.LOW, Priority.NORMAL, Priority.HIGH)


def record_workload(
    *,
    n_leaves: int = 256,
    count: int = 120,
    seed: int = 0,
    deadline: int = 96,
    arrivals_per_tick: int = 12,
    tenants: Sequence[str] = DEFAULT_TENANTS,
) -> list[StreamRequest]:
    """A deterministic production-like arrival trace.

    ``count`` requests over the canonical mixed workload families,
    released in bursts of ``arrivals_per_tick`` per tick, cycling a
    weighted tenant mix and the LOW/NORMAL/HIGH priority classes — the
    same shape the streaming CI gate drives, packaged as a reusable
    recording.  Persist with :func:`repro.io.save_arrivals`.
    """
    csets = mixed_workloads(n_leaves, count, seed=seed)
    return [
        StreamRequest(
            cset=cset,
            n_leaves=n_leaves,
            release_time=i // arrivals_per_tick,
            deadline=deadline,
            priority=_PRIORITIES[i % len(_PRIORITIES)],
            tenant=tenants[i % len(tenants)],
        )
        for i, cset in enumerate(csets)
    ]


@dataclass(frozen=True, slots=True)
class CanaryRun:
    """One replay's complete evidence: report, alerts, trajectory, drills."""

    label: str
    config: SchedulerConfig
    report: StreamReport
    alerts: tuple[Alert, ...]
    trajectory: tuple[tuple[int, float, float], ...]
    drills: tuple[DrillRecord, ...]
    #: request id → serialized schedule payload, DONE requests only.
    payloads: dict[int, dict[str, Any]]

    @property
    def p50_ticks(self) -> float:
        return self.report.p50_ticks

    @property
    def p99_ticks(self) -> float:
        return self.report.p99_ticks

    def to_dict(self) -> dict[str, Any]:
        """The JSON shape the bench results file archives."""
        return {
            "label": self.label,
            "engine": self.config.engine,
            "done": self.report.n_done,
            "expired": self.report.n_expired,
            "failed": self.report.n_failed,
            "shed": self.report.n_shed,
            "p50_ticks": self.p50_ticks,
            "p99_ticks": self.p99_ticks,
            "ticks": self.report.ticks,
            "alerts": [a.to_dict() for a in self.alerts],
            "drills": [d.to_dict() for d in self.drills],
            "trajectory": [
                [tick, p50, p99] for tick, p50, p99 in self.trajectory
            ],
        }


def replay(
    arrivals: Iterable[StreamRequest],
    *,
    label: str,
    config: SchedulerConfig | None = None,
    specs: Iterable[SLOSpec] | None = None,
    drills: Iterable[DrillSpec] = (),
    quota: TenantQuota | None = None,
    max_queue: int = 256,
    max_inflight: int = 8,
    batch_window: int = 0,
    parity_check: bool = True,
    obs: Instrumentation | None = None,
    max_ticks: int = 10_000,
) -> CanaryRun:
    """Replay a recorded trace with the SLO engine (and drills) attached."""
    metrics = obs.metrics if obs is not None else None
    run = obs.run if obs is not None else label
    engine = SLOEngine(
        specs if specs is not None else default_slos(), metrics=metrics, run=run
    )
    drills = tuple(drills)
    chaos = (
        ChaosDrillController(drills, metrics=metrics, run=run)
        if drills
        else None
    )
    service = StreamingSchedulerService(
        config=config,
        default_quota=quota if quota is not None else TenantQuota(
            rate=64.0, burst=256.0
        ),
        max_queue=max_queue,
        max_inflight=max_inflight,
        batch_window=batch_window,
        parity_check=parity_check,
        obs=obs,
        on_tick=engine.stream_hook(),
        chaos=chaos,
    )
    report = service.run(list(arrivals), max_ticks=max_ticks)
    payloads = {
        rid: r.payload
        for rid, r in report.results.items()
        if r.status is StreamStatus.DONE and r.payload is not None
    }
    return CanaryRun(
        label=label,
        config=service.config,
        report=report,
        alerts=tuple(engine.alerts),
        trajectory=tuple(engine.trajectory),
        drills=tuple(chaos.records) if chaos is not None else (),
        payloads=payloads,
    )


@dataclass(frozen=True, slots=True)
class PromotionDecision:
    """The gate's verdict: promote iff no condition is violated."""

    promote: bool
    reasons: tuple[str, ...]
    baseline: str
    candidate: str

    def summary(self) -> str:
        verdict = "PROMOTE" if self.promote else "REFUSE"
        tail = "" if self.promote else f": {'; '.join(self.reasons)}"
        return f"canary {self.candidate} vs {self.baseline}: {verdict}{tail}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "promote": self.promote,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "reasons": list(self.reasons),
        }


def promotion_gate(
    baseline: CanaryRun,
    candidate: CanaryRun,
    *,
    max_p50_regression: float = 1.5,
    max_p99_regression: float = 1.5,
    slack_ticks: float = 2.0,
) -> PromotionDecision:
    """Gate a candidate replay against its baseline.

    Latency bounds are multiplicative with an additive ``slack_ticks``
    floor (``candidate <= baseline * factor + slack``), so near-zero
    baselines don't turn a one-tick wobble into a refusal.
    """
    reasons: list[str] = []

    base_ids = set(baseline.payloads)
    cand_ids = set(candidate.payloads)
    if base_ids - cand_ids:
        missing = sorted(base_ids - cand_ids)
        reasons.append(
            f"{len(missing)} baseline-DONE request(s) not DONE under the "
            f"candidate (e.g. id {missing[0]})"
        )
    mismatched = [
        rid
        for rid in sorted(base_ids & cand_ids)
        if baseline.payloads[rid] != candidate.payloads[rid]
    ]
    if mismatched:
        reasons.append(
            f"{len(mismatched)} request(s) lost bit-identical parity "
            f"(e.g. id {mismatched[0]})"
        )

    if candidate.alerts:
        first = candidate.alerts[0]
        reasons.append(
            f"{len(candidate.alerts)} SLO burn alert(s) on the candidate "
            f"(first: {first.slo}/{first.window} at tick {first.tick})"
        )

    for q, base_v, cand_v, factor in (
        ("p50", baseline.p50_ticks, candidate.p50_ticks, max_p50_regression),
        ("p99", baseline.p99_ticks, candidate.p99_ticks, max_p99_regression),
    ):
        bound = base_v * factor + slack_ticks
        if cand_v > bound:
            reasons.append(
                f"{q} regression: {cand_v:.0f} ticks > bound {bound:.1f} "
                f"(baseline {base_v:.0f})"
            )

    for record in candidate.drills:
        if record.executed_tick is None:
            reasons.append(
                f"chaos drill at tick {record.spec.tick} never found a victim"
            )
        elif not record.met_detection_sla:
            reasons.append(
                f"chaos drill at tick {record.spec.tick}: fault not detected "
                f"within {record.spec.detection_sla} tick(s)"
            )
        elif not record.met_reroute_sla:
            reasons.append(
                f"chaos drill at tick {record.spec.tick}: victim not rerouted "
                f"within {record.spec.reroute_sla} tick(s)"
            )

    return PromotionDecision(
        promote=not reasons,
        reasons=tuple(reasons),
        baseline=baseline.label,
        candidate=candidate.label,
    )
