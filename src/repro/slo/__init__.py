"""The operations layer: SLOs, burn-rate alerting, canaries, chaos drills.

PR 2 gave the reproduction metrics and traces, PR 3 a recovery loop,
PR 6 a live streaming service — this package watches all of it:

* :mod:`~repro.slo.engine` — declarative :class:`SLOSpec`\\ s evaluated
  per logical tick over fast/slow sliding windows; rising-edge burn-rate
  alerts, ``slo.*`` metrics, a structured alert log and a p50/p99
  latency trajectory;
* :mod:`~repro.slo.drill` — chaos drills injected into the *running*
  streaming service with detection/reroute SLAs on the service clock;
* :mod:`~repro.slo.canary` — record a workload, replay it under a
  baseline and a candidate config, and gate promotion on bit-identical
  parity, zero burn and bounded latency regression
  (``cst-padr canary`` / ``scripts/run_canary.py``).

``docs/slo.md`` is the operator-facing runbook.
"""

from repro.slo.canary import (
    CanaryRun,
    PromotionDecision,
    promotion_gate,
    record_workload,
    replay,
)
from repro.slo.drill import ChaosDrillController, DrillRecord, DrillSpec
from repro.slo.engine import (
    SLO_KINDS,
    Alert,
    SLOEngine,
    SLOSpec,
    TickSample,
    default_slos,
    sample_from_snapshots,
)

__all__ = [
    "Alert",
    "CanaryRun",
    "ChaosDrillController",
    "DrillRecord",
    "DrillSpec",
    "PromotionDecision",
    "SLOEngine",
    "SLOSpec",
    "SLO_KINDS",
    "TickSample",
    "default_slos",
    "promotion_gate",
    "record_workload",
    "replay",
    "sample_from_snapshots",
]
