"""Declarative SLOs and multi-window burn-rate alerting.

The streaming service (PR 6) emits everything an operator needs —
``stream.*`` counters, latency histograms, admission state — but nothing
*watches* those signals over time.  This module closes the loop with the
classic error-budget discipline: an :class:`SLOSpec` states an objective
("99% of requests settle DONE", "99% of latencies stay under 32 ticks"),
the :class:`SLOEngine` folds one :class:`TickSample` per logical tick
into sliding good/bad event windows, and an alert fires when the **burn
rate** — the observed error rate divided by the budgeted error rate —
crosses a threshold.

Two windows per SLO, per standard burn-rate practice:

* the **fast** window (a few ticks) catches a cliff: burning the budget
  at ``fast_burn``× means the objective dies within the serving window —
  severity PAGE;
* the **slow** window (several multiples of the fast one) catches a
  simmer: a sustained ``slow_burn``× leak that a fast window's noise
  would hide — severity TICKET.

Alerts fire on the **rising edge** (entering violation), not per tick in
violation, so the alert log reads as incidents, not noise.  A spec with
``target = 1.0`` has zero budget — any bad event is an infinite burn —
which is exactly right for the parity and chaos-detection contracts.

Every sample kind reduces to counting good/bad events, so availability,
p99 latency, shed-rate, parity and chaos-detection SLOs all share one
evaluation path (and one test surface).  The engine emits ``slo.*``
metrics into an ordinary :class:`~repro.obs.registry.MetricsRegistry`
and keeps a per-tick ``(tick, p50, p99)`` latency trajectory that the
canary harness persists into ``results/BENCH_scaling.json``.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Iterable, Mapping

from repro.exceptions import ReproError
from repro.obs.registry import MetricsRegistry, parse_key
from repro.util.stats import percentile

__all__ = [
    "Alert",
    "SLOEngine",
    "SLOSpec",
    "SLO_KINDS",
    "TickSample",
    "default_slos",
    "sample_from_snapshots",
]

#: the objective kinds the engine evaluates; every kind reduces to
#: good/bad event counting over one tick (see TickSample.events_for).
SLO_KINDS = ("availability", "latency", "shed_rate", "parity", "chaos_detection")


class SLOError(ReproError):
    """Invalid SLO specification or sample."""


@dataclass(frozen=True, slots=True)
class SLOSpec:
    """One declarative objective plus its burn-rate alert policy.

    ``target`` is the good-event fraction the objective promises (its
    error budget is ``1 - target``; a target of exactly ``1.0`` means
    zero budget and any bad event alerts).  ``threshold`` parameterises
    the kinds that compare against a bound: the latency SLO counts a
    settled latency ``> threshold`` ticks as bad, the chaos-detection
    SLO a detection slower than ``threshold`` ticks.  Windows are in
    logical ticks; ``fast_burn``/``slow_burn`` are the burn-rate alert
    thresholds for the respective window.
    """

    name: str
    kind: str
    target: float = 0.99
    threshold: float = 0.0
    fast_window: int = 8
    slow_window: int = 32
    fast_burn: float = 8.0
    slow_burn: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise SLOError(
                f"unknown SLO kind {self.kind!r}; choose from {list(SLO_KINDS)}"
            )
        if not 0.0 < self.target <= 1.0:
            raise SLOError(f"SLO target must be in (0, 1], got {self.target}")
        if not 1 <= self.fast_window <= self.slow_window:
            raise SLOError(
                "windows must satisfy 1 <= fast <= slow, got "
                f"{self.fast_window}/{self.slow_window}"
            )
        if self.fast_burn <= 0 or self.slow_burn <= 0:
            raise SLOError("burn-rate thresholds must be > 0")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target


@dataclass(frozen=True, slots=True)
class TickSample:
    """One logical tick's SLO-relevant events, in service units.

    ``done``/``expired``/``failed`` count requests settled this tick by
    status; ``submitted``/``shed`` count door decisions; ``latencies``
    are the DONE latencies settled this tick (ticks from release);
    ``parity_failures`` counts live parity divergences;
    ``chaos_detections`` are detection latencies of drills resolved this
    tick and ``chaos_missed`` drills whose fault went undetected.
    ``queue_fraction`` and ``pressure`` carry the admission signals for
    the record (they do not feed any burn rate directly).
    """

    tick: int
    done: int = 0
    expired: int = 0
    failed: int = 0
    shed: int = 0
    submitted: int = 0
    queue_fraction: float = 0.0
    pressure: float = 0.0
    latencies: tuple[int, ...] = ()
    parity_failures: int = 0
    chaos_detections: tuple[int, ...] = ()
    chaos_missed: int = 0

    def events_for(self, spec: SLOSpec) -> tuple[int, int]:
        """Reduce this tick to ``(good, bad)`` events for one spec."""
        if spec.kind == "availability":
            return self.done, self.expired + self.failed
        if spec.kind == "latency":
            bad = sum(1 for l in self.latencies if l > spec.threshold)
            return len(self.latencies) - bad, bad
        if spec.kind == "shed_rate":
            return max(0, self.submitted - self.shed), self.shed
        if spec.kind == "parity":
            return self.done, self.parity_failures
        # chaos_detection: a drill resolved late or not at all is bad.
        late = sum(1 for d in self.chaos_detections if d > spec.threshold)
        good = len(self.chaos_detections) - late
        return good, late + self.chaos_missed


@dataclass(frozen=True, slots=True)
class Alert:
    """One rising-edge burn-rate violation (the structured alert log entry)."""

    tick: int
    slo: str
    kind: str
    window: str  # "fast" | "slow"
    severity: str  # "page" | "ticket"
    burn_rate: float
    error_rate: float
    message: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "tick": self.tick,
            "slo": self.slo,
            "kind": self.kind,
            "window": self.window,
            "severity": self.severity,
            "burn_rate": self.burn_rate,
            "error_rate": self.error_rate,
            "message": self.message,
        }


@dataclass(slots=True)
class _WindowState:
    """Sliding (good, bad) counts for one (spec, window) pair."""

    events: Deque[tuple[int, int]]
    violating: bool = False

    def push(self, good: int, bad: int) -> tuple[int, int]:
        self.events.append((good, bad))
        return (
            sum(g for g, _ in self.events),
            sum(b for _, b in self.events),
        )


def default_slos(
    *,
    latency_budget: int = 32,
    availability_target: float = 0.99,
    latency_target: float = 0.95,
    shed_target: float = 0.90,
    detection_sla: int = 4,
    fast_window: int = 6,
    slow_window: int = 24,
) -> tuple[SLOSpec, ...]:
    """The standard serving SLO set the canary harness evaluates.

    Availability and latency carry finite budgets; parity and
    chaos-detection are zero-budget contracts (any violation alerts on
    the first sample that shows it).
    """
    return (
        SLOSpec(
            name="availability",
            kind="availability",
            target=availability_target,
            fast_window=fast_window,
            slow_window=slow_window,
        ),
        SLOSpec(
            name="latency-p99",
            kind="latency",
            target=latency_target,
            threshold=float(latency_budget),
            fast_window=fast_window,
            slow_window=slow_window,
        ),
        SLOSpec(
            name="shed-rate",
            kind="shed_rate",
            target=shed_target,
            fast_window=fast_window,
            slow_window=slow_window,
        ),
        SLOSpec(name="parity", kind="parity", target=1.0),
        SLOSpec(
            name="chaos-detection",
            kind="chaos_detection",
            target=1.0,
            threshold=float(detection_sla),
        ),
    )


class SLOEngine:
    """Folds per-tick samples into burn rates, alerts and a trajectory.

    Feed one :class:`TickSample` per logical tick via :meth:`observe`
    (or attach :meth:`stream_hook` to a
    :class:`~repro.service.streaming.StreamingSchedulerService` and let
    the service do it).  The engine emits, under ``run``:

    * ``slo.burn_rate{slo=,window=}`` gauges — the current burn rates;
    * ``slo.alerts{slo=,severity=}`` counters — rising-edge violations;
    * ``slo.good{slo=}`` / ``slo.bad{slo=}`` counters — raw events;
    * ``slo.budget_remaining{slo=}`` gauges — lifetime budget left,
      as a fraction of the budget (negative means overspent).
    """

    def __init__(
        self,
        specs: Iterable[SLOSpec] | None = None,
        *,
        metrics: MetricsRegistry | None = None,
        run: str = "slo",
        trajectory_window: int = 64,
    ) -> None:
        self.specs = tuple(specs) if specs is not None else default_slos()
        if len({s.name for s in self.specs}) != len(self.specs):
            raise SLOError("SLO spec names must be unique")
        self.metrics = metrics
        self.run = run
        self.alerts: list[Alert] = []
        self._windows: dict[tuple[str, str], _WindowState] = {}
        for spec in self.specs:
            for window, size in (
                ("fast", spec.fast_window),
                ("slow", spec.slow_window),
            ):
                self._windows[(spec.name, window)] = _WindowState(
                    events=deque(maxlen=size)
                )
        self._burn: dict[tuple[str, str], float] = {}
        self._totals: dict[str, tuple[int, int]] = {
            s.name: (0, 0) for s in self.specs
        }
        #: recent DONE latencies, feeding the (tick, p50, p99) trajectory.
        self._recent_latencies: Deque[int] = deque(maxlen=trajectory_window)
        self.trajectory: list[tuple[int, float, float]] = []
        self.samples = 0

    # -- ingestion -----------------------------------------------------------

    def observe(self, sample: TickSample) -> list[Alert]:
        """Fold one tick's sample; returns the alerts that fired *this* tick."""
        self.samples += 1
        fired: list[Alert] = []
        for spec in self.specs:
            good, bad = sample.events_for(spec)
            tg, tb = self._totals[spec.name]
            self._totals[spec.name] = (tg + good, tb + bad)
            self._emit_events(spec, good, bad)
            for window, burn_threshold in (
                ("fast", spec.fast_burn),
                ("slow", spec.slow_burn),
            ):
                state = self._windows[(spec.name, window)]
                wgood, wbad = state.push(good, bad)
                burn, error_rate = self._burn_rate(spec, wgood, wbad)
                self._burn[(spec.name, window)] = burn
                self._emit_burn(spec, window, burn)
                violating = burn >= burn_threshold
                if violating and not state.violating:
                    alert = Alert(
                        tick=sample.tick,
                        slo=spec.name,
                        kind=spec.kind,
                        window=window,
                        severity="page" if window == "fast" else "ticket",
                        burn_rate=burn,
                        error_rate=error_rate,
                        message=(
                            f"{spec.name}: {window}-window burn "
                            f"{'inf' if math.isinf(burn) else f'{burn:.1f}'}x "
                            f">= {burn_threshold:g}x "
                            f"(error rate {error_rate:.3f}, "
                            f"budget {spec.error_budget:.3f})"
                        ),
                    )
                    self.alerts.append(alert)
                    fired.append(alert)
                    if self.metrics is not None:
                        self.metrics.inc(
                            "slo.alerts",
                            run=self.run,
                            slo=spec.name,
                            severity=alert.severity,
                        )
                state.violating = violating
        self._recent_latencies.extend(sample.latencies)
        lats = sorted(self._recent_latencies)
        self.trajectory.append(
            (sample.tick, percentile(lats, 0.50), percentile(lats, 0.99))
        )
        return fired

    @staticmethod
    def _burn_rate(spec: SLOSpec, good: int, bad: int) -> tuple[float, float]:
        total = good + bad
        if total == 0:
            return 0.0, 0.0
        error_rate = bad / total
        if spec.error_budget == 0.0:
            return (math.inf if bad else 0.0), error_rate
        return error_rate / spec.error_budget, error_rate

    # -- introspection -------------------------------------------------------

    def burn_rate(self, name: str, window: str = "fast") -> float:
        return self._burn.get((name, window), 0.0)

    def burned(self, name: str | None = None) -> bool:
        """Whether any alert fired (optionally: for one named SLO)."""
        if name is None:
            return bool(self.alerts)
        return any(a.slo == name for a in self.alerts)

    def budget_remaining(self, name: str) -> float:
        """Lifetime budget left as a fraction of the budget (1.0 = untouched).

        Zero-budget SLOs report 1.0 until the first bad event, then 0.0.
        """
        good, bad = self._totals[name]
        spec = next(s for s in self.specs if s.name == name)
        total = good + bad
        if total == 0:
            return 1.0
        if spec.error_budget == 0.0:
            return 0.0 if bad else 1.0
        return 1.0 - (bad / total) / spec.error_budget

    def alert_log(self) -> list[dict[str, Any]]:
        """The structured alert log, oldest first."""
        return [a.to_dict() for a in self.alerts]

    def summary(self) -> str:
        pages = sum(1 for a in self.alerts if a.severity == "page")
        tickets = len(self.alerts) - pages
        worst = max(
            self.specs,
            key=lambda s: self.burn_rate(s.name, "slow"),
            default=None,
        )
        tail = ""
        if worst is not None:
            tail = (
                f"; worst slow burn {self.burn_rate(worst.name, 'slow'):.1f}x "
                f"({worst.name})"
            )
        return (
            f"slo: {self.samples} tick(s), {len(self.specs)} objective(s), "
            f"{pages} page(s), {tickets} ticket(s){tail}"
        )

    # -- streaming attachment ------------------------------------------------

    def stream_hook(self):
        """An ``on_tick`` callable for :class:`StreamingSchedulerService`.

        Builds the :class:`TickSample` from the tick's settlements, the
        service's door deltas and admission sample, and the chaos drill
        controller's resolved events (when one is attached) — then feeds
        :meth:`observe`.  The service never imports this module; the
        hook is plain dependency injection.
        """

        def on_tick(service: Any, settled: list[Any], now: int) -> None:
            done = expired = failed = 0
            latencies: list[int] = []
            for result in settled:
                status = result.status.name
                if status == "DONE":
                    done += 1
                    latencies.append(result.latency_ticks)
                elif status == "EXPIRED":
                    expired += 1
                elif status == "FAILED":
                    failed += 1
            load = service.last_load
            detections: tuple[int, ...] = ()
            missed = 0
            if service.chaos is not None:
                detections, missed = service.chaos.take_tick_events()
            self.observe(
                TickSample(
                    tick=now,
                    done=done,
                    expired=expired,
                    failed=failed,
                    shed=service._shed_delta,
                    submitted=service._submitted_delta,
                    queue_fraction=load.queue_fraction if load else 0.0,
                    pressure=load.pressure() if load else 0.0,
                    latencies=tuple(latencies),
                    chaos_detections=detections,
                    chaos_missed=missed,
                )
            )

        return on_tick

    # -- metrics plumbing ----------------------------------------------------

    def _emit_events(self, spec: SLOSpec, good: int, bad: int) -> None:
        if self.metrics is None:
            return
        if good:
            self.metrics.inc("slo.good", good, run=self.run, slo=spec.name)
        if bad:
            self.metrics.inc("slo.bad", bad, run=self.run, slo=spec.name)
        self.metrics.set(
            "slo.budget_remaining",
            self.budget_remaining(spec.name),
            run=self.run,
            slo=spec.name,
        )

    def _emit_burn(self, spec: SLOSpec, window: str, burn: float) -> None:
        if self.metrics is None:
            return
        self.metrics.set(
            "slo.burn_rate",
            burn if math.isfinite(burn) else -1.0,  # JSON-safe sentinel
            run=self.run,
            slo=spec.name,
            window=window,
        )


def sample_from_snapshots(
    prev: Mapping[str, Any],
    curr: Mapping[str, Any],
    *,
    tick: int,
    run: str | None = None,
) -> TickSample:
    """Build a :class:`TickSample` from two consecutive registry snapshots.

    The offline path: when all you archived is
    :meth:`MetricsRegistry.snapshot` dumps (one per tick), the
    ``stream.*`` counter deltas reconstruct the event counts — though
    not the per-request latency list, so latency SLOs need the live
    :meth:`SLOEngine.stream_hook` path.  ``run`` filters by the metric's
    run label when several services share one registry.
    """

    def total(snap: Mapping[str, Any], name: str) -> int:
        out = 0
        for key, value in snap.get("counters", {}).items():
            base, labels = parse_key(key)
            if base == name and (run is None or labels.get("run") == run):
                out += value
        return out

    def delta(name: str) -> int:
        return max(0, total(curr, name) - total(prev, name))

    queue_fraction = 0.0
    for key, value in curr.get("gauges", {}).items():
        base, labels = parse_key(key)
        if base == "admission.pressure" and (
            run is None or labels.get("run") == run
        ):
            queue_fraction = float(value)
    return TickSample(
        tick=tick,
        done=delta("stream.done"),
        expired=delta("stream.expired"),
        failed=delta("stream.failed"),
        shed=delta("stream.shed"),
        submitted=delta("stream.submitted"),
        pressure=queue_fraction,
    )
