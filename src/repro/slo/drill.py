"""In-service chaos drills: faults injected while the service is serving.

The offline campaign (``cst-padr chaos``) proves the recovery loop works
on a bench; a drill proves it works **in production conditions** — a
fault appears mid-tick, inside a live :class:`StreamingSchedulerService`,
and two SLAs are measured on the service's own clock:

* **detection**: ticks from the drill arming until the resilient
  scheduler localises (quarantines) the injected switch;
* **reroute**: ticks from arming until the victim request settles DONE
  through the healthy path.

Mechanically, the service's drain path hands an armed controller its
solo leaders for the tick (see ``StreamingSchedulerService._drain``);
the controller claims one victim, executes its workload against a
deliberately faulted :class:`~repro.cst.network.CSTNetwork` through the
:class:`~repro.recovery.resilient.ResilientScheduler` (reusing
:func:`~repro.recovery.chaos.inject_reachable_fault` so the fault is
provably on the victim's circuits), and records whether the faulty
switch was quarantined.  The victim is then requeued by the service and
re-executed healthy a tick later — the drill perturbs *when* the request
settles, never *what* it settles to, so parity and the no-silent-drop
accounting hold.  Resolved drills surface through
:meth:`ChaosDrillController.take_tick_events` into the SLO engine's
zero-budget ``chaos-detection`` objective.

Everything is seeded and tick-driven: a drill at the same tick of the
same workload picks the same switch every run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterable

from repro.cst.network import CSTNetwork
from repro.exceptions import ReproError
from repro.obs.registry import MetricsRegistry
from repro.recovery.chaos import FAULT_MODELS, inject_reachable_fault
from repro.recovery.resilient import ResilientScheduler

__all__ = ["ChaosDrillController", "DrillRecord", "DrillSpec"]


@dataclass(frozen=True, slots=True)
class DrillSpec:
    """One scheduled drill: when to arm, what to break, what to demand.

    ``tick`` is the logical tick the drill arms (it fires at the first
    tick >= ``tick`` that drains a solo leader with enough deadline
    slack); ``detection_sla`` / ``reroute_sla`` are the tick budgets the
    ``chaos-detection`` SLO asserts; ``min_slack`` is how many ticks of
    deadline headroom a victim must have — a drill never picks a request
    the one-tick reroute delay could expire.
    """

    tick: int
    model: str = "dead"
    detection_sla: int = 4
    reroute_sla: int = 8
    min_slack: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tick < 1:
            raise ReproError(f"drill tick must be >= 1, got {self.tick}")
        if self.model not in FAULT_MODELS:
            raise ReproError(
                f"unknown fault model {self.model!r}; "
                f"choose from {sorted(FAULT_MODELS)}"
            )
        if self.detection_sla < 1 or self.reroute_sla < 1:
            raise ReproError("drill SLAs must be >= 1 tick")
        if self.min_slack < 1:
            raise ReproError(f"min_slack must be >= 1, got {self.min_slack}")


@dataclass(slots=True)
class DrillRecord:
    """What one drill did and measured."""

    spec: DrillSpec
    armed_tick: int
    victim_id: int | None = None
    fault_switch: int | None = None
    executed_tick: int | None = None
    detected: bool = False
    detection_ticks: int | None = None
    rerouted_tick: int | None = None
    reroute_ticks: int | None = None

    @property
    def met_detection_sla(self) -> bool:
        return (
            self.detected
            and self.detection_ticks is not None
            and self.detection_ticks <= self.spec.detection_sla
        )

    @property
    def met_reroute_sla(self) -> bool:
        return (
            self.reroute_ticks is not None
            and self.reroute_ticks <= self.spec.reroute_sla
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "tick": self.spec.tick,
            "model": self.spec.model,
            "armed_tick": self.armed_tick,
            "victim_id": self.victim_id,
            "fault_switch": self.fault_switch,
            "executed_tick": self.executed_tick,
            "detected": self.detected,
            "detection_ticks": self.detection_ticks,
            "detection_sla": self.spec.detection_sla,
            "met_detection_sla": self.met_detection_sla,
            "rerouted_tick": self.rerouted_tick,
            "reroute_ticks": self.reroute_ticks,
            "reroute_sla": self.spec.reroute_sla,
            "met_reroute_sla": self.met_reroute_sla,
        }


class ChaosDrillController:
    """Runs :class:`DrillSpec`\\ s inside a streaming service's tick loop.

    Attach via ``StreamingSchedulerService(chaos=controller)``.  The
    service calls :meth:`maybe_drill` with each tick's solo leaders
    (returning the victims it claimed, at most one per tick) and
    :meth:`on_settled` with each tick's settlements (closing the reroute
    measurement).  Emits ``chaos.drills`` / ``chaos.detected`` /
    ``chaos.missed`` counters and ``chaos.detection_ticks`` /
    ``chaos.reroute_ticks`` histograms under ``run``.
    """

    def __init__(
        self,
        drills: Iterable[DrillSpec],
        *,
        max_attempts: int = 3,
        metrics: MetricsRegistry | None = None,
        run: str = "stream",
    ) -> None:
        self._pending = sorted(drills, key=lambda d: d.tick)
        self.max_attempts = max_attempts
        self.metrics = metrics
        self.run = run
        self.records: list[DrillRecord] = []
        self._armed: DrillRecord | None = None
        self._awaiting_reroute: dict[int, DrillRecord] = {}
        # resolved-this-tick buffers drained by the SLO sampler
        self._tick_detections: list[int] = []
        self._tick_missed = 0

    # -- the service-facing protocol -----------------------------------------

    def maybe_drill(self, solos: list[Any], now: int) -> list[Any]:
        """Claim at most one victim from this tick's solo leaders.

        Called by the drain path *before* execution.  Returns the claimed
        victims; the service requeues them for a healthy re-execution.
        """
        if self._armed is None and self._pending and self._pending[0].tick <= now:
            self._armed = DrillRecord(
                spec=self._pending.pop(0), armed_tick=now
            )
        record = self._armed
        if record is None:
            return []
        # prefer the victim with the widest deadline headroom; skip the
        # tick entirely when nobody can safely absorb the reroute delay.
        candidates = [
            live
            for live in solos
            if live.deadline_tick - now > record.spec.min_slack
        ]
        if not candidates:
            return []
        victim = max(candidates, key=lambda live: live.deadline_tick - now)
        self._execute(record, victim, now)
        return [victim]

    def on_settled(self, settled: list[Any], now: int) -> None:
        """Observe the tick's settlements; closes reroute measurements."""
        if not self._awaiting_reroute:
            return
        for result in settled:
            record = self._awaiting_reroute.pop(result.request_id, None)
            if record is None:
                continue
            if result.status.name == "DONE":
                record.rerouted_tick = now
                record.reroute_ticks = now - record.armed_tick
                self._observe("chaos.reroute_ticks", record.reroute_ticks)
            # any other terminal status leaves reroute_ticks None — the
            # drill report shows the miss rather than hiding it.

    def take_tick_events(self) -> tuple[tuple[int, ...], int]:
        """Drain ``(detection latencies, missed count)`` resolved this tick.

        The SLO sampler calls this once per tick; events are reported
        exactly once.
        """
        detections = tuple(self._tick_detections)
        missed = self._tick_missed
        self._tick_detections.clear()
        self._tick_missed = 0
        return detections, missed

    # -- internals -----------------------------------------------------------

    def _execute(self, record: DrillRecord, victim: Any, now: int) -> None:
        spec = record.spec
        record.victim_id = victim.request_id
        record.executed_tick = now
        cset = victim.request.cset
        network = CSTNetwork.of_size(victim.key.n_leaves)
        rng = random.Random(f"drill:{spec.seed}:{spec.tick}:{spec.model}")
        injected = inject_reachable_fault(network, cset, spec.model, rng)
        self._armed = None
        self.records.append(record)
        self._inc("chaos.drills")
        if injected is None:  # degenerate workload; count as a miss
            self._tick_missed += 1
            self._inc("chaos.missed")
            return
        record.fault_switch, _ = injected
        outcome = ResilientScheduler(max_attempts=self.max_attempts).schedule(
            cset, network=network
        )
        record.detected = record.fault_switch in outcome.quarantined
        if record.detected:
            record.detection_ticks = now - record.armed_tick
            self._tick_detections.append(record.detection_ticks)
            self._inc("chaos.detected")
            self._observe("chaos.detection_ticks", record.detection_ticks)
        else:
            self._tick_missed += 1
            self._inc("chaos.missed")
        self._awaiting_reroute[victim.request_id] = record

    def _inc(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, run=self.run)

    def _observe(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.observe(name, value, run=self.run)

    # -- reporting -----------------------------------------------------------

    @property
    def all_met_sla(self) -> bool:
        return bool(self.records) and all(
            r.met_detection_sla and r.met_reroute_sla for r in self.records
        )

    def summary(self) -> str:
        ran = [r for r in self.records if r.executed_tick is not None]
        detected = sum(1 for r in ran if r.detected)
        return (
            f"chaos drills: {len(ran)} run, {detected} detected, "
            f"{sum(1 for r in ran if r.met_detection_sla)} within detection "
            f"SLA, {sum(1 for r in ran if r.met_reroute_sla)} rerouted "
            f"within SLA ({len(self._pending)} still pending)"
        )
