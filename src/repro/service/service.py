""":class:`SchedulerService` — submit/drain batch scheduling with admission
control, a canonical schedule cache and a worker pool.

The service turns the one-shot scheduler into a serving component:

* **submit** applies admission control.  The queue is bounded; a submit
  against a full queue is *rejected at the door* (a ticket that says so,
  not an exception) — overload sheds load instead of growing without
  bound.  Each accepted request carries a deadline in logical ticks.
* **drain** settles every accepted request.  Repeats are served from the
  :class:`~repro.service.cache.ScheduleCache`; misses fan out over a
  multiprocessing pool (or run inline for ``workers <= 1`` — same code
  path, see :mod:`repro.service.worker`).  Transient failures retry under
  the recovery subsystem's deterministic exponential backoff (``2^(a-1)``
  idle ticks before attempt ``a``); requests that outlive their deadline
  expire.  Every submitted request is accounted for in the
  :class:`BatchReport` — the service degrades, it does not crash.

Time is a *logical tick clock* advanced by the drain loop, so backoff and
deadlines are deterministic and testable — the same discipline the
recovery loop uses with idle committed rounds.

Parity is a first-class mode: with ``parity_check=True`` every settled
schedule — cache hit or pool result — is compared, at the serialized
level, against a direct ``PADRScheduler`` run in this process, and a
mismatch raises :class:`ServiceParityError`.  The CI smoke gate runs the
whole batch this way.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.comms.communication import CommunicationSet
from repro.core.config import SchedulerConfig
from repro.core.schedule import Schedule
from repro.exceptions import ReproError, SchedulingError
from repro.io import cset_to_dict, result_from_dict, result_to_dict
from repro.obs.instrument import Instrumentation
from repro.service.cache import CanonicalKey, ScheduleCache, canonical_signature
from repro.service.worker import (
    WorkRequest,
    WorkResponse,
    init_worker,
    schedule_batch_request,
    schedule_request,
)

__all__ = [
    "BatchReport",
    "RequestResult",
    "RequestStatus",
    "SchedulerService",
    "ServiceParityError",
    "Ticket",
]


class ServiceParityError(ReproError):
    """A service-path schedule diverged from the direct scheduler."""


class RequestStatus(enum.Enum):
    DONE = "done"
    REJECTED = "rejected"
    EXPIRED = "expired"
    FAILED = "failed"


@dataclass(frozen=True, slots=True)
class Ticket:
    """The receipt a submit returns; rejection is a ticket, not an error."""

    id: int
    accepted: bool
    reason: str | None = None


@dataclass(frozen=True, slots=True)
class RequestResult:
    """The settled fate of one submitted request."""

    ticket_id: int
    status: RequestStatus
    from_cache: bool = False
    attempts: int = 0
    wait_ticks: int = 0
    payload: dict[str, Any] | None = None
    error: str | None = None
    signature: str | None = None  # relabelling-invariant Dyck word

    @property
    def result(self) -> Any | None:
        """The settled result rebuilt from its canonical serialized form.

        A :class:`~repro.core.schedule.Schedule` for well-nested requests,
        a :class:`~repro.core.plan.GeneralSchedule` for arbitrary sets the
        service lowered through well-nested decomposition.
        """
        return result_from_dict(self.payload) if self.payload else None

    @property
    def schedule(self) -> Schedule | None:
        """The executable round schedule (a general result's combined plan)."""
        result = self.result
        return getattr(result, "combined", result)

    @property
    def batches(self) -> int:
        """Well-nested sub-batches this request decomposed into.

        ``1`` for well-nested requests (no decomposition needed), ``0``
        while unsettled or when the request never produced a schedule.
        """
        if not self.payload:
            return 0
        decompose = self.payload.get("decompose")
        return int(decompose["n_batches"]) if decompose else 1


@dataclass(frozen=True, slots=True)
class BatchReport:
    """One drain's complete accounting: every ticket settles exactly once."""

    results: dict[int, RequestResult]
    ticks: int
    waves: int

    def _count(self, status: RequestStatus) -> int:
        return sum(1 for r in self.results.values() if r.status is status)

    @property
    def n_done(self) -> int:
        return self._count(RequestStatus.DONE)

    @property
    def n_cached(self) -> int:
        return sum(1 for r in self.results.values() if r.from_cache)

    @property
    def n_rejected(self) -> int:
        return self._count(RequestStatus.REJECTED)

    @property
    def n_expired(self) -> int:
        return self._count(RequestStatus.EXPIRED)

    @property
    def n_failed(self) -> int:
        return self._count(RequestStatus.FAILED)

    @property
    def hit_rate(self) -> float:
        done = self.n_done
        return self.n_cached / done if done else 0.0

    def schedules(self) -> dict[int, Schedule]:
        """Ticket id → rebuilt schedule, for every DONE request."""
        return {
            tid: r.schedule  # type: ignore[misc]
            for tid, r in self.results.items()
            if r.status is RequestStatus.DONE and r.payload is not None
        }

    def summary(self) -> str:
        return (
            f"batch: {self.n_done} done ({self.n_cached} cached), "
            f"{self.n_rejected} rejected, {self.n_expired} expired, "
            f"{self.n_failed} failed, {self.waves} wave(s), {self.ticks} tick(s)"
        )


@dataclass(slots=True)
class _Pending:
    ticket_id: int
    cset: CommunicationSet
    key: CanonicalKey
    payload: dict[str, Any] = field(default_factory=dict)
    submit_tick: int = 0
    deadline_ticks: int = 0
    attempts: int = 0
    eligible_tick: int = 0
    last_error: str | None = None


class SchedulerService:
    """Batched PADR scheduling behind admission control and a cache.

    Parameters
    ----------
    config:
        the :class:`~repro.core.config.SchedulerConfig` every schedule —
        local, cached or pooled — is computed under.
    workers:
        fan-out width.  ``<= 1`` schedules inline (no processes spawned);
        ``> 1`` lazily starts a multiprocessing pool whose workers are
        initialised from ``config``.
    cache_size / max_queue:
        LRU capacity and the admission-control bound.
    default_deadline:
        per-request deadline in logical ticks (overridable per submit).
    max_retries:
        transient-failure retries before a request is FAILED.
    pool_timeout:
        seconds to wait for one pooled wave before declaring the pool
        broken.  A SIGKILLed pool worker makes ``Pool.map`` wait forever
        (the task is lost, never errored), so an unbounded wait would
        hang ``drain`` on one dead process; the timeout converts that
        into the transient-retry path.  ``None`` waits forever.
    parity_check:
        re-run every settled request through a direct in-process
        ``PADRScheduler`` and require serialized equality.
    fabric:
        optional :class:`~repro.fabric.FabricController`.  When given,
        execution fans out across the fabric's forest of CSTs instead of
        this service's own pool: each request is routed to the shard its
        relabelling-invariant canonical signature hashes to, so repeats
        land on the same tree and the shared cache keeps working.
        Requests wider than the fabric's ``leaf_width`` are rejected at
        the door.  The service does *not* own the fabric — close it
        separately (it is its own context manager).
    obs:
        optional :class:`~repro.obs.Instrumentation`; the service emits
        ``service.*`` counters/gauges and a ``service.drain`` span, and
        the cache emits ``service.cache.*``.
    """

    def __init__(
        self,
        *,
        config: SchedulerConfig | None = None,
        workers: int = 1,
        cache_size: int = 256,
        max_queue: int = 1024,
        default_deadline: int = 64,
        max_retries: int = 3,
        pool_timeout: float | None = 120.0,
        parity_check: bool = False,
        fabric: Any = None,
        obs: "Instrumentation | None" = None,
    ) -> None:
        if workers < 0:
            raise SchedulingError(f"workers must be >= 0, got {workers}")
        if max_queue < 1:
            raise SchedulingError(f"max_queue must be >= 1, got {max_queue}")
        if default_deadline < 1:
            raise SchedulingError(
                f"default_deadline must be >= 1, got {default_deadline}"
            )
        if max_retries < 0:
            raise SchedulingError(f"max_retries must be >= 0, got {max_retries}")
        self.config = config if config is not None else SchedulerConfig()
        self.workers = workers
        self.max_queue = max_queue
        self.default_deadline = default_deadline
        self.max_retries = max_retries
        self.pool_timeout = pool_timeout
        self.parity_check = parity_check
        self.fabric = fabric
        self.obs = obs
        metrics = obs.metrics if obs is not None else None
        run = obs.run if obs is not None else "service"
        self.cache = ScheduleCache(cache_size, metrics=metrics, run=run)
        self._queue: list[_Pending] = []
        self._rejected: list[RequestResult] = []
        self._next_id = 0
        self._tick = 0
        self._pool = None
        self._direct = None  # lazy parity scheduler
        self._inline_ready = False

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        cset: CommunicationSet,
        *,
        n_leaves: int | None = None,
        deadline: int | None = None,
    ) -> Ticket:
        """Admit (or reject) one communication set for the next drain."""
        ticket_id = self._next_id
        self._next_id += 1
        self._inc("service.submitted")
        if len(self._queue) >= self.max_queue:
            self._inc("service.rejected")
            self._rejected.append(
                RequestResult(
                    ticket_id=ticket_id,
                    status=RequestStatus.REJECTED,
                    error=f"queue full ({self.max_queue})",
                )
            )
            return Ticket(
                id=ticket_id,
                accepted=False,
                reason=f"queue full ({self.max_queue})",
            )
        # canonicalisation doubles as admission validation: oversized sets
        # — and, unless config.decompose="auto" admits them for well-nested
        # decomposition, wrongly-oriented ones — are turned away here, not
        # in a worker.
        try:
            key = canonical_signature(cset, n_leaves, config=self.config)
        except ReproError as exc:
            self._inc("service.rejected")
            self._rejected.append(
                RequestResult(
                    ticket_id=ticket_id,
                    status=RequestStatus.REJECTED,
                    error=str(exc),
                )
            )
            return Ticket(id=ticket_id, accepted=False, reason=str(exc))
        if self.fabric is not None and key.n_leaves > self.fabric.leaf_width:
            reason = (
                f"request needs {key.n_leaves} leaves but fabric trees "
                f"have {self.fabric.leaf_width}"
            )
            self._inc("service.rejected")
            self._rejected.append(
                RequestResult(
                    ticket_id=ticket_id,
                    status=RequestStatus.REJECTED,
                    error=reason,
                )
            )
            return Ticket(id=ticket_id, accepted=False, reason=reason)
        self._queue.append(
            _Pending(
                ticket_id=ticket_id,
                cset=cset,
                key=key,
                payload=cset_to_dict(cset),
                submit_tick=self._tick,
                deadline_ticks=(
                    deadline if deadline is not None else self.default_deadline
                ),
                eligible_tick=self._tick,
            )
        )
        self._gauge("service.queue.depth", len(self._queue))
        return Ticket(id=ticket_id, accepted=True)

    def submit_many(
        self, csets: Iterable[CommunicationSet], *, n_leaves: int | None = None
    ) -> list[Ticket]:
        return [self.submit(cs, n_leaves=n_leaves) for cs in csets]

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # -- draining ------------------------------------------------------------

    def drain(self) -> BatchReport:
        """Settle every queued request and return the full accounting.

        If settlement itself raises — a :class:`ServiceParityError`, a
        corrupt payload — the worker pool is torn down *hard* before the
        exception propagates: a drain abandoned mid-wave must not leave
        live worker processes behind, and the pool's state can no longer
        be trusted anyway.  The next drain lazily starts a fresh pool.
        """
        try:
            obs = self.obs
            if obs is None:
                return self._drain()
            with obs.metrics.span("service.drain", run=obs.run):
                return self._drain()
        except BaseException:
            self._abort_pool()
            raise

    def _drain(self) -> BatchReport:
        results: dict[int, RequestResult] = {
            r.ticket_id: r for r in self._rejected
        }
        self._rejected = []
        active = self._queue
        self._queue = []
        self._gauge("service.queue.depth", 0)
        start_tick = self._tick
        waves = 0

        while active:
            # one wave per tick; idle forward when everything is backing off.
            next_eligible = min(p.eligible_tick for p in active)
            self._tick = max(self._tick + 1, next_eligible)
            waves += 1

            wave = [p for p in active if p.eligible_tick <= self._tick]
            later = [p for p in active if p.eligible_tick > self._tick]

            expired = [
                p for p in wave if self._tick - p.submit_tick > p.deadline_ticks
            ]
            wave = [
                p for p in wave if self._tick - p.submit_tick <= p.deadline_ticks
            ]
            for p in expired:
                self._inc("service.expired")
                results[p.ticket_id] = RequestResult(
                    ticket_id=p.ticket_id,
                    status=RequestStatus.EXPIRED,
                    attempts=p.attempts,
                    wait_ticks=self._tick - p.submit_tick,
                    error=p.last_error or "deadline exceeded",
                    signature=p.key.dyck,
                )

            # de-duplicate within the wave: one leader per canonical key
            # executes, its followers are served from the fresh cache entry.
            leaders: dict[tuple[int, str, str], _Pending] = {}
            followers: dict[tuple[int, str, str], list[_Pending]] = {}
            for p in wave:
                cached = self.cache.get(p.key)
                if cached is not None:
                    results[p.ticket_id] = self._settle(p, cached, from_cache=True)
                elif p.key.cache_key in leaders:
                    followers.setdefault(p.key.cache_key, []).append(p)
                else:
                    leaders[p.key.cache_key] = p

            retry: list[_Pending] = []
            if leaders:
                by_id = {p.ticket_id: p for p in leaders.values()}
                for ticket_id, status, payload in self._execute(
                    list(leaders.values())
                ):
                    p = by_id[ticket_id]
                    p.attempts += 1
                    tail = followers.get(p.key.cache_key, [])
                    if status == "ok":
                        self.cache.put(p.key, payload)
                        results[p.ticket_id] = self._settle(
                            p, payload, from_cache=False
                        )
                        for f in tail:
                            hit = self.cache.get(f.key)
                            assert hit is not None
                            results[f.ticket_id] = self._settle(
                                f, hit, from_cache=True
                            )
                    elif status == "permanent":
                        # deterministic input error: every duplicate shares it.
                        for q in (p, *tail):
                            self._inc("service.failed")
                            results[q.ticket_id] = RequestResult(
                                ticket_id=q.ticket_id,
                                status=RequestStatus.FAILED,
                                attempts=q.attempts,
                                wait_ticks=self._tick - q.submit_tick,
                                error=str(payload),
                                signature=q.key.dyck,
                            )
                    elif p.attempts > self.max_retries:
                        self._inc("service.failed")
                        results[p.ticket_id] = RequestResult(
                            ticket_id=p.ticket_id,
                            status=RequestStatus.FAILED,
                            attempts=p.attempts,
                            wait_ticks=self._tick - p.submit_tick,
                            error=str(payload),
                            signature=p.key.dyck,
                        )
                        retry.extend(tail)  # followers retry on their own budget
                    else:
                        # the recovery loop's discipline: 2^(a-1) idle ticks
                        # before attempt a+1.
                        self._inc("service.retries")
                        p.last_error = str(payload)
                        p.eligible_tick = self._tick + (1 << (p.attempts - 1))
                        retry.append(p)
                        retry.extend(tail)

            active = later + retry

        if self.fabric is not None:
            self.fabric.maybe_rebalance()
        report = BatchReport(
            results=results, ticks=self._tick - start_tick, waves=waves
        )
        self._inc("service.done", report.n_done)
        return report

    def __call__(
        self, csets: Iterable[CommunicationSet], *, n_leaves: int | None = None
    ) -> BatchReport:
        """Submit a batch and drain it — the one-line service call."""
        self.submit_many(csets, n_leaves=n_leaves)
        return self.drain()

    # -- execution backends --------------------------------------------------

    def _execute(self, pending: list[_Pending]) -> list[WorkResponse]:
        if self.fabric is not None:
            requests: list[WorkRequest] = [
                (p.ticket_id, p.payload, p.key.n_leaves) for p in pending
            ]
            shards = [self.fabric.route(p.key) for p in pending]
            return self.fabric.execute(requests, shards)
        singles, groups = self._shape_groups(pending)
        if self.workers <= 1:
            if not self._inline_ready:
                init_worker(self.config.to_dict())
                self._inline_ready = True
            out = [schedule_request(r) for r in singles]
            for grp in groups:
                out.extend(schedule_batch_request(grp))
            return out
        pool = self._ensure_pool()
        try:
            out = []
            if singles:
                chunk = max(1, len(singles) // (self.workers * 4))
                out.extend(
                    pool.map_async(
                        schedule_request, singles, chunksize=chunk
                    ).get(timeout=self.pool_timeout)
                )
            if groups:
                for responses in pool.map_async(
                    schedule_batch_request, groups
                ).get(timeout=self.pool_timeout):
                    out.extend(responses)
            return out
        except Exception as exc:
            # a worker died (SIGKILL, interpreter crash): the wave either
            # raises outright or sits on a lost task until ``pool_timeout``
            # fires — never the per-request error envelopes the workers
            # normally produce.  The pool is unusable afterwards —
            # discard it and report every in-flight request as transient,
            # so the drain loop retries on a fresh pool under the normal
            # backoff schedule instead of failing the whole wave (or worse,
            # reusing a broken pool on the next drain).
            self._abort_pool()
            self._inc("service.pool.broken")
            err = f"worker pool failure: {exc!r}"
            return [(p.ticket_id, "transient", err) for p in pending]

    def _shape_groups(
        self, pending: list[_Pending]
    ) -> tuple[list[WorkRequest], list[list[WorkRequest]]]:
        """Split a wave into solo requests and same-shape columnar batches.

        The PR-4 dedup already collapsed identical placed keys, so what is
        left differs at least in placement.  Requests whose configuration
        selects the columnar kernel are grouped by *shape* — ``(n_leaves,
        dyck word, config)``, the relabelling-invariant coarsening of the
        cache key — and each multi-member group executes through one
        batched kernel invocation.  Everything else stays a solo request.
        """
        config = self.config
        solo: list[WorkRequest] = []
        grouped: dict[tuple[int, str, str], list[WorkRequest]] = {}
        for p in pending:
            request: WorkRequest = (p.ticket_id, p.payload, p.key.n_leaves)
            if config.selects_columnar(p.key.n_leaves) and not p.key.general:
                shape = (p.key.n_leaves, p.key.dyck, p.key.config)
                grouped.setdefault(shape, []).append(request)
            else:
                solo.append(request)
        groups: list[list[WorkRequest]] = []
        for members in grouped.values():
            if len(members) == 1:
                solo.append(members[0])
            else:
                groups.append(members)
        if groups:
            batched = sum(len(g) for g in groups)
            self._inc("service.shape_batches", len(groups))
            self._inc("service.shape_batched", batched)
        return solo, groups

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing as mp

            try:
                ctx = mp.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX
                ctx = mp.get_context()
            self._pool = ctx.Pool(
                processes=self.workers,
                initializer=init_worker,
                initargs=(self.config.to_dict(),),
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def _abort_pool(self) -> None:
        """Tear the pool down hard (terminate, not close) — for the paths
        where worker state is no longer trustworthy: a drain that raised
        mid-settlement, or a pool call that itself blew up.

        The workers are killed directly before ``Pool.terminate()`` runs:
        a worker that died mid-IPC can leave the pool's shared queue lock
        held forever, and ``terminate()`` itself blocks trying to take it.
        Killing the survivors first guarantees nobody re-acquires the
        lock, and the final ``terminate()``/``join()`` runs on a daemon
        thread so a poisoned pool can never hang the service."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for proc in getattr(pool, "_pool", []) or []:
            if proc.is_alive():  # pragma: no branch
                proc.terminate()

        def _reap() -> None:  # pragma: no cover - timing dependent
            pool.terminate()
            pool.join()

        import threading

        threading.Thread(target=_reap, daemon=True, name="pool-reaper").start()

    def __enter__(self) -> "SchedulerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- settlement ----------------------------------------------------------

    def _settle(
        self, p: _Pending, payload: dict[str, Any], *, from_cache: bool
    ) -> RequestResult:
        if self.parity_check:
            self._assert_parity(p, payload)
        decompose = payload.get("decompose")
        if decompose is not None:
            self._inc("decompose.requests")
            self._inc("decompose.batches", int(decompose.get("n_batches", 1)))
        return RequestResult(
            ticket_id=p.ticket_id,
            status=RequestStatus.DONE,
            from_cache=from_cache,
            attempts=p.attempts,
            wait_ticks=self._tick - p.submit_tick,
            payload=payload,
            signature=p.key.dyck,
        )

    def _assert_parity(self, p: _Pending, payload: dict[str, Any]) -> None:
        if self._direct is None:
            self._direct = self.config.build()
        direct = result_to_dict(
            self._direct.schedule(p.cset, n_leaves=p.key.n_leaves)
        )
        if direct != payload:
            raise ServiceParityError(
                f"ticket {p.ticket_id}: service schedule diverged from the "
                f"direct scheduler (signature {p.key.dyck!r})"
            )

    # -- metrics helpers -----------------------------------------------------

    def _inc(self, name: str, amount: int = 1) -> None:
        if self.obs is not None and amount:
            self.obs.metrics.inc(name, amount, run=self.obs.run)

    def _gauge(self, name: str, value: float) -> None:
        if self.obs is not None:
            self.obs.metrics.set(name, value, run=self.obs.run)
