"""The multiprocessing side of the service: pure-payload workers.

Nothing rich crosses the process boundary.  A request ships as
``(ticket_id, cset payload, n_leaves)`` where the payload is
:func:`repro.io.cset_to_dict` output; the response comes back as
``(ticket_id, status, payload)`` where the payload is
:func:`repro.io.schedule_to_dict` output on success or an error string
otherwise.  Workers rebuild their scheduler once, in the pool
initializer, from a :class:`~repro.core.config.SchedulerConfig` dict —
the single config object the service forwards — so every worker schedules
under exactly the configuration the caller selected.

Status discrimination mirrors the recovery subsystem's split: a
:class:`~repro.exceptions.ReproError` means the *request* is bad
(non-well-nested, oversized — retrying cannot help, status
``"permanent"``), any other exception is treated as transient
infrastructure trouble and left to the service's retry/backoff loop
(status ``"transient"``).

The same function doubles as the in-process executor when the service
runs with ``workers <= 1``, so the sequential path and the pooled path
are one code path with one behaviour.
"""

from __future__ import annotations

from typing import Any

from repro.core.config import SchedulerConfig
from repro.exceptions import ReproError
from repro.io import cset_from_dict, schedule_to_dict

__all__ = ["WorkRequest", "WorkResponse", "init_worker", "schedule_request"]

#: (ticket_id, serialized communication set, n_leaves)
WorkRequest = tuple[int, dict[str, Any], int]
#: (ticket_id, "ok" | "transient" | "permanent", schedule payload | error)
WorkResponse = tuple[int, str, Any]

_worker_scheduler = None


def init_worker(config_data: dict[str, Any]) -> None:
    """Pool initializer: build this worker's scheduler once."""
    global _worker_scheduler
    _worker_scheduler = SchedulerConfig.from_dict(config_data).build()


def schedule_request(request: WorkRequest) -> WorkResponse:
    """Schedule one serialized request; never raises across the boundary."""
    ticket_id, cset_data, n_leaves = request
    if _worker_scheduler is None:  # pragma: no cover - misuse guard
        return (ticket_id, "transient", "worker not initialised")
    try:
        cset = cset_from_dict(cset_data)
        schedule = _worker_scheduler.schedule(cset, n_leaves=n_leaves)
        return (ticket_id, "ok", schedule_to_dict(schedule))
    except ReproError as exc:
        return (ticket_id, "permanent", str(exc))
    except Exception as exc:  # infrastructure trouble: retryable
        return (ticket_id, "transient", f"{type(exc).__name__}: {exc}")
