"""The multiprocessing side of the service: pure-payload workers.

Nothing rich crosses the process boundary.  A request ships as
``(ticket_id, cset payload, n_leaves)`` where the payload is
:func:`repro.io.cset_to_dict` output; the response comes back as
``(ticket_id, status, payload)`` where the payload is
:func:`repro.io.schedule_to_dict` output on success or an error string
otherwise.  Workers rebuild their scheduler once, in the pool
initializer, from a :class:`~repro.core.config.SchedulerConfig` dict —
the single config object the service forwards — so every worker schedules
under exactly the configuration the caller selected.

Status discrimination mirrors the recovery subsystem's split: a
:class:`~repro.exceptions.ReproError` means the *request* is bad
(non-well-nested, oversized — retrying cannot help, status
``"permanent"``), any other exception is treated as transient
infrastructure trouble and left to the service's retry/backoff loop
(status ``"transient"``).

The same function doubles as the in-process executor when the service
runs with ``workers <= 1``, so the sequential path and the pooled path
are one code path with one behaviour.
"""

from __future__ import annotations

from typing import Any

from repro.core.config import SchedulerConfig
from repro.exceptions import ReproError
from repro.io import config_from_dict, cset_from_dict, result_to_dict, schedule_to_dict

__all__ = [
    "WorkRequest",
    "WorkResponse",
    "init_worker",
    "schedule_batch_request",
    "schedule_many",
    "schedule_request",
]

#: (ticket_id, serialized communication set, n_leaves)
WorkRequest = tuple[int, dict[str, Any], int]
#: (ticket_id, "ok" | "transient" | "permanent", schedule payload | error)
WorkResponse = tuple[int, str, Any]

_worker_scheduler = None
_worker_config: SchedulerConfig | None = None


def init_worker(config_data: dict[str, Any]) -> None:
    """Pool initializer: build this worker's scheduler once.

    The config round-trips the same ``io``-level dict form the service
    ships across the process boundary, so engine selection (columnar /
    fast / reference and the auto crossover) is honoured verbatim in
    every worker — the pooled path never silently falls back.
    """
    global _worker_scheduler, _worker_config
    _worker_config = config_from_dict(config_data)
    _worker_scheduler = _worker_config.build()


def schedule_request(request: WorkRequest) -> WorkResponse:
    """Schedule one serialized request; never raises across the boundary."""
    ticket_id, cset_data, n_leaves = request
    if _worker_scheduler is None:  # pragma: no cover - misuse guard
        return (ticket_id, "transient", "worker not initialised")
    try:
        cset = cset_from_dict(cset_data)
        result = _worker_scheduler.schedule(cset, n_leaves=n_leaves)
        # plain schedule payload for well-nested inputs, general-schedule
        # payload when config.decompose="auto" lowered an arbitrary set
        return (ticket_id, "ok", result_to_dict(result))
    except ReproError as exc:
        return (ticket_id, "permanent", str(exc))
    except Exception as exc:  # infrastructure trouble: retryable
        return (ticket_id, "transient", f"{type(exc).__name__}: {exc}")


def schedule_batch_request(requests: list[WorkRequest]) -> list[WorkResponse]:
    """Schedule a same-shape group through one columnar kernel invocation.

    Results are bit-identical to :func:`schedule_request` per request
    (the batch kernel's parity contract), so the service may group freely.
    Any failure inside the batched path — one bad set, a kernel guard, an
    infrastructure error — falls back to per-request scheduling so each
    ticket still settles with its own precise status.
    """
    if _worker_config is None:  # pragma: no cover - misuse guard
        return [(tid, "transient", "worker not initialised") for tid, _, _ in requests]
    try:
        from repro.core.columnar import schedule_batch

        csets = [cset_from_dict(data) for _, data, _ in requests]
        schedules = schedule_batch(
            csets, n_leaves=requests[0][2], config=_worker_config
        )
        return [
            (tid, "ok", schedule_to_dict(s))
            for (tid, _, _), s in zip(requests, schedules)
        ]
    except Exception:
        return [schedule_request(r) for r in requests]


def schedule_many(requests: list[WorkRequest]) -> list[WorkResponse]:
    """Schedule a *heterogeneous* batch in one worker call.

    The fabric layer ships one wave's worth of requests to each shard as
    a single pickled call (one IPC round-trip per shard per wave, not per
    request).  Unlike :func:`schedule_batch_request` the requests need
    not share a shape; each settles independently with its own status.
    """
    return [schedule_request(r) for r in requests]
