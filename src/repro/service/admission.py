"""Load-aware admission control: the GREEN/YELLOW/SOFT_RED/RED machine.

The batch service (PR 4) has exactly one admission rule: a bounded queue.
Under continuous arrival that is too blunt — by the time the queue is
full, every tenant is already hurting.  This module adds the graded
congestion controller the ROADMAP asks for, shaped after the wanctl
autorate controller's four-state machine: pressure is sampled every
logical tick, escalation is immediate (load is an emergency), and
de-escalation requires several consecutive calm samples (recovery must be
earned, not flickered into).

The controller is deliberately *passive*: it never touches the queue
itself.  It consumes :class:`LoadSample`\\ s built from the signals the
service already emits (queue depth against capacity, recent
``service.expired`` / ``service.failed`` / ``service.retries`` deltas —
the same counters the observability layer exports) and answers one
question per request: **admit, defer, or shed**, given the request's
priority and the current state.  The policy table lives in
:data:`POLICY`; ``docs/streaming.md`` renders it for operators.

Only LOW-priority work is ever shed.  NORMAL work is deferred at worst
(left queued, not selected, so it runs when pressure clears or expires
against its own deadline), and HIGH work is always admitted — so a burst
degrades the cheapest traffic first and the system stays honest about
what it dropped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.exceptions import SchedulingError
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

__all__ = [
    "AdmissionDecision",
    "AdmissionState",
    "AdmissionThresholds",
    "AdmissionController",
    "LoadSample",
    "POLICY",
    "Priority",
]


class AdmissionState(enum.IntEnum):
    """Congestion states, ordered by severity (comparable by int value)."""

    GREEN = 0
    YELLOW = 1
    SOFT_RED = 2
    RED = 3


class Priority(enum.IntEnum):
    """Request priority classes; higher values survive more pressure."""

    LOW = 0
    NORMAL = 1
    HIGH = 2


class AdmissionDecision(enum.Enum):
    """What the controller tells the service to do with one request."""

    ADMIT = "admit"
    DEFER = "defer"
    SHED = "shed"


#: state → priority → decision.  The shed column is LOW-only by design:
#: the service's contract is that nothing above LOW is ever dropped by
#: admission control (it may still EXPIRE against its own deadline).
POLICY: dict[AdmissionState, dict[Priority, AdmissionDecision]] = {
    AdmissionState.GREEN: {
        Priority.LOW: AdmissionDecision.ADMIT,
        Priority.NORMAL: AdmissionDecision.ADMIT,
        Priority.HIGH: AdmissionDecision.ADMIT,
    },
    AdmissionState.YELLOW: {
        Priority.LOW: AdmissionDecision.DEFER,
        Priority.NORMAL: AdmissionDecision.ADMIT,
        Priority.HIGH: AdmissionDecision.ADMIT,
    },
    AdmissionState.SOFT_RED: {
        Priority.LOW: AdmissionDecision.SHED,
        Priority.NORMAL: AdmissionDecision.ADMIT,
        Priority.HIGH: AdmissionDecision.ADMIT,
    },
    AdmissionState.RED: {
        Priority.LOW: AdmissionDecision.SHED,
        Priority.NORMAL: AdmissionDecision.DEFER,
        Priority.HIGH: AdmissionDecision.ADMIT,
    },
}


@dataclass(frozen=True, slots=True)
class LoadSample:
    """One tick's load signals, in the units the service already tracks.

    ``queue_fraction`` is pending work against the admission bound
    (the ``service.queue.depth`` gauge over ``max_queue``);
    ``expired`` / ``failed`` / ``retries`` are per-tick *deltas* of the
    corresponding ``service.*`` counters.  ``capacity`` normalises the
    deltas — the service passes its per-tick execution budget.
    """

    queue_fraction: float
    expired: int = 0
    failed: int = 0
    retries: int = 0
    capacity: int = 16

    def pressure(self) -> float:
        """Scalar pressure in [0, 1]: queue backlog plus failure heat.

        Backlog is the dominant term; deadline misses and retried/failed
        executions add weight because they predict *future* backlog (a
        retrying request occupies budget twice).
        """
        cap = max(1, self.capacity)
        heat = (self.expired + self.failed + self.retries) / cap
        return max(0.0, min(1.0, self.queue_fraction + 0.5 * heat))


@dataclass(frozen=True, slots=True)
class AdmissionThresholds:
    """Entry thresholds per state plus the hysteresis margin and cooldown.

    A state is *entered* when pressure reaches its ``*_enter`` bound, and
    *left* (one step down) only after ``cooldown`` consecutive samples
    with pressure below ``enter - hysteresis`` of the current state —
    the wanctl discipline that keeps the controller from oscillating on
    a noisy boundary.
    """

    yellow_enter: float = 0.50
    soft_red_enter: float = 0.75
    red_enter: float = 0.90
    hysteresis: float = 0.10
    cooldown: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.yellow_enter < self.soft_red_enter < self.red_enter <= 1.0:
            raise SchedulingError(
                "admission thresholds must satisfy "
                "0 < yellow < soft_red < red <= 1, got "
                f"{self.yellow_enter}/{self.soft_red_enter}/{self.red_enter}"
            )
        if self.hysteresis < 0:
            raise SchedulingError(
                f"hysteresis must be >= 0, got {self.hysteresis}"
            )
        if self.cooldown < 1:
            raise SchedulingError(f"cooldown must be >= 1, got {self.cooldown}")

    def target_state(self, pressure: float) -> AdmissionState:
        """The state this pressure level maps to, ignoring hysteresis."""
        if pressure >= self.red_enter:
            return AdmissionState.RED
        if pressure >= self.soft_red_enter:
            return AdmissionState.SOFT_RED
        if pressure >= self.yellow_enter:
            return AdmissionState.YELLOW
        return AdmissionState.GREEN

    def exit_bound(self, state: AdmissionState) -> float:
        """Pressure below which ``state`` may step down (after cooldown)."""
        enter = {
            AdmissionState.YELLOW: self.yellow_enter,
            AdmissionState.SOFT_RED: self.soft_red_enter,
            AdmissionState.RED: self.red_enter,
        }[state]
        return max(0.0, enter - self.hysteresis)


@dataclass(slots=True)
class _Transition:
    tick: int
    source: AdmissionState
    target: AdmissionState
    pressure: float


class AdmissionController:
    """The four-state congestion machine the streaming service consults.

    Feed it one :class:`LoadSample` per logical tick via :meth:`observe`;
    ask it what to do with a request via :meth:`decide`.  Escalation
    jumps straight to the state the pressure maps to; de-escalation steps
    down one state at a time, each step gated on ``cooldown`` consecutive
    calm samples — so a spike is answered immediately and recovery is
    deliberate.

    Emits ``admission.state`` / ``admission.pressure`` gauges, an
    ``admission.transitions{from=,to=}`` counter family and
    ``admission.admitted`` / ``admission.deferred`` / ``admission.shed``
    (labelled by priority) into the registry, under ``run``.
    """

    def __init__(
        self,
        thresholds: AdmissionThresholds | None = None,
        *,
        metrics: MetricsRegistry | None = None,
        run: str = "stream",
    ) -> None:
        self.thresholds = (
            thresholds if thresholds is not None else AdmissionThresholds()
        )
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.run = run
        self.state = AdmissionState.GREEN
        self.pressure = 0.0
        self._calm_samples = 0
        self._tick = 0
        self.transitions: list[_Transition] = []
        #: the most recent LoadSample fed to :meth:`observe` (None before
        #: the first sample) — the SLO/burn-rate layer reads the raw
        #: signals from here instead of re-deriving them.
        self.last_sample: LoadSample | None = None

    # -- sampling ------------------------------------------------------------

    @property
    def tick(self) -> int:
        """The controller's clock: the tick of the last accepted sample."""
        return self._tick

    def observe(self, sample: LoadSample, *, tick: int | None = None) -> AdmissionState:
        """Ingest one tick's load sample; returns the (possibly new) state.

        ``tick`` is the *service's* logical clock for this sample.  When
        given, it must be strictly greater than the last accepted tick —
        an out-of-band second sample for the same tick (a drill harness
        double-sampling, a miswired ``on_tick`` hook) would otherwise
        silently advance the controller's private counter past the
        service clock, skewing every recorded transition and cooldown
        window.  Omitted, the controller free-runs as before
        (``_tick + 1``), for callers without a clock of their own.
        """
        if tick is not None:
            if tick <= self._tick:
                raise SchedulingError(
                    f"admission clock must advance monotonically: got tick "
                    f"{tick} after {self._tick} (double observe() for one "
                    f"service tick?)"
                )
            self._tick = tick
        else:
            self._tick += 1
        self.last_sample = sample
        self.pressure = sample.pressure()
        target = self.thresholds.target_state(self.pressure)

        if target > self.state:
            # escalate immediately, as far as the pressure says.
            self._move(target)
        elif self.state is not AdmissionState.GREEN:
            if self.pressure < self.thresholds.exit_bound(self.state):
                self._calm_samples += 1
                if self._calm_samples >= self.thresholds.cooldown:
                    # recovery is stepwise: one state per earned cooldown.
                    self._move(AdmissionState(self.state - 1))
            else:
                self._calm_samples = 0

        self.metrics.set("admission.state", int(self.state), run=self.run)
        self.metrics.set("admission.pressure", self.pressure, run=self.run)
        return self.state

    def _move(self, target: AdmissionState) -> None:
        self.transitions.append(
            _Transition(self._tick, self.state, target, self.pressure)
        )
        self.metrics.inc(
            "admission.transitions",
            run=self.run,
            source=self.state.name,
            target=target.name,
        )
        self.state = target
        self._calm_samples = 0

    # -- decisions -----------------------------------------------------------

    def decide(self, priority: Priority) -> AdmissionDecision:
        """The policy-table decision for one request, in the current state."""
        decision = POLICY[self.state][priority]
        name = {
            AdmissionDecision.ADMIT: "admission.admitted",
            AdmissionDecision.DEFER: "admission.deferred",
            AdmissionDecision.SHED: "admission.shed",
        }[decision]
        self.metrics.inc(name, run=self.run, priority=priority.name.lower())
        return decision

    def defers(self, priority: Priority) -> bool:
        """Whether the *current* state holds this priority back from the
        execution budget (consulted at dequeue time, without counting it
        as a fresh admission decision)."""
        return POLICY[self.state][priority] is not AdmissionDecision.ADMIT

    # -- introspection -------------------------------------------------------

    def state_trajectory(self) -> list[tuple[int, str]]:
        """``(tick, state name)`` for every transition, oldest first."""
        return [(t.tick, t.target.name) for t in self.transitions]

    def reached(self, state: AdmissionState) -> bool:
        """Whether the machine has ever entered ``state`` (or started in it)."""
        if self.state is state:
            return True
        return any(t.target is state for t in self.transitions)
