"""Mixed workload batches for benchmarks, smoke gates and tests.

One deterministic helper shared by ``scripts/run_service_bench.py``, the
``cst-padr batch`` demo mode and the service tests, so "a batch of mixed
workloads" means the same thing everywhere.  The mix cycles through the
repo's canonical well-nested families — nested chains (depth stress),
disjoint pairs (width-1), staircases (many shallow chains), segmentable
buses and uniformly random Dyck sets — all right-oriented, all sized to
the requested tree.
"""

from __future__ import annotations

import numpy as np

from repro.comms.communication import CommunicationSet
from repro.comms.generators import (
    disjoint_pairs,
    nested_chain,
    random_arbitrary,
    random_well_nested,
    segmentable_bus,
    staircase,
)
from repro.exceptions import SchedulingError

__all__ = ["arbitrary_workloads", "mixed_workloads"]


def mixed_workloads(
    n_leaves: int, count: int, *, seed: int = 0
) -> list[CommunicationSet]:
    """``count`` deterministic well-nested sets on an ``n_leaves`` tree.

    With ``count > 5`` the batch necessarily repeats shapes *and* exact
    placements (the deterministic families depend only on ``n_leaves``),
    which is what gives the service cache something honest to hit.
    """
    if n_leaves < 8:
        raise SchedulingError(f"n_leaves must be >= 8, got {n_leaves}")
    if count < 1:
        raise SchedulingError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(seed)
    depth = n_leaves // 4
    batch: list[CommunicationSet] = []
    for i in range(count):
        family = i % 5
        if family == 0:
            batch.append(nested_chain(depth, n_leaves))
        elif family == 1:
            batch.append(disjoint_pairs(n_leaves // 2))
        elif family == 2:
            batch.append(staircase(max(2, n_leaves // 8), 2))
        elif family == 3:
            batch.append(
                segmentable_bus(list(range(0, n_leaves + 1, n_leaves // 4)))
            )
        else:
            # the only randomised family — a fresh draw each cycle.
            batch.append(random_well_nested(n_leaves // 4, n_leaves, rng))
    return batch


def arbitrary_workloads(
    n_leaves: int, count: int, *, seed: int = 0
) -> list[CommunicationSet]:
    """``count`` deterministic *arbitrary* pairwise sets on ``n_leaves``.

    Uniformly random endpoint pairings — crossings and both orientations
    included — the input class the ``decompose="auto"`` door admits.  The
    same seed always produces the same batch, so service parity and cache
    tests can replay it.
    """
    if n_leaves < 8:
        raise SchedulingError(f"n_leaves must be >= 8, got {n_leaves}")
    if count < 1:
        raise SchedulingError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(seed)
    return [random_arbitrary(n_leaves // 4, n_leaves, rng) for _ in range(count)]
