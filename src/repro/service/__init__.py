"""The scheduling service layer: batch scheduling as a serving problem.

The paper's algorithm schedules one well-nested set; the ROADMAP's
north-star serves heavy traffic of many such sets.  This package closes
that gap with three orthogonal pieces:

* :mod:`repro.service.cache` — a canonical-signature LRU cache, so a
  workload that repeats (the common case for phase-structured algorithms
  on the SRGA) pays for scheduling once;
* :mod:`repro.service.worker` — the multiprocessing side: a worker-pool
  initializer that rebuilds a :class:`~repro.core.config.SchedulerConfig`
  in each worker, and a request function whose inputs and outputs are
  plain JSON-able payloads (via :mod:`repro.io`);
* :mod:`repro.service.service` — :class:`SchedulerService`, the
  submit/drain façade with admission control, per-request deadlines and
  deterministic retry backoff.

On top of the batch layer, the *streaming* layer serves continuous
arrival:

* :mod:`repro.service.admission` — the GREEN/YELLOW/SOFT_RED/RED
  load-aware admission machine (immediate escalation, earned stepwise
  recovery) plus the priority policy table;
* :mod:`repro.service.tenants` — per-tenant token-bucket quotas and
  deficit-round-robin weighted-fair dequeue;
* :mod:`repro.service.streaming` — :class:`StreamingSchedulerService`,
  the long-running online service tying both to the same cache, dedup,
  columnar batching and parity machinery the batch service uses.

Everything a service path returns is bit-identical (at the serialized
level of :func:`repro.io.schedule_to_dict`) to a direct
``PADRScheduler().schedule(cset)`` call — asserted by the parity machinery,
not assumed.
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionState,
    AdmissionThresholds,
    LoadSample,
    Priority,
)
from repro.service.cache import CanonicalKey, ScheduleCache, canonical_signature
from repro.service.service import (
    BatchReport,
    RequestResult,
    RequestStatus,
    SchedulerService,
    ServiceParityError,
    Ticket,
)
from repro.service.streaming import (
    StreamReport,
    StreamRequest,
    StreamResult,
    StreamStatus,
    StreamTicket,
    StreamingSchedulerService,
)
from repro.service.tenants import TenantQuota, TenantRegistry, TenantState
from repro.service.workloads import arbitrary_workloads, mixed_workloads

__all__ = [
    "arbitrary_workloads",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionState",
    "AdmissionThresholds",
    "BatchReport",
    "CanonicalKey",
    "LoadSample",
    "Priority",
    "RequestResult",
    "RequestStatus",
    "ScheduleCache",
    "SchedulerService",
    "ServiceParityError",
    "StreamReport",
    "StreamRequest",
    "StreamResult",
    "StreamStatus",
    "StreamTicket",
    "StreamingSchedulerService",
    "TenantQuota",
    "TenantRegistry",
    "TenantState",
    "Ticket",
    "canonical_signature",
    "mixed_workloads",
]
