"""The scheduling service layer: batch scheduling as a serving problem.

The paper's algorithm schedules one well-nested set; the ROADMAP's
north-star serves heavy traffic of many such sets.  This package closes
that gap with three orthogonal pieces:

* :mod:`repro.service.cache` — a canonical-signature LRU cache, so a
  workload that repeats (the common case for phase-structured algorithms
  on the SRGA) pays for scheduling once;
* :mod:`repro.service.worker` — the multiprocessing side: a worker-pool
  initializer that rebuilds a :class:`~repro.core.config.SchedulerConfig`
  in each worker, and a request function whose inputs and outputs are
  plain JSON-able payloads (via :mod:`repro.io`);
* :mod:`repro.service.service` — :class:`SchedulerService`, the
  submit/drain façade with admission control, per-request deadlines and
  deterministic retry backoff.

Everything a service path returns is bit-identical (at the serialized
level of :func:`repro.io.schedule_to_dict`) to a direct
``PADRScheduler().schedule(cset)`` call — asserted by the parity machinery,
not assumed.
"""

from repro.service.cache import CanonicalKey, ScheduleCache, canonical_signature
from repro.service.service import (
    BatchReport,
    RequestResult,
    RequestStatus,
    SchedulerService,
    ServiceParityError,
    Ticket,
)
from repro.service.workloads import mixed_workloads

__all__ = [
    "BatchReport",
    "CanonicalKey",
    "RequestResult",
    "RequestStatus",
    "ScheduleCache",
    "SchedulerService",
    "ServiceParityError",
    "Ticket",
    "canonical_signature",
    "mixed_workloads",
]
