""":class:`StreamingSchedulerService` — the batch service grown into a
long-running online scheduler with adaptive admission control.

The paper schedules one *fixed* well-nested set in w rounds; the batch
``SchedulerService`` (PR 4) settles one submitted batch and stops.  This
module serves **continuous arrival**: requests carry a ``release_time``,
a latency ``deadline``, a ``priority`` and a ``tenant`` id, and the
service runs tick after tick, draining what is eligible, deferring what
pressure says must wait, and shedding only what the policy table allows
it to shed (LOW priority, nothing else — see
:mod:`repro.service.admission`).

The moving parts, all on one deterministic logical tick clock:

* **admission** — per-tenant token buckets throttle at the door, the
  backlog bound rejects outright overflow, and the four-state
  GREEN/YELLOW/SOFT_RED/RED controller (fed from the service's own
  queue/expiry/failure signals every tick) decides admit/defer/shed per
  priority class;
* **fairness** — ready work queues per tenant; each tick's execution
  budget is dealt by deficit round-robin weighted by tenant quota, so a
  hog cannot starve anyone (:mod:`repro.service.tenants`);
* **the drain path** — reuses PR 4's relabelling-invariant signature
  cache and intra-tick dedup, and PR 5's same-shape columnar batching:
  compatible misses accumulate into one ``schedule_batch`` invocation,
  held back at most ``batch_window`` ticks and never past a request's
  deadline slack (the latency budget);
* **parity** — every delivered payload is, optionally live-asserted,
  bit-identical at the serialized level to a direct ``PADRScheduler``
  run; the streaming CI gate runs with it on.

Every submitted request settles in **exactly one** terminal status —
DONE, SHED, REJECTED, EXPIRED or FAILED — and the report accounts for
all of them plus p50/p99 latency in ticks (property-tested: nothing is
ever silently dropped).

The service is synchronous at its core (``submit`` / ``step`` /
``run``), which keeps every test deterministic; :meth:`aserve` wraps the
same loop as an ``asyncio`` coroutine that yields control every tick, so
it embeds in an event loop alongside real arrival sources.
"""

from __future__ import annotations

import asyncio
import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.comms.communication import CommunicationSet
from repro.core.config import SchedulerConfig
from repro.core.schedule import Schedule
from repro.exceptions import ReproError, SchedulingError
from repro.io import cset_to_dict, result_from_dict, result_to_dict
from repro.obs.instrument import Instrumentation
from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionState,
    AdmissionThresholds,
    LoadSample,
    Priority,
)
from repro.service.cache import CanonicalKey, ScheduleCache, canonical_signature
from repro.service.service import ServiceParityError
from repro.service.tenants import TenantQuota, TenantRegistry
from repro.util.stats import percentile
from repro.service.worker import (
    WorkRequest,
    init_worker,
    schedule_batch_request,
    schedule_request,
)

__all__ = [
    "StreamReport",
    "StreamRequest",
    "StreamResult",
    "StreamStatus",
    "StreamTicket",
    "StreamingSchedulerService",
]


class StreamStatus(enum.Enum):
    """Terminal fates; every submitted request reaches exactly one."""

    DONE = "done"
    SHED = "shed"          # admission dropped it (LOW priority only)
    REJECTED = "rejected"  # invalid, over backlog bound, or over quota
    EXPIRED = "expired"    # out-waited its deadline in the queue
    FAILED = "failed"      # permanent error or retry budget exhausted


@dataclass(frozen=True, slots=True)
class StreamRequest:
    """One online scheduling request.

    ``release_time`` is the logical tick the request becomes available
    (the arrival process); ``deadline`` is the latency SLO in ticks
    *after release* — a request still queued ``deadline`` ticks past its
    release expires.  ``priority`` feeds the admission policy table and
    ``tenant`` the quota/fairness machinery.
    """

    cset: CommunicationSet
    n_leaves: int | None = None
    release_time: int = 0
    deadline: int = 64
    priority: Priority = Priority.NORMAL
    tenant: str = "default"


@dataclass(frozen=True, slots=True)
class StreamTicket:
    """The submit receipt: door decisions are data, not exceptions."""

    id: int
    accepted: bool
    decision: AdmissionDecision | None = None
    reason: str | None = None


@dataclass(frozen=True, slots=True)
class StreamResult:
    """The settled fate of one streaming request."""

    request_id: int
    status: StreamStatus
    tenant: str
    priority: Priority
    from_cache: bool = False
    attempts: int = 0
    latency_ticks: int = 0
    payload: dict[str, Any] | None = None
    error: str | None = None
    signature: str | None = None

    @property
    def result(self) -> Any | None:
        """The settled result (``Schedule``, or ``GeneralSchedule`` when the
        request was lowered through well-nested decomposition)."""
        return result_from_dict(self.payload) if self.payload else None

    @property
    def schedule(self) -> Schedule | None:
        """The executable round schedule (a general result's combined plan)."""
        result = self.result
        return getattr(result, "combined", result)

    @property
    def batches(self) -> int:
        """Well-nested sub-batches this request decomposed into (1 = direct)."""
        if not self.payload:
            return 0
        decompose = self.payload.get("decompose")
        return int(decompose["n_batches"]) if decompose else 1


@dataclass(frozen=True, slots=True)
class StreamReport:
    """One serving window's complete accounting."""

    results: dict[int, StreamResult]
    ticks: int
    trajectory: tuple[tuple[int, str], ...]
    final_state: str

    def _count(self, status: StreamStatus) -> int:
        return sum(1 for r in self.results.values() if r.status is status)

    @property
    def n_done(self) -> int:
        return self._count(StreamStatus.DONE)

    @property
    def n_shed(self) -> int:
        return self._count(StreamStatus.SHED)

    @property
    def n_rejected(self) -> int:
        return self._count(StreamStatus.REJECTED)

    @property
    def n_expired(self) -> int:
        return self._count(StreamStatus.EXPIRED)

    @property
    def n_failed(self) -> int:
        return self._count(StreamStatus.FAILED)

    @property
    def n_cached(self) -> int:
        return sum(1 for r in self.results.values() if r.from_cache)

    def latencies(self) -> list[int]:
        """DONE-request latencies (ticks from release to settlement)."""
        return sorted(
            r.latency_ticks
            for r in self.results.values()
            if r.status is StreamStatus.DONE
        )

    @property
    def p50_ticks(self) -> float:
        return percentile(self.latencies(), 0.50)

    @property
    def p99_ticks(self) -> float:
        return percentile(self.latencies(), 0.99)

    def by_priority(self, status: StreamStatus) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.results.values():
            if r.status is status:
                out[r.priority.name] = out.get(r.priority.name, 0) + 1
        return out

    def schedules(self) -> dict[int, Schedule]:
        return {
            rid: r.schedule  # type: ignore[misc]
            for rid, r in self.results.items()
            if r.status is StreamStatus.DONE and r.payload is not None
        }

    def summary(self) -> str:
        return (
            f"stream: {self.n_done} done ({self.n_cached} cached), "
            f"{self.n_shed} shed, {self.n_rejected} rejected, "
            f"{self.n_expired} expired, {self.n_failed} failed over "
            f"{self.ticks} tick(s); p50={self.p50_ticks:.0f} "
            f"p99={self.p99_ticks:.0f} ticks, final state {self.final_state}"
        )


@dataclass(slots=True)
class _Live:
    """A request alive inside the service (queued, deferred or retrying)."""

    request_id: int
    request: StreamRequest
    key: CanonicalKey
    payload: dict[str, Any]
    release_tick: int
    deadline_tick: int
    attempts: int = 0
    eligible_tick: int = 0
    last_error: str | None = None

    @property
    def priority(self) -> Priority:
        return self.request.priority

    @property
    def tenant(self) -> str:
        return self.request.tenant


class StreamingSchedulerService:
    """Online scheduling over one CST fabric, many tenants, load-aware.

    Parameters
    ----------
    config:
        the :class:`~repro.core.config.SchedulerConfig` all work runs
        under (one config per service instance, as in the batch layer).
    thresholds:
        the admission machine's entry/exit bounds
        (:class:`~repro.service.admission.AdmissionThresholds`).
    default_quota / quotas:
        the token-bucket/weight contract unknown tenants get, and
        explicit per-tenant overrides (``{"tenant": TenantQuota(...)}``).
    max_queue:
        total backlog bound across all tenants; beyond it submits are
        REJECTED regardless of priority (the last-resort door).
    max_inflight:
        per-tick execution budget (requests settled per tick at most).
    batch_window:
        how many ticks a columnar-eligible request may be held back
        waiting for same-shape peers to accumulate into one
        ``schedule_batch`` group.  ``0`` executes immediately.
    max_retries / parity_check / obs:
        as in the batch :class:`~repro.service.service.SchedulerService`.
    on_tick:
        optional observer called at the end of every :meth:`step` as
        ``on_tick(service, settled, now)`` — the attachment point for
        the SLO burn-rate engine (:mod:`repro.slo`), which samples the
        tick's settlements, backlog and admission state without the
        service importing the operations layer.
    chaos:
        optional in-service chaos drill controller (duck-typed; see
        :class:`repro.slo.drill.ChaosDrillController`).  When armed, it
        may intercept one solo leader per tick, execute it against a
        deliberately faulted fabric to measure detection, and have the
        victim requeued for a healthy re-execution — the drill delays
        the victim by a tick or two but never changes its payload, so
        parity and the no-silent-drop accounting hold.
    fabric:
        optional :class:`~repro.fabric.FabricController`.  When given,
        step 4 of the drain executes on the fabric's forest of CSTs
        instead of inline: each request is routed to the shard its
        *tenant* hashes to, so one tenant's stream stays on one tree
        (cache locality, per-tenant isolation), and requests wider than
        the fabric's ``leaf_width`` are rejected at the door.  The
        service does not own the fabric — close it separately.
    """

    def __init__(
        self,
        *,
        config: SchedulerConfig | None = None,
        thresholds: AdmissionThresholds | None = None,
        default_quota: TenantQuota | None = None,
        quotas: dict[str, TenantQuota] | None = None,
        cache_size: int = 256,
        max_queue: int = 256,
        max_inflight: int = 16,
        batch_window: int = 0,
        max_retries: int = 3,
        parity_check: bool = False,
        obs: "Instrumentation | None" = None,
        on_tick: "Callable[[StreamingSchedulerService, list[StreamResult], int], None] | None" = None,
        chaos: Any = None,
        fabric: Any = None,
    ) -> None:
        if max_queue < 1:
            raise SchedulingError(f"max_queue must be >= 1, got {max_queue}")
        if max_inflight < 1:
            raise SchedulingError(f"max_inflight must be >= 1, got {max_inflight}")
        if batch_window < 0:
            raise SchedulingError(f"batch_window must be >= 0, got {batch_window}")
        if max_retries < 0:
            raise SchedulingError(f"max_retries must be >= 0, got {max_retries}")
        self.config = config if config is not None else SchedulerConfig()
        self.max_queue = max_queue
        self.max_inflight = max_inflight
        self.batch_window = batch_window
        self.max_retries = max_retries
        self.parity_check = parity_check
        self.obs = obs
        self.on_tick = on_tick
        self.chaos = chaos
        self.fabric = fabric
        metrics = obs.metrics if obs is not None else None
        run = obs.run if obs is not None else "stream"
        self.cache = ScheduleCache(cache_size, metrics=metrics, run=run)
        self.admission = AdmissionController(
            thresholds, metrics=metrics, run=run
        )
        self.tenants = TenantRegistry(
            default_quota=default_quota, metrics=metrics, run=run
        )
        for name, quota in (quotas or {}).items():
            self.tenants.register(name, quota)
        self.results: dict[int, StreamResult] = {}
        self._next_id = 0
        self._tick = 0
        self._inline_ready = False
        self._direct = None  # lazy parity scheduler
        # per-tick deltas feeding the admission controller's LoadSample
        self._expired_delta = 0
        self._failed_delta = 0
        self._retries_delta = 0
        # per-tick door deltas feeding the SLO engine's TickSample
        self._submitted_delta = 0
        self._shed_delta = 0
        #: the most recent per-tick LoadSample (None before the first
        #: step) — the SLO layer reads it instead of re-deriving load.
        self.last_load: LoadSample | None = None

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> int:
        return self._tick

    @property
    def backlog(self) -> int:
        return self.tenants.backlog()

    @property
    def state(self) -> AdmissionState:
        return self.admission.state

    # -- submission ----------------------------------------------------------

    def submit(self, request: StreamRequest) -> StreamTicket:
        """Admit, defer, shed or reject one request at the current tick.

        The full door sequence: input validation → backlog bound →
        tenant token bucket → admission state machine.  Whatever the
        outcome, the request is accounted for: non-accepted submits get
        a terminal result immediately.
        """
        rid = self._next_id
        self._next_id += 1
        self._inc("stream.submitted")
        self._submitted_delta += 1
        req = request

        try:
            key = canonical_signature(
                req.cset, req.n_leaves, config=self.config
            )
        except ReproError as exc:
            return self._reject(rid, req, str(exc))
        if self.fabric is not None and key.n_leaves > self.fabric.leaf_width:
            return self._reject(
                rid,
                req,
                f"request needs {key.n_leaves} leaves but fabric trees "
                f"have {self.fabric.leaf_width}",
            )
        if req.deadline < 1:
            return self._reject(rid, req, f"deadline must be >= 1, got {req.deadline}")

        if self.backlog >= self.max_queue:
            return self._reject(rid, req, f"backlog full ({self.max_queue})")

        if not self.tenants.try_consume(req.tenant, self._tick):
            return self._reject(rid, req, f"tenant {req.tenant!r} over quota")

        decision = self.admission.decide(req.priority)
        if decision is AdmissionDecision.SHED:
            self._inc("stream.shed")
            self._shed_delta += 1
            self.results[rid] = StreamResult(
                request_id=rid,
                status=StreamStatus.SHED,
                tenant=req.tenant,
                priority=req.priority,
                error=f"shed in {self.admission.state.name}",
                signature=key.dyck,
            )
            return StreamTicket(
                id=rid,
                accepted=False,
                decision=decision,
                reason=f"shed in {self.admission.state.name}",
            )

        release = max(self._tick, req.release_time)
        self.tenants.enqueue(
            req.tenant,
            _Live(
                request_id=rid,
                request=req,
                key=key,
                payload=cset_to_dict(req.cset),
                release_tick=release,
                deadline_tick=release + req.deadline,
                eligible_tick=release,
            ),
        )
        self._gauge("stream.queue.depth", self.backlog)
        return StreamTicket(id=rid, accepted=True, decision=decision)

    def _reject(self, rid: int, req: StreamRequest, reason: str) -> StreamTicket:
        self._inc("stream.rejected")
        self.results[rid] = StreamResult(
            request_id=rid,
            status=StreamStatus.REJECTED,
            tenant=req.tenant,
            priority=req.priority,
            error=reason,
        )
        return StreamTicket(id=rid, accepted=False, reason=reason)

    # -- the tick loop -------------------------------------------------------

    def step(self) -> list[StreamResult]:
        """Advance one logical tick: expire, select fairly, batch, execute.

        Returns the results settled this tick (also recorded in
        ``self.results``).  The admission controller is sampled at the
        end of every tick from the service's own signals, so state
        transitions are driven by measured load, never by guesses.
        """
        self._tick += 1
        now = self._tick
        settled: list[StreamResult] = []

        settled.extend(self._expire(now))

        budget = self.max_inflight
        selected = self.tenants.fair_select(
            budget,
            skip=lambda live: (
                live.eligible_tick > now or self.admission.defers(live.priority)
            ),
        )

        if selected:
            settled.extend(self._drain(selected, now))

        self._sample_admission()
        if self.chaos is not None:
            self.chaos.on_settled(settled, now)
        if self.on_tick is not None:
            self.on_tick(self, settled, now)
        self._submitted_delta = 0
        self._shed_delta = 0
        if self.fabric is not None:
            self.fabric.maybe_rebalance()
        self._gauge("stream.queue.depth", self.backlog)
        return settled

    def run(
        self,
        arrivals: Iterable[StreamRequest] = (),
        *,
        max_ticks: int = 10_000,
        drain: bool = True,
    ) -> StreamReport:
        """Drive the arrival process to completion and return the report.

        ``arrivals`` is any iterable of :class:`StreamRequest`, submitted
        when the clock reaches each request's ``release_time`` (requests
        must be ordered by it).  With ``drain=True`` the loop keeps
        ticking until the backlog empties *and* the admission machine has
        walked back to GREEN — the operational definition of "recovered"
        (or until ``max_ticks`` passes — the runaway bound raises, it
        never silently truncates accounting).
        """
        for _ in self._serve(arrivals, max_ticks=max_ticks, drain=drain):
            pass
        return self.report()

    async def aserve(
        self,
        arrivals: Iterable[StreamRequest] = (),
        *,
        max_ticks: int = 10_000,
        drain: bool = True,
    ) -> StreamReport:
        """The same serving loop as :meth:`run`, yielding to the event loop
        every tick — the embedding point for real asyncio arrival sources."""
        for _ in self._serve(arrivals, max_ticks=max_ticks, drain=drain):
            await asyncio.sleep(0)
        return self.report()

    def _serve(
        self,
        arrivals: Iterable[StreamRequest],
        *,
        max_ticks: int,
        drain: bool,
    ):
        pending = sorted(arrivals, key=lambda r: r.release_time)
        i = 0
        ticks = 0
        while True:
            while i < len(pending) and pending[i].release_time <= self._tick:
                self.submit(pending[i])
                i += 1
            exhausted = i >= len(pending)
            settled = self.backlog == 0 and self.state is AdmissionState.GREEN
            if exhausted and (not drain or settled):
                break
            self.step()
            ticks += 1
            if ticks > max_ticks:
                raise SchedulingError(
                    f"stream did not settle within {max_ticks} ticks "
                    f"({self.backlog} still queued)"
                )
            yield ticks

    def report(self) -> StreamReport:
        return StreamReport(
            results=dict(self.results),
            ticks=self._tick,
            trajectory=tuple(self.admission.state_trajectory()),
            final_state=self.admission.state.name,
        )

    # -- internals: expiry ---------------------------------------------------

    def _expire(self, now: int) -> list[StreamResult]:
        # Boundary contract (locked by tests): a request is alive AT its
        # deadline_tick — served exactly then it settles DONE with
        # latency == deadline; it expires strictly after, at
        # deadline_tick + 1.  The dequeue slack (deadline_tick - now) and
        # the batch-window holdback use the same convention.
        expired: list[StreamResult] = []
        for tenant in self.tenants:
            keep = []
            for live in tenant.queue:
                if live.deadline_tick < now:
                    self._inc("stream.expired")
                    self._expired_delta += 1
                    result = StreamResult(
                        request_id=live.request_id,
                        status=StreamStatus.EXPIRED,
                        tenant=live.tenant,
                        priority=live.priority,
                        attempts=live.attempts,
                        latency_ticks=now - live.release_tick,
                        error=live.last_error or "deadline exceeded",
                        signature=live.key.dyck,
                    )
                    self.results[live.request_id] = result
                    expired.append(result)
                else:
                    keep.append(live)
            if len(keep) != len(tenant.queue):
                tenant.queue.clear()
                tenant.queue.extend(keep)
        return expired

    # -- internals: the drain path -------------------------------------------

    def _drain(self, selected: list[_Live], now: int) -> list[StreamResult]:
        settled: list[StreamResult] = []

        # 1. cache hits settle without touching the execution budget.
        misses: list[_Live] = []
        for live in selected:
            hit = self.cache.get(live.key)
            if hit is not None:
                settled.append(self._settle(live, hit, now, from_cache=True))
            else:
                misses.append(live)

        # 2. intra-tick dedup: one leader per placed key.
        leaders: dict[tuple[int, str, str], _Live] = {}
        followers: dict[tuple[int, str, str], list[_Live]] = {}
        for live in misses:
            ck = live.key.cache_key
            if ck in leaders:
                followers.setdefault(ck, []).append(live)
            else:
                leaders[ck] = live

        # 3. same-shape grouping for the columnar kernel, with the
        #    latency-budget holdback: a lone columnar-eligible request may
        #    wait up to batch_window ticks for shape peers, but never into
        #    its deadline slack.
        solos: list[_Live] = []
        groups: dict[tuple[int, str, str], list[_Live]] = {}
        for live in leaders.values():
            if self.config.selects_columnar(live.key.n_leaves) and not live.key.general:
                shape = (live.key.n_leaves, live.key.dyck, live.key.config)
                groups.setdefault(shape, []).append(live)
            else:
                solos.append(live)

        ready_groups: list[list[_Live]] = []
        for members in groups.values():
            if len(members) > 1:
                ready_groups.append(members)
                continue
            live = members[0]
            waited = now - live.release_tick
            # same boundary convention as _expire: the request is alive
            # at deadline_tick, so slack counts the ticks it can still
            # wait and remain servable.
            slack = live.deadline_tick - now
            if (
                self.batch_window > 0
                and waited < self.batch_window
                and slack > self.batch_window
            ):
                # hold for peers; followers of a held leader hold with it.
                held = [live, *followers.pop(live.key.cache_key, [])]
                self.tenants.requeue_front(live.tenant, [live])
                for f in held[1:]:
                    self.tenants.requeue_front(f.tenant, [f])
                self._inc("stream.batch_held")
            else:
                solos.append(live)

        if ready_groups:
            self._inc("stream.shape_batches", len(ready_groups))
            self._inc(
                "stream.shape_batched", sum(len(g) for g in ready_groups)
            )

        # 3b. an armed chaos drill may claim one solo leader: it is
        #     executed against a deliberately faulted fabric (measuring
        #     detection) and then requeued for a healthy re-execution, so
        #     its eventual payload — and parity — are untouched.
        if self.chaos is not None and solos:
            for victim in self.chaos.maybe_drill(solos, now):
                solos.remove(victim)
                victim.eligible_tick = now + 1  # healthy reroute next tick
                self.tenants.requeue_front(victim.tenant, [victim])
                for f in followers.pop(victim.key.cache_key, []):
                    self.tenants.requeue_front(f.tenant, [f])
                self._inc("stream.chaos_drills")

        # 4. execute — on the fabric's forest when one is attached
        #    (routed per tenant so a tenant's stream stays on one tree),
        #    inline otherwise (one process — the streaming service is the
        #    asyncio story; pooled fan-out stays the batch service's job).
        responses: list[tuple[int, str, Any]] = []
        by_id = {live.request_id: live for live in leaders.values()}
        if self.fabric is not None:
            to_run = [*solos, *(m for g in ready_groups for m in g)]
            responses.extend(
                self.fabric.execute(
                    [self._work_request(live) for live in to_run],
                    [self.fabric.route_tenant(live.tenant) for live in to_run],
                )
            )
        else:
            if not self._inline_ready:
                init_worker(self.config.to_dict())
                self._inline_ready = True
            if solos:
                responses.extend(
                    schedule_request(self._work_request(live)) for live in solos
                )
            for members in ready_groups:
                responses.extend(
                    schedule_batch_request(
                        [self._work_request(live) for live in members]
                    )
                )

        # 5. settlement mirrors the batch service's status discipline.
        for rid, status, payload in responses:
            live = by_id[rid]
            live.attempts += 1
            tail = followers.pop(live.key.cache_key, [])
            if status == "ok":
                self.cache.put(live.key, payload)
                settled.append(self._settle(live, payload, now, from_cache=False))
                for f in tail:
                    hit = self.cache.get(f.key)
                    assert hit is not None
                    settled.append(self._settle(f, hit, now, from_cache=True))
            elif status == "permanent":
                for q in (live, *tail):
                    settled.append(self._fail(q, str(payload), now))
            elif live.attempts > self.max_retries:
                settled.append(self._fail(live, str(payload), now))
                for f in tail:  # followers retry on their own budget
                    self.tenants.requeue_front(f.tenant, [f])
            else:
                self._inc("stream.retries")
                self._retries_delta += 1
                live.last_error = str(payload)
                live.eligible_tick = now + (1 << (live.attempts - 1))
                self.tenants.requeue_front(live.tenant, [live])
                for f in tail:
                    self.tenants.requeue_front(f.tenant, [f])
        return settled

    @staticmethod
    def _work_request(live: _Live) -> WorkRequest:
        return (live.request_id, live.payload, live.key.n_leaves)

    def _settle(
        self, live: _Live, payload: dict[str, Any], now: int, *, from_cache: bool
    ) -> StreamResult:
        if self.parity_check:
            self._assert_parity(live, payload)
        self._inc("stream.done")
        decompose = payload.get("decompose")
        if decompose is not None:
            self._inc("decompose.requests")
            self._inc("decompose.batches", int(decompose.get("n_batches", 1)))
        latency = now - live.release_tick
        self._observe_latency(latency, live.priority)
        result = StreamResult(
            request_id=live.request_id,
            status=StreamStatus.DONE,
            tenant=live.tenant,
            priority=live.priority,
            from_cache=from_cache,
            attempts=live.attempts,
            latency_ticks=latency,
            payload=payload,
            signature=live.key.dyck,
        )
        self.results[live.request_id] = result
        return result

    def _fail(self, live: _Live, error: str, now: int) -> StreamResult:
        self._inc("stream.failed")
        self._failed_delta += 1
        result = StreamResult(
            request_id=live.request_id,
            status=StreamStatus.FAILED,
            tenant=live.tenant,
            priority=live.priority,
            attempts=live.attempts,
            latency_ticks=now - live.release_tick,
            error=error,
            signature=live.key.dyck,
        )
        self.results[live.request_id] = result
        return result

    def _assert_parity(self, live: _Live, payload: dict[str, Any]) -> None:
        if self._direct is None:
            self._direct = self.config.build()
        direct = result_to_dict(
            self._direct.schedule(live.request.cset, n_leaves=live.key.n_leaves)
        )
        if direct != payload:
            raise ServiceParityError(
                f"request {live.request_id}: streamed schedule diverged from "
                f"the direct scheduler (signature {live.key.dyck!r})"
            )

    # -- internals: the admission feedback loop ------------------------------

    def _sample_admission(self) -> None:
        sample = LoadSample(
            queue_fraction=self.backlog / self.max_queue,
            expired=self._expired_delta,
            failed=self._failed_delta,
            retries=self._retries_delta,
            capacity=self.max_inflight,
        )
        self._expired_delta = 0
        self._failed_delta = 0
        self._retries_delta = 0
        # the service's logical clock is the admission clock: passing the
        # tick explicitly lets the controller assert monotonic agreement,
        # so an out-of-band observe() (a drill harness double-sampling)
        # raises instead of silently skewing every recorded transition.
        self.admission.observe(sample, tick=self._tick)
        self.last_load = sample

    # -- metrics helpers -----------------------------------------------------

    def _inc(self, name: str, amount: int = 1) -> None:
        if self.obs is not None and amount:
            self.obs.metrics.inc(name, amount, run=self.obs.run)

    def _gauge(self, name: str, value: float) -> None:
        if self.obs is not None:
            self.obs.metrics.set(name, value, run=self.obs.run)

    def _observe_latency(self, latency: int, priority: Priority) -> None:
        if self.obs is not None:
            self.obs.metrics.observe(
                "stream.latency",
                latency,
                run=self.obs.run,
                priority=priority.name.lower(),
            )
