"""Multi-tenant quotas and weighted-fair dequeue for the streaming service.

"Millions of users" maps onto the service as many *tenants* sharing one
fabric.  Two mechanisms keep that sharing honest:

* a **token bucket** per tenant (:class:`TenantQuota`) rate-limits
  *admission*: each accepted request costs one token, tokens refill at
  ``rate`` per logical tick up to ``burst``.  A tenant that exhausts its
  bucket is throttled at the door — a ``Ticket`` that says so, never an
  exception — so one hog cannot monopolise the queue itself;
* **deficit round-robin** over the per-tenant ready queues
  (:meth:`TenantRegistry.fair_select`) weights the *execution budget*:
  each selection round credits every backlogged tenant ``weight``
  deficit and serves requests while deficit lasts, so a tenant with
  weight 2 drains twice as fast as a tenant with weight 1, and a starved
  tenant's credit accumulates until it is served — DRR's classic
  starvation-freedom guarantee, which the fairness tests assert.

Both mechanisms run on the service's logical tick clock, so quota
refill, fairness and test assertions are all deterministic.

Metrics (under the service's run label): ``tenant.submitted`` /
``tenant.throttled`` / ``tenant.served`` counters and a
``tenant.tokens`` gauge, all labelled ``tenant=<id>``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Iterable

from repro.exceptions import SchedulingError
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

__all__ = ["TenantQuota", "TenantState", "TenantRegistry"]


@dataclass(frozen=True, slots=True)
class TenantQuota:
    """One tenant's contract: admission rate and execution weight.

    ``rate`` tokens refill per logical tick (fractions accumulate), the
    bucket holds at most ``burst`` tokens, and ``weight`` scales this
    tenant's share of each execution round's budget.
    """

    rate: float = 4.0
    burst: float = 16.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise SchedulingError(f"quota rate must be > 0, got {self.rate}")
        if self.burst < 1:
            raise SchedulingError(f"quota burst must be >= 1, got {self.burst}")
        if self.weight <= 0:
            raise SchedulingError(f"quota weight must be > 0, got {self.weight}")


@dataclass(slots=True)
class TenantState:
    """Live accounting for one tenant: bucket level, queue, DRR deficit."""

    name: str
    quota: TenantQuota
    tokens: float
    refill_tick: int = 0
    deficit: float = 0.0
    queue: Deque[Any] = field(default_factory=deque)
    submitted: int = 0
    throttled: int = 0
    served: int = 0


class TenantRegistry:
    """All tenants the streaming service knows, plus the fairness machinery.

    Unknown tenants are materialised on first submit under
    ``default_quota`` — a service for millions of users cannot require
    pre-registration — while :meth:`register` pins explicit contracts
    (heavier weights, bigger bursts) for the tenants that pay for them.
    """

    def __init__(
        self,
        *,
        default_quota: TenantQuota | None = None,
        metrics: MetricsRegistry | None = None,
        run: str = "stream",
    ) -> None:
        self.default_quota = (
            default_quota if default_quota is not None else TenantQuota()
        )
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.run = run
        self._tenants: dict[str, TenantState] = {}

    # -- registration --------------------------------------------------------

    def register(self, name: str, quota: TenantQuota | None = None) -> TenantState:
        """Create (or re-contract) a tenant; idempotent on the same quota."""
        q = quota if quota is not None else self.default_quota
        state = self._tenants.get(name)
        if state is None:
            state = self._tenants[name] = TenantState(
                name=name, quota=q, tokens=q.burst
            )
        else:
            state.quota = q
            state.tokens = min(state.tokens, q.burst)
        return state

    def get(self, name: str) -> TenantState:
        state = self._tenants.get(name)
        if state is None:
            state = self.register(name)
        return state

    def __iter__(self) -> Iterable[TenantState]:
        return iter(self._tenants.values())

    def __len__(self) -> int:
        return len(self._tenants)

    # -- admission-side quota ------------------------------------------------

    def try_consume(self, name: str, now: int) -> bool:
        """Charge one token for an admission at tick ``now``.

        Refills lazily from the last refill tick, so callers never run a
        background task.  Returns ``False`` — and counts a throttle —
        when the bucket is empty.
        """
        state = self.get(name)
        q = state.quota
        if now > state.refill_tick:
            state.tokens = min(
                q.burst, state.tokens + q.rate * (now - state.refill_tick)
            )
            state.refill_tick = now
        state.submitted += 1
        self.metrics.inc("tenant.submitted", run=self.run, tenant=name)
        if state.tokens < 1.0:
            state.throttled += 1
            self.metrics.inc("tenant.throttled", run=self.run, tenant=name)
            return False
        state.tokens -= 1.0
        self.metrics.set("tenant.tokens", state.tokens, run=self.run, tenant=name)
        return True

    # -- queue plumbing ------------------------------------------------------

    def enqueue(self, name: str, item: Any) -> None:
        self.get(name).queue.append(item)

    def requeue_front(self, name: str, items: Iterable[Any]) -> None:
        """Return held-back items to the head of their tenant's queue,
        preserving their original order."""
        queue = self.get(name).queue
        for item in reversed(list(items)):
            queue.appendleft(item)

    def backlog(self) -> int:
        return sum(len(t.queue) for t in self._tenants.values())

    def drain_all(self) -> list[Any]:
        """Empty every queue (service shutdown path); returns the items."""
        items: list[Any] = []
        for t in self._tenants.values():
            items.extend(t.queue)
            t.queue.clear()
        return items

    # -- weighted-fair selection ---------------------------------------------

    def fair_select(self, budget: int, skip=None) -> list[Any]:
        """Deficit-round-robin selection of up to ``budget`` queued items.

        Tenants are visited in name order (deterministic); each pass
        credits every backlogged tenant ``weight`` deficit, then serves
        heads while deficit covers them.  ``skip(item)`` (optional) marks
        items the current admission state holds back — they are set
        aside without charge and restored to the queue front afterwards,
        so deferral never costs a tenant its turn.
        """
        if budget < 1:
            return []
        selected: list[Any] = []
        held: dict[str, list[Any]] = {}
        # bounded sweeps: each full pass either serves something or stops.
        while len(selected) < budget:
            backlogged = [
                t for t in sorted(self._tenants) if self._tenants[t].queue
            ]
            if not backlogged:
                break
            progressed = False
            for name in backlogged:
                state = self._tenants[name]
                state.deficit += state.quota.weight
                while state.queue and state.deficit >= 1.0 and len(selected) < budget:
                    item = state.queue.popleft()
                    if skip is not None and skip(item):
                        held.setdefault(name, []).append(item)
                        continue
                    state.deficit -= 1.0
                    state.served += 1
                    self.metrics.inc("tenant.served", run=self.run, tenant=name)
                    selected.append(item)
                    progressed = True
                if len(selected) >= budget:
                    break
            if not progressed:
                break
        for name, items in held.items():
            self.requeue_front(name, items)
        # no tenant banks credit across idle epochs: a tenant whose queue
        # just emptied starts its next backlog from zero deficit (DRR
        # fairness is about *current* backlog, not service history), and a
        # deferred backlog (skip-held) may carry at most one budget.
        for state in self._tenants.values():
            if not state.queue:
                state.deficit = 0.0
            else:
                state.deficit = min(
                    state.deficit, max(state.quota.weight, float(budget))
                )
        return selected
