"""Canonical schedule signatures and the LRU schedule cache.

A well-nested communication set is, structurally, a Dyck word
(:mod:`repro.comms.wellnested`): erase the idle leaves from its
parenthesis profile and two sets that are relabellings of each other
collapse to the same word.  That Dyck word is the *canonical signature*
the service reports and groups by.

The *cache key* is stricter than the Dyck word on purpose.  Power and
round structure depend on where the communications actually sit in the
tree — relabelling a set moves its circuits onto different switches — so
serving a cached schedule across a relabelling would break the service's
bit-identical-parity guarantee.  The key therefore pins the full placed
profile (Dyck word *with* the idle-leaf gaps), the tree size and the
:meth:`~repro.core.config.SchedulerConfig.cache_signature` it was computed
under.  Repeats of the *same placed workload* hit; everything else misses.

The cache stores serialized schedule payloads
(:func:`repro.io.schedule_to_dict`), the same representation that crosses
the worker-pool boundary — so a hit and a pool round-trip are literally
the same bytes, and parity checks compare one canonical form.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.comms.communication import CommunicationSet
from repro.comms.wellnested import is_well_nested, parenthesis_profile
from repro.core.config import SchedulerConfig
from repro.exceptions import OrientationError, SchedulingError
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

__all__ = ["CanonicalKey", "ScheduleCache", "canonical_signature"]


@dataclass(frozen=True, slots=True)
class CanonicalKey:
    """A communication set canonicalised for caching and grouping.

    ``dyck`` is the relabelling-invariant Dyck word (structure only);
    ``placed`` is the full parenthesis profile over the leaves (structure
    *and* geometry).  Cache lookups use ``(n_leaves, placed, config)``;
    ``dyck`` is the coarser equivalence class reported in metrics and
    batch summaries.

    ``general`` marks keys of sets outside the PADR input class
    (crossings or left-oriented pairs): their ``placed`` form pins the
    exact pairing (a parenthesis word cannot — two distinct crossing sets
    can share one), and the service excludes them from columnar
    same-shape batch grouping.
    """

    n_leaves: int
    dyck: str
    placed: str
    config: str
    general: bool = False

    @property
    def cache_key(self) -> tuple[int, str, str]:
        return (self.n_leaves, self.placed, self.config)


def canonical_signature(
    cset: CommunicationSet,
    n_leaves: int | None = None,
    *,
    config: SchedulerConfig | None = None,
) -> CanonicalKey:
    """Canonicalise ``cset`` into a :class:`CanonicalKey`.

    Requires a right-oriented set (the PADR input class); left-oriented or
    mixed sets raise :class:`~repro.exceptions.OrientationError` — the
    service only caches what its scheduler accepts.

    An explicit ``n_leaves`` below :meth:`CommunicationSet.min_leaves` is
    rejected up front.  Widths in ``(max_pe, min_leaves)`` — non-power-of-2
    or below the 2-leaf floor — would still index the profile without
    error, minting a cache key for a tree the scheduler itself would never
    build; such a key could collide with (and poison) the entry for the
    legitimate width.
    """
    min_leaves = cset.min_leaves()
    n = n_leaves if n_leaves is not None else min_leaves
    if n < min_leaves:
        raise SchedulingError(
            f"communication set does not fit on {n} leaves "
            f"(needs at least {min_leaves})"
        )
    cfg = config if config is not None else SchedulerConfig()
    if is_well_nested(cset):
        placed = parenthesis_profile(cset, n)
        return CanonicalKey(
            n_leaves=n,
            dyck=placed.replace(".", ""),
            placed=placed,
            config=cfg.cache_signature(),
        )
    if not cset.is_right_oriented and cfg.decompose != "auto":
        # preserve the historical door behaviour outside auto mode
        raise OrientationError(
            "canonical signature requires a right-oriented set "
            "(configure decompose='auto' to admit arbitrary sets)"
        )
    placed, dyck = _general_signature(cset)
    return CanonicalKey(
        n_leaves=n,
        dyck=dyck,
        placed=placed,
        config=cfg.cache_signature(),
        general=True,
    )


def _general_signature(cset: CommunicationSet) -> tuple[str, str]:
    """Signature forms for sets outside the PADR input class.

    ``placed`` pins the exact pairing with absolute leaf positions (a
    parenthesis word is ambiguous once crossings exist: the crossing
    ``(0,2),(1,3)`` and the nested ``(0,3),(1,2)`` share one profile, and
    serving one's cached schedule for the other would break parity).
    ``dyck`` is the relabelling-invariant analogue: the left-to-right
    event sequence over occupied leaves, each event naming its pair's
    rank and its role.
    """
    placed = "G:" + ",".join(f"{c.src}>{c.dst}" for c in cset)
    rank = {c: i for i, c in enumerate(cset)}
    events = sorted(
        [(c.src, "s", rank[c]) for c in cset] + [(c.dst, "d", rank[c]) for c in cset]
    )
    dyck = "G:" + "".join(f"{kind}{r}" for _, kind, r in events)
    return placed, dyck


class ScheduleCache:
    """Bounded LRU map: canonical key → serialized schedule payload.

    Hit/miss/eviction counts are emitted into a
    :class:`~repro.obs.registry.MetricsRegistry` as ``service.cache.*``
    counters and the live size as a ``service.cache.size`` gauge; pass no
    registry and the interned null registry keeps the hot path free.
    """

    def __init__(
        self,
        capacity: int = 256,
        *,
        metrics: MetricsRegistry | None = None,
        run: str = "service",
    ) -> None:
        if capacity < 1:
            raise SchedulingError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.run = run
        self._entries: OrderedDict[tuple[int, str, str], dict[str, Any]] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CanonicalKey) -> dict[str, Any] | None:
        """The cached payload for ``key``, or ``None`` (counted as a miss)."""
        entry = self._entries.get(key.cache_key)
        if entry is None:
            self.misses += 1
            self.metrics.inc("service.cache.misses", run=self.run)
            return entry
        self._entries.move_to_end(key.cache_key)
        self.hits += 1
        self.metrics.inc("service.cache.hits", run=self.run)
        return entry

    def put(self, key: CanonicalKey, payload: dict[str, Any]) -> None:
        """Insert (or refresh) ``key``; evicts the LRU entry when full."""
        ck = key.cache_key
        if ck in self._entries:
            self._entries.move_to_end(ck)
            self._entries[ck] = payload
        else:
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self.metrics.inc("service.cache.evictions", run=self.run)
            self._entries[ck] = payload
        self.metrics.set("service.cache.size", len(self._entries), run=self.run)

    def clear(self) -> None:
        self._entries.clear()
        self.metrics.set("service.cache.size", 0, run=self.run)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
