"""Fault injection for the CST substrate.

The paper assumes a fault-free interconnect; a production simulator needs
to show what happens when that assumption breaks, and the reproduction's
adversarial-verification story needs negative tests: injected faults must
be *caught* by the verifier, never silently absorbed.

Fault models
------------
``StuckSwitchFault``    the switch ignores all (re-)configuration and keeps
                        whatever crossbar it had when the fault struck — a
                        latched-up control unit.
``DeadSwitchFault``     the switch drops every connection and refuses new
                        ones — a powered-down or fried switch.
``MisrouteFault``       the switch swaps its left and right *outputs* —
                        a wiring/bitflip defect that delivers payloads to
                        the wrong subtree instead of dropping them (the
                        nastiest case for detection).

Faults attach to a :class:`~repro.cst.network.CSTNetwork` via
:func:`inject`; they wrap the target switch's round protocol.  Scheduling
proceeds normally (the distributed algorithm cannot see the fault), and the
damage surfaces as dropped or misdelivered payloads, which
:mod:`repro.analysis.verifier` flags.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.cst.network import CSTNetwork
from repro.cst.switch import Switch, SwitchConfiguration
from repro.exceptions import PortConflictError, ReproError
from repro.types import Connection, InPort, OutPort

__all__ = [
    "FaultError",
    "SwitchFault",
    "StuckSwitchFault",
    "DeadSwitchFault",
    "MisrouteFault",
    "inject",
    "clear_faults",
]


class FaultError(ReproError):
    """Invalid fault-injection request."""


class SwitchFault(abc.ABC):
    """A behavioural defect of one switch, applied at commit time."""

    @abc.abstractmethod
    def corrupt(
        self, intended: SwitchConfiguration, previous: SwitchConfiguration
    ) -> SwitchConfiguration:
        """The configuration the faulty hardware actually ends up holding.

        ``intended`` is what a healthy switch would hold after this round;
        ``previous`` is what it held before.
        """

    @property
    def name(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class StuckSwitchFault(SwitchFault):
    """Control unit latch-up: the crossbar freezes at its current state."""

    def corrupt(
        self, intended: SwitchConfiguration, previous: SwitchConfiguration
    ) -> SwitchConfiguration:
        return previous


@dataclass(frozen=True)
class DeadSwitchFault(SwitchFault):
    """Total failure: no connection is ever held."""

    def corrupt(
        self, intended: SwitchConfiguration, previous: SwitchConfiguration
    ) -> SwitchConfiguration:
        return SwitchConfiguration.idle()


@dataclass(frozen=True)
class MisrouteFault(SwitchFault):
    """Left/right output swap: payloads land in the wrong subtree."""

    def corrupt(
        self, intended: SwitchConfiguration, previous: SwitchConfiguration
    ) -> SwitchConfiguration:
        swapped = []
        for conn in intended:
            out = conn.out_port
            if out is OutPort.L:
                out = OutPort.R
            elif out is OutPort.R:
                out = OutPort.L
            if conn.in_port.side is out.side:
                # the swap would create an illegal same-side connection
                # (e.g. r_i->p_o is unaffected; l_i->r_o becomes l_i->l_o,
                # which faulty hardware realises as a dropped connection).
                continue
            swapped.append(Connection(conn.in_port, out))
        try:
            return SwitchConfiguration(swapped)
        except PortConflictError:
            # conflicting swapped outputs: the hardware resolves to chaos;
            # model as holding only the first connection.  Only a port
            # conflict is hardware chaos — anything else is a programming
            # error and must propagate.
            return SwitchConfiguration(swapped[:1])


class _FaultySwitch(Switch):
    """A switch whose committed configuration passes through a fault."""

    __slots__ = ("fault",)

    def __init__(self, inner: Switch, fault: SwitchFault) -> None:
        # adopt the inner switch's identity and meter
        super().__init__(inner.heap_id, inner._meter)
        self._config = inner.configuration
        # requests already staged in the current uncommitted round survive
        # the wrap: the fault strikes the hardware, not the control plane.
        self._staged = list(inner._staged)
        self.config_changes = inner.config_changes
        self.rounds_committed = inner.rounds_committed
        self.fault = fault

    def commit_round(self) -> SwitchConfiguration:
        previous = self.configuration
        intended = super().commit_round()
        actual = self.fault.corrupt(intended, previous)
        # the controller *believes* it holds `intended`; the hardware holds
        # `actual`.  Tracing must see the hardware's truth.
        self._config = actual
        return actual


def inject(network: CSTNetwork, switch_id: int, fault: SwitchFault) -> None:
    """Replace ``switch_id``'s switch with a faulty wrapper.

    Idempotent per switch: injecting a second fault replaces the first.
    """
    if switch_id not in network.switches:
        raise FaultError(f"no switch {switch_id} in this network")
    current = network.switches[switch_id]
    network.fault_injected = True
    if isinstance(current, _FaultySwitch):
        current.fault = fault
        return
    network.switches[switch_id] = _FaultySwitch(current, fault)


def clear_faults(network: CSTNetwork) -> int:
    """Restore every faulty switch to healthy behaviour; returns count."""
    n = 0
    for heap_id, sw in list(network.switches.items()):
        if isinstance(sw, _FaultySwitch):
            healthy = Switch(heap_id, network.meter)
            healthy._config = sw.configuration
            # carry the current round's uncommitted staged requests too —
            # repair happens between commits, not between stage and commit.
            healthy._staged = list(sw._staged)
            healthy.config_changes = sw.config_changes
            healthy.rounds_committed = sw.rounds_committed
            network.switches[heap_id] = healthy
            n += 1
    network.fault_injected = False
    return n
