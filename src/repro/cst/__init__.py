"""The Circuit Switched Tree substrate.

This package implements the CST interconnect of Sidhu et al. (2000) as used
by the paper: a complete binary tree whose leaves are processing elements
and whose internal nodes are 3-sided switches joined by full-duplex links.

Modules
-------
``topology``  — heap-indexed tree geometry: LCA, paths, directed edges.
``switch``    — the 3-sided switch crossbar with configuration state.
``power``     — power metering (1 unit per newly-established connection).
``pe``        — processing elements (leaves).
``network``   — switches + PEs wired together; data-path tracing.
``engine``    — synchronous round engine: up/down control waves, transfers.
"""

from repro.cst.topology import CSTTopology, DirectedEdge
from repro.cst.switch import Switch, SwitchConfiguration
from repro.cst.power import PowerMeter, PowerPolicy, PowerReport
from repro.cst.pe import ProcessingElement
from repro.cst.network import CSTNetwork, TraceResult
from repro.cst.engine import CSTEngine, EngineTrace, ReferenceWaveEngine

__all__ = [
    "CSTTopology",
    "DirectedEdge",
    "Switch",
    "SwitchConfiguration",
    "PowerMeter",
    "PowerPolicy",
    "PowerReport",
    "ProcessingElement",
    "CSTNetwork",
    "TraceResult",
    "CSTEngine",
    "EngineTrace",
    "ReferenceWaveEngine",
]
