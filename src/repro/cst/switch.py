"""The 3-sided CST switch: crossbar state plus change accounting.

A switch (paper Figure 3a) holds a *configuration*: a partial one-to-one
mapping from its three data inputs to its three data outputs, where an input
may drive only an output of a different side.  The data unit is this
crossbar; the control unit (implemented by the schedulers in
:mod:`repro.core`) decides what the configuration should be each round.

Power accounting follows paper §2.3: establishing one input→output
connection consumes one unit of power; a connection *kept* from the previous
round is free.  The meter lives in :mod:`repro.cst.power`; the switch
reports every newly-established connection to it.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.exceptions import PortConflictError
from repro.types import Connection, InPort, OutPort
from repro.cst.power import PowerMeter

__all__ = ["SwitchConfiguration", "Switch"]


class SwitchConfiguration:
    """A partial one-to-one input→output mapping of a 3-sided switch.

    Immutable value object; use :meth:`with_connection` /
    :meth:`without_ports` to derive new configurations.  Legality of each
    individual connection is enforced by :class:`~repro.types.Connection`;
    this class enforces that no input and no output is used twice.
    """

    __slots__ = ("_by_in",)

    def __init__(self, connections: Iterable[Connection] = ()) -> None:
        by_in: dict[InPort, Connection] = {}
        used_out: set[OutPort] = set()
        for conn in connections:
            if conn.in_port in by_in:
                raise PortConflictError(f"input {conn.in_port.value} used twice")
            if conn.out_port in used_out:
                raise PortConflictError(f"output {conn.out_port.value} used twice")
            by_in[conn.in_port] = conn
            used_out.add(conn.out_port)
        self._by_in = by_in

    # -- queries -----------------------------------------------------------

    def __iter__(self) -> Iterator[Connection]:
        return iter(self._by_in.values())

    def __len__(self) -> int:
        return len(self._by_in)

    def __contains__(self, conn: Connection) -> bool:
        return self._by_in.get(conn.in_port) == conn

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SwitchConfiguration):
            return NotImplemented
        return self._by_in == other._by_in

    def __hash__(self) -> int:
        return hash(frozenset(self._by_in.values()))

    def __repr__(self) -> str:
        inner = ", ".join(sorted(str(c) for c in self)) or "idle"
        return f"<config {inner}>"

    def output_for(self, in_port: InPort) -> OutPort | None:
        """Where data arriving on ``in_port`` goes, or ``None`` if dropped."""
        conn = self._by_in.get(in_port)
        return conn.out_port if conn else None

    def input_for(self, out_port: OutPort) -> InPort | None:
        """Which input currently drives ``out_port``, or ``None``."""
        for conn in self._by_in.values():
            if conn.out_port is out_port:
                return conn.in_port
        return None

    def connections(self) -> frozenset[Connection]:
        return frozenset(self._by_in.values())

    # -- derivation ----------------------------------------------------------

    def with_connection(self, conn: Connection) -> "SwitchConfiguration":
        """New configuration with ``conn`` added, displacing any connection
        that currently uses its input or output port."""
        keep = [
            c
            for c in self._by_in.values()
            if c.in_port is not conn.in_port and c.out_port is not conn.out_port
        ]
        keep.append(conn)
        return SwitchConfiguration(keep)

    def without_ports(self, conns: Iterable[Connection]) -> "SwitchConfiguration":
        """New configuration with the given connections removed (if present)."""
        drop = set(conns)
        return SwitchConfiguration(c for c in self._by_in.values() if c not in drop)

    @staticmethod
    def idle() -> "SwitchConfiguration":
        return _IDLE


_IDLE = SwitchConfiguration()


class Switch:
    """A stateful 3-sided switch with configuration-change accounting.

    The switch exposes a round protocol:

    * :meth:`require` stages connections for the current round;
    * :meth:`commit_round` applies them, charging the power meter one unit
      per *newly established* connection (paper §2.3) and counting a
      configuration change if anything changed.

    Two teardown policies exist (see :class:`~repro.cst.power.PowerPolicy`):
    under the paper's model (*lazy*), connections not required this round
    stay in place (free) unless displaced; under *eager* teardown the
    crossbar is cleared every round, which is exactly what makes naive
    implementations pay O(w) — the ablation of DESIGN.md §4 (ABL).
    """

    __slots__ = ("heap_id", "_config", "_staged", "_meter", "config_changes", "rounds_committed")

    def __init__(self, heap_id: int, meter: PowerMeter) -> None:
        self.heap_id = heap_id
        self._config = SwitchConfiguration.idle()
        self._staged: list[Connection] = []
        self._meter = meter
        #: number of rounds in which the configuration differed from the
        #: previous round's (the quantity Theorem 8 bounds by O(1)).
        self.config_changes = 0
        self.rounds_committed = 0

    # -- round protocol ---------------------------------------------------

    def require(self, conn: Connection) -> None:
        """Stage a connection required for the current round."""
        self._staged.append(conn)

    def require_all(self, conns: Iterable[Connection]) -> None:
        for conn in conns:
            self.require(conn)

    def commit_round(self) -> SwitchConfiguration:
        """Apply staged connections and account power; returns new config."""
        staged = SwitchConfiguration(self._staged)  # validates port-conflicts
        old = self._config
        policy = self._meter.policy
        if policy.eager_teardown:
            new = staged
        else:
            new = old
            for conn in staged:
                new = new.with_connection(conn)
        if policy.recharge:
            # rebuild discipline: every staged connection is set from scratch.
            charged = len(staged)
        else:
            charged = len(new.connections() - old.connections())
        if charged:
            self._meter.charge(self.heap_id, charged)
        if new != old:
            self.config_changes += 1
            self._meter.note_change(self.heap_id)
        self._config = new
        self._staged = []
        self.rounds_committed += 1
        return new

    # -- state ---------------------------------------------------------------

    @property
    def configuration(self) -> SwitchConfiguration:
        return self._config

    @property
    def staged(self) -> tuple[Connection, ...]:
        return tuple(self._staged)

    def output_for(self, in_port: InPort) -> OutPort | None:
        return self._config.output_for(in_port)

    def reset(self) -> None:
        """Clear configuration and counters (does not touch the meter)."""
        self._config = SwitchConfiguration.idle()
        self._staged = []
        self.config_changes = 0
        self.rounds_committed = 0

    def __repr__(self) -> str:
        return f"Switch({self.heap_id}, {self._config!r}, changes={self.config_changes})"
