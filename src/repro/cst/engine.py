"""Synchronous message waves over the CST.

The CSA is a distributed algorithm: control information flows strictly
between neighbours, up the tree in Phase 1 and down the tree in each
Phase-2 round.  :class:`CSTEngine` provides exactly those two primitives —
an *upward wave* (children before parents) and a *downward wave* (parents
before children) — plus message/word accounting so the Theorem-5 efficiency
claims ("a constant number of words is transferred between neighboring
switches") can be measured rather than asserted.

The engine is deliberately oblivious to what the words mean; switches'
behaviour is supplied as callables.  This keeps the locality discipline
honest: a combine/emit function receives only its own switch id and the
words on its own links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, TypeVar

from repro.cst.events import ControlEvent
from repro.cst.network import CSTNetwork

__all__ = ["EngineTrace", "CSTEngine"]

W = TypeVar("W")


@dataclass
class EngineTrace:
    """Accounting of control traffic moved by the engine.

    ``messages`` counts individual neighbour-to-neighbour transmissions;
    ``words`` counts machine words inside them (callers pass per-message
    word sizes).  ``waves`` counts wave invocations.
    """

    messages: int = 0
    words: int = 0
    waves: int = 0
    per_wave_messages: list[int] = field(default_factory=list)

    def record_wave(self, messages: int, words: int) -> None:
        self.messages += messages
        self.words += words
        self.waves += 1
        self.per_wave_messages.append(messages)

    @property
    def mean_messages_per_wave(self) -> float:
        return self.messages / self.waves if self.waves else 0.0


class CSTEngine:
    """Runs synchronous control waves over a :class:`CSTNetwork`."""

    def __init__(self, network: CSTNetwork) -> None:
        self.network = network
        self.topology = network.topology
        self.trace = EngineTrace()

    # -- upward wave (Phase 1 shape) ------------------------------------------

    def upward_wave(
        self,
        leaf_word: Callable[[int], W],
        combine: Callable[[int, W, W], W],
        *,
        words_per_message: int = 1,
    ) -> dict[int, W]:
        """Children-to-parent wave.

        ``leaf_word(pe_index)`` produces each leaf's transmission;
        ``combine(switch_id, left_word, right_word)`` produces the word the
        switch sends to *its* parent.  Returns every node's transmitted word
        keyed by heap id (the root's word is simply computed, not sent).
        """
        topo = self.topology
        log = self.network.event_log
        if log is not None:
            log.next_wave()
        sent: dict[int, W] = {}
        for pe in range(topo.n_leaves):
            sent[topo.leaf_heap_id(pe)] = leaf_word(pe)
        # switches in reverse BFS order ⇒ children always precede parents.
        for v in range(topo.n_switches, 0, -1):
            sent[v] = combine(v, sent[2 * v], sent[2 * v + 1])
            if log is not None:
                log.record(
                    lambda seq, wave, v=v, w=sent[v]: ControlEvent(
                        seq, wave, node=v, direction="up", word=w
                    )
                )
        n_messages = 2 * topo.n_leaves - 2  # every non-root node transmits once
        self.trace.record_wave(n_messages, n_messages * words_per_message)
        return sent

    # -- downward wave (Phase 2 round shape) ------------------------------------

    def downward_wave(
        self,
        root_word: W,
        emit: Callable[[int, W], tuple[W, W]],
        *,
        words_per_message: int = 1,
    ) -> dict[int, W]:
        """Parent-to-children wave.

        ``emit(switch_id, incoming_word)`` returns the words for the left
        and right child.  Returns the words delivered to the *leaves*, keyed
        by PE index.
        """
        topo = self.topology
        log = self.network.event_log
        if log is not None:
            log.next_wave()
        incoming: dict[int, W] = {1: root_word}
        leaf_words: dict[int, W] = {}
        for v in range(1, topo.n_switches + 1):
            left_w, right_w = emit(v, incoming[v])
            for child, w in ((2 * v, left_w), (2 * v + 1, right_w)):
                if log is not None:
                    log.record(
                        lambda seq, wave, child=child, w=w: ControlEvent(
                            seq, wave, node=child, direction="down", word=w
                        )
                    )
                if child >= topo.n_leaves:
                    leaf_words[topo.pe_index(child)] = w
                else:
                    incoming[child] = w
        n_messages = 2 * topo.n_leaves - 2
        self.trace.record_wave(n_messages, n_messages * words_per_message)
        return leaf_words

    # -- convenience -----------------------------------------------------------

    def traffic_summary(self) -> Mapping[str, Any]:
        return {
            "waves": self.trace.waves,
            "messages": self.trace.messages,
            "words": self.trace.words,
            "mean_messages_per_wave": self.trace.mean_messages_per_wave,
        }
