"""Synchronous message waves over the CST.

The CSA is a distributed algorithm: control information flows strictly
between neighbours, up the tree in Phase 1 and down the tree in each
Phase-2 round.  :class:`CSTEngine` provides exactly those two primitives —
an *upward wave* (children before parents) and a *downward wave* (parents
before children) — plus message/word accounting so the Theorem-5 efficiency
claims ("a constant number of words is transferred between neighboring
switches") can be measured rather than asserted.

The engine is deliberately oblivious to what the words mean; switches'
behaviour is supplied as callables.  This keeps the locality discipline
honest: a combine/emit function receives only its own switch id and the
words on its own links.

Two accounting planes
---------------------

The paper's model charges one message per link per wave — every switch
speaks to every neighbour every round, whether or not it has anything to
say.  :class:`EngineTrace` keeps reporting that **logical** count
(``messages`` / ``words``), so Theorem-5 accounting is independent of how
the simulator is implemented.  Separately, ``physical_messages`` counts
the transmissions the simulator *actually* walked.  The two differ only
on the frontier-pruned fast path of :meth:`CSTEngine.downward_wave`: a
link whose word is dead (caller-defined, via ``prune``) carries nothing
physically, exactly as absence-of-signal means ``[null,null]`` on real
hardware.

:class:`ReferenceWaveEngine` retains the naive O(n)-per-wave walk (every
node, every wave, dict-accumulated).  It is the differential-testing
oracle: the fast path must produce bit-identical schedules and identical
*logical* traces, only cheaper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Mapping, TypeVar

from repro.cst.events import ControlEvent
from repro.cst.network import CSTNetwork

__all__ = ["EngineTrace", "CSTEngine", "ReferenceWaveEngine", "ColumnarWaveEngine"]

W = TypeVar("W")


@dataclass
class EngineTrace:
    """Accounting of control traffic moved by the engine.

    ``messages`` counts individual neighbour-to-neighbour transmissions in
    the paper's model (one per link per wave); ``words`` counts machine
    words inside them (callers pass per-message word sizes).  ``waves``
    counts wave invocations.  ``physical_messages`` / ``physical_words``
    count what the simulator actually moved — equal to the logical counts
    except on the pruned fast path, where dead subtrees are skipped.

    ``per_wave_messages`` samples the logical per-wave message count for
    the first :data:`PER_WAVE_CAP` waves only; engines reused across long
    streams previously grew this list without bound.  Waves beyond the cap
    are still fully accounted in the totals and tallied in
    ``uncapped_waves``.

    ``on_wave`` is the observability layer's injectable hook
    (:meth:`repro.obs.Instrumentation.wave_hook`): called once per wave
    with ``(messages, words, physical_messages, physical_words)``.  It
    defaults to ``None`` and costs one identity check per wave — the
    no-op path stays on the fast engine's perf floor.
    """

    #: maximum number of per-wave samples retained (satellite fix for the
    #: unbounded growth when one engine is reused across a long stream).
    PER_WAVE_CAP: ClassVar[int] = 4096

    messages: int = 0
    words: int = 0
    waves: int = 0
    physical_messages: int = 0
    physical_words: int = 0
    per_wave_messages: list[int] = field(default_factory=list)
    #: waves whose sample was aggregated into the totals only (cap reached).
    uncapped_waves: int = 0
    #: optional per-wave metrics sink; see class docstring.
    on_wave: Callable[[int, int, int, int], None] | None = None

    def record_wave(
        self,
        messages: int,
        words: int,
        *,
        physical_messages: int | None = None,
        physical_words: int | None = None,
    ) -> None:
        self.messages += messages
        self.words += words
        self.waves += 1
        pm = messages if physical_messages is None else physical_messages
        pw = words if physical_words is None else physical_words
        self.physical_messages += pm
        self.physical_words += pw
        if len(self.per_wave_messages) < self.PER_WAVE_CAP:
            self.per_wave_messages.append(messages)
        else:
            self.uncapped_waves += 1
        if self.on_wave is not None:
            self.on_wave(messages, words, pm, pw)

    @property
    def mean_messages_per_wave(self) -> float:
        return self.messages / self.waves if self.waves else 0.0


class CSTEngine:
    """Runs synchronous control waves over a :class:`CSTNetwork`.

    This is the fast-path engine: waves run over preallocated flat buffers
    indexed by heap id instead of per-wave dicts, event-log recording is
    hoisted out of the hot loop (zero overhead when ``event_log is None``),
    and the downward wave optionally *prunes* dead subtrees (see
    :meth:`downward_wave`).
    """

    #: schedulers may replace the callable-driven Phase-1 wave with the
    #: numerically identical vectorised reduction when this engine runs it
    #: (see :func:`repro.core.phase1.run_phase1_vectorized`).
    prefers_vectorized_phase1 = True

    #: schedulers may replace the whole per-switch Phase-2 walk with the
    #: struct-of-arrays kernel (:mod:`repro.core.columnar`) when this engine
    #: runs it.  Off for the per-switch engines; see
    #: :class:`ColumnarWaveEngine`.
    supports_columnar_phase2 = False

    def __init__(self, network: CSTNetwork) -> None:
        self.network = network
        self.topology = network.topology
        self.trace = EngineTrace()
        #: reusable word buffer indexed by heap id; avoids per-wave dict
        #: allocation/rehashing on the hot path.
        self._words: list[Any] = [None] * self.topology.heap_size

    # -- upward wave (Phase 1 shape) ------------------------------------------

    def upward_wave(
        self,
        leaf_word: Callable[[int], W],
        combine: Callable[[int, W, W], W],
        *,
        words_per_message: int = 1,
        collect: bool = True,
    ) -> Mapping[int, W]:
        """Children-to-parent wave.

        ``leaf_word(pe_index)`` produces each leaf's transmission;
        ``combine(switch_id, left_word, right_word)`` produces the word the
        switch sends to *its* parent.  Returns every node's transmitted word
        keyed by heap id (the root's word is simply computed, not sent).

        With ``collect=False`` the engine's internal flat buffer (a list
        indexed by heap id, valid until the next wave) is returned instead
        of a fresh dict — callers that only read a few entries (Phase 1
        reads just the root's) skip an O(n) copy.

        Every leaf must report in Phase 1, so the upward wave has no pruned
        variant: physical traffic always equals logical traffic here.
        """
        topo = self.topology
        n = topo.n_leaves
        log = self.network.event_log
        buf = self._words
        for pe in range(n):
            buf[n + pe] = leaf_word(pe)
        # switches in reverse BFS order ⇒ children always precede parents.
        if log is None:
            for v in range(n - 1, 0, -1):
                buf[v] = combine(v, buf[2 * v], buf[2 * v + 1])
        else:
            log.next_wave()
            for v in range(n - 1, 0, -1):
                w = buf[v] = combine(v, buf[2 * v], buf[2 * v + 1])
                log.control(v, "up", w)
        n_messages = 2 * n - 2  # every non-root node transmits once
        self.trace.record_wave(n_messages, n_messages * words_per_message)
        if not collect:
            return buf
        return {v: buf[v] for v in range(1, 2 * n)}

    # -- downward wave (Phase 2 round shape) ------------------------------------

    def downward_wave(
        self,
        root_word: W,
        emit: Callable[[int, W], tuple[W, W]],
        *,
        words_per_message: int = 1,
        prune: Callable[[int, W], bool] | None = None,
    ) -> dict[int, W]:
        """Parent-to-children wave.

        ``emit(switch_id, incoming_word)`` returns the words for the left
        and right child.  Returns the words delivered to the *leaves*, keyed
        by PE index.

        ``prune(node_heap_id, word)`` (optional) declares a word *dead* for
        the receiving node: the link carries nothing physically and the
        whole subtree below it is guaranteed to be a no-op, so the wave
        skips it entirely.  The caller is responsible for the pruning
        invariant — a pruned subtree must be one in which ``emit`` would
        have returned only dead words and staged nothing.  With pruning the
        returned mapping contains only the leaves actually reached; logical
        trace counts are unaffected (the paper's model still charges every
        link), while ``physical_messages`` records the savings.

        When an event log is attached the full (un-pruned) walk runs so the
        log keeps its every-node-every-wave semantics.
        """
        topo = self.topology
        n = topo.n_leaves
        log = self.network.event_log
        n_messages = 2 * n - 2
        n_words = n_messages * words_per_message

        if log is None and prune is not None:
            # frontier-pruned fast path: walk only the live frontier.
            leaf_words: dict[int, W] = {}
            physical = 0
            if prune(1, root_word):
                self.trace.record_wave(
                    n_messages, n_words, physical_messages=0, physical_words=0
                )
                return leaf_words
            stack: list[tuple[int, W]] = [(1, root_word)]
            pop = stack.pop
            push = stack.append
            while stack:
                v, w = pop()
                left_w, right_w = emit(v, w)
                left = 2 * v
                right = left + 1
                if left >= n:  # both children are leaves
                    if not prune(left, left_w):
                        leaf_words[left - n] = left_w
                        physical += 1
                    if not prune(right, right_w):
                        leaf_words[right - n] = right_w
                        physical += 1
                else:
                    if not prune(right, right_w):
                        push((right, right_w))
                        physical += 1
                    if not prune(left, left_w):
                        push((left, left_w))
                        physical += 1
            self.trace.record_wave(
                n_messages,
                n_words,
                physical_messages=physical,
                physical_words=physical * words_per_message,
            )
            return leaf_words

        # full walk (generic callers, or an attached event log): array-backed.
        buf = self._words
        buf[1] = root_word
        leaf_words = {}
        if log is not None:
            log.next_wave()
        for v in range(1, n):
            left_w, right_w = emit(v, buf[v])
            left = 2 * v
            right = left + 1
            if log is not None:
                log.control(left, "down", left_w)
                log.control(right, "down", right_w)
            if left >= n:
                leaf_words[left - n] = left_w
                leaf_words[right - n] = right_w
            else:
                buf[left] = left_w
                buf[right] = right_w
        self.trace.record_wave(n_messages, n_words)
        return leaf_words

    # -- convenience -----------------------------------------------------------

    def traffic_summary(self) -> Mapping[str, Any]:
        return {
            "waves": self.trace.waves,
            "messages": self.trace.messages,
            "words": self.trace.words,
            "physical_messages": self.trace.physical_messages,
            "physical_words": self.trace.physical_words,
            "mean_messages_per_wave": self.trace.mean_messages_per_wave,
        }


class ColumnarWaveEngine(CSTEngine):
    """Marker engine selecting the struct-of-arrays Phase-2 kernel.

    When :class:`~repro.core.csa.PADRScheduler` sees this engine (directly,
    or resolved through ``SchedulerConfig(engine="columnar"/"auto")``) and
    the run fits the columnar guards — healthy network, pristine state,
    lazy teardown, no event log, no ``trace_compat`` — it executes the
    whole schedule through :mod:`repro.core.columnar` instead of walking
    per-switch objects wave by wave.  Schedules, power bills and logical
    traces are bit-identical (property-tested); only wall-clock time
    differs.

    Outside the guards the scheduler falls back to the inherited
    frontier-pruned waves, so this class is always safe to select: it is
    the fast path *plus* an optimisation, never a different algorithm.
    """

    supports_columnar_phase2 = True


class ReferenceWaveEngine(CSTEngine):
    """The naive wave implementation, retained as a differential oracle.

    Every wave touches every node and accumulates words in per-wave dicts —
    the seed implementation, O(n) per wave regardless of how much of the
    tree is live.  ``prune`` is accepted and ignored, so schedulers written
    against the fast path run unmodified; physical traffic always equals
    logical traffic.
    """

    prefers_vectorized_phase1 = False

    def upward_wave(
        self,
        leaf_word: Callable[[int], W],
        combine: Callable[[int, W, W], W],
        *,
        words_per_message: int = 1,
        collect: bool = True,
    ) -> Mapping[int, W]:
        topo = self.topology
        log = self.network.event_log
        if log is not None:
            log.next_wave()
        sent: dict[int, W] = {}
        for pe in range(topo.n_leaves):
            sent[topo.leaf_heap_id(pe)] = leaf_word(pe)
        for v in range(topo.n_switches, 0, -1):
            sent[v] = combine(v, sent[2 * v], sent[2 * v + 1])
            if log is not None:
                log.record(
                    lambda seq, wave, v=v, w=sent[v]: ControlEvent(
                        seq, wave, node=v, direction="up", word=w
                    )
                )
        n_messages = 2 * topo.n_leaves - 2
        self.trace.record_wave(n_messages, n_messages * words_per_message)
        return sent

    def downward_wave(
        self,
        root_word: W,
        emit: Callable[[int, W], tuple[W, W]],
        *,
        words_per_message: int = 1,
        prune: Callable[[int, W], bool] | None = None,
    ) -> dict[int, W]:
        topo = self.topology
        log = self.network.event_log
        if log is not None:
            log.next_wave()
        incoming: dict[int, W] = {1: root_word}
        leaf_words: dict[int, W] = {}
        for v in range(1, topo.n_switches + 1):
            left_w, right_w = emit(v, incoming[v])
            for child, w in ((2 * v, left_w), (2 * v + 1, right_w)):
                if log is not None:
                    log.record(
                        lambda seq, wave, child=child, w=w: ControlEvent(
                            seq, wave, node=child, direction="down", word=w
                        )
                    )
                if child >= topo.n_leaves:
                    leaf_words[topo.pe_index(child)] = w
                else:
                    incoming[child] = w
        n_messages = 2 * topo.n_leaves - 2
        self.trace.record_wave(n_messages, n_messages * words_per_message)
        return leaf_words
