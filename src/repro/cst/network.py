"""A concrete CST instance: switches and PEs wired by a topology.

:class:`CSTNetwork` owns the mutable state (switch crossbars, PE latches,
the power meter) and offers exactly the operations schedulers need:

* stage/commit per-round switch configurations;
* *trace* the data path from a source leaf through the configured crossbars
  to wherever it is delivered (or dropped).

Tracing is how the reproduction verifies Theorem 4 adversarially: the
routing algorithms only ever manipulate counters, while the network
physically follows the configured connections hop by hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.exceptions import ProtocolError
from repro.types import Connection, InPort, OutPort, Role
from repro.cst.events import EventLog
from repro.cst.pe import ProcessingElement
from repro.cst.power import PowerMeter, PowerPolicy, PowerReport
from repro.cst.switch import Switch
from repro.cst.topology import CSTTopology

__all__ = ["TraceResult", "CSTNetwork"]


@dataclass(frozen=True, slots=True)
class TraceResult:
    """Outcome of following one payload through the crossbars.

    ``delivered_pe`` is the PE index reached, or ``None`` if the signal was
    dropped at an unconfigured port.  ``hops`` lists the switch heap ids
    traversed, in order.
    """

    source_pe: int
    delivered_pe: int | None
    hops: tuple[int, ...]

    @property
    def delivered(self) -> bool:
        return self.delivered_pe is not None


class CSTNetwork:
    """Switches + PEs + meter for one CST, with data-path tracing."""

    def __init__(
        self,
        topology: CSTTopology,
        *,
        policy: PowerPolicy | None = None,
        event_log: EventLog | None = None,
    ) -> None:
        self.topology = topology
        self.meter = PowerMeter(
            policy=policy or PowerPolicy.paper(), tree_height=topology.height
        )
        #: optional structured trace (see :mod:`repro.cst.events`)
        self.event_log = event_log
        self.switches: dict[int, Switch] = {
            v: Switch(v, self.meter) for v in topology.switches()
        }
        self.pes: list[ProcessingElement] = [
            ProcessingElement(i) for i in range(topology.n_leaves)
        ]
        self.rounds_run = 0
        #: PE indices holding a non-NEITHER role (maintained by
        #: :meth:`assign_roles`) — the only leaves obligation checks and
        #: role sweeps need to visit.
        self._roled_pes: list[int] = []
        #: set by :func:`repro.cst.faults.inject`; a faulty switch corrupts
        #: its configuration on *every* commit, so the selective fast path
        #: of :meth:`commit_round` must not skip idle switches then.
        self.fault_injected = False

    def fault_signature(self) -> tuple[tuple[int, str], ...]:
        """Identity of the currently injected faults: ``(heap id, fault name)``.

        Empty for a healthy network.  Caches keyed on network state (e.g.
        the scheduler's Phase-1 reuse) include this signature so injecting
        or clearing a fault between runs invalidates them.  Detected by
        duck typing (a faulty wrapper carries a ``fault`` attribute) so the
        substrate stays independent of :mod:`repro.cst.faults`.
        """
        if not self.fault_injected:
            return ()
        return tuple(
            (heap_id, sw.fault.name)
            for heap_id, sw in sorted(self.switches.items())
            if hasattr(sw, "fault")
        )

    # -- construction helpers ------------------------------------------------

    @classmethod
    def of_size(
        cls,
        n_leaves: int,
        *,
        policy: PowerPolicy | None = None,
        event_log: EventLog | None = None,
    ) -> "CSTNetwork":
        return cls(CSTTopology.of(n_leaves), policy=policy, event_log=event_log)

    def assign_roles(self, roles: Mapping[int, Role]) -> None:
        """Set PE roles from a ``pe index -> Role`` mapping; others NEITHER.

        Only PEs whose role or transfer state can have changed are touched:
        a NEITHER PE never writes nor latches, so sweeping all N leaves per
        set (as the seed did) is wasted work for sparse sets.
        """
        pes = self.pes
        for i in self._roled_pes:
            if i not in roles:
                pe = pes[i]
                pe.role = Role.NEITHER
                pe.reset_transfer_state()
        for i, role in roles.items():
            pe = pes[i]
            pe.role = role
            pe.reset_transfer_state()
        self._roled_pes = [i for i, r in roles.items() if r is not Role.NEITHER]

    # -- round protocol -------------------------------------------------------

    def stage(self, requirements: Mapping[int, Iterable[Connection]]) -> None:
        """Stage each switch's required connections for the coming round."""
        for heap_id, conns in requirements.items():
            self.switches[heap_id].require_all(conns)

    def commit_round(self, staged_ids: Iterable[int] | None = None) -> None:
        """Commit switches for this round (power is charged here).

        ``staged_ids`` — when the caller knows exactly which switches were
        staged this round — enables the fast path: only those switches are
        committed.  This is observationally equivalent to the full sweep
        only under the lazy (paper) teardown policy, where committing an
        unstaged switch is a no-op; with eager teardown (unstaged switches
        must clear), an attached event log (every switch logs its commit),
        or injected faults (corruption applies per commit), the full sweep
        runs regardless.
        """
        if (
            staged_ids is not None
            and self.event_log is None
            and not self.fault_injected
            and not self.meter.policy.eager_teardown
        ):
            switches = self.switches
            for heap_id in staged_ids:
                switches[heap_id].commit_round()
            self.rounds_run += 1
            return
        for sw in self.switches.values():
            before = sw.config_changes
            config = sw.commit_round()
            if self.event_log is not None:
                self.event_log.commit(
                    sw.heap_id,
                    tuple(sorted(str(c) for c in config)),
                    sw.config_changes != before,
                )
        self.rounds_run += 1

    # -- data path ---------------------------------------------------------------

    def trace_from(self, src_pe: int) -> TraceResult:
        """Follow a payload from PE ``src_pe`` through configured crossbars.

        The payload climbs onto the source leaf's upward link, then each
        switch forwards it according to its current configuration, until it
        either reaches a leaf (delivered) or hits an unconfigured input
        (dropped).  A configured root output toward the (non-existent)
        parent is a protocol violation.
        """
        topo = self.topology
        node = topo.leaf_heap_id(src_pe)
        in_port = InPort.R if node & 1 else InPort.L
        current = node >> 1
        hops: list[int] = []
        # a legal circuit visits each switch at most once; 2*height+1 bounds it.
        for _ in range(2 * topo.height + 1):
            hops.append(current)
            out = self.switches[current].output_for(in_port)
            if out is None:
                return TraceResult(src_pe, None, tuple(hops))
            if out is OutPort.P:
                if current == topo.root:
                    raise ProtocolError(
                        f"root switch configured to forward {in_port.value} to its parent"
                    )
                in_port = InPort.R if current & 1 else InPort.L
                current = current >> 1
            else:
                child = (current << 1) | (1 if out is OutPort.R else 0)
                if topo.is_leaf(child):
                    return TraceResult(src_pe, topo.pe_index(child), tuple(hops))
                in_port = InPort.P
                current = child
        raise ProtocolError(f"trace from PE {src_pe} exceeded maximum circuit length")

    def transfer(self, writer_pes: Iterable[int], round_no: int) -> list[TraceResult]:
        """Step 2.2: the given source PEs write; destinations latch.

        Returns one :class:`TraceResult` per writer.  Payloads delivered to
        a destination leaf are latched by that PE; payloads arriving at a
        non-destination leaf (possible only under injected faults) are
        recorded in the trace but not latched — the verifier flags them.
        """
        results: list[TraceResult] = []
        for src in writer_pes:
            pe = self.pes[src]
            datum = pe.write(round_no)
            tr = self.trace_from(src)
            results.append(tr)
            if self.event_log is not None:
                self.event_log.transfer(tr.source_pe, tr.delivered_pe, tr.hops)
            if tr.delivered_pe is not None:
                receiver = self.pes[tr.delivered_pe]
                if receiver.role is Role.DESTINATION:
                    receiver.latch(datum, round_no)
        return results

    # -- reporting -------------------------------------------------------------

    def power_report(self) -> PowerReport:
        return self.meter.report(self.rounds_run)

    def config_changes(self) -> dict[int, int]:
        """Per-switch configuration-change counts."""
        return {v: sw.config_changes for v, sw in self.switches.items()}

    @property
    def roled_pes(self) -> list[int]:
        """Indices of PEs holding a non-NEITHER role (sorted by assignment)."""
        return list(self._roled_pes)

    @property
    def all_done(self) -> bool:
        """True when every PE's obligation is satisfied.

        NEITHER PEs are vacuously done, so only roled PEs are checked.
        """
        pes = self.pes
        return all(pes[i].done for i in self._roled_pes)

    def reset(self) -> None:
        """Clear all mutable state (configurations, meters, PE latches)."""
        for sw in self.switches.values():
            sw.reset()
        for pe in self.pes:
            pe.reset_transfer_state()
        self.meter.reset()
        self.rounds_run = 0

    def __repr__(self) -> str:
        return (
            f"CSTNetwork(N={self.topology.n_leaves}, rounds={self.rounds_run}, "
            f"power={self.meter.total_units})"
        )
