"""Geometry of the Circuit Switched Tree.

The CST is a complete binary tree with ``N`` leaves (``N`` a power of two).
Leaves are processing elements, internal nodes are 3-sided switches, and
every tree edge is a full-duplex link (paper §1, Figure 1).

Addressing is heap-style:

* the root switch is heap id ``1``;
* node ``v`` has children ``2v`` (left) and ``2v+1`` (right);
* leaf ``i`` (PE index, ``0 <= i < N``) has heap id ``N + i``.

A *directed edge* is identified by its lower endpoint (the child node's heap
id) plus a :class:`~repro.types.Direction` — ``UP`` for child→parent traffic
and ``DOWN`` for parent→child.  Two communications may share an edge only in
opposite directions (the compatibility rule of [3] restated in paper §1).

The route of a communication ``(s, d)`` is the unique tree path: up from
leaf ``s`` to ``lca(s, d)``, then down to leaf ``d``.  Because an input of a
switch can never connect to an output of the same side, a path never "turns
around", so it crosses at most ``2 log N`` switches.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Mapping

from repro.exceptions import InvalidNodeError, TopologyError
from repro.types import Connection, Direction, InPort, OutPort, Side
from repro.util.bitmath import common_prefix_node, ilog2, is_power_of_two, level_of

__all__ = ["DirectedEdge", "CSTTopology"]


@dataclass(frozen=True, slots=True)
class DirectedEdge:
    """One direction of a full-duplex tree link.

    ``child`` is the heap id of the link's lower endpoint; ``direction`` is
    ``UP`` (child→parent) or ``DOWN`` (parent→child).
    """

    child: int
    direction: Direction

    @property
    def reverse(self) -> "DirectedEdge":
        return DirectedEdge(self.child, self.direction.opposite)

    def __str__(self) -> str:
        arrow = "^" if self.direction is Direction.UP else "v"
        return f"e({self.child}){arrow}"


class CSTTopology:
    """Immutable geometry of a CST with ``n_leaves`` processing elements.

    All methods are pure; the topology carries no switch state.  Instances
    are cheap and hashable by identity; :meth:`of` memoises them by size so
    workload generators and schedulers can share one object per ``N``.
    """

    __slots__ = ("_n", "_height")

    def __init__(self, n_leaves: int) -> None:
        if not isinstance(n_leaves, int) or isinstance(n_leaves, bool):
            raise TypeError(f"n_leaves must be int, got {type(n_leaves).__name__}")
        if n_leaves < 2 or not is_power_of_two(n_leaves):
            raise TopologyError(f"n_leaves must be a power of two >= 2, got {n_leaves}")
        self._n = n_leaves
        self._height = ilog2(n_leaves)

    # -- construction -------------------------------------------------

    @staticmethod
    @lru_cache(maxsize=None)
    def of(n_leaves: int) -> "CSTTopology":
        """Memoised constructor: one shared topology object per size."""
        return CSTTopology(n_leaves)

    # -- basic shape ---------------------------------------------------

    @property
    def n_leaves(self) -> int:
        """Number of processing elements ``N``."""
        return self._n

    @property
    def n_switches(self) -> int:
        """Number of internal 3-sided switches (``N - 1``)."""
        return self._n - 1

    @property
    def height(self) -> int:
        """Tree height ``log2 N`` (number of switch levels)."""
        return self._height

    @property
    def root(self) -> int:
        """Heap id of the root switch."""
        return 1

    @property
    def first_leaf(self) -> int:
        """Heap id of PE 0 — leaves occupy ``[first_leaf, heap_size)``."""
        return self._n

    @property
    def heap_size(self) -> int:
        """Size of a flat array indexed by heap id (``2N``; index 0 unused).

        The wave engine and the frontier tracker preallocate buffers of
        this size so the hot path never touches a dict.
        """
        return 2 * self._n

    def __repr__(self) -> str:
        return f"CSTTopology(n_leaves={self._n})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CSTTopology) and other._n == self._n

    def __hash__(self) -> int:
        return hash(("CSTTopology", self._n))

    # -- node classification -------------------------------------------

    def is_valid_node(self, heap_id: int) -> bool:
        return 1 <= heap_id < 2 * self._n

    def is_leaf(self, heap_id: int) -> bool:
        self._check_node(heap_id)
        return heap_id >= self._n

    def is_switch(self, heap_id: int) -> bool:
        self._check_node(heap_id)
        return heap_id < self._n

    def _check_node(self, heap_id: int) -> None:
        if not self.is_valid_node(heap_id):
            raise InvalidNodeError(f"heap id {heap_id} outside tree with {self._n} leaves")

    def _check_switch(self, heap_id: int) -> None:
        self._check_node(heap_id)
        if heap_id >= self._n:
            raise InvalidNodeError(f"heap id {heap_id} is a leaf, expected a switch")

    # -- leaf <-> heap mapping -------------------------------------------

    def leaf_heap_id(self, pe_index: int) -> int:
        """Heap id of PE ``pe_index`` (``0 <= pe_index < N``)."""
        if not 0 <= pe_index < self._n:
            raise InvalidNodeError(f"PE index {pe_index} outside [0, {self._n})")
        return self._n + pe_index

    def pe_index(self, heap_id: int) -> int:
        """PE index of a leaf heap id."""
        self._check_node(heap_id)
        if heap_id < self._n:
            raise InvalidNodeError(f"heap id {heap_id} is a switch, not a leaf")
        return heap_id - self._n

    # -- structural navigation ------------------------------------------

    def parent(self, heap_id: int) -> int:
        self._check_node(heap_id)
        if heap_id == 1:
            raise InvalidNodeError("root has no parent")
        return heap_id >> 1

    def left_child(self, heap_id: int) -> int:
        self._check_switch(heap_id)
        return heap_id << 1

    def right_child(self, heap_id: int) -> int:
        self._check_switch(heap_id)
        return (heap_id << 1) | 1

    def children(self, heap_id: int) -> tuple[int, int]:
        self._check_switch(heap_id)
        return (heap_id << 1, (heap_id << 1) | 1)

    def side_of(self, child_heap_id: int) -> Side:
        """Whether ``child_heap_id`` is the left or right child of its parent."""
        self._check_node(child_heap_id)
        if child_heap_id == 1:
            raise InvalidNodeError("root is not a child")
        return Side.RIGHT if child_heap_id & 1 else Side.LEFT

    def level(self, heap_id: int) -> int:
        """Level of a node: root is 0, leaves are ``height``."""
        self._check_node(heap_id)
        return level_of(heap_id)

    def switches(self) -> Iterator[int]:
        """All switch heap ids, root first (BFS order)."""
        return iter(range(1, self._n))

    def switches_at_level(self, lvl: int) -> range:
        """Heap ids of switches at level ``lvl`` (0 = root)."""
        if not 0 <= lvl < self._height:
            raise TopologyError(f"switch level must be in [0, {self._height}), got {lvl}")
        return range(1 << lvl, 1 << (lvl + 1))

    def ancestors(self, heap_id: int) -> Iterator[int]:
        """Proper ancestors of a node, nearest first, ending at the root."""
        self._check_node(heap_id)
        v = heap_id >> 1
        while v >= 1:
            yield v
            v >>= 1

    def subtree_leaf_range(self, heap_id: int) -> range:
        """PE indices of the leaves under ``heap_id`` (inclusive of itself if leaf)."""
        self._check_node(heap_id)
        v = heap_id
        depth = self._height - level_of(v)
        lo = (v << depth) - self._n
        hi = ((v + 1) << depth) - self._n
        return range(lo, hi)

    # -- LCA and routing ---------------------------------------------------

    def lca_of_pes(self, a: int, b: int) -> int:
        """Heap id of the lowest common ancestor switch of two PEs."""
        return common_prefix_node(self.leaf_heap_id(a), self.leaf_heap_id(b))

    def lca(self, heap_a: int, heap_b: int) -> int:
        self._check_node(heap_a)
        self._check_node(heap_b)
        return common_prefix_node(heap_a, heap_b)

    def path_edges(self, src_pe: int, dst_pe: int) -> tuple[DirectedEdge, ...]:
        """Directed edges used by the circuit from PE ``src_pe`` to ``dst_pe``.

        Up-edges from the source leaf to the LCA first, then down-edges from
        the LCA to the destination leaf (in travel order).
        """
        if src_pe == dst_pe:
            raise TopologyError(f"communication endpoints must differ, got PE {src_pe} twice")
        ls = self.leaf_heap_id(src_pe)
        ld = self.leaf_heap_id(dst_pe)
        a = common_prefix_node(ls, ld)
        up: list[DirectedEdge] = []
        v = ls
        while v != a:
            up.append(DirectedEdge(v, Direction.UP))
            v >>= 1
        down: list[DirectedEdge] = []
        v = ld
        while v != a:
            down.append(DirectedEdge(v, Direction.DOWN))
            v >>= 1
        down.reverse()
        return tuple(up + down)

    def path_switches(self, src_pe: int, dst_pe: int) -> tuple[int, ...]:
        """Switch heap ids traversed by the circuit, in travel order."""
        return tuple(self.path_connections(src_pe, dst_pe).keys())

    def path_connections(self, src_pe: int, dst_pe: int) -> Mapping[int, Connection]:
        """The crossbar connection each switch on the route must hold.

        Returns an ordered mapping ``switch heap id -> Connection`` in travel
        order: intermediate up-path switches connect ``child_in -> p_o``, the
        LCA connects ``src-side in -> dst-side out`` (``l_i->r_o`` for a
        right-oriented communication), and intermediate down-path switches
        connect ``p_i -> child_out``.
        """
        if src_pe == dst_pe:
            raise TopologyError(f"communication endpoints must differ, got PE {src_pe} twice")
        ls = self.leaf_heap_id(src_pe)
        ld = self.leaf_heap_id(dst_pe)
        a = common_prefix_node(ls, ld)

        conns: dict[int, Connection] = {}
        # climb from the source: at each switch above the source leaf but
        # below the LCA the signal enters from one child and leaves upward.
        v = ls
        while (v >> 1) != a:
            u = v >> 1
            in_port = InPort.R if v & 1 else InPort.L
            conns[u] = Connection(in_port, OutPort.P)
            v = u
        src_arm = v  # child of the LCA on the source side

        # descend to the destination: collect bottom-up, then reverse.
        desc: list[tuple[int, Connection]] = []
        v = ld
        while (v >> 1) != a:
            u = v >> 1
            out_port = OutPort.R if v & 1 else OutPort.L
            desc.append((u, Connection(InPort.P, out_port)))
            v = u
        dst_arm = v

        # the LCA turns the signal from the source arm to the destination arm.
        lca_in = InPort.R if src_arm & 1 else InPort.L
        lca_out = OutPort.R if dst_arm & 1 else OutPort.L
        conns[a] = Connection(lca_in, lca_out)

        for u, c in reversed(desc):
            conns[u] = c
        return conns

    def path_length(self, src_pe: int, dst_pe: int) -> int:
        """Number of switches on the route (``O(log N)`` by construction)."""
        ls = self.leaf_heap_id(src_pe)
        ld = self.leaf_heap_id(dst_pe)
        a = common_prefix_node(ls, ld)
        la = level_of(a)
        return (self._height - la - 1) * 2 + 1 if src_pe != dst_pe else 0
