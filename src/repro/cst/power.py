"""Power metering for CST schedules.

Paper §2.3: *"if the switch connects an input to an output, then it consumes
one unit of power"*; a configuration change touches at most three
connections, so one round costs a switch at most three units.  The crucial
modelling point is that a connection **held** across rounds costs nothing —
this is what the PADR technique exploits, and what Theorem 8 turns into an
O(1)-units-per-switch bound.

:class:`PowerPolicy` captures the teardown discipline:

* ``lazy`` (the paper's model, default): unused connections persist for
  free until displaced by a new connection on the same port;
* ``eager``: the crossbar is cleared every round, so every connection is
  re-established and re-charged — the behaviour of a naive controller and
  the ablation study of DESIGN.md (ABL).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

__all__ = ["PowerPolicy", "PowerMeter", "PowerReport"]


@dataclass(frozen=True, slots=True)
class PowerPolicy:
    """Accounting rules for the power meter.

    Three disciplines, from most to least power-aware:

    * **paper** (lazy): connections persist across rounds for free and are
      charged only when (re-)established — the model under which Theorem 8
      holds;
    * **eager**: connections not required this round are torn down, but a
      required connection that survived from last round is not re-charged
      (a diff-based controller without persistence);
    * **rebuild**: every required connection is charged every round — a
      controller that re-derives switch settings from scratch each round
      and cannot know they are unchanged.  This is how we model the prior
      ID-based algorithm's per-round configuration procedure (the O(w)
      comparison point of Theorem 8).
    """

    #: clear every switch's crossbar at the start of each round.
    eager_teardown: bool = False
    #: charge every staged connection each round, even if already in place.
    recharge: bool = False
    #: cost of establishing one input→output connection (paper: 1).
    unit_cost: int = 1
    #: H-tree wire model: weight a switch's connection cost by
    #: ``wire_weight_base ** (tree_height − level)`` — in a physical H-tree
    #: layout a level-k link is twice as long as a level-(k+1) link, so
    #: driving it costs more.  ``1`` (default) reproduces the paper's flat
    #: model; ``2`` is the physical H-tree.  Requires the meter to know
    #: switch levels (the network wires this up automatically).
    wire_weight_base: int = 1

    def __post_init__(self) -> None:
        if self.recharge and not self.eager_teardown:
            raise ValueError(
                "recharge accounting implies the crossbar is rebuilt each "
                "round; set eager_teardown=True as well"
            )
        if self.wire_weight_base < 1:
            raise ValueError("wire_weight_base must be >= 1")

    @staticmethod
    def paper() -> "PowerPolicy":
        """The paper's model: persistent configurations, unit cost 1."""
        return PowerPolicy(eager_teardown=False, unit_cost=1)

    @staticmethod
    def eager() -> "PowerPolicy":
        """Tear down unused connections every round; diff-based charging."""
        return PowerPolicy(eager_teardown=True, unit_cost=1)

    @staticmethod
    def rebuild() -> "PowerPolicy":
        """Re-establish (and re-charge) every connection every round."""
        return PowerPolicy(eager_teardown=True, recharge=True, unit_cost=1)

    @staticmethod
    def htree() -> "PowerPolicy":
        """Physical H-tree layout: level-weighted wire costs (base 2)."""
        return PowerPolicy(wire_weight_base=2)

    # kept as an alias for the ablation benchmark's historical name.
    naive = eager


@dataclass(frozen=True, slots=True)
class PowerReport:
    """Immutable summary of a finished schedule's power consumption."""

    total_units: int
    per_switch_units: Mapping[int, int]
    per_switch_changes: Mapping[int, int]
    rounds: int

    @property
    def max_switch_units(self) -> int:
        """Worst per-switch energy — the quantity Theorem 8 bounds."""
        return max(self.per_switch_units.values(), default=0)

    @property
    def max_switch_changes(self) -> int:
        """Worst per-switch number of configuration changes."""
        return max(self.per_switch_changes.values(), default=0)

    @property
    def mean_switch_units(self) -> float:
        if not self.per_switch_units:
            return 0.0
        return self.total_units / len(self.per_switch_units)

    def summary(self) -> str:
        return (
            f"power: total={self.total_units} units, "
            f"max/switch={self.max_switch_units}, "
            f"max changes/switch={self.max_switch_changes}, "
            f"rounds={self.rounds}"
        )


@dataclass
class PowerMeter:
    """Accumulates per-switch power units and configuration-change counts.

    ``tree_height`` is set by the owning network when the policy uses
    level-weighted wire costs; without it the weight is 1 everywhere.

    ``on_charge(switch_id, cost)`` / ``on_change(switch_id)`` are the
    observability layer's injectable hooks
    (:meth:`repro.obs.Instrumentation.attach`); they default to ``None``
    and cost one identity check per charge/change, so an unobserved run
    pays nothing measurable.
    """

    policy: PowerPolicy = field(default_factory=PowerPolicy.paper)
    tree_height: int | None = None
    _units: dict[int, int] = field(default_factory=dict)
    _changes: dict[int, int] = field(default_factory=dict)
    #: optional metrics sinks; see class docstring.
    on_charge: Callable[[int, int], None] | None = None
    on_change: Callable[[int], None] | None = None

    def _weight(self, switch_id: int) -> int:
        base = self.policy.wire_weight_base
        if base == 1 or self.tree_height is None:
            return 1
        from repro.util.bitmath import level_of

        return base ** (self.tree_height - level_of(switch_id))

    def charge(self, switch_id: int, n_connections: int) -> None:
        """Charge for ``n_connections`` newly-established connections."""
        if n_connections < 0:
            raise ValueError("cannot charge a negative number of connections")
        if n_connections:
            cost = n_connections * self.policy.unit_cost * self._weight(switch_id)
            self._units[switch_id] = self._units.get(switch_id, 0) + cost
            if self.on_charge is not None:
                self.on_charge(switch_id, cost)

    def note_change(self, switch_id: int) -> None:
        """Record that ``switch_id`` changed configuration this round."""
        self._changes[switch_id] = self._changes.get(switch_id, 0) + 1
        if self.on_change is not None:
            self.on_change(switch_id)

    @property
    def total_units(self) -> int:
        return sum(self._units.values())

    @property
    def total_changes(self) -> int:
        return sum(self._changes.values())

    def units_of(self, switch_id: int) -> int:
        return self._units.get(switch_id, 0)

    def changes_of(self, switch_id: int) -> int:
        return self._changes.get(switch_id, 0)

    def report(self, rounds: int) -> PowerReport:
        return PowerReport(
            total_units=self.total_units,
            per_switch_units=dict(self._units),
            per_switch_changes=dict(self._changes),
            rounds=rounds,
        )

    def reset(self) -> None:
        self._units.clear()
        self._changes.clear()
