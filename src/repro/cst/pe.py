"""Processing elements — the leaves of the CST.

Each PE knows only its own role (source / destination / neither), a purely
local datum (paper Step 1.1).  During data-transfer steps a source PE writes
a payload onto its upward link and a destination PE latches whatever arrives
on its downward link.  PEs never see the global pairing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.types import Role

__all__ = ["ProcessingElement"]


@dataclass
class ProcessingElement:
    """A leaf of the CST.

    Attributes
    ----------
    index:
        PE index in ``[0, N)``, left to right.
    role:
        The PE's local knowledge for the current communication set.
    payload:
        Datum a source writes when scheduled.  Defaults to the PE's own
        index so end-to-end delivery can be checked without extra setup.
    received:
        Payloads latched by a destination, in arrival (round) order.
    sent_round / received_round:
        Round numbers at which this PE transmitted / latched (or ``None``).
    """

    index: int
    role: Role = Role.NEITHER
    payload: Any = None
    received: list[Any] = field(default_factory=list)
    sent_round: int | None = None
    received_round: int | None = None

    def __post_init__(self) -> None:
        if self.payload is None:
            self.payload = ("pe", self.index)

    # -- role wire protocol (Step 1.1) ----------------------------------

    def role_word(self) -> tuple[int, int]:
        """The ``[1,0]`` / ``[0,1]`` / ``[0,0]`` word sent to the parent."""
        return self.role.wire_encoding

    # -- data transfer ---------------------------------------------------

    def write(self, round_no: int) -> Any:
        """Emit this source's payload (Step 2.2)."""
        if self.role is not Role.SOURCE:
            raise ValueError(f"PE {self.index} asked to write but role is {self.role.value}")
        if self.sent_round is not None:
            raise ValueError(f"PE {self.index} already transmitted in round {self.sent_round}")
        self.sent_round = round_no
        return self.payload

    def latch(self, datum: Any, round_no: int) -> None:
        """Latch an arriving payload at a destination."""
        if self.role is not Role.DESTINATION:
            raise ValueError(f"PE {self.index} received data but role is {self.role.value}")
        self.received.append(datum)
        if self.received_round is None:
            self.received_round = round_no

    @property
    def done(self) -> bool:
        """True once this PE's communication obligation is satisfied."""
        if self.role is Role.SOURCE:
            return self.sent_round is not None
        if self.role is Role.DESTINATION:
            return self.received_round is not None
        return True

    def reset_transfer_state(self) -> None:
        self.received.clear()
        self.sent_round = None
        self.received_round = None
