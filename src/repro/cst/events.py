"""Structured event tracing for the CST simulator.

An :class:`EventLog` attached to a :class:`~repro.cst.network.CSTNetwork`
records, in order, everything observable about a run: control words moving
on links, crossbar commits, and payload transfers.  It exists for
debugging distributed-control issues (the CSA's behaviour is otherwise
spread across waves) and for teaching: ``cst-padr demo`` level output can
be reconstructed entirely from a log.

Tracing is strictly opt-in and zero-cost when absent (a ``None`` check at
each site).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "Event",
    "ControlEvent",
    "CommitEvent",
    "TransferEvent",
    "EventLog",
]


@dataclass(frozen=True, slots=True)
class Event:
    """Base event: a sequence number and the engine wave it occurred in."""

    seq: int
    wave: int


@dataclass(frozen=True, slots=True)
class ControlEvent(Event):
    """A control word delivered to ``node`` (heap id; leaves included)."""

    node: int
    direction: str  # "up" | "down"
    word: Any

    def __str__(self) -> str:
        arrow = "↑" if self.direction == "up" else "↓"
        return f"[w{self.wave}] ctrl {arrow} node {self.node}: {self.word}"


@dataclass(frozen=True, slots=True)
class CommitEvent(Event):
    """A switch committed its round configuration."""

    switch: int
    connections: tuple[str, ...]
    changed: bool

    def __str__(self) -> str:
        conns = ", ".join(self.connections) or "idle"
        mark = "*" if self.changed else " "
        return f"[w{self.wave}] commit{mark} switch {self.switch}: {conns}"


@dataclass(frozen=True, slots=True)
class TransferEvent(Event):
    """A payload traced from a source leaf to its delivery (or drop)."""

    source_pe: int
    delivered_pe: int | None
    hops: tuple[int, ...]

    def __str__(self) -> str:
        dest = self.delivered_pe if self.delivered_pe is not None else "DROPPED"
        return (
            f"[w{self.wave}] data PE {self.source_pe} -> {dest} "
            f"via {list(self.hops)}"
        )


@dataclass
class EventLog:
    """An append-only, filterable record of simulator events."""

    events: list[Event] = field(default_factory=list)
    wave: int = 0
    _seq: int = 0

    def next_wave(self) -> None:
        """Advance the wave counter (engine calls this per wave)."""
        self.wave += 1

    def record(self, make) -> None:
        """Append an event built by ``make(seq, wave)``."""
        self.events.append(make(self._seq, self.wave))
        self._seq += 1

    # -- closure-free recording ---------------------------------------------
    #
    # The :meth:`record` protocol allocates a lambda per call site even for
    # the common event kinds; the wave engine's hot loops use these direct
    # appenders instead.

    def control(self, node: int, direction: str, word: Any) -> None:
        """Append a :class:`ControlEvent` without building a closure."""
        self.events.append(ControlEvent(self._seq, self.wave, node, direction, word))
        self._seq += 1

    def commit(self, switch: int, connections: tuple[str, ...], changed: bool) -> None:
        """Append a :class:`CommitEvent` without building a closure."""
        self.events.append(
            CommitEvent(self._seq, self.wave, switch, connections, changed)
        )
        self._seq += 1

    def transfer(
        self, source_pe: int, delivered_pe: int | None, hops: tuple[int, ...]
    ) -> None:
        """Append a :class:`TransferEvent` without building a closure."""
        self.events.append(
            TransferEvent(self._seq, self.wave, source_pe, delivered_pe, hops)
        )
        self._seq += 1

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def of_kind(self, kind: type) -> list[Event]:
        return [e for e in self.events if isinstance(e, kind)]

    def in_wave(self, wave: int) -> list[Event]:
        return [e for e in self.events if e.wave == wave]

    def commits_of(self, switch: int) -> list[CommitEvent]:
        return [
            e
            for e in self.events
            if isinstance(e, CommitEvent) and e.switch == switch
        ]

    def render(self, *, changed_only: bool = False) -> str:
        """Human-readable dump; ``changed_only`` hides no-op commits."""
        lines = []
        for e in self.events:
            if changed_only and isinstance(e, CommitEvent) and not e.changed:
                continue
            lines.append(str(e))
        return "\n".join(lines)

    def summary(self) -> dict[str, int]:
        return {
            "waves": self.wave,
            "control": len(self.of_kind(ControlEvent)),
            "commits": len(self.of_kind(CommitEvent)),
            "changed_commits": sum(
                1 for e in self.of_kind(CommitEvent) if e.changed  # type: ignore[attr-defined]
            ),
            "transfers": len(self.of_kind(TransferEvent)),
        }
