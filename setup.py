"""Legacy shim so `pip install -e .` works on old setuptools without wheel.

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
