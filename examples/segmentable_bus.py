#!/usr/bin/env python3
"""Segmentable-bus emulation — the workload class the paper motivates.

The paper (§1) notes that well-nested sets are a superset of the
communications required by the *segmentable bus*, a fundamental
reconfigurable architecture: the bus splits into segments and the PE at
the left end of each segment broadcasts to its segment.

This example emulates a sequence of segmentation steps of a 64-PE bus on
the CST (each step is one well-nested set of width 1), schedules each step
with the CSA, and shows the PADR payoff across steps: switches only
reconfigure where the segment boundaries moved.

Run:  python examples/segmentable_bus.py
"""

import sys

from repro import PADRScheduler, segmentable_bus, verify_schedule
from repro.cst.network import CSTNetwork


def main() -> int:
    n = 64
    # a program's segmentation evolves step by step (e.g. parallel prefix)
    steps = [
        [0, 16, 32, 48, 64],          # 4 coarse segments
        [0, 8, 16, 24, 32, 40, 48, 56, 64],  # split each in half
        [0, 8, 16, 32, 48, 56, 64],   # merge the middle back
        [0, 32, 64],                  # final coarse pass
    ]

    total_power = 0
    for i, bounds in enumerate(steps):
        cset = segmentable_bus(bounds)
        schedule = PADRScheduler().schedule(cset, n)
        verify_schedule(schedule, cset).raise_if_failed()
        total_power += schedule.power.total_units
        print(
            f"step {i}: {len(bounds) - 1:2d} segments -> "
            f"{schedule.n_rounds} round(s), "
            f"{schedule.power.total_units:3d} power units, "
            f"max changes/switch {schedule.power.max_switch_changes}"
        )

    print(f"\ntotal energy over {len(steps)} segmentation steps: {total_power} units")
    print("every step is width 1: a segmentable bus never needs multiple rounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
