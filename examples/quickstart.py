#!/usr/bin/env python3
"""Quickstart: route a well-nested communication set power-optimally.

Builds a random well-nested workload, schedules it with the paper's CSA,
verifies every delivery against ground truth, and prints the quantities
the paper's three theorems are about.

Run:  python examples/quickstart.py [seed]
"""

import sys

import numpy as np

from repro import (
    PADRScheduler,
    check_round_optimality,
    random_well_nested,
    verify_schedule,
    width,
)
from repro.viz.ascii import render_leaf_roles, render_schedule_timeline


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    rng = np.random.default_rng(seed)

    n_leaves = 32
    cset = random_well_nested(n_pairs=8, n_leaves=n_leaves, rng=rng)
    w = width(cset)

    print(f"workload: {len(cset)} communications on a {n_leaves}-leaf CST, width {w}")
    print(render_leaf_roles(cset, n_leaves))
    print()

    # the paper's algorithm: distributed, counters-and-ranks only
    schedule = PADRScheduler().schedule(cset, n_leaves)

    # Theorem 4: every payload reached exactly its matching destination
    verify_schedule(schedule, cset).raise_if_failed()
    print("Theorem 4: all deliveries correct (verified by crossbar tracing)")

    # Theorem 5: exactly `width` rounds
    check_round_optimality(schedule, cset, require_optimal=True)
    print(f"Theorem 5: {schedule.n_rounds} rounds == width {w} (optimal)")

    # Theorem 8: constant configuration changes per switch
    print(
        f"Theorem 8: max configuration changes on any switch = "
        f"{schedule.power.max_switch_changes} "
        f"(total energy {schedule.power.total_units} units)"
    )
    print()
    print(render_schedule_timeline(schedule))
    return 0


if __name__ == "__main__":
    sys.exit(main())
