#!/usr/bin/env python3
"""CST as a network-on-chip interconnect under phased traffic.

The paper (§1) cites NoCs as a CST application domain.  This example
models an SoC whose 64 IP blocks hang off one CST and whose traffic comes
in repeating *phases* (DMA bursts, then core-to-accelerator transfers,
then the DMA pattern again...).  Two properties of the reproduction show
up together:

* arbitrary phase patterns — including crossing pairs, which are not
  well-nested — are handled by the general-set scheduler;
* across phases, the stream scheduler keeps crossbar configurations in
  place, so a *recurring* phase is almost free in configuration energy:
  the PADR idea applied at the timescale above a single schedule.

Run:  python examples/noc_traffic.py
"""

import sys

from repro import Communication, CommunicationSet
from repro.extensions.general import GeneralSetScheduler
from repro.extensions.stream import StreamScheduler
from repro.analysis.verifier import verify_schedule


def dma_burst() -> CommunicationSet:
    """Memory controller regions streaming to accelerator tiles."""
    return CommunicationSet(
        [
            Communication(0, 40),   # DDR ctrl 0 -> accel cluster
            Communication(2, 33),
            Communication(5, 23),
            Communication(48, 63),  # DDR ctrl 1 -> IO tile
        ]
    )


def core_to_accel() -> CommunicationSet:
    """Cores pushing work descriptors; replies flow leftward (mixed)."""
    return CommunicationSet(
        [
            Communication(8, 20),
            Communication(9, 21),   # crosses nothing: nested neighbours
            Communication(30, 12),  # a reply: left-oriented
            Communication(58, 36),  # another reply
        ]
    )


def main() -> int:
    n = 64
    # one phase with crossings + mixed orientation, scheduled standalone
    phase = core_to_accel()
    sched = GeneralSetScheduler()
    s = sched.schedule(phase, n)
    verify_schedule(s, phase).raise_if_failed()
    print(
        f"mixed phase: {len(phase)} transfers, "
        f"{sched.last_layering.total_layers} well-nested layers, "
        f"{s.n_rounds} rounds, {s.power.total_units} units"
    )

    # the recurring traffic program: DMA, compute, DMA, compute, ...
    # (stream scheduling needs right-oriented well-nested phases, so feed
    # it the DMA pattern alternating with a disjoint collection phase)
    collect = CommunicationSet(
        [Communication(16, 19), Communication(24, 27), Communication(52, 55)]
    )
    program = [dma_burst(), collect] * 4

    persistent = StreamScheduler().run(program, n)
    fresh = StreamScheduler(fresh_network_per_step=True).run(program, n)

    print("\nphased traffic, 8 steps (DMA / collect alternating):")
    print(f"  per-step energy, persistent configs : {persistent.power_profile()}")
    print(f"  per-step energy, fresh configs      : {fresh.power_profile()}")
    print(
        f"  totals: {persistent.total_power} vs {fresh.total_power} units "
        f"({100 * (1 - persistent.total_power / fresh.total_power):.0f}% saved "
        "by keeping configurations across phases)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
