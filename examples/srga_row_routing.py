#!/usr/bin/env python3
"""Routing on the SRGA — the architecture the CST comes from.

The Self-Reconfigurable Gate Array (Sidhu et al. 2000) connects every row
and every column of a PE grid with its own CST.  This example models one
data-redistribution step of a stencil-style computation on a 16x16 SRGA:

* every row shifts boundary values rightward across nested halo regions
  (a width-2 well-nested set per row);
* every fourth column gathers partial results upward... downward — column
  sets run concurrently on their own trees.

Run:  python examples/srga_row_routing.py
"""

import sys

from repro import SRGA, Communication, CommunicationSet


def halo_row_set() -> CommunicationSet:
    """Nested halo exchange within a 16-PE row: width 2."""
    return CommunicationSet(
        [
            Communication(0, 15),  # row-global boundary broadcast
            Communication(1, 7),   # left-half halo
            Communication(8, 14),  # right-half halo
        ]
    )


def gather_col_set() -> CommunicationSet:
    """Column partial-result forwarding: disjoint pairs, width 1."""
    return CommunicationSet(
        [Communication(0, 3), Communication(4, 7), Communication(8, 11)]
    )


def main() -> int:
    grid = SRGA(16, 16)
    row_sets = {r: halo_row_set() for r in range(16)}
    col_sets = {c: gather_col_set() for c in range(0, 16, 4)}

    result = grid.route(row_sets=row_sets, col_sets=col_sets)

    print(f"SRGA {grid.rows}x{grid.cols}: "
          f"{len(row_sets)} row trees + {len(col_sets)} column trees driven")
    print(f"makespan      : {result.makespan} rounds (trees run concurrently)")
    print(f"total energy  : {result.total_power} units")
    print(f"worst switch  : {result.max_switch_changes} configuration change(s)")

    r0 = result.row_schedules[0]
    print("\nrow 0 in detail:")
    for rnd in r0.rounds:
        print(f"  round {rnd.index}: " + "  ".join(str(c) for c in rnd.performed))

    c0 = result.col_schedules[0]
    print(f"\ncolumn 0: {c0.n_rounds} round(s), "
          f"{c0.power.total_units} units on its own tree")
    return 0


if __name__ == "__main__":
    sys.exit(main())
