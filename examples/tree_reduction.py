#!/usr/bin/env python3
"""Computing on the CST: tree reduction under PADR (paper §6 direction).

Sums (and max-reduces) 64 values in log2(64) = 6 communication steps,
every payload physically routed through the simulated crossbars by the
CSA.  The answer is produced by the interconnect, not by Python shortcut
arithmetic — a wrong switch setting anywhere would corrupt it.

Run:  python examples/tree_reduction.py
"""

import operator
import sys

import numpy as np

from repro.extensions.algorithms import tree_reduce


def main() -> int:
    rng = np.random.default_rng(7)
    values = rng.integers(0, 100, size=64).tolist()

    total = tree_reduce(values, operator.add)
    biggest = tree_reduce(values, max)

    print(f"64 values reduced on a 64-leaf CST")
    print(f"  sum  = {total.value}   (python check: {sum(values)})")
    print(f"  max  = {biggest.value}   (python check: {max(values)})")
    print(
        f"  cost = {total.steps} steps, {total.total_rounds} routing rounds, "
        f"{total.total_power_units} configuration-energy units"
    )
    assert total.value == sum(values)
    assert biggest.value == max(values)

    # non-commutative check: concatenation preserves index order
    text = tree_reduce(list("reconfigurable!!"), operator.add)
    print(f"  order-preserving concat of 16 chars -> {text.value!r}")
    assert text.value == "reconfigurable!!"
    return 0


if __name__ == "__main__":
    sys.exit(main())
