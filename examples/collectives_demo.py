#!/usr/bin/env python3
"""Collective operations as CST programs (paper §6: other patterns).

Runs gather, scatter, shift and reverse on a 16-leaf CST with real
payloads and prints the cost of each — steps (communication sets),
routing rounds, and configuration energy.

Run:  python examples/collectives_demo.py
"""

import sys

from repro.extensions.collectives import gather, reverse, scatter, shift


def main() -> int:
    n = 16
    values = [f"v{i}" for i in range(n)]

    g = gather(values)
    print(f"gather : {g.steps} steps, {g.total_rounds} rounds, "
          f"{g.total_power_units} units -> PE {n - 1} holds {g.values[n - 1][:4]}...")
    assert g.values[n - 1] == values

    s = scatter(values)
    print(f"scatter: {s.steps} steps, {s.total_rounds} rounds, "
          f"{s.total_power_units} units -> PE 5 holds {s.values[5]!r}")
    assert s.values == {i: v for i, v in enumerate(values)}

    sh = shift(values, 4)
    print(f"shift+4: {sh.steps} steps, {sh.total_rounds} rounds, "
          f"{sh.total_power_units} units -> PE 4 holds {sh.values[4]!r}")
    assert sh.values == {i + 4: values[i] for i in range(n - 4)}

    r = reverse(values)
    print(f"reverse: {r.steps} phases, {r.total_rounds} rounds, "
          f"{r.total_power_units} units -> PE 0 holds {r.values[0]!r}")
    assert r.values == {n - 1 - i: values[i] for i in range(n)}

    print("\nall collectives payload-verified against their semantics")
    return 0


if __name__ == "__main__":
    sys.exit(main())
