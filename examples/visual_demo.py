#!/usr/bin/env python3
"""Visual walk-through of the CSA on the paper's Figure 2 example.

Prints the leaf roles, the Phase-1 counters on the tree, every round's
crossbar configuration, the timeline, and the per-switch change profile —
the whole paper in one terminal screenful.

Run:  python examples/visual_demo.py
"""

import sys

from repro import PADRScheduler, paper_figure2_set, width
from repro.core.phase1 import phase1_states
from repro.cst.topology import CSTTopology
from repro.viz.ascii import (
    render_change_profile,
    render_leaf_roles,
    render_round_configuration,
    render_schedule_timeline,
    render_tree,
)


def main() -> int:
    n = 16
    cset = paper_figure2_set(n)
    print("the paper's Figure 2 communication set:")
    print(render_leaf_roles(cset, n))

    print("\nPhase 1 — stored counters [M | S_L-M | D_L | S_R | D_R-M]:")
    states = phase1_states(cset, n)
    topo = CSTTopology.of(n)
    print(
        render_tree(
            topo, lambda v: "|".join(str(x) for x in states[v].as_tuple())
        )
    )

    schedule = PADRScheduler().schedule(cset, n)
    print(f"\nPhase 2 — {schedule.n_rounds} rounds for width {width(cset)}:")
    for r in range(schedule.n_rounds):
        print()
        print(render_round_configuration(schedule, r))

    print("\ntimeline:")
    print(render_schedule_timeline(schedule))

    print("\nper-switch configuration changes (Theorem 8):")
    print(render_change_profile(schedule))
    print(f"\n{schedule.power.summary()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
