#!/usr/bin/env python3
"""The paper's headline result as one table: O(1) vs O(w) switch power.

Sweeps the width on crossing-chain workloads and compares:

* the CSA (persistent configurations, outermost-first) — Theorem 8's O(1);
* the Roy-style ID scheduler under per-round reconfiguration — Θ(w);
* random-order scheduling under persistent configurations — the ablation
  showing the outermost-first rule matters on its own;
* the sequential scheduler — the round-count anti-baseline.

Run:  python examples/power_comparison.py [max_width]
"""

import sys

from repro import (
    MetricsRegistry,
    PADRScheduler,
    PowerPolicy,
    RandomOrderScheduler,
    RoyIDScheduler,
    SequentialScheduler,
    crossing_chain,
    observe_schedule,
)
from repro.analysis.comparison import format_table
from repro.viz.ascii import render_change_profile_from_snapshot


def main() -> int:
    max_width = int(sys.argv[1]) if len(sys.argv) > 1 else 128

    rows = []
    w = 4
    while w <= max_width:
        cset = crossing_chain(w)
        csa = PADRScheduler().schedule(cset)
        roy = RoyIDScheduler().schedule(cset, policy=PowerPolicy.rebuild())
        rand = RandomOrderScheduler(seed=1).schedule(cset)
        seq = SequentialScheduler().schedule(cset)
        rows.append(
            {
                "width": w,
                "csa rounds": csa.n_rounds,
                "csa max-chg": csa.power.max_switch_changes,
                "csa max-units": csa.power.max_switch_units,
                "roy(rebuild) max-units": roy.power.max_switch_units,
                "random(lazy) max-chg": rand.power.max_switch_changes,
                "sequential rounds": seq.n_rounds,
            }
        )
        w *= 2

    print("per-switch power vs width w (crossing chains):\n")
    print(format_table(rows))
    print(
        "\nshape check: the CSA columns stay flat (O(1), Theorem 8); the\n"
        "Roy column equals w (Θ(w), the prior art); random-order grows with\n"
        "w even under the paper's persistent-configuration power model."
    )

    # The same contrast as trees: per-switch configuration-change counts
    # rendered from one metrics-registry snapshot holding both runs.
    w = min(16, max_width)
    cset = crossing_chain(w)
    registry = MetricsRegistry()
    observe_schedule(registry, PADRScheduler().schedule(cset), run="csa")
    observe_schedule(
        registry,
        RoyIDScheduler().schedule(cset, policy=PowerPolicy.rebuild()),
        run="roy",
    )
    snapshot = registry.snapshot()
    n = cset.min_leaves()
    print(f"\nper-switch configuration changes at width {w} (CSA — flat, O(1)):\n")
    print(render_change_profile_from_snapshot(snapshot, n, run="csa"))
    print(
        "\nsame workload, Roy baseline: per-switch connection"
        "\nre-establishments under per-round rebuild (grows to Θ(w)):\n"
    )
    print(
        render_change_profile_from_snapshot(snapshot, n, run="roy", counter="power.units")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
