"""WSTAT — workload characterisation: what do random well-nested sets look like?

Calibrates the benchmark workloads themselves: the expected width of a
uniform random well-nested set of M pairs grows like Θ(√M) (the height of
a random Dyck path), so width-stress experiments must use crossing chains
— random sets alone would never exercise large widths.  This benchmark
regenerates that calibration table.
"""

import numpy as np

from repro.analysis.stats import random_width_distribution, workload_statistics
from repro.comms.generators import crossing_chain, random_well_nested

from conftest import emit


def test_wstat_width_distribution_sqrt_growth(benchmark):
    def sweep():
        rng = np.random.default_rng(99)
        rows = []
        for n_pairs in (8, 32, 128):
            d = random_width_distribution(n_pairs, 4 * n_pairs, 40, rng)
            rows.append(
                {
                    "pairs": n_pairs,
                    "mean_width": round(d["mean"], 2),
                    "p95_width": d["p95"],
                    "max_width": d["max"],
                }
            )
        return rows

    rows = benchmark(sweep)
    emit("WSTAT: width of uniform random well-nested sets", rows)
    # Θ(√M): 16x the pairs should give well under 16x the width
    assert rows[2]["mean_width"] < 6 * rows[0]["mean_width"]
    assert rows[2]["mean_width"] > rows[0]["mean_width"]


def test_wstat_generator_shapes(benchmark):
    """Side-by-side stats of the named generators."""

    def collect():
        rng = np.random.default_rng(1)
        rows = []
        for name, cset in [
            ("crossing_chain(8)", crossing_chain(8)),
            ("random(32 pairs)", random_well_nested(32, 128, rng)),
        ]:
            stats = workload_statistics(cset)
            row = {"workload": name}
            row.update(stats.row())
            rows.append(row)
        return rows

    rows = benchmark(collect)
    emit("WSTAT: generator characterisation", rows)
    chain = rows[0]
    assert chain["width"] == 8 and chain["max_depth"] == 8
