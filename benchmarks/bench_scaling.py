"""SCALE — engineering throughput: simulator cost vs tree and set size.

No paper counterpart (the paper is analytic); this tracks the
reproduction's own performance so regressions are visible.  The expected
shape: per-round work is Θ(N) (one wave touches every link), so total time
≈ Θ(N · w) for a width-w set on an N-leaf tree.
"""

import numpy as np
import pytest

from repro.comms.generators import crossing_chain, random_well_nested
from repro.core.csa import PADRScheduler


@pytest.mark.parametrize("n", [64, 256, 1024, 4096])
def test_scale_tree_size(benchmark, n):
    """Fixed width-8 workload, growing tree."""
    cset = crossing_chain(8, n)
    benchmark(lambda: PADRScheduler(validate_input=False).schedule(cset, n_leaves=n))


@pytest.mark.parametrize("pairs", [16, 64, 256])
def test_scale_set_size(benchmark, pairs):
    """Fixed 1024-leaf tree, growing random sets."""
    rng = np.random.default_rng(pairs)
    cset = random_well_nested(pairs, 1024, rng)
    benchmark(lambda: PADRScheduler(validate_input=False).schedule(cset, n_leaves=1024))


def test_scale_phase1_only(benchmark):
    """Phase 1 in isolation: one upward wave on a 4096-leaf tree."""
    from repro.core.phase1 import phase1_states

    cset = crossing_chain(32, 4096)
    benchmark(lambda: phase1_states(cset, 4096))


def test_scale_width_computation(benchmark):
    """The width oracle on a dense 1024-leaf workload."""
    from repro.comms.width import width
    from repro.cst.topology import CSTTopology

    rng = np.random.default_rng(0)
    cset = random_well_nested(512, 1024, rng)
    topo = CSTTopology.of(1024)
    benchmark(lambda: width(cset, topo))
