"""FIG2 — paper Figure 2: the worked well-nested example, end to end.

Schedules the figure's communication set with every scheduler and prints
the round-by-round decomposition; asserts the CSA finishes in width
(= 2) rounds with every pair delivered.
"""

from repro.analysis.comparison import compare_schedulers
from repro.analysis.verifier import verify_schedule
from repro.baselines import RoyIDScheduler, SequentialScheduler
from repro.comms.generators import paper_figure2_set
from repro.comms.width import width
from repro.core.csa import PADRScheduler
from repro.viz.ascii import render_leaf_roles, render_schedule_timeline

from conftest import emit


def test_fig2_schedule_the_papers_example(benchmark):
    cset = paper_figure2_set()
    n = 16

    schedule = benchmark(lambda: PADRScheduler().schedule(cset, n_leaves=n))

    verify_schedule(schedule, cset).raise_if_failed()
    assert width(cset) == 2
    assert schedule.n_rounds == 2

    print("\n" + render_leaf_roles(cset, n))
    print(render_schedule_timeline(schedule))

    rows = [
        {
            "round": r.index,
            "performed": "  ".join(str(c) for c in r.performed),
            "writers": list(r.writers),
        }
        for r in schedule.rounds
    ]
    emit("FIG2: CSA rounds on the Figure-2 set", rows)


def test_fig2_all_schedulers_on_the_example(benchmark):
    cset = paper_figure2_set()
    schedulers = [PADRScheduler(), RoyIDScheduler(), SequentialScheduler()]

    comparison = benchmark(lambda: compare_schedulers(cset, schedulers, 16))

    emit("FIG2: scheduler comparison on the Figure-2 set", comparison.rows())
    assert comparison.by_name("padr-csa").n_rounds == 2
    assert comparison.by_name("sequential").n_rounds == len(cset)
