"""T4 — Theorem 4: correctness of the CSA on adversarial random workloads.

The CSA never sees the pairing (only counters and ranks); the verifier
checks every delivery against ground truth.  This benchmark runs a batch
of random well-nested sets end-to-end (schedule + verify) and reports the
aggregate: zero failures expected at every size.
"""

import numpy as np

from repro.analysis.verifier import verify_schedule
from repro.comms.generators import random_well_nested
from repro.core.csa import PADRScheduler

from conftest import emit


def _run_batch(n_sets: int, n_pairs: int, n_leaves: int, seed: int):
    rng = np.random.default_rng(seed)
    ok = 0
    rounds = []
    for _ in range(n_sets):
        cset = random_well_nested(n_pairs, n_leaves, rng)
        s = PADRScheduler().schedule(cset, n_leaves=n_leaves)
        report = verify_schedule(s, cset)
        ok += report.ok
        rounds.append(s.n_rounds)
    return ok, rounds


def test_t4_small_sets_batch(benchmark):
    ok, rounds = benchmark(lambda: _run_batch(20, 8, 32, seed=1))
    assert ok == 20
    emit(
        "T4: 20 random 8-pair sets on 32 leaves",
        [{"verified_ok": ok, "of": 20, "mean_rounds": round(np.mean(rounds), 2)}],
    )


def test_t4_medium_sets_batch(benchmark):
    ok, rounds = benchmark(lambda: _run_batch(10, 48, 128, seed=2))
    assert ok == 10
    emit(
        "T4: 10 random 48-pair sets on 128 leaves",
        [{"verified_ok": ok, "of": 10, "mean_rounds": round(np.mean(rounds), 2)}],
    )


def test_t4_dense_sets_batch(benchmark):
    """Every leaf an endpoint — the densest legal workload."""
    ok, rounds = benchmark(lambda: _run_batch(5, 128, 256, seed=3))
    assert ok == 5
    emit(
        "T4: 5 dense 128-pair sets on 256 leaves (all leaves endpoints)",
        [{"verified_ok": ok, "of": 5, "mean_rounds": round(np.mean(rounds), 2)}],
    )
