"""STREAM — PADR across a workload stream (extension, DESIGN.md EXT2).

The paper bounds configuration changes within one schedule; this
experiment measures the same persistence principle *across* schedules:
repeated or overlapping communication sets on one network reuse the
circuits still sitting in the crossbars.

Expected shape: the first occurrence of a pattern pays full price, every
repetition pays only the delta against what the intervening phases
displaced; with fresh networks each step pays full price forever.
"""

import numpy as np

from repro.comms.generators import random_well_nested, segmentable_bus
from repro.extensions.stream import StreamScheduler

from conftest import emit


def test_stream_repeated_pattern(benchmark):
    """A fixed segmentation re-issued 6 times."""
    cset = segmentable_bus([0, 8, 16, 24, 32])
    program = [cset] * 6

    def both():
        persistent = StreamScheduler().run(program, 32)
        fresh = StreamScheduler(fresh_network_per_step=True).run(program, 32)
        return persistent, fresh

    persistent, fresh = benchmark(both)
    emit(
        "STREAM: repeated segmentation, per-step energy",
        [
            {"discipline": "persistent", "profile": persistent.power_profile(),
             "total": persistent.total_power},
            {"discipline": "fresh", "profile": fresh.power_profile(),
             "total": fresh.total_power},
        ],
    )
    # repetitions are free under persistence
    assert persistent.power_profile()[1:] == [0] * 5
    # and identical full-price under fresh networks
    assert len(set(fresh.power_profile())) == 1
    assert persistent.total_power * 6 == fresh.total_power


def test_stream_evolving_workload(benchmark):
    """Random sets drifting over time: persistence still pays."""
    rng = np.random.default_rng(3)
    program = [random_well_nested(10, 64, rng) for _ in range(8)]

    def both():
        persistent = StreamScheduler().run(program, 64)
        fresh = StreamScheduler(fresh_network_per_step=True).run(program, 64)
        return persistent, fresh

    persistent, fresh = benchmark(both)
    saving = 1 - persistent.total_power / fresh.total_power
    emit(
        "STREAM: 8 independent random sets (worst case for reuse)",
        [
            {"persistent_total": persistent.total_power,
             "fresh_total": fresh.total_power,
             "saving": f"{100 * saving:.0f}%"},
        ],
    )
    # even unrelated sets share some spine connections
    assert persistent.total_power <= fresh.total_power
