"""EFF — Theorem 5's efficiency half: constant words stored / exchanged.

Sweeps the tree size and reports, per switch and per round: words stored
(always 5), words sent per link per wave (2 up / 3 down), and the total
control traffic (Θ(N) per wave, independent of the communication set).
Sweep logic in ``repro.experiments.efficiency`` (CLI:
``cst-padr experiment EFF-constants``).
"""

from repro.experiments.efficiency import control_constants, traffic_vs_width

from conftest import emit


def test_eff_constants_vs_tree_size(benchmark):
    rows = benchmark(control_constants)
    emit("EFF: control-plane constants vs N", rows)
    # exactly one message per link per wave, constant words each
    assert all(r["messages/(links*waves)"] == 1.0 for r in rows)
    assert all(r["stored_words_per_switch"] == 5 for r in rows)


def test_eff_traffic_independent_of_set_size(benchmark):
    """Same tree, growing sets: per-round traffic must not grow."""
    rows = benchmark(traffic_vs_width)
    emit("EFF: per-wave traffic vs set width (256 leaves)", rows)
    assert len({r["messages_per_wave"] for r in rows}) == 1
