"""T8 — Theorem 8: O(1) configuration changes per switch for the CSA,
versus O(w) for the prior ID-based algorithm.

This is the paper's headline comparison, regenerated as measured data on
width-stress workloads:

* **CSA (persistent configs)** — max changes and max units per switch stay
  at a small constant (≤ 2–3) for every width;
* **Roy-style ID scheduler under per-round reconfiguration** (the prior
  algorithm's discipline, modelled by ``PowerPolicy.rebuild``) — the
  busiest switch pays exactly w units: Θ(w);
* **random-order scheduling under the paper's own persistent model** — the
  ablation showing the outermost-first selection rule matters on its own:
  Θ(w) changes even when configurations persist.

Sweep logic in ``repro.experiments.theorem8`` (CLI:
``cst-padr experiment T8-crossing``).
"""

from repro.experiments.theorem8 import (
    power_sweep_crossing,
    power_sweep_random,
    total_energy_comparison,
)

from conftest import emit


def test_t8_headline_sweep(benchmark):
    rows = benchmark(power_sweep_crossing)
    emit("T8: per-switch power vs width (crossing chains)", rows)

    # CSA: flat, constant — the paper's O(1)
    assert all(r["csa_max_changes"] <= 2 for r in rows)
    assert all(r["csa_max_units"] <= 3 for r in rows)
    # prior art: exactly w — the paper's Θ(w)
    assert all(r["roy_rebuild_max_units"] == r["width"] for r in rows)
    # power-oblivious order: grows with w even under persistent configs
    assert rows[-1]["random_lazy_max_changes"] >= rows[-1]["width"] // 4
    assert (
        rows[-1]["random_lazy_max_changes"]
        > 4 * rows[0]["random_lazy_max_changes"]
    )


def test_t8_total_power_comparison(benchmark):
    """Total (not just per-switch max) energy across the whole tree."""
    rows = benchmark(total_energy_comparison)
    emit("T8: total energy, CSA vs per-round reconfiguration", rows)
    # the rebuild discipline's total grows ~quadratically on crossing
    # chains (w rounds × Θ(w)-deep active paths); the ratio must widen.
    assert rows[0]["ratio"] < rows[1]["ratio"] < rows[2]["ratio"]


def test_t8_random_workloads(benchmark):
    """Same comparison on random sets: widths vary, shapes must hold."""
    rows = benchmark(power_sweep_random)
    emit("T8: random workloads (256 leaves)", rows)
    assert all(r["csa_max_changes"] <= 6 for r in rows)
    assert all(r["roy_rebuild_max_units"] >= r["width"] for r in rows)
