"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper (a figure or a
theorem's quantitative claim), prints the table/series it reproduces, and
asserts the *shape* of the result — who wins, by what growth order, where
the crossovers fall — as described in EXPERIMENTS.md.

Run with::

    pytest benchmarks/ --benchmark-only

The printed tables are the same ones recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from typing import Sequence

import pytest


def emit(title: str, rows: Sequence[dict]) -> None:
    """Print a labelled table to stdout (visible with -s or on failure)."""
    from repro.analysis.comparison import format_table

    banner = f"\n=== {title} ==="
    print(banner)
    print(format_table(list(rows)))
    sys.stdout.flush()


@pytest.fixture
def table_printer():
    return emit
