"""EXT — the paper's §6 extensions: mixed orientations and the SRGA.

* general sets decompose into two oriented halves (paper §2.1) —
  measured: rounds = w_right + w_left, correctness verified;
* the SRGA substrate routes independent row/column sets concurrently —
  measured: makespan = max over trees, per-tree Theorem-8 bound intact.
"""

from repro.analysis.verifier import verify_schedule
from repro.comms.communication import Communication, CommunicationSet
from repro.comms.generators import crossing_chain, disjoint_pairs
from repro.comms.width import width
from repro.cst.topology import CSTTopology
from repro.extensions.oriented import OrientedDecompositionScheduler
from repro.extensions.srga import SRGA

from conftest import emit


def _mixed_set(n=32):
    """Right-oriented pairs in the left half, left-oriented in the right."""
    right = [Communication(0, 15), Communication(1, 14), Communication(2, 13)]
    left = [Communication(31, 16), Communication(30, 17)]
    return CommunicationSet(right + left)


def test_ext_mixed_orientation_decomposition(benchmark):
    mixed = _mixed_set()

    s = benchmark(lambda: OrientedDecompositionScheduler().schedule(mixed, n_leaves=32))

    verify_schedule(s, mixed).raise_if_failed()
    topo = CSTTopology.of(32)
    w_right = width(mixed.right_oriented_subset(), topo)
    w_left = width(mixed.left_oriented_subset().mirrored(32), topo)
    emit(
        "EXT: mixed-orientation set via decomposition",
        [
            {
                "comms": len(mixed),
                "w_right": w_right,
                "w_left": w_left,
                "rounds": s.n_rounds,
                "max_switch_changes": s.power.max_switch_changes,
            }
        ],
    )
    assert s.n_rounds == w_right + w_left


def test_ext_srga_full_grid(benchmark):
    """Route every row and every column of a 16x16 SRGA at once."""
    grid = SRGA(16, 16)
    row_sets = {r: crossing_chain(4, 16) for r in range(16)}
    col_sets = {c: disjoint_pairs(3) for c in range(16)}

    result = benchmark(lambda: grid.route(row_sets=row_sets, col_sets=col_sets))

    emit(
        "EXT: 16x16 SRGA, all rows (width 4) + all columns (width 1)",
        [
            {
                "trees_driven": 32,
                "makespan": result.makespan,
                "total_power": result.total_power,
                "max_switch_changes": result.max_switch_changes,
            }
        ],
    )
    assert result.makespan == 4       # slowest tree dominates, not the sum
    assert result.max_switch_changes <= 2  # Theorem 8 holds per tree
