"""MONO — chain-service monotonicity: the mechanism behind Theorem 8.

Measures per-edge service inversions across schedulers on width-stress
workloads, next to the per-switch changes they cause.  Expected shape:
the CSA's inversions are 0 on single-chain workloads while the random
order accumulates Θ(w²); changes track inversions.
"""

from repro.baselines import RandomOrderScheduler
from repro.comms.generators import crossing_chain
from repro.core.csa import PADRScheduler
from repro.analysis.monotonicity import chain_service_analysis

from conftest import emit


def test_mono_inversions_vs_width(benchmark):
    widths = [8, 32, 128]

    def sweep():
        rows = []
        for w in widths:
            cset = crossing_chain(w)
            csa = PADRScheduler().schedule(cset)
            rand = RandomOrderScheduler(seed=1).schedule(cset)
            r_csa = chain_service_analysis(csa, cset)
            r_rand = chain_service_analysis(rand, cset)
            rows.append(
                {
                    "width": w,
                    "csa_inversions": r_csa.total_inversions,
                    "csa_max_changes": csa.power.max_switch_changes,
                    "random_inversions": r_rand.total_inversions,
                    "random_max_changes": rand.power.max_switch_changes,
                }
            )
        return rows

    rows = benchmark(sweep)
    emit("MONO: service inversions vs width (crossing chains)", rows)
    assert all(r["csa_inversions"] == 0 for r in rows)
    # random order: inversions grow superlinearly, changes grow with them
    assert rows[-1]["random_inversions"] > 16 * rows[0]["random_inversions"]
    assert all(
        r["random_max_changes"] > r["csa_max_changes"] for r in rows[1:]
    )


def test_mono_idle_subtree_nuance(benchmark):
    """The documented multi-chain exception: inversions without power cost."""
    from repro.comms.adversarial import idle_subtree_inversion_set

    cset = idle_subtree_inversion_set()

    def run():
        s = PADRScheduler().schedule(cset, n_leaves=64)
        return s, chain_service_analysis(s, cset)

    s, report = benchmark(run)
    emit(
        "MONO: idle-subtree example — inversion without power cost",
        [
            {
                "inversions": report.total_inversions,
                "max_switch_changes": s.power.max_switch_changes,
            }
        ],
    )
    assert report.total_inversions >= 1
    assert s.power.max_switch_changes <= 3
