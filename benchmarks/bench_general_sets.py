"""GEN — arbitrary communication sets via well-nested layering (§6).

Extends the paper's future-work direction: crossing pairs and mixed
orientations handled by decomposing into well-nested layers, sequentially
(`general-layered`) or with cross-layer round merging
(`general-interleaved`).  Expected shape: the interleaved variant never
uses more rounds, and opposite orientations overlap almost freely.
"""

import numpy as np

from repro.analysis.verifier import verify_schedule
from repro.comms.communication import Communication, CommunicationSet
from repro.extensions.general import (
    GeneralSetScheduler,
    InterleavedGeneralScheduler,
    wellnested_layers,
)

from conftest import emit


def _crossing_ladder(k: int, spread: int = 2) -> CommunicationSet:
    """k pairwise-crossing pairs: (0,k), (1,k+1), ... — worst layering case."""
    return CommunicationSet(
        Communication(i, i + k) for i in range(0, k)
    )


def test_gen_crossing_ladder_layering(benchmark):
    """Fully crossing sets need one layer per communication."""
    sizes = [2, 4, 8, 16]

    def sweep():
        rows = []
        for k in sizes:
            cset = _crossing_ladder(k)
            layers = wellnested_layers(cset)
            seq = GeneralSetScheduler().schedule(cset)
            verify_schedule(seq, cset).raise_if_failed()
            rows.append(
                {"crossing_pairs": k, "layers": len(layers),
                 "rounds": seq.n_rounds}
            )
        return rows

    rows = benchmark(sweep)
    emit("GEN: fully-crossing ladders", rows)
    assert all(r["layers"] == r["crossing_pairs"] for r in rows)


def test_gen_interleaving_opposite_orientations(benchmark):
    """A right chain plus its mirror: sequential pays w+w, merged ~w."""
    right = [Communication(i, 15 - i) for i in range(3)]
    left = [Communication(12 - i, 3 + i) for i in range(2)]
    cset = CommunicationSet(right + left)

    def both():
        seq = GeneralSetScheduler().schedule(cset, n_leaves=16)
        merged = InterleavedGeneralScheduler().schedule(cset, n_leaves=16)
        verify_schedule(merged, cset).raise_if_failed()
        return seq, merged

    seq, merged = benchmark(both)
    emit(
        "GEN: opposite orientations, sequential vs interleaved",
        [
            {"variant": "sequential", "rounds": seq.n_rounds},
            {"variant": "interleaved", "rounds": merged.n_rounds},
        ],
    )
    assert merged.n_rounds < seq.n_rounds


def test_gen_random_arbitrary_sets(benchmark):
    """Random arbitrary pairings (crossings + both orientations)."""

    def sweep():
        rng = np.random.default_rng(5)
        rows = []
        for k in (4, 8, 16):
            pes = rng.choice(64, size=2 * k, replace=False)
            cset = CommunicationSet(
                Communication(int(pes[2 * i]), int(pes[2 * i + 1]))
                for i in range(k)
            )
            sched = GeneralSetScheduler()
            seq = sched.schedule(cset, n_leaves=64)
            verify_schedule(seq, cset).raise_if_failed()
            merged = InterleavedGeneralScheduler().schedule(cset, n_leaves=64)
            verify_schedule(merged, cset).raise_if_failed()
            rows.append(
                {
                    "pairs": k,
                    "layers": sched.last_layering.total_layers,
                    "seq_rounds": seq.n_rounds,
                    "interleaved_rounds": merged.n_rounds,
                }
            )
        return rows

    rows = benchmark(sweep)
    emit("GEN: random arbitrary sets (64 leaves)", rows)
    assert all(r["interleaved_rounds"] <= r["seq_rounds"] for r in rows)
