"""ABL — ablation of §2.3's power model: persistence is half the story.

Runs the *same* CSA schedule under the three accounting disciplines:

* ``paper``   — persistent configurations (lazy teardown): Theorem 8 holds;
* ``eager``   — unused connections torn down, survivors not re-charged:
  the CSA still does well (its rounds reuse connections back-to-back);
* ``rebuild`` — everything re-established every round: even the CSA pays
  Θ(w) at the busiest switch, proving the O(1) bound needs configuration
  persistence *and* the outermost-first order together.
"""

from repro.comms.generators import crossing_chain
from repro.core.csa import PADRScheduler
from repro.cst.power import PowerPolicy
from repro.experiments.ablation import teardown_matrix

from conftest import emit


def test_abl_policy_sweep(benchmark):
    rows = benchmark(teardown_matrix)
    emit("ABL: CSA under the three power disciplines", rows)

    for r in rows:
        # persistence keeps the per-switch bill constant...
        assert r["paper_max_units"] <= 3
        # ...rebuilding makes even the CSA pay per round at the root
        assert r["rebuild_max_units"] == r["width"]
        # ordering: paper <= eager <= rebuild everywhere
        assert (
            r["paper_total"] <= r["eager_total"] <= r["rebuild_total"]
        )


def test_abl_eager_still_cheap_for_csa(benchmark):
    """Diff-based eager teardown barely hurts the CSA: consecutive rounds
    reuse the same connections, so little is re-charged."""
    cset = crossing_chain(64)

    def both():
        lazy = PADRScheduler().schedule(cset)
        eager = PADRScheduler().schedule(cset, policy=PowerPolicy.eager())
        return lazy, eager

    lazy, eager = benchmark(both)
    emit(
        "ABL: lazy vs eager for the CSA (width 64)",
        [
            {
                "policy": "paper(lazy)",
                "total": lazy.power.total_units,
                "max_units": lazy.power.max_switch_units,
            },
            {
                "policy": "eager",
                "total": eager.power.total_units,
                "max_units": eager.power.max_switch_units,
            },
        ],
    )
    assert eager.power.max_switch_units <= lazy.power.max_switch_units + 2
