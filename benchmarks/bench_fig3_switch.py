"""FIG3 — paper Figure 3: switch structure and Definitions 1–2.

Regenerates the figure's two panels as data: (a) the legal crossbar of the
3-sided switch; (b) the rank semantics S_u(x) / D_u(x) on the figure's
scenario of two communications matched at a switch with extra endpoints.
"""

from repro.comms.communication import Communication, CommunicationSet
from repro.core.phase1 import phase1_states
from repro.cst.power import PowerMeter
from repro.cst.switch import Switch
from repro.types import LEGAL_CONNECTIONS

from conftest import emit


def test_fig3a_switch_crossbar(benchmark):
    """Panel (a): three inputs, three outputs, six legal connections."""

    def cycle_all_configurations():
        sw = Switch(1, PowerMeter())
        for conn in LEGAL_CONNECTIONS:
            sw.require(conn)
            sw.commit_round()
        return sw

    sw = benchmark(cycle_all_configurations)
    assert len(LEGAL_CONNECTIONS) == 6

    emit(
        "FIG3(a): the 3-sided switch's legal connections",
        [{"connection": str(c), "in_side": c.in_port.side.value,
          "out_side": c.out_port.side.value} for c in LEGAL_CONNECTIONS],
    )


def test_fig3b_rank_definitions(benchmark):
    """Panel (b): O_c(u) and the S_u(x)/D_u(x) ranks via Phase-1 counters.

    Scenario in the spirit of the figure: at the root of a 16-leaf tree,
    two communications are matched while other sources climb through.
    """
    # matched at root: (3,12) outer, (4,11) inner; plus (0,1),(13,14) local
    # and a source 5 whose destination 10 keeps it inside the left... use a
    # clean construction instead: two matched at root, two local pairs.
    cset = CommunicationSet(
        [
            Communication(3, 12),
            Communication(4, 11),
            Communication(0, 1),
            Communication(13, 14),
        ]
    )

    states = benchmark(lambda: phase1_states(cset, 16))

    root = states[1]
    # both cross-root pairs matched at the root (type 1)
    assert root.matched == 2
    assert root.unmatched_left_src == 0
    assert root.unmatched_right_dst == 0

    # O_c(root) = (3,12): its source is the 0th remaining leftmost source
    # climbing from the left child once local pairs are excluded.
    emit(
        "FIG3(b): Phase-1 classification at the root",
        [{"C_S field": name, "value": v}
         for name, v in zip(
             ["M (type1)", "S_L-M (type4)", "D_L (type3)",
              "S_R (type2)", "D_R-M (type5)"],
             root.as_tuple(),
         )],
    )
