"""GRID — XY point-to-point routing across the SRGA (substrate composition).

Routes batches of random point-to-point messages across an SRGA grid by
dimension order (row tree, handoff, column tree).  Expected shapes: row
trees route concurrently (the phase costs the slowest tree, not the sum),
and cost grows with per-tree congestion, not with message count per se.
"""

import numpy as np

from repro.extensions.grid_routing import GridMessage, route_xy
from repro.extensions.srga import SRGA

from conftest import emit


def _random_messages(grid, k, rng):
    """k messages with per-tree endpoint disjointness (retry sampling)."""
    messages = []
    used_row: dict[int, set] = {}
    used_col: dict[int, set] = {}
    used_dst: set = set()
    tries = 0
    while len(messages) < k and tries < 10000:
        tries += 1
        r1, r2 = rng.integers(0, grid.rows, size=2)
        c1, c2 = rng.integers(0, grid.cols, size=2)
        if (r1, c1) == (r2, c2):
            continue
        r1, r2, c1, c2 = int(r1), int(r2), int(c1), int(c2)
        if (r2, c2) in used_dst:
            continue
        row_pts = {c1, c2} if c1 != c2 else set()
        col_pts = {r1, r2} if r1 != r2 else {r2}
        if row_pts & used_row.get(r1, set()):
            continue
        if col_pts & used_col.get(c2, set()):
            continue
        used_row.setdefault(r1, set()).update(row_pts)
        used_col.setdefault(c2, set()).update(col_pts)
        used_dst.add((r2, c2))
        messages.append(GridMessage((r1, c1), (r2, c2), f"m{len(messages)}"))
    return messages


def test_grid_random_batches(benchmark):
    grid = SRGA(16, 16)
    rng = np.random.default_rng(5)
    batches = {k: _random_messages(grid, k, rng) for k in (4, 16, 32)}

    def sweep():
        rows = []
        for k, messages in batches.items():
            result = route_xy(grid, messages)
            assert all(
                result.delivered[m.dst] == m.payload for m in messages
            )
            rows.append(
                {
                    "messages": len(messages),
                    "row_rounds": result.row_rounds,
                    "col_rounds": result.col_rounds,
                    "total_power": result.total_power_units,
                }
            )
        return rows

    rows = benchmark(sweep)
    emit("GRID: XY routing on a 16x16 SRGA", rows)
    assert all(r["row_rounds"] + r["col_rounds"] >= 1 for r in rows)


def test_grid_row_concurrency(benchmark):
    """One message per row: the row phase costs one round total."""
    grid = SRGA(8, 8)
    messages = [GridMessage((r, 0), (r, 7), f"r{r}") for r in range(8)]

    result = benchmark(lambda: route_xy(grid, messages))
    emit(
        "GRID: 8 concurrent same-row transfers",
        [{"row_rounds": result.row_rounds, "col_rounds": result.col_rounds}],
    )
    assert result.row_rounds == 1
    assert result.col_rounds == 0
