"""FIG5 — paper Figure 5: the CONFIGURE procedure, case by case.

Times the per-switch CONFIGURE call for each of the four control-word
cases (Theorem 5's constant-time-per-switch claim made concrete) and
prints each case's decision: crossbar connections and emitted words.
"""

import pytest

from repro.core.control import DownWord, StoredState
from repro.core.phase2 import configure

from conftest import emit

CASES = {
    "[null,null] matched": (
        StoredState(matched=2, unmatched_left_src=1),
        DownWord.none(),
    ),
    "[s,null] left": (
        StoredState(unmatched_left_src=2),
        DownWord.src(1),
    ),
    "[s,null] right+match": (
        StoredState(matched=1, right_src=1),
        DownWord.src(0),
    ),
    "[d,null] right": (
        StoredState(unmatched_right_dst=2),
        DownWord.dst(1),
    ),
    "[d,null] left+match": (
        StoredState(matched=1, left_dst=1),
        DownWord.dst(0),
    ),
    "[s,d] crossing+match": (
        StoredState(matched=1, right_src=1, left_dst=1),
        DownWord.both(0, 0),
    ),
}


@pytest.mark.parametrize("case", list(CASES), ids=list(CASES))
def test_fig5_configure_case(benchmark, case):
    template, word = CASES[case]

    def run():
        return configure(1, template.copy(), word)

    outcome = benchmark(run)
    assert 0 <= len(outcome.connections) <= 3
    emit(
        f"FIG5: CONFIGURE on {case}",
        [
            {
                "received": str(word),
                "connects": ", ".join(str(c) for c in outcome.connections),
                "to_left": str(outcome.left_word),
                "to_right": str(outcome.right_word),
            }
        ],
    )


def test_fig5_configure_is_constant_time(benchmark):
    """One CONFIGURE call does O(1) work regardless of counter magnitude."""
    big = StoredState(matched=10**6, unmatched_left_src=10**6)

    outcome = benchmark(lambda: configure(1, big.copy(), DownWord.none()))
    assert outcome.scheduled_matched
