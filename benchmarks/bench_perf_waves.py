"""PERF-waves — the fast-path wave engine vs the reference oracle.

No paper counterpart (the paper is analytic); this benchmark tracks the
tentpole optimisation itself.  Expected shape: for a sparse width-w set on
an N-leaf tree (w ≪ N) the fast engine's Phase-2 rounds touch only the
O(w · log N) live frontier while the reference engine walks all Θ(N) links
every wave, so the gap must *grow* with N and the fast engine must be at
least 3× faster by N = 2^12.  Both engines must produce identical
schedules and identical logical control-traffic counts — only
``physical_messages`` may differ.
"""

import numpy as np
import pytest

from repro.comms.generators import random_well_nested
from repro.core.csa import PADRScheduler
from repro.cst.engine import CSTEngine, ReferenceWaveEngine
from repro.cst.network import CSTNetwork

#: sparse workload: 24 pairs regardless of tree size keeps w ≪ n.
_PAIRS = 24


def _workload(n: int):
    rng = np.random.default_rng(7)
    return random_well_nested(_PAIRS, n, rng)


def _run(factory, cset, n):
    sched = PADRScheduler(validate_input=False, engine_factory=factory)
    return sched.schedule(cset, network=CSTNetwork.of_size(n))


@pytest.mark.parametrize("n", [256, 1024, 4096])
def test_perf_fast_engine(benchmark, n):
    """Fast path: frontier-pruned waves, vectorised Phase 1."""
    cset = _workload(n)
    benchmark(lambda: _run(CSTEngine, cset, n))


@pytest.mark.parametrize("n", [256, 1024, 4096])
def test_perf_reference_engine(benchmark, n):
    """Reference oracle: every node, every wave."""
    cset = _workload(n)
    benchmark(lambda: _run(ReferenceWaveEngine, cset, n))


def test_fast_engine_speedup_floor():
    """Acceptance gate: ≥3× over the reference at n = 2^12 with w ≪ n."""
    import time

    n = 4096
    cset = _workload(n)

    def best_of(factory, reps=5):
        t = float("inf")
        for _ in range(reps):
            net = CSTNetwork.of_size(n)
            sched = PADRScheduler(validate_input=False, engine_factory=factory)
            t0 = time.perf_counter()
            sched.schedule(cset, network=net)
            t = min(t, time.perf_counter() - t0)
        return t

    fast = best_of(CSTEngine)
    ref = best_of(ReferenceWaveEngine)
    assert ref / fast >= 3.0, f"speedup {ref / fast:.2f}x < 3x at n={n}"


@pytest.mark.parametrize("n", [1024, 4096])
def test_engines_agree_and_prune_saves_traffic(n):
    """Identical schedules + logical counts; physical strictly lower."""
    cset = _workload(n)
    fast = _run(CSTEngine, cset, n)
    ref = _run(ReferenceWaveEngine, cset, n)
    assert [r.performed for r in fast.rounds] == [r.performed for r in ref.rounds]
    assert [r.writers for r in fast.rounds] == [r.writers for r in ref.rounds]
    assert fast.control_messages == ref.control_messages
    assert fast.control_words == ref.control_words
    assert fast.power.total_units == ref.power.total_units
    # the reference walks everything: physical == logical there.
    assert ref.physical_messages == ref.control_messages
    # sparse set on a big tree: pruning must pay.
    assert fast.physical_messages < fast.control_messages
