"""T5 — Theorem 5: a width-w set is routed in exactly w rounds.

Sweeps the width on crossing chains and on random sets; reports
rounds/width for the CSA (expected: identically 1.0) next to the
sequential baseline's ratio.  The sweep logic lives in
``repro.experiments.theorem5`` (also runnable via
``cst-padr experiment T5-crossing``).
"""

from repro.comms.generators import crossing_chain
from repro.core.csa import PADRScheduler
from repro.experiments.theorem5 import (
    rounds_vs_width_crossing,
    rounds_vs_width_random,
)

from conftest import emit


def test_t5_width_sweep_crossing_chains(benchmark):
    rows = benchmark(rounds_vs_width_crossing)
    emit("T5: rounds vs width (crossing chains)", rows)
    assert all(r["csa_rounds/width"] == 1.0 for r in rows)
    # the sequential baseline serialises the whole chain
    assert all(r["sequential_rounds"] == r["width"] for r in rows)


def test_t5_random_sets_always_optimal(benchmark):
    rows = benchmark(rounds_vs_width_random)
    emit("T5: rounds vs width (random sets, 128 leaves)", rows)
    assert all(r["csa_rounds"] == r["width"] for r in rows)


def test_t5_one_round_per_width_unit_timing(benchmark):
    """The per-round cost: one width-64 schedule on a 128-leaf tree."""
    cset = crossing_chain(64)

    s = benchmark(lambda: PADRScheduler().schedule(cset))
    assert s.n_rounds == 64
