"""FIG1 — paper Figure 1: communications are circuit-switched tree paths.

Regenerates the figure's content: two simultaneous communications on one
CST, their switch-by-switch crossbar settings, and the end-to-end delivery
trace.  Benchmarks the path-routing primitive the whole library rests on.
"""

from repro.comms.communication import Communication, CommunicationSet
from repro.core.csa import PADRScheduler
from repro.cst.topology import CSTTopology
from repro.viz.ascii import render_round_configuration

from conftest import emit


def test_fig1_two_circuit_example(benchmark):
    """Two compatible communications established simultaneously (Figure 1)."""
    topo = CSTTopology.of(8)
    comms = [Communication(0, 3), Communication(4, 6)]

    def route_both():
        return [topo.path_connections(c.src, c.dst) for c in comms]

    plans = benchmark(route_both)

    # the figure's content: each circuit's switch settings
    rows = []
    for c, plan in zip(comms, plans):
        rows.append(
            {
                "communication": str(c),
                "switches": len(plan),
                "settings": "  ".join(f"{v}:{conn}" for v, conn in plan.items()),
            }
        )
    emit("FIG1: circuits on the CST (8 leaves)", rows)

    # establish both at once and confirm delivery, as the figure depicts
    cset = CommunicationSet(comms)
    schedule = PADRScheduler().schedule(cset, n_leaves=8)
    assert schedule.n_rounds == 1
    print(render_round_configuration(schedule, 0))


def test_fig1_path_routing_scales_logarithmically(benchmark):
    """Path length is O(log N): the property the 3-sided switch exists for."""
    topo = CSTTopology.of(4096)

    result = benchmark(lambda: topo.path_connections(0, 4095))
    assert len(result) == 2 * topo.height - 1  # 23 switches for N=4096

    rows = []
    for n in (8, 64, 512, 4096):
        t = CSTTopology.of(n)
        rows.append(
            {
                "n_leaves": n,
                "worst_path_switches": t.path_length(0, n - 1),
                "2*log2(N)-1": 2 * t.height - 1,
            }
        )
    emit("FIG1: path length vs tree size", rows)
    for row in rows:
        assert row["worst_path_switches"] == row["2*log2(N)-1"]
