"""COLL — collective programs on the CST (paper §6: other patterns).

Cost table for gather / scatter / shift / reverse as tree sizes grow.
Expected shapes: gather and scatter take exactly log2 N width-1 steps;
reverse takes 2 phases of N/2 rounds each; shift costs depend on the
distance's crossing structure but stay within 2 phases × layers.
All results are payload-verified inside the collective implementations.
"""

from repro.extensions.collectives import gather, reverse, scatter, shift

from conftest import emit


def test_coll_gather_scatter_costs(benchmark):
    sizes = [4, 16, 64]

    def sweep():
        rows = []
        for n in sizes:
            g = gather(list(range(n)))
            s = scatter(list(range(n)))
            rows.append(
                {
                    "n": n,
                    "gather_steps": g.steps,
                    "gather_rounds": g.total_rounds,
                    "gather_power": g.total_power_units,
                    "scatter_steps": s.steps,
                    "scatter_rounds": s.total_rounds,
                }
            )
        return rows

    rows = benchmark(sweep)
    emit("COLL: binomial gather/scatter costs", rows)
    for row in rows:
        n = row["n"]
        assert row["gather_steps"] == row["scatter_steps"] == n.bit_length() - 1
        assert row["gather_rounds"] == row["gather_steps"]  # width-1 steps


def test_coll_reverse_and_shift(benchmark):
    def sweep():
        rows = []
        for n in (8, 32):
            r = reverse(list(range(n)))
            sh = shift(list(range(n)), n // 4)
            rows.append(
                {
                    "n": n,
                    "reverse_rounds": r.total_rounds,
                    "reverse_power": r.total_power_units,
                    "shift_steps": sh.steps,
                    "shift_rounds": sh.total_rounds,
                }
            )
        return rows

    rows = benchmark(sweep)
    emit("COLL: reverse and shift costs", rows)
    for row in rows:
        # reverse: two phases of width n/2
        assert row["reverse_rounds"] == row["n"]
