"""FIG4 — paper Figure 4(a): the five communication types at a switch.

Constructs workloads exhibiting every type at a single switch and
regenerates the classification table from Phase 1.
"""

from repro.comms.communication import Communication, CommunicationSet
from repro.comms.wellnested import require_well_nested
from repro.core.phase1 import phase1_states

from conftest import emit

# the switch under study: heap 6 of a 32-leaf tree covers leaves 16..23
# (left child heap 12: leaves 16..19; right child heap 13: leaves 20..23).
U = 6


def _four_type_workload():
    """Types 1, 2, 3 and 4 simultaneously at switch U.

    * (18,22), (19,21) — type 1: matched at U (left-half src, right-half dst)
    * (23,30)          — type 2: right-subtree source climbing through U
    * (3,16)           — type 3: left-subtree destination fed from outside
    * (17,31)          — type 4: left-subtree source unmatched at U

    (Type 5 cannot coexist with type 4 since M = min(S_L, D_R).)
    """
    return require_well_nested(
        CommunicationSet(
            [
                Communication(18, 22),
                Communication(19, 21),
                Communication(23, 30),
                Communication(3, 16),
                Communication(17, 31),
            ]
        )
    )


def test_fig4_four_types_at_one_switch(benchmark):
    cset = _four_type_workload()
    states = benchmark(lambda: phase1_states(cset, 32))

    st = states[U]
    names = ["type1 M", "type4 S_L-M", "type3 D_L", "type2 S_R", "type5 D_R-M"]
    emit(
        "FIG4(a): classification at switch u (heap 6, leaves 16..23)",
        [{"field": n, "count": v} for n, v in zip(names, st.as_tuple())],
    )

    assert st.matched == 2             # (18,22) and (19,21)
    assert st.right_src == 1           # (23,30)
    assert st.left_dst == 1            # (3,16)
    assert st.unmatched_left_src == 1  # (17,31)
    assert st.unmatched_right_dst == 0


def test_fig4_type5_workload(benchmark):
    """The complementary case: an unmatched right-subtree destination."""
    cset = require_well_nested(
        CommunicationSet([Communication(18, 21), Communication(3, 22)])
    )
    states = benchmark(lambda: phase1_states(cset, 32))
    st = states[U]
    assert st.matched == 1             # (18,21)
    assert st.unmatched_right_dst == 1  # destination 22, source outside
    assert st.unmatched_left_src == 0
    emit("FIG4(a): type-5 variant at switch u", [{"C_S": str(st)}])
