"""Documentation drift gate: run scripts/check_docs.py as a tier-1 test.

Docs are part of the deliverable — a python block that stopped
compiling, a `cst-padr` subcommand that was renamed away, or a dead
relative link fails the suite, not just the CI docs job.
"""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def test_docs_are_consistent(capsys):
    sys.path.insert(0, str(ROOT / "scripts"))
    try:
        import check_docs
    finally:
        sys.path.pop(0)

    subcommands = check_docs.registered_subcommands()
    problems = []
    for path in check_docs.doc_files():
        problems.extend(check_docs.check_file(path, subcommands))
    assert not problems, "\n".join(problems)


def test_new_subcommands_are_documented():
    """Every CLI subcommand must be mentioned in README or docs/."""
    sys.path.insert(0, str(ROOT / "scripts"))
    try:
        import check_docs
    finally:
        sys.path.pop(0)

    corpus = "\n".join(p.read_text() for p in check_docs.doc_files())
    mentioned = set(check_docs.CLI_RE.findall(corpus))
    missing = check_docs.registered_subcommands() - mentioned
    assert not missing, f"undocumented subcommands: {sorted(missing)}"
