"""Unit tests for workload generators."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import CommunicationError
from repro.comms.communication import Communication
from repro.comms.generators import (
    crossing_chain,
    disjoint_pairs,
    from_dyck_word,
    nested_chain,
    paper_figure2_set,
    random_well_nested,
    segmentable_bus,
    staircase,
)
from repro.comms.wellnested import is_well_nested, nesting_depths
from repro.comms.width import width


class TestFromDyckWord:
    def test_simple_pairing(self):
        s = from_dyck_word("(())")
        assert list(s) == [Communication(0, 3), Communication(1, 2)]

    def test_custom_positions(self):
        s = from_dyck_word("()", [5, 9])
        assert list(s) == [Communication(5, 9)]

    def test_rejects_non_dyck(self):
        with pytest.raises(CommunicationError):
            from_dyck_word("))((")

    def test_rejects_wrong_position_count(self):
        with pytest.raises(CommunicationError):
            from_dyck_word("()", [1, 2, 3])

    def test_rejects_non_increasing_positions(self):
        with pytest.raises(CommunicationError):
            from_dyck_word("()", [5, 5])


class TestRandomWellNested:
    def test_sizes(self):
        rng = np.random.default_rng(0)
        s = random_well_nested(10, 64, rng)
        assert len(s) == 10
        assert s.max_pe < 64

    def test_always_well_nested(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            assert is_well_nested(random_well_nested(6, 32, rng))

    def test_zero_pairs(self):
        s = random_well_nested(0, 8, np.random.default_rng(0))
        assert len(s) == 0

    def test_too_many_pairs_rejected(self):
        with pytest.raises(CommunicationError):
            random_well_nested(5, 9, np.random.default_rng(0))

    def test_exact_fit(self):
        s = random_well_nested(4, 8, np.random.default_rng(0))
        assert len(s) == 4
        # all 8 leaves used
        assert sorted(list(s.sources()) + list(s.destinations())) == list(range(8))


class TestNestedChain:
    def test_structure(self):
        s = nested_chain(3)
        assert list(s) == [
            Communication(0, 5),
            Communication(1, 4),
            Communication(2, 3),
        ]

    def test_depths_are_sequential(self):
        depths = nesting_depths(nested_chain(4))
        assert sorted(depths.values()) == [0, 1, 2, 3]

    def test_rejects_zero(self):
        with pytest.raises(CommunicationError):
            nested_chain(0)

    def test_leaf_bound_check(self):
        with pytest.raises(CommunicationError):
            nested_chain(5, n_leaves=8)


class TestCrossingChain:
    @pytest.mark.parametrize("w", [1, 2, 3, 4, 7, 8, 13, 32])
    def test_width_is_exact(self, w):
        assert width(crossing_chain(w)) == w

    def test_all_cross_the_root(self):
        s = crossing_chain(4)
        n = s.min_leaves()
        for c in s:
            assert c.src < n // 2 <= c.dst

    def test_explicit_leaves(self):
        s = crossing_chain(2, n_leaves=16)
        assert s.max_pe == 15

    def test_rejects_too_small_tree(self):
        with pytest.raises(CommunicationError):
            crossing_chain(5, n_leaves=8)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(CommunicationError):
            crossing_chain(2, n_leaves=12)


class TestDisjointPairs:
    def test_width_one(self):
        assert width(disjoint_pairs(8)) == 1

    def test_stride(self):
        s = disjoint_pairs(3, stride=4)
        assert list(s) == [
            Communication(0, 1),
            Communication(4, 5),
            Communication(8, 9),
        ]

    def test_zero_pairs(self):
        assert len(disjoint_pairs(0)) == 0

    def test_rejects_small_stride(self):
        with pytest.raises(CommunicationError):
            disjoint_pairs(2, stride=1)


class TestSegmentableBus:
    def test_segments(self):
        s = segmentable_bus([0, 4, 8])
        assert list(s) == [Communication(0, 3), Communication(4, 7)]

    def test_width_one(self):
        assert width(segmentable_bus([0, 3, 9, 16])) == 1

    def test_rejects_single_pe_segment(self):
        with pytest.raises(CommunicationError):
            segmentable_bus([0, 1])

    def test_rejects_unsorted(self):
        with pytest.raises(CommunicationError):
            segmentable_bus([4, 2])

    def test_rejects_too_few_bounds(self):
        with pytest.raises(CommunicationError):
            segmentable_bus([3])


class TestStaircase:
    def test_size(self):
        s = staircase(3, 2)
        assert len(s) == 6

    def test_well_nested(self):
        assert is_well_nested(staircase(4, 3, gap=2))

    def test_width_independent_of_chain_count(self):
        w1 = width(staircase(1, 3))
        w4 = width(staircase(4, 3))
        assert w1 == w4

    def test_rejects_bad_params(self):
        with pytest.raises(CommunicationError):
            staircase(0, 1)
        with pytest.raises(CommunicationError):
            staircase(1, 0)
        with pytest.raises(CommunicationError):
            staircase(1, 1, gap=-1)


class TestPaperFigure2:
    def test_six_communications(self, fig2_set):
        assert len(fig2_set) == 6

    def test_width_two(self, fig2_set):
        assert width(fig2_set) == 2

    def test_well_nested(self, fig2_set):
        assert is_well_nested(fig2_set)

    def test_rejects_small_tree(self):
        with pytest.raises(CommunicationError):
            paper_figure2_set(8)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(CommunicationError):
            paper_figure2_set(24)
