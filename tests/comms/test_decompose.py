"""Unit and property tests for well-nested decomposition of arbitrary sets."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.comms.communication import Communication, CommunicationSet
from repro.comms.decompose import (
    Batch,
    crossing_lower_bound,
    decompose,
    max_crossing_degree,
)
from repro.comms.generators import (
    crossing_chain,
    paper_figure2_set,
    random_arbitrary,
)
from repro.comms.wellnested import is_well_nested
from tests.conftest import arbitrary_set_st, wellnested_set_st


def cs(*pairs):
    return CommunicationSet([Communication(s, d) for s, d in pairs])


class TestDecomposeBasics:
    def test_empty_set_yields_no_batches(self):
        dec = decompose(CommunicationSet(()))
        assert dec.n_batches == 0
        assert dec.lower_bound == 0
        assert dec.is_trivial  # nothing to schedule: directly servable
        assert dec.union() == CommunicationSet(())

    def test_well_nested_input_is_one_identical_batch(self):
        cset = paper_figure2_set()
        dec = decompose(cset)
        assert dec.n_batches == 1
        assert dec.is_trivial
        assert dec.batches[0].orientation == "right"
        assert dec.batches[0].cset == cset

    def test_crossing_pair_splits_into_two_batches(self):
        dec = decompose(cs((0, 2), (1, 3)))
        assert dec.n_batches == 2
        assert dec.lower_bound == 2
        assert dec.bound_gap == 0

    def test_left_oriented_set_is_one_left_batch(self):
        cset = cs((7, 0), (5, 2))
        dec = decompose(cset)
        assert dec.n_batches == 1
        assert dec.batches[0].orientation == "left"
        assert not dec.is_trivial
        assert is_well_nested(dec.batches[0].well_nested_form(8))

    def test_orientations_never_mix_within_a_batch(self):
        dec = decompose(cs((0, 3), (6, 5), (1, 2), (9, 8)))
        for batch in dec:
            orientations = {
                "right" if c.src < c.dst else "left" for c in batch.cset
            }
            assert len(orientations) == 1

    def test_right_batches_precede_left_batches(self):
        dec = decompose(cs((0, 2), (1, 3), (9, 8), (7, 4)))
        labels = [b.orientation for b in dec]
        assert labels == sorted(labels, key=lambda o: o != "right")

    def test_crossing_ladder_two_colours(self):
        # adjacent rungs cross pairwise but no triple does: the largest
        # clique is 2, and first-fit two-colours the ladder.
        cset = cs((0, 2), (1, 4), (3, 6), (5, 7))
        dec = decompose(cset)
        assert dec.lower_bound == 2
        assert dec.n_batches == 2

    def test_width_chain_is_already_well_nested(self):
        # the width-stress chain nests (it never crosses): one batch.
        dec = decompose(crossing_chain(6))
        assert dec.n_batches == 1
        assert dec.is_trivial

    def test_batch_indices_are_sequential(self):
        dec = decompose(cs((0, 2), (1, 3), (9, 8)))
        assert [b.index for b in dec] == list(range(dec.n_batches))


class TestBounds:
    def test_max_crossing_degree_counts_the_worst_interval(self):
        # (0,4) crosses (1,5), (2,6) and (3,7): degree 3
        comms = cs((0, 4), (1, 5), (2, 6), (3, 7)).comms
        assert max_crossing_degree(comms) == 3

    def test_lower_bound_on_pairwise_crossing_clique(self):
        comms = cs((0, 4), (1, 5), (2, 6), (3, 7)).comms
        assert crossing_lower_bound(comms) == 4

    def test_lower_bound_ignores_nested_pairs(self):
        comms = cs((0, 7), (1, 6), (2, 5)).comms
        assert crossing_lower_bound(comms) == 1

    def test_empty_bounds(self):
        assert max_crossing_degree(()) == 0
        assert crossing_lower_bound(()) == 0


class TestDecomposeProperties:
    @given(cset=arbitrary_set_st(max_pairs=8))
    @settings(max_examples=120, deadline=None)
    def test_every_batch_is_well_nested(self, cset):
        n = cset.min_leaves()
        for batch in decompose(cset):
            assert is_well_nested(batch.well_nested_form(n))

    @given(cset=arbitrary_set_st(max_pairs=8))
    @settings(max_examples=120, deadline=None)
    def test_union_of_batches_equals_input_exactly(self, cset):
        dec = decompose(cset)
        assert sorted(dec.union().comms) == sorted(cset.comms)
        # exact partition: no communication appears in two batches
        assert sum(len(b) for b in dec) == len(cset)

    @given(cset=arbitrary_set_st(max_pairs=8))
    @settings(max_examples=120, deadline=None)
    def test_batch_count_between_certified_bounds(self, cset):
        dec = decompose(cset)
        right = cset.right_oriented_subset()
        left = cset.left_oriented_subset()
        greedy = sum(
            max_crossing_degree(subset.comms) + 1
            for subset in (right, left)
            if len(subset)
        )
        assert dec.lower_bound <= dec.n_batches <= greedy

    @given(cset=wellnested_set_st(max_pairs=8))
    @settings(max_examples=80, deadline=None)
    def test_well_nested_inputs_yield_one_identical_batch(self, cset):
        dec = decompose(cset)
        assert dec.n_batches == 1
        assert dec.is_trivial
        assert dec.batches[0].cset == cset

    @given(cset=arbitrary_set_st(max_pairs=8))
    @settings(max_examples=60, deadline=None)
    def test_decomposition_is_deterministic(self, cset):
        a, b = decompose(cset), decompose(cset)
        assert [x.cset for x in a] == [x.cset for x in b]
        assert [x.orientation for x in a] == [x.orientation for x in b]


class TestRandomArbitraryGenerator:
    def test_deterministic_per_seed(self):
        a = random_arbitrary(12, 64, np.random.default_rng(5))
        b = random_arbitrary(12, 64, np.random.default_rng(5))
        assert a == b

    def test_endpoints_distinct_and_in_range(self):
        cset = random_arbitrary(16, 64, np.random.default_rng(0))
        endpoints = [e for c in cset for e in (c.src, c.dst)]
        assert len(set(endpoints)) == len(endpoints) == 32
        assert all(0 <= e < 64 for e in endpoints)

    def test_too_many_pairs_rejected(self):
        from repro.exceptions import CommunicationError

        with pytest.raises(CommunicationError):
            random_arbitrary(33, 64, np.random.default_rng(0))

    def test_empty_draw(self):
        assert len(random_arbitrary(0, 8, np.random.default_rng(0))) == 0


class TestBatchShape:
    def test_batch_is_frozen(self):
        batch = decompose(cs((0, 1))).batches[0]
        assert isinstance(batch, Batch)
        with pytest.raises(AttributeError):
            batch.orientation = "left"

    def test_left_well_nested_form_mirrors(self):
        batch = decompose(cs((3, 0))).batches[0]
        assert batch.well_nested_form(4) == cs((3, 0)).mirrored(4)
