"""Unit tests for Communication and CommunicationSet."""

import pytest
from hypothesis import given

from repro.exceptions import CommunicationError
from repro.types import Role
from repro.comms.communication import Communication, CommunicationSet

from tests.conftest import communication_st, wellnested_set_st


class TestCommunication:
    def test_orientation(self):
        assert Communication(1, 5).right_oriented
        assert Communication(5, 1).left_oriented
        assert not Communication(5, 1).right_oriented

    def test_self_loop_rejected(self):
        with pytest.raises(CommunicationError):
            Communication(3, 3)

    def test_negative_rejected(self):
        with pytest.raises(CommunicationError):
            Communication(-1, 2)

    def test_span_and_extremes(self):
        c = Communication(7, 2)
        assert c.leftmost == 2
        assert c.rightmost == 7
        assert list(c.span) == [2, 3, 4, 5, 6, 7]

    def test_encloses(self):
        assert Communication(0, 9).encloses(Communication(2, 5))
        assert not Communication(2, 5).encloses(Communication(0, 9))
        assert not Communication(0, 9).encloses(Communication(0, 9))

    def test_encloses_shared_boundary(self):
        # same left end but shorter: still enclosed (not equal)
        assert Communication(0, 9).encloses(Communication(0, 5))

    def test_mirrored(self):
        assert Communication(1, 5).mirrored(8) == Communication(6, 2)

    @given(communication_st())
    def test_mirroring_is_involution(self, c):
        assert c.mirrored(64).mirrored(64) == c

    @given(communication_st())
    def test_mirroring_flips_orientation(self, c):
        assert c.mirrored(64).right_oriented == c.left_oriented

    def test_ordering(self):
        assert Communication(1, 2) < Communication(1, 3) < Communication(2, 3)

    def test_str(self):
        assert str(Communication(3, 8)) == "(3->8)"


class TestCommunicationSet:
    def test_sorted_storage(self):
        cs = CommunicationSet([Communication(4, 5), Communication(0, 1)])
        assert cs[0] == Communication(0, 1)
        assert len(cs) == 2

    def test_duplicate_endpoint_rejected(self):
        with pytest.raises(CommunicationError):
            CommunicationSet([Communication(0, 1), Communication(1, 2)])

    def test_pe_cannot_be_source_twice(self):
        with pytest.raises(CommunicationError):
            CommunicationSet([Communication(0, 1), Communication(0, 2)])

    def test_empty_set(self):
        cs = CommunicationSet(())
        assert len(cs) == 0
        assert cs.max_pe == -1
        assert cs.min_leaves() == 2

    def test_roles(self):
        cs = CommunicationSet([Communication(0, 3)])
        roles = cs.roles()
        assert roles[0] is Role.SOURCE
        assert roles[3] is Role.DESTINATION
        assert 1 not in roles

    def test_partner_of(self):
        cs = CommunicationSet([Communication(0, 3), Communication(1, 2)])
        assert dict(cs.partner_of()) == {0: 3, 1: 2}

    def test_min_leaves_power_of_two(self):
        assert CommunicationSet([Communication(0, 4)]).min_leaves() == 8
        assert CommunicationSet([Communication(0, 3)]).min_leaves() == 4
        assert CommunicationSet([Communication(0, 1)]).min_leaves() == 2

    def test_orientation_predicates(self):
        right = CommunicationSet([Communication(0, 1)])
        left = CommunicationSet([Communication(1, 0)])
        mixed = CommunicationSet([Communication(0, 1), Communication(3, 2)])
        assert right.is_right_oriented and not right.is_left_oriented
        assert left.is_left_oriented and not left.is_right_oriented
        assert not mixed.is_right_oriented and not mixed.is_left_oriented

    def test_oriented_subsets(self):
        mixed = CommunicationSet([Communication(0, 1), Communication(3, 2)])
        assert list(mixed.right_oriented_subset()) == [Communication(0, 1)]
        assert list(mixed.left_oriented_subset()) == [Communication(3, 2)]

    def test_restricted_to(self):
        cs = CommunicationSet([Communication(0, 1), Communication(2, 3)])
        sub = cs.restricted_to([Communication(2, 3)])
        assert list(sub) == [Communication(2, 3)]

    def test_restricted_to_unknown_rejected(self):
        cs = CommunicationSet([Communication(0, 1)])
        with pytest.raises(CommunicationError):
            cs.restricted_to([Communication(4, 5)])

    def test_mirrored_set(self):
        cs = CommunicationSet([Communication(0, 1)])
        # mirroring maps src 0 -> 3, dst 1 -> 2: orientation flips
        assert list(cs.mirrored(4)) == [Communication(3, 2)]

    def test_mirror_outside_tree_rejected(self):
        cs = CommunicationSet([Communication(0, 9)])
        with pytest.raises(CommunicationError):
            cs.mirrored(8)

    def test_equality_and_hash(self):
        a = CommunicationSet([Communication(0, 1), Communication(2, 3)])
        b = CommunicationSet([Communication(2, 3), Communication(0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    @given(wellnested_set_st())
    def test_sources_destinations_disjoint(self, cs):
        assert set(cs.sources()).isdisjoint(cs.destinations())

    @given(wellnested_set_st())
    def test_iteration_is_sorted(self, cs):
        comms = list(cs)
        assert comms == sorted(comms)
