"""Unit tests for width (same-direction link congestion)."""

from hypothesis import given

from repro.comms.communication import Communication, CommunicationSet
from repro.comms.width import (
    comms_on_edge,
    edge_loads,
    width,
    width_lower_bound_witness,
)
from repro.comms.generators import crossing_chain, disjoint_pairs, nested_chain
from repro.cst.topology import CSTTopology, DirectedEdge
from repro.types import Direction

from tests.conftest import wellnested_set_st


def cs(*pairs):
    return CommunicationSet(Communication(s, d) for s, d in pairs)


class TestEdgeLoads:
    def test_single_comm_unit_loads(self, topo8):
        loads = edge_loads(cs((0, 1)), topo8)
        assert set(loads.values()) == {1}
        assert len(loads) == 2  # one up edge, one down edge

    def test_shared_up_edge(self, topo8):
        loads = edge_loads(cs((0, 7), (1, 6)), topo8)
        assert loads[DirectedEdge(4, Direction.UP)] == 2
        assert loads[DirectedEdge(2, Direction.UP)] == 2

    def test_opposite_directions_counted_separately(self, topo8):
        # (0,2) descends through switch 5's parent edge; (3,5) ascends it
        loads = edge_loads(cs((0, 2), (3, 5)), topo8)
        assert loads.get(DirectedEdge(5, Direction.DOWN), 0) == 1
        assert loads.get(DirectedEdge(5, Direction.UP), 0) == 1

    def test_empty_set(self, topo8):
        assert edge_loads(CommunicationSet(()), topo8) == {}


class TestWidth:
    def test_empty_width_zero(self):
        assert width(CommunicationSet(())) == 0

    def test_single_width_one(self):
        assert width(cs((0, 1))) == 1

    def test_disjoint_pairs_width_one(self):
        assert width(disjoint_pairs(10)) == 1

    def test_crossing_chain_exact(self):
        for w in (1, 2, 3, 5, 9, 16):
            assert width(crossing_chain(w)) == w

    def test_nested_chain_less_than_depth(self):
        # adjacent-leaf nesting does NOT reach width == depth (inner pairs
        # stay in low subtrees) — the pitfall crossing_chain exists for.
        assert width(nested_chain(3)) == 2

    def test_default_topology_is_minimal(self):
        s = cs((0, 5))
        assert width(s) == width(s, CSTTopology.of(8))

    @given(wellnested_set_st())
    def test_width_bounds(self, s):
        if len(s) == 0:
            return
        w = width(s)
        assert 1 <= w <= len(s)

    @given(wellnested_set_st())
    def test_width_monotone_under_removal(self, s):
        if len(s) < 2:
            return
        topo = CSTTopology.of(64)
        sub = CommunicationSet(list(s)[1:])
        assert width(sub, topo) <= width(s, topo)


class TestWitness:
    def test_witness_attains_width(self, topo8):
        s = cs((0, 7), (1, 6), (2, 5))
        edge, witness = width_lower_bound_witness(s, topo8)
        assert edge is not None
        assert len(witness) == width(s, topo8)

    def test_witness_comms_all_use_edge(self, topo8):
        s = cs((0, 7), (1, 6))
        edge, witness = width_lower_bound_witness(s, topo8)
        for c in witness:
            assert edge in topo8.path_edges(c.src, c.dst)

    def test_empty_witness(self, topo8):
        edge, witness = width_lower_bound_witness(CommunicationSet(()), topo8)
        assert edge is None and witness == ()


class TestChainStructureLemma:
    """Communications sharing a directed edge always form a nesting chain.

    This structural fact (derived in DESIGN.md §5 discussion) underpins the
    power analysis: it is why chain-monotone schedules achieve O(1) switch
    changes and why a maximum incompatible is totally ordered by nesting.
    """

    @given(wellnested_set_st(max_pairs=8))
    def test_same_edge_comms_pairwise_nested(self, s):
        topo = CSTTopology.of(64)
        loads = edge_loads(s, topo)
        for edge, load in loads.items():
            if load < 2:
                continue
            users = comms_on_edge(s, topo, edge)
            for i, a in enumerate(users):
                for b in users[i + 1 :]:
                    assert a.encloses(b) or b.encloses(a), (
                        f"{a} and {b} share {edge} but neither nests the other"
                    )


class TestVectorizedFastPath:
    """edge_loads_fast / width_fast must agree exactly with the reference."""

    @given(wellnested_set_st(max_pairs=10))
    def test_edge_loads_equivalence(self, s):
        from repro.comms.width import edge_loads_fast

        topo = CSTTopology.of(64)
        assert dict(edge_loads_fast(s, topo)) == dict(edge_loads(s, topo))

    @given(wellnested_set_st(max_pairs=10))
    def test_width_equivalence(self, s):
        from repro.comms.width import width_fast

        topo = CSTTopology.of(64)
        assert width_fast(s, topo) == width(s, topo)

    def test_width_fast_empty(self):
        from repro.comms.width import width_fast

        assert width_fast(CommunicationSet(())) == 0

    def test_width_fast_default_topology(self):
        from repro.comms.width import width_fast

        assert width_fast(crossing_chain(5)) == 5

    def test_left_oriented_supported(self):
        # the subtree characterisation is orientation-agnostic
        from repro.comms.width import edge_loads_fast, width_fast

        s = cs((5, 0), (4, 1))
        topo = CSTTopology.of(8)
        assert dict(edge_loads_fast(s, topo)) == dict(edge_loads(s, topo))
        assert width_fast(s, topo) == width(s, topo)
