"""Unit tests for Dyck-word machinery."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.comms.dyck import catalan, dyck_words, is_dyck_word, random_dyck_word

from tests.conftest import dyck_word_st


class TestIsDyckWord:
    @pytest.mark.parametrize("word", ["", "()", "(())", "()()", "(()())", "((()))"])
    def test_valid(self, word):
        assert is_dyck_word(word)

    @pytest.mark.parametrize("word", ["(", ")", ")(", "(()", "())", "())("])
    def test_invalid(self, word):
        assert not is_dyck_word(word)

    def test_rejects_foreign_characters(self):
        with pytest.raises(ValueError):
            is_dyck_word("(a)")

    @given(dyck_word_st())
    def test_strategy_produces_dyck_words(self, word):
        assert is_dyck_word(word)


class TestCatalan:
    def test_known_values(self):
        assert [catalan(n) for n in range(8)] == [1, 1, 2, 5, 14, 42, 132, 429]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            catalan(-1)


class TestEnumeration:
    @pytest.mark.parametrize("n", range(0, 7))
    def test_counts_match_catalan(self, n):
        words = list(dyck_words(n))
        assert len(words) == catalan(n)

    def test_all_valid_and_distinct(self):
        words = list(dyck_words(5))
        assert all(is_dyck_word(w) for w in words)
        assert len(set(words)) == len(words)

    def test_lexicographic_order(self):
        words = list(dyck_words(4))
        assert words == sorted(words)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            list(dyck_words(-1))


class TestRandomSampling:
    def test_produces_dyck_words(self):
        rng = np.random.default_rng(0)
        for n in (1, 2, 5, 17, 100):
            word = random_dyck_word(n, rng)
            assert len(word) == 2 * n
            assert is_dyck_word(word)

    def test_zero_pairs(self):
        assert random_dyck_word(0, np.random.default_rng(0)) == ""

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            random_dyck_word(-1, np.random.default_rng(0))

    def test_deterministic_given_seed(self):
        a = random_dyck_word(20, np.random.default_rng(9))
        b = random_dyck_word(20, np.random.default_rng(9))
        assert a == b

    def test_uniformity_chi_squared(self):
        """Cycle-lemma sampling should be uniform over the C_4 = 14 words."""
        rng = np.random.default_rng(2024)
        n, trials = 4, 14 * 500
        counts: dict[str, int] = {}
        for _ in range(trials):
            w = random_dyck_word(n, rng)
            counts[w] = counts.get(w, 0) + 1
        assert len(counts) == catalan(n)  # every word observed
        expected = trials / catalan(n)
        chi2 = sum((c - expected) ** 2 / expected for c in counts.values())
        # 13 dof; 99.9th percentile ≈ 34.5 — generous to avoid flakiness
        assert chi2 < 34.5, f"chi2={chi2:.1f}, counts={counts}"
