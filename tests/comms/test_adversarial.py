"""Unit tests for the adversarial workload generators — each construction
must actually exhibit the property it is named for, and the CSA must
survive all of them."""

import pytest

from repro.exceptions import CommunicationError
from repro.comms.adversarial import (
    alternating_demand_set,
    full_leaf_utilisation_set,
    idle_subtree_inversion_set,
    left_spine_hotspot_set,
)
from repro.comms.wellnested import is_well_nested
from repro.comms.width import width
from repro.core.csa import PADRScheduler
from repro.cst.topology import CSTTopology
from repro.analysis.monotonicity import chain_service_analysis
from repro.analysis.optimality import check_round_optimality
from repro.analysis.verifier import verify_schedule


class TestIdleSubtreeInversion:
    def test_exhibits_inversion(self):
        cset = idle_subtree_inversion_set()
        s = PADRScheduler().schedule(cset, n_leaves=64)
        report = chain_service_analysis(s, cset, CSTTopology.of(64))
        assert report.total_inversions >= 1

    def test_still_correct_and_optimal(self):
        cset = idle_subtree_inversion_set()
        s = PADRScheduler().schedule(cset, n_leaves=64)
        verify_schedule(s, cset).raise_if_failed()
        check_round_optimality(s, cset, require_optimal=True)


class TestAlternatingDemand:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_well_nested_single_chain(self, k):
        cset = alternating_demand_set(k)
        assert is_well_nested(cset)
        assert len(cset) == 2 * k

    def test_focal_switch_carries_both_demands(self):
        from repro.core.phase1 import phase1_states

        cset = alternating_demand_set(2)
        n = cset.min_leaves()
        states = phase1_states(cset, n)
        focal = states[2]  # root's left child
        assert focal.matched == 2
        assert focal.unmatched_left_src == 2

    def test_csa_constant_changes(self):
        cset = alternating_demand_set(8)
        s = PADRScheduler().schedule(cset)
        verify_schedule(s, cset).raise_if_failed()
        assert s.power.max_switch_changes <= 3

    def test_rejects_bad_k(self):
        with pytest.raises(CommunicationError):
            alternating_demand_set(0)

    def test_rejects_small_tree(self):
        with pytest.raises(CommunicationError):
            alternating_demand_set(4, n_leaves=16)


class TestFullLeafUtilisation:
    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_width_is_half_the_leaves(self, n):
        cset = full_leaf_utilisation_set(n)
        assert len(cset) == n // 2
        assert width(cset, CSTTopology.of(n)) == n // 2

    def test_csa_exact_rounds_and_constant_power(self):
        cset = full_leaf_utilisation_set(64)
        s = PADRScheduler().schedule(cset, n_leaves=64)
        verify_schedule(s, cset).raise_if_failed()
        assert s.n_rounds == 32
        assert s.power.max_switch_changes <= 2

    def test_rejects_non_power_of_two(self):
        with pytest.raises(CommunicationError):
            full_leaf_utilisation_set(12)


class TestLeftSpineHotspot:
    def test_width_one_but_many_lca_levels(self):
        cset = left_spine_hotspot_set(5)
        n = cset.min_leaves()
        topo = CSTTopology.of(n)
        assert width(cset, topo) == 1
        lca_levels = {topo.level(topo.lca_of_pes(c.src, c.dst)) for c in cset}
        assert len(lca_levels) == 5  # one distinct level per pair

    def test_single_round(self):
        cset = left_spine_hotspot_set(4)
        s = PADRScheduler().schedule(cset)
        verify_schedule(s, cset).raise_if_failed()
        assert s.n_rounds == 1

    def test_rejects_bad_depth(self):
        with pytest.raises(CommunicationError):
            left_spine_hotspot_set(0)
