"""Unit tests for well-nestedness recognition and nesting structure."""

import pytest
from hypothesis import given

from repro.exceptions import NotWellNestedError, OrientationError
from repro.comms.communication import Communication, CommunicationSet
from repro.comms.wellnested import (
    enclosing_chain,
    is_well_nested,
    nesting_depths,
    nesting_forest,
    parenthesis_profile,
    require_well_nested,
)

from tests.conftest import wellnested_set_st


def cs(*pairs):
    return CommunicationSet(Communication(s, d) for s, d in pairs)


class TestParenthesisProfile:
    def test_simple(self):
        assert parenthesis_profile(cs((0, 1)), 4) == "().."

    def test_nested(self):
        assert parenthesis_profile(cs((0, 3), (1, 2)), 4) == "(())"

    def test_idle_gaps(self):
        assert parenthesis_profile(cs((1, 4)), 6) == ".(..)."

    def test_left_oriented_rejected(self):
        with pytest.raises(OrientationError):
            parenthesis_profile(cs((3, 1)), 4)

    def test_defaults_to_max_pe(self):
        assert parenthesis_profile(cs((0, 2))) == "(.)"


class TestIsWellNested:
    def test_empty_set(self):
        assert is_well_nested(CommunicationSet(()))

    def test_single(self):
        assert is_well_nested(cs((0, 5)))

    def test_nested(self):
        assert is_well_nested(cs((0, 3), (1, 2)))

    def test_adjacent(self):
        assert is_well_nested(cs((0, 1), (2, 3)))

    def test_crossing_rejected(self):
        # ( [ ) ] — crossing pairs, balanced word but wrong matching
        assert not is_well_nested(cs((0, 2), (1, 3)))

    def test_left_oriented_rejected(self):
        assert not is_well_nested(cs((3, 0)))

    def test_mixed_orientation_rejected(self):
        assert not is_well_nested(cs((0, 1), (5, 3)))

    def test_require_raises_on_crossing(self):
        with pytest.raises(NotWellNestedError):
            require_well_nested(cs((0, 2), (1, 3)))

    def test_require_raises_on_orientation(self):
        with pytest.raises(OrientationError):
            require_well_nested(cs((3, 0)))

    def test_require_returns_valid_set(self):
        s = cs((0, 1))
        assert require_well_nested(s) is s

    @given(wellnested_set_st())
    def test_generated_sets_are_well_nested(self, s):
        assert is_well_nested(s)


class TestNestingForest:
    def test_roots_have_no_parent(self):
        s = cs((0, 1), (2, 3))
        forest = nesting_forest(s)
        assert all(p is None for p in forest.values())

    def test_nested_parent(self):
        s = cs((0, 3), (1, 2))
        forest = nesting_forest(s)
        assert forest[Communication(1, 2)] == Communication(0, 3)
        assert forest[Communication(0, 3)] is None

    def test_figure2_structure(self, fig2_set):
        forest = nesting_forest(fig2_set)
        # (()(())) (()) — from the paper's Figure 2 transcription
        assert forest[Communication(0, 7)] is None
        assert forest[Communication(8, 11)] is None
        assert forest[Communication(1, 2)] == Communication(0, 7)
        assert forest[Communication(3, 6)] == Communication(0, 7)
        assert forest[Communication(4, 5)] == Communication(3, 6)
        assert forest[Communication(9, 10)] == Communication(8, 11)

    @given(wellnested_set_st())
    def test_parent_strictly_encloses(self, s):
        for c, p in nesting_forest(s).items():
            if p is not None:
                assert p.encloses(c)


class TestNestingDepths:
    def test_depths(self, fig2_set):
        depths = nesting_depths(fig2_set)
        assert depths[Communication(0, 7)] == 0
        assert depths[Communication(4, 5)] == 2
        assert depths[Communication(9, 10)] == 1

    @given(wellnested_set_st())
    def test_depth_is_chain_length(self, s):
        depths = nesting_depths(s)
        for c in s:
            assert depths[c] == len(enclosing_chain(s, c))


class TestEnclosingChain:
    def test_outermost_first(self, fig2_set):
        chain = enclosing_chain(fig2_set, Communication(4, 5))
        assert chain == [Communication(0, 7), Communication(3, 6)]

    def test_root_has_empty_chain(self, fig2_set):
        assert list(enclosing_chain(fig2_set, Communication(0, 7))) == []
