"""Unit tests for ASCII renderers."""

import pytest

from repro.comms.generators import crossing_chain, paper_figure2_set
from repro.core.csa import PADRScheduler
from repro.cst.topology import CSTTopology
from repro.viz.ascii import (
    render_change_profile,
    render_leaf_roles,
    render_round_configuration,
    render_schedule_timeline,
    render_tree,
)


class TestRenderLeafRoles:
    def test_profile_line(self, fig2_set):
        text = render_leaf_roles(fig2_set, 16)
        assert "(()(()))(())...." in text
        assert "0->7" in text

    def test_three_lines(self, fig2_set):
        assert len(render_leaf_roles(fig2_set, 16).splitlines()) == 3


class TestRenderTree:
    def test_levels_plus_leaf_row(self):
        text = render_tree(CSTTopology.of(8))
        lines = text.splitlines()
        assert len(lines) == 4  # 3 switch levels + leaves
        assert "1" in lines[0]

    def test_custom_annotation(self):
        text = render_tree(CSTTopology.of(4), lambda v: f"S{v}")
        assert "S1" in text and "S2" in text and "S3" in text

    def test_leaf_indices_present(self):
        text = render_tree(CSTTopology.of(8))
        last = text.splitlines()[-1]
        for pe in range(8):
            assert str(pe) in last


class TestRenderRoundConfiguration:
    def test_header_and_connections(self):
        cset = crossing_chain(2)
        s = PADRScheduler().schedule(cset)
        text = render_round_configuration(s, 0)
        assert text.startswith("round 0:")
        assert "l>r" in text  # the root's matched connection

    def test_round_bounds_checked(self):
        s = PADRScheduler().schedule(crossing_chain(2))
        with pytest.raises(IndexError):
            render_round_configuration(s, 2)


class TestRenderScheduleTimeline:
    def test_one_row_per_comm(self):
        cset = crossing_chain(3)
        s = PADRScheduler().schedule(cset)
        lines = render_schedule_timeline(s).splitlines()
        assert len(lines) == 1 + len(cset)

    def test_exactly_one_mark_per_row(self):
        s = PADRScheduler().schedule(crossing_chain(3))
        for line in render_schedule_timeline(s).splitlines()[1:]:
            assert line.count("##") == 1


class TestRenderChangeProfile:
    def test_shape_matches_tree(self):
        cset = crossing_chain(4)
        s = PADRScheduler().schedule(cset)
        topo = CSTTopology.of(s.n_leaves)
        lines = render_change_profile(s).splitlines()
        assert len(lines) == topo.height + 1
