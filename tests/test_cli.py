"""Unit tests for the CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.width == 16
        args = build_parser().parse_args(["random"])
        assert (args.pairs, args.leaves, args.seed) == (32, 128, 0)


class TestCommands:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "timeline:" in out

    def test_compare(self, capsys):
        assert main(["compare", "--width", "4"]) == 0
        out = capsys.readouterr().out
        assert "padr-csa" in out
        assert "sequential" in out

    def test_random(self, capsys):
        assert main(["random", "--pairs", "4", "--leaves", "16", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "width=" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--max-width", "8"]) == 0
        out = capsys.readouterr().out
        assert "csa_max_changes" in out
        # CSA stays at <= 2 changes for every width in the sweep
        assert "roy_max_units" in out


class TestTraceCommand:
    def test_trace_runs(self, capsys):
        assert main(["trace", "--width", "2"]) == 0
        out = capsys.readouterr().out
        assert "traced CSA run" in out
        assert "summary:" in out

    def test_trace_changed_only_is_shorter(self, capsys):
        main(["trace", "--width", "3"])
        full = capsys.readouterr().out
        main(["trace", "--width", "3", "--changed-only"])
        filtered = capsys.readouterr().out
        assert len(filtered) < len(full)


class TestChaosCommand:
    def test_chaos_runs_and_reports(self, capsys):
        assert main([
            "chaos", "--leaves", "16", "--widths", "2", "--models", "dead",
            "--trials", "1", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "chaos campaign" in out
        assert "accuracy" in out
        assert "healthy-control parity" in out

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.leaves == 64
        assert args.widths == [2, 4, 8]
        assert args.models == ["dead", "stuck", "misroute"]
