"""Unit tests for the utilization report."""

import numpy as np

from repro.baselines import SequentialScheduler
from repro.comms.generators import crossing_chain, disjoint_pairs, random_well_nested
from repro.core.csa import PADRScheduler
from repro.analysis.utilization import utilization_report


class TestUtilizationReport:
    def test_disjoint_pairs_one_busy_round(self):
        cset = disjoint_pairs(4)
        s = PADRScheduler().schedule(cset)
        report = utilization_report(s)
        assert len(report.rounds) == 1
        assert report.rounds[0].n_comms == 4
        assert report.peak_parallelism == 4

    def test_crossing_chain_one_comm_per_round(self):
        cset = crossing_chain(4)
        s = PADRScheduler().schedule(cset)
        report = utilization_report(s)
        assert all(r.n_comms == 1 for r in report.rounds)
        assert report.mean_parallelism == 1.0

    def test_link_utilization_bounds(self):
        rng = np.random.default_rng(0)
        cset = random_well_nested(16, 64, rng)
        s = PADRScheduler().schedule(cset, n_leaves=64)
        report = utilization_report(s)
        assert 0.0 < report.peak_link_utilization <= 1.0
        for r in report.rounds:
            assert 0.0 <= r.link_utilization <= 1.0

    def test_csa_at_least_as_parallel_as_sequential(self):
        rng = np.random.default_rng(1)
        cset = random_well_nested(12, 64, rng)
        csa = utilization_report(PADRScheduler().schedule(cset, n_leaves=64))
        seq = utilization_report(SequentialScheduler().schedule(cset, n_leaves=64))
        assert csa.mean_parallelism >= seq.mean_parallelism
        assert seq.mean_parallelism == 1.0

    def test_rows_shape(self):
        s = PADRScheduler().schedule(disjoint_pairs(2))
        rows = utilization_report(s).rows()
        assert rows and set(rows[0]) == {"round", "comms", "edges_used", "link_util"}

    def test_empty_schedule(self):
        from repro.comms.communication import CommunicationSet

        s = PADRScheduler().schedule(CommunicationSet(()), n_leaves=8)
        report = utilization_report(s)
        assert report.mean_parallelism == 0.0
        assert report.peak_parallelism == 0
