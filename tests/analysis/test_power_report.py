"""Unit tests for power tabulation helpers."""

from repro.comms.generators import crossing_chain
from repro.core.csa import PADRScheduler
from repro.baselines import SequentialScheduler
from repro.analysis.power_report import (
    change_histogram,
    per_level_changes,
    power_table,
)


class TestPowerTable:
    def test_one_row_per_schedule(self):
        cset = crossing_chain(3)
        schedules = [
            PADRScheduler().schedule(cset),
            SequentialScheduler().schedule(cset),
        ]
        rows = power_table(schedules)
        assert len(rows) == 2
        assert rows[0]["scheduler"] == "padr-csa"
        assert {"rounds", "power_total", "changes_max_switch"} <= set(rows[0])

    def test_empty(self):
        assert power_table([]) == []


class TestChangeHistogram:
    def test_histogram_counts_switches(self):
        cset = crossing_chain(4)
        s = PADRScheduler().schedule(cset)
        hist = change_histogram(s)
        # every change count maps to a positive number of switches
        assert all(v > 0 for v in hist.values())
        total = sum(hist.values())
        assert total == len(s.power.per_switch_changes)

    def test_csa_histogram_has_no_heavy_tail(self):
        s = PADRScheduler().schedule(crossing_chain(64))
        hist = change_histogram(s)
        assert max(hist) <= 2  # Theorem 8: constant changes per switch


class TestPerLevelChanges:
    def test_levels_sorted_and_bounded(self):
        s = PADRScheduler().schedule(crossing_chain(8))
        levels = per_level_changes(s)
        assert list(levels) == sorted(levels)
        assert all(0 <= lvl < 5 for lvl in levels)  # 32-leaf tree: levels 0..4

    def test_root_level_present_for_crossing_chain(self):
        s = PADRScheduler().schedule(crossing_chain(4))
        levels = per_level_changes(s)
        assert 0 in levels
        assert levels[0] >= 1
