"""Unit tests for the end-to-end schedule verifier.

The verifier must both accept correct schedules and *reject* every kind of
broken one — the rejection tests build corrupted schedules by hand.
"""

import pytest

from repro.exceptions import VerificationError
from repro.comms.communication import Communication, CommunicationSet
from repro.core.csa import PADRScheduler
from repro.core.schedule import RoundRecord, Schedule
from repro.cst.power import PowerMeter
from repro.analysis.verifier import verify_schedule


def cs(*pairs):
    return CommunicationSet(Communication(s, d) for s, d in pairs)


def fake_schedule(cset, rounds, n_leaves=8, name="fake"):
    return Schedule(cset, n_leaves, name, tuple(rounds), PowerMeter().report(len(rounds)))


class TestAcceptsCorrect:
    def test_real_csa_schedule_passes(self):
        cset = cs((0, 3), (1, 2))
        s = PADRScheduler().schedule(cset, n_leaves=8)
        report = verify_schedule(s, cset)
        assert report.ok
        assert report.raise_if_failed() is report

    def test_summary_mentions_ok(self):
        cset = cs((0, 1))
        s = PADRScheduler().schedule(cset, n_leaves=8)
        assert "OK" in verify_schedule(s, cset).summary()


class TestRejectsBroken:
    def test_wrong_destination(self):
        cset = cs((0, 3), (1, 2))
        rounds = [
            RoundRecord(0, (Communication(0, 2), Communication(1, 3)), (0, 1), {})
        ]
        report = verify_schedule(fake_schedule(cset, rounds), cset)
        assert not report.ok
        assert any("expected" in f for f in report.failures)

    def test_missing_communication(self):
        cset = cs((0, 3), (1, 2))
        rounds = [RoundRecord(0, (Communication(0, 3),), (0,), {})]
        report = verify_schedule(fake_schedule(cset, rounds), cset)
        assert any("never performed" in f for f in report.failures)

    def test_duplicate_transmission(self):
        cset = cs((0, 3))
        rounds = [
            RoundRecord(0, (Communication(0, 3),), (0,), {}),
            RoundRecord(1, (Communication(0, 3),), (0,), {}),
        ]
        report = verify_schedule(fake_schedule(cset, rounds), cset)
        assert any("transmitted 2 times" in f for f in report.failures)

    def test_incompatible_round(self):
        cset = cs((0, 7), (1, 6))
        rounds = [
            RoundRecord(
                0, (Communication(0, 7), Communication(1, 6)), (0, 1), {}
            )
        ]
        report = verify_schedule(fake_schedule(cset, rounds), cset)
        assert any("not a compatible set" in f for f in report.failures)

    def test_non_source_transmission(self):
        cset = cs((0, 3))
        rounds = [
            RoundRecord(0, (Communication(0, 3), Communication(4, 5)), (0, 4), {})
        ]
        report = verify_schedule(fake_schedule(cset, rounds), cset)
        assert any("not a source" in f for f in report.failures)

    def test_duplicate_writers_in_round(self):
        cset = cs((0, 3))
        rounds = [RoundRecord(0, (Communication(0, 3),), (0, 0), {})]
        report = verify_schedule(fake_schedule(cset, rounds), cset)
        assert any("duplicate writers" in f for f in report.failures)

    def test_raise_if_failed_raises(self):
        cset = cs((0, 3))
        report = verify_schedule(fake_schedule(cset, []), cset)
        with pytest.raises(VerificationError):
            report.raise_if_failed()

    def test_failure_summary_truncates(self):
        cset = CommunicationSet(
            [Communication(2 * i, 2 * i + 1) for i in range(10)]
        )
        report = verify_schedule(fake_schedule(cset, [], n_leaves=32), cset)
        with pytest.raises(VerificationError, match="more"):
            report.raise_if_failed()
