"""Unit tests for round-count optimality checking."""

import pytest

from repro.exceptions import VerificationError
from repro.comms.communication import Communication, CommunicationSet
from repro.comms.generators import crossing_chain
from repro.core.csa import PADRScheduler
from repro.core.schedule import RoundRecord, Schedule
from repro.baselines import SequentialScheduler
from repro.cst.power import PowerMeter
from repro.analysis.optimality import check_round_optimality


def cs(*pairs):
    return CommunicationSet(Communication(s, d) for s, d in pairs)


class TestCheckRoundOptimality:
    def test_csa_is_optimal(self):
        cset = crossing_chain(4)
        s = PADRScheduler().schedule(cset)
        report = check_round_optimality(s, cset, require_optimal=True)
        assert report.optimal
        assert report.excess_rounds == 0
        assert "optimal" in report.summary()

    def test_sequential_excess_reported(self):
        cset = cs((0, 1), (2, 3), (4, 5))
        s = SequentialScheduler().schedule(cset, n_leaves=8)
        report = check_round_optimality(s, cset)
        assert not report.optimal
        assert report.excess_rounds == 2

    def test_require_optimal_raises_on_excess(self):
        cset = cs((0, 1), (2, 3))
        s = SequentialScheduler().schedule(cset, n_leaves=8)
        with pytest.raises(VerificationError, match="Theorem 5"):
            check_round_optimality(s, cset, require_optimal=True)

    def test_impossibly_few_rounds_raises(self):
        cset = crossing_chain(3)
        impossible = Schedule(
            cset, 8, "cheater",
            (RoundRecord(0, tuple(cset), tuple(cset.sources()), {}),),
            PowerMeter().report(1),
        )
        with pytest.raises(VerificationError, match="dropped work"):
            check_round_optimality(impossible, cset)

    def test_empty_schedule_of_empty_set(self):
        empty = CommunicationSet(())
        s = PADRScheduler().schedule(empty, n_leaves=8)
        report = check_round_optimality(s, empty, require_optimal=True)
        assert report.n_rounds == 0 and report.width == 0
