"""Unit tests for schedule replay and cross-validation."""

import numpy as np
import pytest

from repro.exceptions import SchedulingError, VerificationError
from repro.comms.generators import crossing_chain, paper_figure2_set, random_well_nested
from repro.core.csa import PADRScheduler
from repro.core.schedule import RoundRecord, Schedule
from repro.cst.power import PowerPolicy
from repro.analysis.replay import replay_schedule
from repro.analysis.verifier import verify_schedule


class TestReplayOfCSA:
    def test_replay_matches_record(self):
        cset = paper_figure2_set()
        s = PADRScheduler().schedule(cset, n_leaves=16)
        report = replay_schedule(s, cset)
        assert report.deliveries_match
        report.raise_if_mismatched()

    def test_replayed_schedule_verifies(self):
        cset = crossing_chain(4)
        s = PADRScheduler().schedule(cset)
        report = replay_schedule(s, cset)
        verify_schedule(report.replayed, cset).raise_if_failed()

    @pytest.mark.parametrize("seed", range(5))
    def test_random_csa_runs_are_replayable(self, seed):
        rng = np.random.default_rng(seed)
        cset = random_well_nested(12, 64, rng)
        s = PADRScheduler().schedule(cset, n_leaves=64)
        replay_schedule(s, cset).raise_if_mismatched()

    def test_recost_under_rebuild_policy(self):
        """A recorded lazy run re-costed under the rebuild discipline."""
        cset = crossing_chain(8)
        s = PADRScheduler().schedule(cset)
        report = replay_schedule(s, cset, policy=PowerPolicy.rebuild())
        assert report.deliveries_match
        assert report.replayed.power.max_switch_units == 8
        assert report.power_delta > 0


class TestReplayOfArchivedSchedules:
    def test_serialize_restore_replay_pipeline(self):
        from repro.io import schedule_from_dict, schedule_to_dict

        cset = crossing_chain(3)
        original = PADRScheduler().schedule(cset)
        restored = schedule_from_dict(schedule_to_dict(original))
        report = replay_schedule(restored, cset)
        assert report.deliveries_match

    def test_corrupted_record_detected(self):
        from repro.comms.communication import Communication
        from repro.cst.power import PowerMeter

        cset = crossing_chain(2)
        # a record claiming both comms happened in one round: unrealisable
        fake = Schedule(
            cset,
            4,
            "tampered",
            (RoundRecord(0, tuple(cset), tuple(cset.sources()), {}),),
            PowerMeter().report(1),
        )
        with pytest.raises(SchedulingError):
            replay_schedule(fake, cset)

    def test_mismatch_raises(self):
        from repro.cst.power import PowerMeter
        from repro.comms.communication import Communication

        cset = crossing_chain(2)
        real = PADRScheduler().schedule(cset)
        # reorder the rounds: replay succeeds but diverges from... actually
        # a swapped-round record replays to itself; instead alter which
        # communication fired first.
        swapped = Schedule(
            cset,
            real.n_leaves,
            real.scheduler_name,
            tuple(
                RoundRecord(i, r.performed, r.writers, {})
                for i, r in enumerate(reversed(real.rounds))
            ),
            PowerMeter().report(real.n_rounds),
        )
        report = replay_schedule(swapped, cset)
        # the replay follows the (reversed) record, so it matches itself
        assert report.deliveries_match
        # but it no longer matches the original run's order
        assert [r.performed for r in swapped.rounds] != [
            r.performed for r in real.rounds
        ]
