"""Unit tests for multi-scheduler comparison."""

import pytest

from repro.comms.generators import crossing_chain
from repro.core.csa import PADRScheduler
from repro.baselines import GreedyScheduler, SequentialScheduler
from repro.analysis.comparison import (
    compare_schedulers,
    format_table,
)


class TestCompareSchedulers:
    def test_runs_all_and_orders_rows(self):
        cset = crossing_chain(3)
        comparison = compare_schedulers(
            cset, [PADRScheduler(), SequentialScheduler()]
        )
        rows = comparison.rows()
        assert [r["scheduler"] for r in rows] == ["padr-csa", "sequential"]
        assert comparison.width == 3

    def test_by_name(self):
        cset = crossing_chain(2)
        comparison = compare_schedulers(cset, [PADRScheduler()])
        assert comparison.by_name("padr-csa").scheduler_name == "padr-csa"
        with pytest.raises(KeyError):
            comparison.by_name("nope")

    def test_rows_over_width(self):
        cset = crossing_chain(2)
        comparison = compare_schedulers(
            cset, [PADRScheduler(), SequentialScheduler()]
        )
        ratios = {r["scheduler"]: r["rounds/width"] for r in comparison.rows()}
        assert ratios["padr-csa"] == 1.0
        assert ratios["sequential"] == 1.0  # 2 comms, width 2

    def test_verification_enabled_by_default(self):
        # comparing verifies every schedule; a correct run simply passes
        cset = crossing_chain(2)
        comparison = compare_schedulers(
            cset, [PADRScheduler(), GreedyScheduler("innermost")]
        )
        assert len(comparison.schedules) == 2


class TestFormatTable:
    def test_alignment_and_content(self):
        rows = [{"a": 1, "bb": "xy"}, {"a": 222, "bb": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert "222" in text and "xy" in text

    def test_empty(self):
        assert format_table([]) == "(empty table)"
