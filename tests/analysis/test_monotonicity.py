"""Unit + property tests for the chain-service monotonicity analyzer."""

import numpy as np
from hypothesis import given, settings

from repro.baselines import RandomOrderScheduler, SequentialScheduler
from repro.comms.generators import crossing_chain, random_well_nested
from repro.core.csa import PADRScheduler
from repro.cst.topology import CSTTopology
from repro.analysis.monotonicity import chain_service_analysis

from tests.conftest import wellnested_set_st


class TestOnCrossingChains:
    def test_csa_has_zero_inversions(self):
        cset = crossing_chain(8)
        s = PADRScheduler().schedule(cset)
        report = chain_service_analysis(s, cset)
        assert report.is_outermost_monotone
        assert report.chain_edges > 0

    def test_sequential_lexical_is_also_monotone(self):
        # (src,dst) order on a crossing chain IS outermost-first
        cset = crossing_chain(6)
        s = SequentialScheduler().schedule(cset)
        assert chain_service_analysis(s, cset).is_outermost_monotone

    def test_random_order_has_inversions(self):
        cset = crossing_chain(32)
        s = RandomOrderScheduler(seed=1).schedule(cset)
        report = chain_service_analysis(s, cset)
        assert report.total_inversions > 0
        assert report.max_edge_inversions > 0

    def test_inversions_track_power(self):
        """More inversions should mean more switch changes (the mechanism)."""
        cset = crossing_chain(64)
        csa = PADRScheduler().schedule(cset)
        rand = RandomOrderScheduler(seed=2).schedule(cset)
        r_csa = chain_service_analysis(csa, cset)
        r_rand = chain_service_analysis(rand, cset)
        assert r_csa.total_inversions < r_rand.total_inversions
        assert (
            csa.power.max_switch_changes < rand.power.max_switch_changes
        )

    def test_summary_text(self):
        cset = crossing_chain(4)
        s = PADRScheduler().schedule(cset)
        assert "0 inversions" in chain_service_analysis(s, cset).summary()


class TestPropertyComparative:
    @given(cset=wellnested_set_st(max_pairs=10))
    @settings(max_examples=100, deadline=None)
    def test_csa_never_more_inverted_than_random_order(self, cset):
        """The comparative form of Lemmas 6–7 (see module docstring: the
        absolute zero-inversion claim only holds on single-chain
        workloads; across schedulers CSA is always at least as ordered)."""
        topo = CSTTopology.of(64)
        csa = PADRScheduler().schedule(cset, n_leaves=64)
        rand = RandomOrderScheduler(seed=9).schedule(cset, n_leaves=64)
        r_csa = chain_service_analysis(csa, cset, topo)
        r_rand = chain_service_analysis(rand, cset, topo)
        # small slack: on tiny sets a lucky random order can be as ordered
        # as the CSA while the CSA carries one idle-subtree inversion.
        assert r_csa.total_inversions <= r_rand.total_inversions + 2


class TestMultiChainNuance:
    def test_pinned_csa_inversion_example(self):
        """Regression-pin the hypothesis-found multi-chain example where the
        CSA fires an inner pair (in an idle subtree) before an outer one —
        allowed, and harmless for power."""
        from repro.comms.communication import Communication, CommunicationSet

        cset = CommunicationSet(
            Communication(*p) for p in [(0, 9), (1, 8), (2, 7), (4, 6)]
        )
        s = PADRScheduler().schedule(cset, n_leaves=64)
        report = chain_service_analysis(s, cset, CSTTopology.of(64))
        assert report.total_inversions >= 1  # inner (4,6) fires early
        assert s.power.max_switch_changes <= 3  # ...at no power cost

    def test_analysis_handles_random_sets(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            cset = random_well_nested(16, 64, rng)
            s = PADRScheduler().schedule(cset, n_leaves=64)
            report = chain_service_analysis(s, cset, CSTTopology.of(64))
            # multi-chain workloads may show a few inversions, but the
            # per-switch power stays constant regardless (Theorem 8)
            assert report.chain_edges >= 0
            assert s.power.max_switch_changes <= 6
