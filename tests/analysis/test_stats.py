"""Unit tests for workload statistics."""

import numpy as np
import pytest

from repro.comms.communication import CommunicationSet
from repro.comms.generators import crossing_chain, disjoint_pairs, paper_figure2_set
from repro.cst.topology import CSTTopology
from repro.analysis.stats import (
    random_width_distribution,
    workload_statistics,
)


class TestWorkloadStatistics:
    def test_crossing_chain(self):
        stats = workload_statistics(crossing_chain(4))
        assert stats.n_comms == 4
        assert stats.width == 4
        assert stats.max_nesting_depth == 4
        assert stats.root_crossings == 4

    def test_disjoint_pairs(self):
        stats = workload_statistics(disjoint_pairs(5))
        assert stats.width == 1
        assert stats.max_nesting_depth == 1
        assert stats.mean_span == 1.0

    def test_empty_set(self):
        stats = workload_statistics(CommunicationSet(()))
        assert stats.n_comms == 0
        assert stats.width == 0
        assert stats.max_nesting_depth == 0
        assert stats.edges_used == 0

    def test_figure2(self, fig2_set):
        stats = workload_statistics(fig2_set, CSTTopology.of(16))
        assert stats.n_comms == 6
        assert stats.width == 2
        assert stats.max_nesting_depth == 3

    def test_row_keys(self):
        row = workload_statistics(disjoint_pairs(2)).row()
        assert set(row) >= {"comms", "width", "max_depth", "edges_used"}


class TestRandomWidthDistribution:
    def test_summary_fields(self):
        rng = np.random.default_rng(0)
        d = random_width_distribution(8, 32, 20, rng)
        assert d["trials"] == 20
        assert 1 <= d["min"] <= d["p50"] <= d["p95"] <= d["max"] <= 8

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            random_width_distribution(4, 16, 0, np.random.default_rng(0))

    def test_sqrt_growth_shape(self):
        """Mean width grows sublinearly in the number of pairs (Θ(√M))."""
        rng = np.random.default_rng(123)
        m16 = random_width_distribution(16, 64, 60, rng)["mean"]
        m64 = random_width_distribution(64, 256, 60, rng)["mean"]
        # 4x the pairs should give roughly 2x the width, certainly < 3x
        assert m64 < 3 * m16
        assert m64 > m16  # but it does grow
