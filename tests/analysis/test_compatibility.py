"""Unit tests for the compatibility predicate."""

from hypothesis import given

from repro.comms.communication import Communication
from repro.cst.topology import CSTTopology
from repro.analysis.compatibility import (
    conflicting_pairs,
    conflicts,
    is_compatible_set,
)

from tests.conftest import wellnested_set_st


class TestConflicts:
    def test_nested_cross_root_conflict(self, topo8):
        assert conflicts(Communication(0, 7), Communication(1, 6), topo8)

    def test_disjoint_pairs_compatible(self, topo8):
        assert not conflicts(Communication(0, 1), Communication(2, 3), topo8)

    def test_opposite_direction_sharing_is_compatible(self, topo8):
        # (0,2) goes down into switch 5's subtree; (3,5) comes up out of it
        assert not conflicts(Communication(0, 2), Communication(3, 5), topo8)

    def test_nested_but_disjoint_paths_compatible(self, topo8):
        # (0,7) passes above the subtree where (2,3) lives
        assert not conflicts(Communication(0, 7), Communication(2, 3), topo8)

    def test_symmetric(self, topo8):
        a, b = Communication(0, 7), Communication(1, 6)
        assert conflicts(a, b, topo8) == conflicts(b, a, topo8)


class TestIsCompatibleSet:
    def test_empty_is_compatible(self, topo8):
        assert is_compatible_set([], topo8)

    def test_single_is_compatible(self, topo8):
        assert is_compatible_set([Communication(0, 5)], topo8)

    def test_conflicting_pair_detected(self, topo8):
        assert not is_compatible_set(
            [Communication(0, 7), Communication(1, 6)], topo8
        )

    def test_many_disjoint(self, topo8):
        comms = [Communication(2 * i, 2 * i + 1) for i in range(4)]
        assert is_compatible_set(comms, topo8)

    @given(wellnested_set_st(max_pairs=6))
    def test_disjoint_interval_comms_always_compatible(self, s):
        """Structural fact: same-edge users form nesting chains, so
        pairwise-disjoint intervals are always a compatible set."""
        topo = CSTTopology.of(64)
        from repro.comms.wellnested import nesting_depths

        depths = nesting_depths(s)
        if not depths:
            return
        # communications at equal depth are pairwise disjoint intervals
        for d in set(depths.values()):
            level = [c for c, dd in depths.items() if dd == d]
            assert is_compatible_set(level, topo)


class TestConflictingPairs:
    def test_reports_witness_edge(self, topo8):
        pairs = conflicting_pairs(
            [Communication(0, 7), Communication(1, 6)], topo8
        )
        assert len(pairs) == 1
        a, b, edge = pairs[0]
        assert {a, b} == {Communication(0, 7), Communication(1, 6)}
        assert edge in topo8.path_edges(0, 7)
        assert edge in topo8.path_edges(1, 6)

    def test_no_duplicates(self, topo8):
        # the two comms share several edges but are reported once
        pairs = conflicting_pairs(
            [Communication(0, 7), Communication(1, 6)], topo8
        )
        assert len(pairs) == 1

    def test_empty_for_compatible(self, topo8):
        assert conflicting_pairs(
            [Communication(0, 1), Communication(2, 3)], topo8
        ) == []
