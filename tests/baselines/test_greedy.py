"""Unit tests for the greedy maximal-compatible-set scheduler."""

import numpy as np
import pytest

from repro.baselines import GreedyScheduler
from repro.comms.generators import (
    crossing_chain,
    disjoint_pairs,
    random_well_nested,
)
from repro.comms.width import width
from repro.cst.topology import CSTTopology
from repro.analysis.compatibility import is_compatible_set
from repro.analysis.verifier import verify_schedule


class TestOrders:
    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            GreedyScheduler("sideways")  # type: ignore[arg-type]

    @pytest.mark.parametrize("order", ["outermost", "innermost", "lexical"])
    def test_name_includes_order(self, order):
        assert GreedyScheduler(order).name == f"greedy-{order}"


class TestPlans:
    @pytest.mark.parametrize("order", ["outermost", "innermost", "lexical"])
    def test_rounds_are_compatible_sets(self, order):
        rng = np.random.default_rng(3)
        cset = random_well_nested(15, 64, rng)
        topo = CSTTopology.of(64)
        plan = GreedyScheduler(order).plan(cset, topo)
        for rnd in plan:
            assert is_compatible_set(rnd, topo)

    @pytest.mark.parametrize("order", ["outermost", "innermost", "lexical"])
    def test_plan_partitions_the_set(self, order):
        cset = crossing_chain(6)
        plan = GreedyScheduler(order).plan(cset, CSTTopology.of(16))
        flat = sorted(c for rnd in plan for c in rnd)
        assert flat == sorted(cset.comms)

    def test_outermost_first_round_contains_outermost(self):
        cset = crossing_chain(4)
        plan = GreedyScheduler("outermost").plan(cset, CSTTopology.of(8))
        assert cset[0] in plan[0]

    def test_innermost_first_round_contains_innermost(self):
        cset = crossing_chain(4)
        plan = GreedyScheduler("innermost").plan(cset, CSTTopology.of(8))
        innermost = max(cset.comms, key=lambda c: c.src)
        assert innermost in plan[0]


class TestSchedules:
    @pytest.mark.parametrize("order", ["outermost", "innermost", "lexical"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_correct_on_random_sets(self, order, seed):
        rng = np.random.default_rng(seed)
        cset = random_well_nested(12, 48, rng)
        s = GreedyScheduler(order).schedule(cset, n_leaves=64)
        verify_schedule(s, cset).raise_if_failed()

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_outermost_width_optimal_on_random_sets(self, seed):
        # only the outermost order is guaranteed width-optimal; see the
        # pinned counterexample in tests/properties for innermost.
        rng = np.random.default_rng(seed)
        cset = random_well_nested(12, 48, rng)
        n = 64
        s = GreedyScheduler("outermost").schedule(cset, n_leaves=n)
        assert s.n_rounds == width(cset, CSTTopology.of(n))

    def test_disjoint_pairs_single_round(self):
        s = GreedyScheduler().schedule(disjoint_pairs(6))
        assert s.n_rounds == 1
