"""Unit tests for the power-oblivious random-order baseline."""

import numpy as np
import pytest

from repro.baselines import RandomOrderScheduler
from repro.comms.generators import crossing_chain, random_well_nested
from repro.core.csa import PADRScheduler
from repro.cst.topology import CSTTopology
from repro.analysis.compatibility import is_compatible_set
from repro.analysis.verifier import verify_schedule


class TestRandomOrderScheduler:
    def test_deterministic_given_seed(self):
        cset = crossing_chain(6)
        a = RandomOrderScheduler(seed=7).schedule(cset)
        b = RandomOrderScheduler(seed=7).schedule(cset)
        assert [r.performed for r in a.rounds] == [r.performed for r in b.rounds]

    def test_rounds_are_compatible(self):
        rng = np.random.default_rng(0)
        cset = random_well_nested(15, 64, rng)
        topo = CSTTopology.of(64)
        for rnd in RandomOrderScheduler(seed=3).plan(cset, topo):
            assert is_compatible_set(rnd, topo)

    @pytest.mark.parametrize("seed", [0, 5, 11])
    def test_correct_on_random_sets(self, seed):
        rng = np.random.default_rng(seed)
        cset = random_well_nested(12, 64, rng)
        s = RandomOrderScheduler(seed=seed).schedule(cset, n_leaves=64)
        verify_schedule(s, cset).raise_if_failed()

    def test_name_mentions_seed(self):
        assert "seed=4" in RandomOrderScheduler(seed=4).name

    def test_pays_more_than_csa_on_width_stress(self):
        # the ablation this baseline exists for: a power-oblivious order
        # fragments the per-edge chains and pays for it, even with
        # persistent configurations.
        cset = crossing_chain(64)
        random_s = RandomOrderScheduler(seed=1).schedule(cset)
        csa_s = PADRScheduler().schedule(cset)
        assert (
            random_s.power.max_switch_changes
            > 3 * csa_s.power.max_switch_changes
        )
