"""Unit tests for the sequential baseline."""

import numpy as np

from repro.baselines import SequentialScheduler
from repro.comms.generators import disjoint_pairs, random_well_nested
from repro.analysis.verifier import verify_schedule


class TestSequentialScheduler:
    def test_one_round_per_comm(self):
        cset = disjoint_pairs(5)
        s = SequentialScheduler().schedule(cset)
        assert s.n_rounds == 5
        assert all(len(r.performed) == 1 for r in s.rounds)

    def test_correctness(self):
        rng = np.random.default_rng(0)
        cset = random_well_nested(10, 64, rng)
        s = SequentialScheduler().schedule(cset, n_leaves=64)
        verify_schedule(s, cset).raise_if_failed()

    def test_deterministic_order(self):
        cset = disjoint_pairs(3)
        s = SequentialScheduler().schedule(cset)
        assert [r.performed[0] for r in s.rounds] == sorted(cset.comms)

    def test_name(self):
        assert SequentialScheduler().name == "sequential"
