"""Unit tests for the Roy-style ID scheduler reconstruction."""

import numpy as np
import pytest

from repro.baselines import RoyIDScheduler, assign_ids
from repro.comms.communication import Communication, CommunicationSet
from repro.comms.generators import crossing_chain, disjoint_pairs, random_well_nested
from repro.comms.width import width
from repro.cst.power import PowerPolicy
from repro.cst.topology import CSTTopology
from repro.analysis.compatibility import conflicts, is_compatible_set
from repro.analysis.verifier import verify_schedule


class TestAssignIds:
    def test_disjoint_pairs_share_id_zero(self):
        cset = disjoint_pairs(5)
        topo = CSTTopology.of(cset.min_leaves())
        ids = assign_ids(cset, topo)
        assert set(ids.values()) == {0}

    def test_crossing_chain_distinct_ids(self):
        cset = crossing_chain(4)
        topo = CSTTopology.of(8)
        ids = assign_ids(cset, topo)
        assert sorted(ids.values()) == [0, 1, 2, 3]

    def test_same_id_never_conflicts(self):
        rng = np.random.default_rng(11)
        topo = CSTTopology.of(64)
        for _ in range(20):
            cset = random_well_nested(12, 64, rng)
            ids = assign_ids(cset, topo)
            comms = list(ids)
            for i, a in enumerate(comms):
                for b in comms[i + 1 :]:
                    if ids[a] == ids[b]:
                        assert not conflicts(a, b, topo)

    def test_id_count_equals_width_on_random_sets(self):
        # the property that makes the reconstruction round-optimal in
        # practice (see module docstring) — checked, not assumed.
        rng = np.random.default_rng(23)
        topo = CSTTopology.of(64)
        for _ in range(30):
            cset = random_well_nested(10, 64, rng)
            ids = assign_ids(cset, topo)
            n_ids = max(ids.values()) + 1 if ids else 0
            assert n_ids == width(cset, topo)

    def test_empty_set(self):
        ids = assign_ids(CommunicationSet(()), CSTTopology.of(4))
        assert ids == {}


class TestRoyScheduler:
    def test_rounds_group_by_id(self):
        cset = crossing_chain(3)
        topo = CSTTopology.of(8)
        plan = RoyIDScheduler().plan(cset, topo)
        ids = assign_ids(cset, topo)
        for i, rnd in enumerate(plan):
            assert all(ids[c] == i for c in rnd)

    def test_rounds_are_compatible(self):
        rng = np.random.default_rng(4)
        cset = random_well_nested(14, 64, rng)
        topo = CSTTopology.of(64)
        for rnd in RoyIDScheduler().plan(cset, topo):
            assert is_compatible_set(rnd, topo)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_correct_on_random_sets(self, seed):
        rng = np.random.default_rng(seed)
        cset = random_well_nested(12, 64, rng)
        s = RoyIDScheduler().schedule(cset, n_leaves=64)
        verify_schedule(s, cset).raise_if_failed()

    def test_round_optimal_on_crossing_chain(self):
        cset = crossing_chain(8)
        s = RoyIDScheduler().schedule(cset)
        assert s.n_rounds == 8

    def test_rebuild_policy_models_per_round_reconfiguration(self):
        # the Theorem 8 comparison: under the rebuild discipline the most
        # loaded switch pays one unit per round — Θ(w).
        for w in (4, 16):
            s = RoyIDScheduler().schedule(
                crossing_chain(w), policy=PowerPolicy.rebuild()
            )
            assert s.power.max_switch_units == w
