"""The resilient scheduler: never raise on faults, account for every comm."""

import pytest

from repro.analysis.verifier import verify_schedule
from repro.comms.communication import Communication, CommunicationSet
from repro.comms.generators import crossing_chain, paper_figure2_set
from repro.core.csa import PADRScheduler
from repro.cst.faults import (
    DeadSwitchFault,
    MisrouteFault,
    StuckSwitchFault,
    inject,
)
from repro.cst.network import CSTNetwork
from repro.exceptions import CommunicationError, ReproError, SchedulingError
from repro.obs import Instrumentation, MetricsRegistry
from repro.recovery import ResilientScheduler

ALL_FAULTS = [DeadSwitchFault(), StuckSwitchFault(), MisrouteFault()]


def _fingerprint(schedule):
    return (
        schedule.n_rounds,
        [tuple(r.performed) for r in schedule.rounds],
        [tuple(r.writers) for r in schedule.rounds],
        schedule.power.total_units,
    )


class TestHealthyPath:
    def test_bit_identical_to_plain_csa(self):
        cset = paper_figure2_set()
        plain = PADRScheduler().schedule(cset, n_leaves=16)
        res = ResilientScheduler().schedule(cset, n_leaves=16)
        assert not res.degraded
        assert res.quarantined == ()
        assert res.undelivered == ()
        assert set(res.delivered) == set(cset)
        assert res.n_attempts == 1
        assert res.probe_rounds == 0
        assert res.backoff_rounds == 0
        assert _fingerprint(res.schedule) == _fingerprint(plain)

    def test_empty_set(self):
        res = ResilientScheduler().schedule(CommunicationSet(()), n_leaves=8)
        assert res.delivered == () and res.undelivered == ()
        assert res.partitions(CommunicationSet(()))

    def test_invalid_input_still_raises(self):
        crossing = CommunicationSet(
            [Communication(0, 2), Communication(1, 3)]
        )
        with pytest.raises((CommunicationError, ReproError)):
            ResilientScheduler().schedule(crossing, n_leaves=8)

    def test_size_conflict_still_raises(self):
        with pytest.raises(SchedulingError, match="conflicts"):
            ResilientScheduler().schedule(
                crossing_chain(2, 8), n_leaves=16, network=CSTNetwork.of_size(8)
            )


class TestFaultedRuns:
    @pytest.mark.parametrize("fault", ALL_FAULTS, ids=lambda f: f.name)
    @pytest.mark.parametrize("switch_id", [1, 2, 5, 8, 15])
    def test_never_raises_and_partitions(self, fault, switch_id):
        cset = paper_figure2_set()
        net = CSTNetwork.of_size(16)
        inject(net, switch_id, fault)
        res = ResilientScheduler().schedule(cset, network=net)
        assert res.partitions(cset)

    def test_dead_root_blocks_crossers_delivers_the_rest(self):
        cset = CommunicationSet(
            [Communication(0, 15), Communication(1, 2), Communication(12, 13)]
        )
        net = CSTNetwork.of_size(16)
        inject(net, 1, DeadSwitchFault())
        res = ResilientScheduler().schedule(cset, network=net)
        assert res.quarantined == (1,)
        assert set(res.undelivered) == {Communication(0, 15)}
        assert set(res.delivered) == {Communication(1, 2), Communication(12, 13)}
        # the surviving schedule passes full verification on its subset
        verify_schedule(
            res.schedule, CommunicationSet(res.delivered)
        ).raise_if_failed()

    def test_all_blocked_when_every_circuit_crosses_the_fault(self):
        cset = crossing_chain(4, 16)
        net = CSTNetwork.of_size(16)
        inject(net, 1, DeadSwitchFault())
        res = ResilientScheduler().schedule(cset, network=net)
        assert res.delivered == ()
        assert set(res.undelivered) == set(cset)
        assert res.schedule is None
        assert res.partitions(cset)

    def test_backoff_is_deterministic_and_paid_in_rounds(self):
        # root fault blocks the crosser; (8, 9) survives into a retry that
        # pays exactly one idle backoff round.
        cset = CommunicationSet([Communication(0, 15), Communication(8, 9)])
        net = CSTNetwork.of_size(16)
        inject(net, 1, DeadSwitchFault())
        res = ResilientScheduler().schedule(cset, network=net)
        assert res.n_attempts == 2
        assert res.backoff_rounds == 1
        assert res.attempts[0].verified_ok is False
        assert res.attempts[1].verified_ok is True
        assert set(res.delivered) == {Communication(8, 9)}

    def test_attempt_budget_bounds_the_loop(self):
        cset = crossing_chain(2, 16)
        net = CSTNetwork.of_size(16)
        inject(net, 1, DeadSwitchFault())
        res = ResilientScheduler(max_attempts=1).schedule(cset, network=net)
        assert res.n_attempts == 1
        assert res.partitions(cset)

    def test_max_attempts_must_be_positive(self):
        with pytest.raises(SchedulingError):
            ResilientScheduler(max_attempts=0)


class TestRecoveryMetrics:
    def test_counters_and_gauge(self):
        obs = Instrumentation(MetricsRegistry(), run="r")
        cset = crossing_chain(2, 16)
        net = CSTNetwork.of_size(16)
        inject(net, 1, DeadSwitchFault())
        res = ResilientScheduler(obs=obs).schedule(cset, network=net)
        snap = obs.metrics.snapshot()

        def counter(name):
            return sum(
                v for k, v in snap["counters"].items() if k.startswith(name)
            )

        assert counter("recovery.attempts") == res.n_attempts
        assert counter("recovery.probe_rounds") == res.probe_rounds
        assert counter("recovery.undelivered") == len(res.undelivered)
        [quarantined] = [
            v
            for k, v in snap["gauges"].items()
            if k.startswith("recovery.quarantined")
        ]
        assert quarantined == len(res.quarantined)
        [rate] = [
            h
            for k, h in snap["histograms"].items()
            if k.startswith("recovery.delivery_rate")
        ]
        assert rate["count"] == 1
