"""Chaos campaigns: determinism, gates and table plumbing."""

import pytest

from repro.obs import Instrumentation, MetricsRegistry
from repro.recovery import run_campaign


class TestCampaign:
    def test_small_campaign_meets_gates(self):
        res = run_campaign(n_leaves=16, widths=(2, 4), trials=2, seed=5)
        assert res.all_partitions_ok
        assert res.all_controls_ok
        assert res.detection_accuracy("dead") == 1.0
        assert res.detection_accuracy("stuck") == 1.0
        assert res.detection_accuracy("misroute") >= 0.9

    def test_deterministic_for_a_seed(self):
        a = run_campaign(n_leaves=16, widths=(2,), trials=2, seed=9)
        b = run_campaign(n_leaves=16, widths=(2,), trials=2, seed=9)
        assert a.trials == b.trials
        assert a.control_parity == b.control_parity

    def test_different_seeds_differ(self):
        a = run_campaign(n_leaves=32, widths=(4,), trials=3, seed=1)
        b = run_campaign(n_leaves=32, widths=(4,), trials=3, seed=2)
        assert [t.fault_switch for t in a.trials] != [
            t.fault_switch for t in b.trials
        ]

    def test_injected_fault_is_always_reachable(self):
        """Eligibility filter: every trial's fault could corrupt something,
        so a missed detection would be a real detector failure."""
        res = run_campaign(n_leaves=16, widths=(2, 4), trials=2, seed=5)
        for t in res.trials:
            assert t.detected  # reachable single faults are always found

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            run_campaign(models=("gamma-ray",), n_leaves=16)

    def test_rows_cover_every_cell(self):
        res = run_campaign(
            n_leaves=16, widths=(2, 4), models=("dead", "misroute"), trials=1, seed=0
        )
        rows = res.rows()
        assert len(rows) == 4  # 2 widths x 2 models
        assert {r["model"] for r in rows} == {"dead", "misroute"}
        for row in rows:
            assert set(row) == {
                "model", "width", "trials", "detected",
                "accuracy", "delivery", "probe_rounds",
            }

    def test_metrics_labelled_per_cell(self):
        obs = Instrumentation(MetricsRegistry(), run="unused")
        run_campaign(n_leaves=16, widths=(2,), models=("dead",), trials=1,
                     seed=0, obs=obs)
        counters = obs.metrics.snapshot()["counters"]
        assert any(
            k.startswith("recovery.attempts") and "chaos-dead-w2" in k
            for k in counters
        )
