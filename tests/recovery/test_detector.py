"""Probe-circuit fault localisation: the detector must name the switch."""

import pytest

from repro.comms.communication import Communication
from repro.cst.faults import DeadSwitchFault, MisrouteFault, StuckSwitchFault, inject
from repro.cst.network import CSTNetwork
from repro.obs import Instrumentation, MetricsRegistry
from repro.recovery import FaultDetector
from repro.types import OutPort

N = 16
COMM = Communication(2, 13)  # crosses the root: long up and down arms


def _path(n, comm):
    topo = CSTNetwork.of_size(n).topology
    return list(topo.path_connections(comm.src, comm.dst))


class TestLocaliseDead:
    @pytest.mark.parametrize("switch_id", _path(N, COMM))
    def test_every_circuit_switch_localised_exactly(self, switch_id):
        net = CSTNetwork.of_size(N)
        inject(net, switch_id, DeadSwitchFault())
        loc = FaultDetector().localise(net, COMM)
        assert loc.suspect == switch_id

    @pytest.mark.parametrize("switch_id", _path(N, COMM))
    def test_stuck_on_fresh_network_localised_exactly(self, switch_id):
        net = CSTNetwork.of_size(N)
        inject(net, switch_id, StuckSwitchFault())
        loc = FaultDetector().localise(net, COMM)
        assert loc.suspect == switch_id

    def test_probe_budget_logarithmic(self):
        """Binary search: well under one probe per circuit switch."""
        net = CSTNetwork.of_size(64)
        comm = Communication(0, 63)
        k = len(_path(64, comm))
        inject(net, 1, DeadSwitchFault())
        loc = FaultDetector().localise(net, comm)
        assert loc.suspect == 1
        # 1 full-circuit probe + ceil(log2(k+1)) bisection probes (+1 slack
        # for the LCA/arm-child disambiguation)
        assert loc.n_probes <= 2 + (k + 1).bit_length()


class TestLocaliseMisroute:
    def test_misroute_at_lca(self):
        net = CSTNetwork.of_size(N)
        topo = net.topology
        lca = topo.lca_of_pes(COMM.src, COMM.dst)
        inject(net, lca, MisrouteFault())
        loc = FaultDetector().localise(net, COMM)
        assert loc.suspect == lca

    def test_misroute_at_arm_child_disambiguated(self):
        """The LCA's turn and its arm child can only be exercised together;
        the sibling-cross follow-up must still split them."""
        net = CSTNetwork.of_size(N)
        topo = net.topology
        conns = topo.path_connections(COMM.src, COMM.dst)
        path = list(conns)
        q = next(i for i, v in enumerate(path) if conns[v].out_port is not OutPort.P)
        arm_child = path[q + 1]
        inject(net, arm_child, MisrouteFault())
        loc = FaultDetector().localise(net, COMM)
        assert loc.suspect == arm_child

    def test_misroute_on_down_path(self):
        net = CSTNetwork.of_size(N)
        down = net.topology.leaf_heap_id(COMM.dst) >> 1
        inject(net, down, MisrouteFault())
        loc = FaultDetector().localise(net, COMM)
        assert loc.suspect == down


class TestLocaliseNegative:
    def test_healthy_network_yields_no_suspect(self):
        net = CSTNetwork.of_size(N)
        loc = FaultDetector().localise(net, COMM)
        assert loc.suspect is None
        assert loc.n_probes == 1  # the passing full-circuit probe only

    def test_fault_off_the_circuit_yields_no_suspect(self):
        net = CSTNetwork.of_size(N)
        inject(net, 7, DeadSwitchFault())  # right subtree; COMM's arm is 6's
        loc = FaultDetector().localise(net, Communication(0, 3))
        assert loc.suspect is None


class TestDetect:
    def test_detect_returns_the_faulty_switch(self):
        net = CSTNetwork.of_size(N)
        inject(net, 1, DeadSwitchFault())
        result = FaultDetector().detect(net, [COMM])
        assert result.found
        assert result.fault_switches == frozenset({1})
        assert result.probe_rounds >= 1

    def test_duplicate_and_explained_evidence_not_reprobed(self):
        net = CSTNetwork.of_size(N)
        inject(net, 1, DeadSwitchFault())
        # both evidence comms cross the root; the second is explained by
        # the first localisation and must cost zero probes.
        a, b = Communication(0, 15), Communication(1, 14)
        solo = FaultDetector().detect(net, [a])
        both = FaultDetector().detect(net, [a, a, b])
        assert both.fault_switches == frozenset({1})
        assert both.probe_rounds == solo.probe_rounds
        assert len(both.localisations) == 1

    def test_max_evidence_caps_probing(self):
        net = CSTNetwork.of_size(N)
        inject(net, 4, DeadSwitchFault())  # under leaves 0,1 only
        detector = FaultDetector(max_evidence=1)
        # first evidence comm does not cross the fault: its full probe
        # passes, no suspect; the cap stops before the second.
        result = detector.detect(net, [Communication(8, 15), Communication(0, 15)])
        assert len(result.localisations) == 1
        assert not result.found

    def test_metrics_emitted(self):
        obs = Instrumentation(MetricsRegistry(), run="t")
        net = CSTNetwork.of_size(N)
        inject(net, 1, DeadSwitchFault())
        FaultDetector(obs=obs).detect(net, [COMM])
        counters = obs.metrics.snapshot()["counters"]
        probe = [v for k, v in counters.items() if k.startswith("recovery.probe_rounds")]
        dets = [v for k, v in counters.items() if k.startswith("recovery.detections")]
        assert probe and probe[0] >= 1
        assert dets == [1]
