"""Quarantine planning: routable/blocked split and fault reachability."""

from repro.comms.communication import Communication, CommunicationSet
from repro.comms.generators import crossing_chain, disjoint_pairs, paper_figure2_set
from repro.comms.wellnested import require_well_nested
from repro.cst.faults import DeadSwitchFault, MisrouteFault, StuckSwitchFault
from repro.cst.topology import CSTTopology
from repro.recovery import (
    circuit_crosses,
    degraded_leaves,
    fault_reachable,
    plan_quarantine,
)


class TestCircuitCrosses:
    def test_root_crossing(self):
        topo = CSTTopology.of(8)
        comm = Communication(0, 7)
        assert circuit_crosses(comm, 1, topo)
        # both spines are on the circuit, the off-path subtrees are not
        assert circuit_crosses(comm, 4, topo)  # leaf 0's parent
        assert not circuit_crosses(comm, 5, topo)  # leaves 2,3's parent

    def test_local_pair_stays_local(self):
        topo = CSTTopology.of(8)
        comm = Communication(0, 1)
        assert circuit_crosses(comm, 4, topo)
        assert not circuit_crosses(comm, 1, topo)
        assert not circuit_crosses(comm, 2, topo)

    def test_lca_is_on_the_circuit(self):
        topo = CSTTopology.of(16)
        comm = Communication(2, 5)
        lca = topo.lca_of_pes(2, 5)
        assert circuit_crosses(comm, lca, topo)


class TestPlanQuarantine:
    def test_partition_is_exact(self):
        topo = CSTTopology.of(16)
        cset = paper_figure2_set()
        plan = plan_quarantine(cset, {2}, topo)
        assert set(plan.routable) | set(plan.blocked) == set(cset)
        assert not set(plan.routable) & set(plan.blocked)

    def test_routable_subset_is_well_nested(self):
        topo = CSTTopology.of(16)
        cset = paper_figure2_set()
        for v in range(1, 16):
            plan = plan_quarantine(cset, {v}, topo)
            require_well_nested(plan.routable)  # raises if the claim breaks

    def test_quarantined_root_blocks_crossers_only(self):
        topo = CSTTopology.of(8)
        cset = CommunicationSet(
            [Communication(0, 7), Communication(1, 2)]
        )
        plan = plan_quarantine(cset, {1}, topo)
        assert plan.blocked == (Communication(0, 7),)
        assert list(plan.routable) == [Communication(1, 2)]
        assert not plan.fully_routable

    def test_empty_quarantine_blocks_nothing(self):
        topo = CSTTopology.of(8)
        cset = crossing_chain(4, 8)
        plan = plan_quarantine(cset, (), topo)
        assert plan.fully_routable
        assert list(plan.routable) == list(cset)


class TestDegradedLeaves:
    def test_subtree_under_quarantine(self):
        topo = CSTTopology.of(8)
        assert degraded_leaves({2}, topo) == {0, 1, 2, 3}
        assert degraded_leaves({1}, topo) == set(range(8))
        assert degraded_leaves((), topo) == set()


class TestFaultReachable:
    def test_dead_reachable_iff_crossed(self):
        topo = CSTTopology.of(8)
        cset = CommunicationSet([Communication(0, 1)])
        assert fault_reachable(DeadSwitchFault(), 4, cset, topo)
        assert not fault_reachable(DeadSwitchFault(), 1, cset, topo)
        assert not fault_reachable(DeadSwitchFault(), 6, cset, topo)

    def test_stuck_behaves_like_dead_for_reachability(self):
        topo = CSTTopology.of(8)
        cset = crossing_chain(2, 8)
        for v in range(1, 8):
            assert fault_reachable(StuckSwitchFault(), v, cset, topo) == any(
                circuit_crosses(c, v, topo) for c in cset
            )

    def test_misroute_harmless_on_pure_up_path(self):
        """A misroute swaps child outputs only; a switch the circuit merely
        climbs through (child -> p_o) cannot corrupt it."""
        topo = CSTTopology.of(16)
        cset = CommunicationSet([Communication(0, 15)])
        up_switch = topo.leaf_heap_id(0) >> 1  # leaf 0's parent: pure climb
        assert fault_reachable(DeadSwitchFault(), up_switch, cset, topo)
        assert not fault_reachable(MisrouteFault(), up_switch, cset, topo)
        # the root turns the payload: reachable for every model
        assert fault_reachable(MisrouteFault(), 1, cset, topo)

    def test_misroute_reachable_on_down_path(self):
        topo = CSTTopology.of(16)
        cset = CommunicationSet([Communication(0, 15)])
        down_switch = topo.leaf_heap_id(15) >> 1
        assert fault_reachable(MisrouteFault(), down_switch, cset, topo)

    def test_disjoint_workload_leaves_far_switches_unreachable(self):
        topo = CSTTopology.of(16)
        cset = disjoint_pairs(2)  # PEs 0..3
        assert not fault_reachable(DeadSwitchFault(), 3, cset, topo)
