"""Nearest-rank percentile: exact ranks at the boundaries that mis-ranked.

The old helper computed the rank with float floor division
(``-(-q * n // 1)``); at representation boundaries like ``q=0.99,
n=100`` the product floats to ``99.00000000000001`` and the rank came
out one too high.  These tests pin the integer-exact contract the
streaming report and the SLO engine both rely on.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import percentile


class TestPercentileExactness:
    def test_empty_series_reads_zero(self):
        assert percentile([], 0.5) == 0.0
        assert percentile((), 0.99) == 0.0

    def test_single_observation_for_every_q(self):
        for q in (0.001, 0.25, 0.5, 0.99, 1.0):
            assert percentile([7], q) == 7.0

    def test_q99_at_n100_is_rank_99(self):
        # 0.99 * 100 floats to 99.00000000000001; a float floor put the
        # rank at 100 (the max) instead of 99.
        values = list(range(1, 101))
        assert percentile(values, 0.99) == 99.0

    def test_q50_at_n10_is_rank_5(self):
        values = list(range(1, 11))
        assert percentile(values, 0.5) == 5.0

    def test_q1_is_the_maximum(self):
        assert percentile([1, 2, 3], 1.0) == 3.0

    def test_tiny_q_is_the_minimum(self):
        assert percentile([1, 2, 3], 0.001) == 1.0

    def test_nearest_rank_never_interpolates(self):
        assert percentile([10, 20, 30, 40], 0.5) == 20.0

    @pytest.mark.parametrize("q", [0.0, -0.1, 1.0001, 2.0])
    def test_out_of_range_fraction_raises(self, q):
        with pytest.raises(ValueError):
            percentile([1.0], q)


@settings(max_examples=80, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=999), min_size=1, max_size=64),
    st.floats(min_value=0.001, max_value=1.0),
)
def test_percentile_is_an_observed_value_covering_q(values, q):
    values.sort()
    got = percentile(values, q)
    assert got in {float(v) for v in values}
    # nearest-rank coverage: at least ceil(q*n) observations sit at or
    # below the returned value (the defining property of the rank).
    n = len(values)
    covered = sum(1 for v in values if v <= got)
    assert covered >= min(n, max(1, math.ceil(q * n)))


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=999), min_size=1, max_size=64),
    st.floats(min_value=0.001, max_value=1.0),
    st.floats(min_value=0.001, max_value=1.0),
)
def test_percentile_is_monotone_in_q(values, q1, q2):
    values.sort()
    lo, hi = sorted((q1, q2))
    assert percentile(values, lo) <= percentile(values, hi)
