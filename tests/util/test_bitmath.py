"""Unit tests for heap-tree bit math."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitmath import (
    ceil_pow2,
    common_prefix_node,
    ilog2,
    is_power_of_two,
    level_of,
)


class TestIsPowerOfTwo:
    def test_small_powers(self):
        assert all(is_power_of_two(1 << k) for k in range(20))

    def test_non_powers(self):
        assert not any(is_power_of_two(x) for x in (3, 5, 6, 7, 9, 12, 100))

    def test_zero_and_negative(self):
        assert not is_power_of_two(0)
        assert not is_power_of_two(-4)


class TestCeilPow2:
    @pytest.mark.parametrize(
        "n,expected", [(1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (9, 16), (1025, 2048)]
    )
    def test_values(self, n, expected):
        assert ceil_pow2(n) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ceil_pow2(0)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_is_smallest_power_geq(self, n):
        p = ceil_pow2(n)
        assert is_power_of_two(p)
        assert p >= n
        assert p // 2 < n


class TestIlog2:
    @pytest.mark.parametrize("k", range(0, 16))
    def test_roundtrip(self, k):
        assert ilog2(1 << k) == k

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            ilog2(6)


class TestLevelOf:
    def test_root_is_level_zero(self):
        assert level_of(1) == 0

    def test_children_of_root(self):
        assert level_of(2) == 1
        assert level_of(3) == 1

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            level_of(0)

    @given(st.integers(min_value=1, max_value=2**30))
    def test_child_is_one_deeper(self, v):
        assert level_of(2 * v) == level_of(v) + 1
        assert level_of(2 * v + 1) == level_of(v) + 1


class TestCommonPrefixNode:
    def test_same_node(self):
        assert common_prefix_node(5, 5) == 5

    def test_siblings(self):
        assert common_prefix_node(4, 5) == 2

    def test_root_split(self):
        # leaves 8 and 13 in an 8-leaf tree live in different halves
        assert common_prefix_node(8, 13) == 1

    def test_ancestor_descendant(self):
        assert common_prefix_node(2, 9) == 2

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            common_prefix_node(0, 3)

    @given(
        st.integers(min_value=1, max_value=2**20),
        st.integers(min_value=1, max_value=2**20),
    )
    def test_lca_is_common_ancestor(self, a, b):
        lca = common_prefix_node(a, b)

        def ancestors(v):
            out = set()
            while v >= 1:
                out.add(v)
                v >>= 1
            return out

        common = ancestors(a) & ancestors(b)
        assert lca in common
        # it is the *lowest*: no common ancestor is deeper
        assert all(level_of(x) <= level_of(lca) for x in common)
