"""Unit tests for argument validation helpers."""

import pytest

from repro.util.validation import check_index, check_positive, check_type


class TestCheckIndex:
    def test_accepts_in_range(self):
        assert check_index(0, 5, "x") == 0
        assert check_index(4, 5, "x") == 4

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="x"):
            check_index(5, 5, "x")
        with pytest.raises(ValueError):
            check_index(-1, 5, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_index(True, 5, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_index(1.0, 5, "x")


class TestCheckPositive:
    def test_accepts_one(self):
        assert check_positive(1, "n") == 1

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive(0, "n")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive(True, "n")


class TestCheckType:
    def test_accepts_instance(self):
        assert check_type("s", str, "v") == "s"

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="v must be str"):
            check_type(3, str, "v")
