"""Unit tests for JSON serialization of workloads and schedules."""

import json

import pytest

from repro.comms.communication import Communication, CommunicationSet
from repro.comms.generators import crossing_chain, paper_figure2_set
from repro.core.csa import PADRScheduler
from repro.io import (
    SCHEDULE_SCHEMA,
    SerializationError,
    config_from_dict,
    config_to_dict,
    cset_from_dict,
    cset_to_dict,
    load_workloads,
    save_workloads,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.analysis.verifier import verify_schedule


class TestCsetRoundTrip:
    def test_roundtrip_identity(self, fig2_set):
        assert cset_from_dict(cset_to_dict(fig2_set)) == fig2_set

    def test_empty_set(self):
        empty = CommunicationSet(())
        assert cset_from_dict(cset_to_dict(empty)) == empty

    def test_json_serializable(self, fig2_set):
        text = json.dumps(cset_to_dict(fig2_set))
        assert cset_from_dict(json.loads(text)) == fig2_set

    def test_wrong_format_rejected(self):
        with pytest.raises(SerializationError, match="format"):
            cset_from_dict({"format": "something-else", "version": 1})

    def test_wrong_version_rejected(self):
        data = cset_to_dict(CommunicationSet(()))
        data["version"] = 99
        with pytest.raises(SerializationError, match="version"):
            cset_from_dict(data)

    def test_malformed_comms_rejected(self):
        with pytest.raises(SerializationError):
            cset_from_dict(
                {"format": "cst-padr/communication-set", "version": 1,
                 "comms": [[1]]}
            )


class TestScheduleRoundTrip:
    def test_roundtrip_preserves_everything_the_verifier_needs(self):
        cset = paper_figure2_set()
        original = PADRScheduler().schedule(cset, n_leaves=16)
        restored = schedule_from_dict(schedule_to_dict(original))

        assert restored.scheduler_name == original.scheduler_name
        assert restored.n_leaves == original.n_leaves
        assert restored.n_rounds == original.n_rounds
        assert list(restored.performed()) == list(original.performed())
        assert restored.power.total_units == original.power.total_units
        assert restored.power.max_switch_changes == original.power.max_switch_changes
        assert restored.control_messages == original.control_messages

    def test_restored_schedule_verifies(self):
        cset = crossing_chain(4)
        restored = schedule_from_dict(
            schedule_to_dict(PADRScheduler().schedule(cset))
        )
        verify_schedule(restored, cset).raise_if_failed()

    def test_tampered_schedule_fails_verification(self):
        cset = crossing_chain(2)
        data = schedule_to_dict(PADRScheduler().schedule(cset))
        data["rounds"][0]["performed"] = [[0, 1]]  # corrupt a delivery
        restored = schedule_from_dict(data)
        assert not verify_schedule(restored, cset).ok

    def test_json_serializable(self):
        cset = crossing_chain(2)
        text = json.dumps(schedule_to_dict(PADRScheduler().schedule(cset)))
        restored = schedule_from_dict(json.loads(text))
        assert restored.n_rounds == 2

    def test_wrong_format_rejected(self):
        with pytest.raises(SerializationError):
            schedule_from_dict({"format": "nope", "version": 1})


class TestWorkloadSuites:
    def test_save_and_load(self, tmp_path, fig2_set):
        path = tmp_path / "suite.json"
        suite = {"fig2": fig2_set, "chain": crossing_chain(3)}
        save_workloads(path, suite)
        loaded = load_workloads(path)
        assert loaded == suite

    def test_empty_suite(self, tmp_path):
        path = tmp_path / "empty.json"
        save_workloads(path, {})
        assert load_workloads(path) == {}

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError, match="cannot read"):
            load_workloads(tmp_path / "does-not-exist.json")

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_workloads(path)

    def test_loaded_sets_schedule_correctly(self, tmp_path):
        path = tmp_path / "suite.json"
        save_workloads(path, {"w": crossing_chain(3)})
        cset = load_workloads(path)["w"]
        s = PADRScheduler().schedule(cset)
        verify_schedule(s, cset).raise_if_failed()


class TestConfigRoundTrip:
    """Scheduler configs — including engine selection — survive the wire.

    This is the payload the service ships to multiprocessing workers; a
    lossy round-trip here is exactly the "pooled service silently falls
    back to the scalar engine" bug class.
    """

    def test_wrapped_roundtrip_preserves_engine_selection(self):
        from repro.core.config import SchedulerConfig

        cfg = SchedulerConfig(
            engine="columnar", columnar_threshold=512, trace_compat=False
        )
        restored = config_from_dict(config_to_dict(cfg))
        assert restored == cfg
        assert restored.engine == "columnar"
        assert restored.columnar_threshold == 512

    def test_bare_field_dict_accepted(self):
        from repro.core.config import SchedulerConfig

        cfg = SchedulerConfig(engine="auto", columnar_threshold=2048)
        assert config_from_dict(cfg.to_dict()) == cfg

    def test_json_serializable(self):
        from repro.core.config import SchedulerConfig

        cfg = SchedulerConfig(engine="columnar")
        text = json.dumps(config_to_dict(cfg))
        assert config_from_dict(json.loads(text)) == cfg

    def test_wrong_format_rejected(self):
        with pytest.raises(SerializationError, match="format"):
            config_from_dict({"format": "cst-padr/schedule", "version": 1})

    def test_missing_payload_rejected(self):
        with pytest.raises(SerializationError, match="config"):
            config_from_dict(
                {"format": "cst-padr/scheduler-config", "version": 1,
                 "schema": SCHEDULE_SCHEMA}
            )

    def test_invalid_engine_rejected(self):
        from repro.core.config import SchedulerConfig
        from repro.exceptions import ReproError

        data = config_to_dict(SchedulerConfig())
        data["config"]["engine"] = "quantum"
        with pytest.raises(ReproError):
            config_from_dict(data)


class TestSchemaVersioning:
    """Explicit ``"schema"`` field: writers stamp it, loaders window it."""

    def test_writers_stamp_current_schema(self, tmp_path, fig2_set):
        assert SCHEDULE_SCHEMA == 4
        assert cset_to_dict(fig2_set)["schema"] == SCHEDULE_SCHEMA
        schedule = PADRScheduler().schedule(fig2_set, n_leaves=16)
        assert schedule_to_dict(schedule)["schema"] == SCHEDULE_SCHEMA
        path = tmp_path / "suite.json"
        save_workloads(path, {"fig2": fig2_set})
        assert json.loads(path.read_text())["schema"] == SCHEDULE_SCHEMA

    def test_previous_schema_still_loads(self, fig2_set):
        # the two-release window: schema 3 (the previous generation)
        # must keep loading under the schema-4 writers.
        data = cset_to_dict(fig2_set)
        data["schema"] = SCHEDULE_SCHEMA - 1
        assert cset_from_dict(data) == fig2_set

    def test_previous_schema_schedule_still_loads(self):
        cset = crossing_chain(3)
        data = schedule_to_dict(PADRScheduler().schedule(cset))
        data["schema"] = SCHEDULE_SCHEMA - 1
        restored = schedule_from_dict(data)
        verify_schedule(restored, cset).raise_if_failed()

    def test_schema_1_payload_without_field_now_rejected(self, fig2_set):
        # schema-1 payloads predate the field; they aged out of the
        # two-release window long ago and must be rewritten by a
        # schema-2 release, not silently misread.
        data = cset_to_dict(fig2_set)
        del data["schema"]
        with pytest.raises(SerializationError, match="schema 1"):
            cset_from_dict(data)

    def test_schema_1_suite_now_rejected(self, tmp_path, fig2_set):
        path = tmp_path / "legacy.json"
        save_workloads(path, {"fig2": fig2_set})
        data = json.loads(path.read_text())
        del data["schema"]
        path.write_text(json.dumps(data))
        with pytest.raises(SerializationError, match="schema 1"):
            load_workloads(path)

    def test_future_schema_rejected_with_window(self, fig2_set):
        data = cset_to_dict(fig2_set)
        data["schema"] = SCHEDULE_SCHEMA + 1
        with pytest.raises(SerializationError, match=r"schemas \[3, 4\]"):
            cset_from_dict(data)

    def test_future_schedule_schema_rejected(self):
        data = schedule_to_dict(PADRScheduler().schedule(crossing_chain(2)))
        data["schema"] = 99
        with pytest.raises(SerializationError, match="schema"):
            schedule_from_dict(data)


class TestIOProperties:
    from hypothesis import given, settings

    from tests.conftest import wellnested_set_st

    @given(cset=wellnested_set_st(max_pairs=10))
    @settings(max_examples=80, deadline=None)
    def test_cset_roundtrip_property(self, cset):
        assert cset_from_dict(cset_to_dict(cset)) == cset

    @given(cset=wellnested_set_st(max_pairs=6))
    @settings(max_examples=30, deadline=None)
    def test_schedule_roundtrip_property(self, cset):
        s = PADRScheduler().schedule(cset, n_leaves=64)
        restored = schedule_from_dict(schedule_to_dict(s))
        assert verify_schedule(restored, cset).ok


class TestFabricRoundTrip:
    def fabric_schedule(self):
        from repro.fabric import FabricController

        fab = FabricController(2, 8, parallel=False)
        return fab.schedule_global(
            CommunicationSet(
                [Communication(0, 15), Communication(1, 2), Communication(8, 11)]
            )
        )

    def test_fabric_schedule_round_trip_preserves_accounting(self):
        from repro.io import fabric_schedule_from_dict, fabric_schedule_to_dict

        fs = self.fabric_schedule()
        data = json.loads(json.dumps(fabric_schedule_to_dict(fs)))
        back = fabric_schedule_from_dict(data)
        assert back.delivered == fs.delivered
        assert back.total_rounds == fs.total_rounds
        assert back.total_power_units == fs.total_power_units
        assert back.cross == fs.cross

    def test_fabric_payloads_carry_current_schema(self):
        from repro.io import SCHEDULE_SCHEMA, fabric_schedule_to_dict

        data = fabric_schedule_to_dict(self.fabric_schedule())
        assert data["schema"] == SCHEDULE_SCHEMA == 4
        assert set(data["local"]) == {"0", "1"}

    def test_malformed_fabric_schedule_rejected(self):
        from repro.io import SerializationError, fabric_schedule_to_dict
        from repro.io import fabric_schedule_from_dict

        data = fabric_schedule_to_dict(self.fabric_schedule())
        del data["cross"][0]["round"]
        with pytest.raises(SerializationError, match="malformed fabric"):
            fabric_schedule_from_dict(data)
