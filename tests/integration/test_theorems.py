"""The paper's theorems as executable integration tests.

One test class per theorem; each class states the claim it validates.
These are the tests EXPERIMENTS.md points at for the paper-vs-measured
record (the benchmarks regenerate the same quantities as tables).
"""

import numpy as np
import pytest

from repro.analysis.optimality import check_round_optimality
from repro.analysis.verifier import verify_schedule
from repro.comms.generators import (
    crossing_chain,
    disjoint_pairs,
    paper_figure2_set,
    random_well_nested,
    staircase,
)
from repro.comms.width import width
from repro.core.control import DownWord, StoredState, UpWord
from repro.core.csa import PADRScheduler
from repro.cst.engine import CSTEngine
from repro.cst.network import CSTNetwork
from repro.cst.power import PowerPolicy
from repro.cst.topology import CSTTopology


class TestTheorem4Correctness:
    """Theorem 4: the algorithm establishes a dedicated path between each
    source and its matching destination in some round."""

    @pytest.mark.parametrize("seed", range(20))
    def test_random_workloads(self, seed):
        rng = np.random.default_rng(seed)
        n_pairs = int(rng.integers(1, 30))
        cset = random_well_nested(n_pairs, 64, rng)
        s = PADRScheduler().schedule(cset, n_leaves=64)
        verify_schedule(s, cset).raise_if_failed()

    def test_paths_are_dedicated_within_rounds(self):
        # verified by the compatible-set check inside verify_schedule; this
        # test makes the claim explicit on the paper's own example.
        cset = paper_figure2_set()
        s = PADRScheduler().schedule(cset, n_leaves=16)
        report = verify_schedule(s, cset)
        assert report.ok


class TestTheorem5Optimality:
    """Theorem 5: a width-w set is routed in exactly w rounds, with O(1)
    storage and O(1) words exchanged per switch."""

    @pytest.mark.parametrize("w", [1, 2, 4, 8, 16, 32, 64, 128])
    def test_exactly_w_rounds_on_width_stress(self, w):
        cset = crossing_chain(w)
        s = PADRScheduler().schedule(cset)
        check_round_optimality(s, cset, require_optimal=True)

    @pytest.mark.parametrize("seed", range(20))
    def test_exactly_w_rounds_on_random_sets(self, seed):
        rng = np.random.default_rng(1000 + seed)
        cset = random_well_nested(int(rng.integers(1, 40)), 128, rng)
        s = PADRScheduler().schedule(cset, n_leaves=128)
        check_round_optimality(s, cset, require_optimal=True)

    def test_storage_is_constant_words(self):
        # C_S holds exactly five counters regardless of N or M
        assert StoredState.stored_words() == 5

    def test_messages_are_constant_words(self):
        assert UpWord.wire_words() == 2
        assert DownWord.wire_words() == 3

    @pytest.mark.parametrize("n", [8, 64, 512])
    def test_control_traffic_scales_linearly_with_tree(self, n):
        # per round, each link carries exactly one constant-size word:
        # total control words = Θ(N) per wave, independent of set size.
        cset = disjoint_pairs(2)
        s = PADRScheduler().schedule(cset, n_leaves=n)
        per_wave = 2 * n - 2
        waves = 1 + s.n_rounds
        assert s.control_messages == per_wave * waves
        assert s.control_words <= per_wave * waves * 3


class TestTheorem8PowerOptimality:
    """Theorem 8: each switch changes configuration O(1) times over the
    whole schedule (vs O(w) for the prior ID-based algorithm)."""

    @pytest.mark.parametrize("w", [2, 8, 32, 128, 256])
    def test_csa_constant_changes_any_width(self, w):
        s = PADRScheduler().schedule(crossing_chain(w))
        assert s.power.max_switch_changes <= 2
        assert s.power.max_switch_units <= 3

    def test_csa_constant_changes_on_staircases(self):
        for chains, depth in [(2, 8), (8, 2), (4, 4)]:
            cset = staircase(chains, depth)
            s = PADRScheduler().schedule(cset)
            assert s.power.max_switch_changes <= 4

    @pytest.mark.parametrize("seed", range(10))
    def test_csa_bounded_changes_random(self, seed):
        rng = np.random.default_rng(seed)
        cset = random_well_nested(32, 128, rng)
        s = PADRScheduler().schedule(cset, n_leaves=128)
        # Lemmas 6–7 bound per-port alternation; 6 covers all ports safely
        assert s.power.max_switch_changes <= 6

    def test_prior_art_pays_theta_w(self):
        from repro.baselines import RoyIDScheduler

        units = []
        for w in (8, 32, 128):
            s = RoyIDScheduler().schedule(
                crossing_chain(w), policy=PowerPolicy.rebuild()
            )
            units.append(s.power.max_switch_units)
        assert units == [8, 32, 128]  # exactly w — Θ(w) growth

    def test_lemma7_word_stream_alternates_at_most_twice(self):
        """Lemma 7: the per-child stream of source-requirement words forms
        Q1 or Q2 — at most two alternations between [s,...] and [null/d]."""
        from repro.core.control import DownKind
        from repro.core.phase1 import run_phase1
        from repro.core.phase2 import configure

        cset = crossing_chain(16)
        n = cset.min_leaves()
        network = CSTNetwork.of_size(n)
        network.assign_roles(cset.roles())
        engine = CSTEngine(network)
        states = run_phase1(engine)

        seen: dict[int, list[bool]] = {}  # child heap id -> wants_source seq

        def emit(switch_id, word):
            outcome = configure(switch_id, states[switch_id], word)
            for child, w in (
                (2 * switch_id, outcome.left_word),
                (2 * switch_id + 1, outcome.right_word),
            ):
                seen.setdefault(child, []).append(w.kind.wants_source)
            return outcome.left_word, outcome.right_word

        while any(st.matched for st in states.values()):
            engine.downward_wave(DownWord.none(), emit)

        for child, stream in seen.items():
            alternations = sum(
                1 for a, b in zip(stream, stream[1:]) if a != b
            )
            assert alternations <= 2, (
                f"child {child} saw {alternations} alternations: {stream}"
            )
