"""Cross-module integration tests: full workloads through the whole stack."""

import numpy as np
import pytest

from repro.analysis.comparison import compare_schedulers
from repro.analysis.verifier import verify_schedule
from repro.baselines import (
    GreedyScheduler,
    RandomOrderScheduler,
    RoyIDScheduler,
    SequentialScheduler,
)
from repro.comms.generators import (
    crossing_chain,
    paper_figure2_set,
    random_well_nested,
    segmentable_bus,
    staircase,
)
from repro.comms.width import width
from repro.core.csa import PADRScheduler
from repro.cst.power import PowerPolicy
from repro.cst.topology import CSTTopology

ALL_SCHEDULERS = [
    PADRScheduler(),
    RoyIDScheduler(),
    GreedyScheduler("outermost"),
    GreedyScheduler("innermost"),
    GreedyScheduler("lexical"),
    RandomOrderScheduler(seed=2),
    SequentialScheduler(),
]


class TestAllSchedulersAgreeOnCorrectness:
    @pytest.mark.parametrize(
        "workload",
        [
            paper_figure2_set(),
            crossing_chain(6),
            staircase(3, 3, gap=1),
            segmentable_bus([0, 5, 11, 20]),
        ],
        ids=["fig2", "crossing6", "staircase", "segbus"],
    )
    def test_every_scheduler_delivers_everything(self, workload):
        n = max(16, workload.min_leaves())
        comparison = compare_schedulers(workload, ALL_SCHEDULERS, n)
        # compare_schedulers verifies internally; spot-check the aggregate
        for s in comparison.schedules:
            assert sorted(s.performed()) == sorted(workload.comms)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_workloads_all_schedulers(self, seed):
        rng = np.random.default_rng(seed)
        cset = random_well_nested(20, 80, rng)
        compare_schedulers(cset, ALL_SCHEDULERS, 128)


class TestRelativeBehaviour:
    def test_round_ordering_csa_beats_sequential(self):
        cset = staircase(4, 2)
        comparison = compare_schedulers(
            cset, [PADRScheduler(), SequentialScheduler()]
        )
        csa = comparison.by_name("padr-csa")
        seq = comparison.by_name("sequential")
        assert csa.n_rounds < seq.n_rounds
        assert csa.n_rounds == comparison.width

    def test_power_csa_no_worse_than_any_baseline(self):
        for w in (8, 32):
            cset = crossing_chain(w)
            comparison = compare_schedulers(cset, ALL_SCHEDULERS)
            csa = comparison.by_name("padr-csa")
            for s in comparison.schedules:
                assert csa.power.max_switch_changes <= s.power.max_switch_changes

    def test_rebuild_vs_lazy_gap_grows_with_width(self):
        gaps = []
        for w in (4, 16, 64):
            cset = crossing_chain(w)
            lazy = RoyIDScheduler().schedule(cset)
            rebuild = RoyIDScheduler().schedule(cset, policy=PowerPolicy.rebuild())
            gaps.append(rebuild.power.max_switch_units - lazy.power.max_switch_units)
        assert gaps[0] < gaps[1] < gaps[2]


class TestScaleSmoke:
    def test_large_tree_large_set(self):
        rng = np.random.default_rng(0)
        n = 1024
        cset = random_well_nested(400, n, rng)
        s = PADRScheduler().schedule(cset, n_leaves=n)
        verify_schedule(s, cset).raise_if_failed()
        assert s.n_rounds == width(cset, CSTTopology.of(n))
        assert s.power.max_switch_changes <= 8

    def test_maximum_density(self):
        # every leaf is an endpoint
        rng = np.random.default_rng(1)
        cset = random_well_nested(64, 128, rng)
        s = PADRScheduler().schedule(cset, n_leaves=128)
        verify_schedule(s, cset).raise_if_failed()
