"""Exhaustive theorem verification over the COMPLETE small universe.

Enumerates every right-oriented well-nested communication set with up to
3 pairs on an 8-leaf CST — every Dyck word × every placement of its
endpoints — and checks all three theorems on each.  Combined with the
hypothesis suites (which sample large universes) this gives exhaustive
coverage where exhaustiveness is affordable: ~300 workloads, zero escape
hatches.
"""

from itertools import combinations

import pytest

from repro.analysis.optimality import check_round_optimality
from repro.analysis.verifier import verify_schedule
from repro.comms.dyck import catalan, dyck_words
from repro.comms.generators import from_dyck_word
from repro.core.csa import PADRScheduler
from repro.core.left import LeftPADRScheduler

N_LEAVES = 8


def all_small_sets(max_pairs=3):
    """Every well-nested set with 1..max_pairs pairs on N_LEAVES leaves."""
    for k in range(1, max_pairs + 1):
        for word in dyck_words(k):
            for positions in combinations(range(N_LEAVES), 2 * k):
                yield from_dyck_word(word, positions)


def test_universe_size_is_as_expected():
    count = sum(1 for _ in all_small_sets())
    expected = sum(
        catalan(k) * _choose(N_LEAVES, 2 * k) for k in range(1, 4)
    )
    assert count == expected
    assert count == 28 * 1 + 70 * 2 + 28 * 5  # 28 + 140 + 140 = 308


def _choose(n, k):
    from math import comb

    return comb(n, k)


class TestExhaustiveTheorems:
    def test_every_small_set_all_theorems(self):
        scheduler = PADRScheduler()
        checked = 0
        for cset in all_small_sets():
            s = scheduler.schedule(cset, n_leaves=N_LEAVES)
            # Theorem 4
            verify_schedule(s, cset).raise_if_failed()
            # Theorem 5
            check_round_optimality(s, cset, require_optimal=True)
            # Theorem 8 (small-universe form: tiny constant)
            assert s.power.max_switch_changes <= 3, cset
            checked += 1
        assert checked == 308

    def test_every_small_set_mirrored_through_left_csa(self):
        scheduler = LeftPADRScheduler()
        checked = 0
        for cset in all_small_sets():
            left = cset.mirrored(N_LEAVES)
            s = scheduler.schedule(left, n_leaves=N_LEAVES)
            verify_schedule(s, left).raise_if_failed()
            check_round_optimality(s, left, require_optimal=True)
            checked += 1
        assert checked == 308
