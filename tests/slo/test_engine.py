"""The SLO burn-rate engine: spec validation, burn math, rising edges.

Every objective kind reduces to (good, bad) event counting per tick, so
the burn-rate math is tested once through synthetic :class:`TickSample`
streams — no service required.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import MetricsRegistry
from repro.slo import (
    SLO_KINDS,
    SLOEngine,
    SLOSpec,
    TickSample,
    default_slos,
    sample_from_snapshots,
)
from repro.slo.engine import SLOError


def avail_spec(**kw) -> SLOSpec:
    base = dict(
        name="avail",
        kind="availability",
        target=0.9,
        fast_window=2,
        slow_window=4,
        fast_burn=5.0,
        slow_burn=2.0,
    )
    base.update(kw)
    return SLOSpec(**base)


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SLOError):
            SLOSpec(name="x", kind="throughput")

    @pytest.mark.parametrize("target", [0.0, -0.5, 1.5])
    def test_target_must_be_in_unit_interval(self, target):
        with pytest.raises(SLOError):
            SLOSpec(name="x", kind="availability", target=target)

    def test_windows_must_nest(self):
        with pytest.raises(SLOError):
            SLOSpec(name="x", kind="availability", fast_window=8, slow_window=4)
        with pytest.raises(SLOError):
            SLOSpec(name="x", kind="availability", fast_window=0)

    def test_burn_thresholds_positive(self):
        with pytest.raises(SLOError):
            SLOSpec(name="x", kind="availability", fast_burn=0.0)

    def test_error_budget(self):
        assert avail_spec(target=0.9).error_budget == pytest.approx(0.1)
        assert SLOSpec(name="p", kind="parity", target=1.0).error_budget == 0.0

    def test_duplicate_spec_names_rejected(self):
        with pytest.raises(SLOError):
            SLOEngine([avail_spec(), avail_spec()])

    def test_default_slos_cover_every_kind(self):
        specs = default_slos()
        assert {s.kind for s in specs} == set(SLO_KINDS)
        # parity and chaos-detection are zero-budget contracts
        by_name = {s.name: s for s in specs}
        assert by_name["parity"].target == 1.0
        assert by_name["chaos-detection"].target == 1.0


class TestEventReduction:
    def test_availability(self):
        s = TickSample(tick=1, done=7, expired=2, failed=1)
        assert s.events_for(avail_spec()) == (7, 3)

    def test_latency_threshold(self):
        spec = SLOSpec(name="lat", kind="latency", threshold=4.0)
        s = TickSample(tick=1, latencies=(1, 4, 5, 9))
        assert s.events_for(spec) == (2, 2)  # <= 4 is good, > 4 is bad

    def test_shed_rate_never_goes_negative(self):
        spec = SLOSpec(name="shed", kind="shed_rate")
        assert TickSample(tick=1, submitted=5, shed=2).events_for(spec) == (3, 2)
        # requests submitted earlier can shed later; good clamps at zero
        assert TickSample(tick=1, submitted=0, shed=3).events_for(spec) == (0, 3)

    def test_parity(self):
        spec = SLOSpec(name="p", kind="parity", target=1.0)
        s = TickSample(tick=1, done=4, parity_failures=1)
        assert s.events_for(spec) == (4, 1)

    def test_chaos_detection_counts_late_and_missed(self):
        spec = SLOSpec(
            name="c", kind="chaos_detection", target=1.0, threshold=4.0
        )
        s = TickSample(tick=1, chaos_detections=(2, 6), chaos_missed=1)
        assert s.events_for(spec) == (1, 2)  # 6 > SLA is late, plus 1 missed


class TestBurnRates:
    def test_healthy_stream_never_alerts(self):
        engine = SLOEngine([avail_spec()])
        for t in range(1, 20):
            fired = engine.observe(TickSample(tick=t, done=10))
            assert fired == []
        assert engine.alerts == []
        assert engine.burn_rate("avail", "fast") == 0.0
        assert engine.budget_remaining("avail") == 1.0
        assert not engine.burned()

    def test_no_events_is_no_burn(self):
        engine = SLOEngine([avail_spec()])
        engine.observe(TickSample(tick=1))
        assert engine.burn_rate("avail", "fast") == 0.0

    def test_cliff_pages_on_the_rising_edge_only(self):
        engine = SLOEngine([avail_spec()])
        first = engine.observe(TickSample(tick=1, expired=5))
        # error rate 1.0 / budget 0.1 = 10x: >= fast 5x and slow 2x
        assert {a.window for a in first} == {"fast", "slow"}
        assert {a.severity for a in first} == {"page", "ticket"}
        assert engine.burn_rate("avail", "fast") == pytest.approx(10.0)
        # still violating: no *new* alert while the edge stays high
        assert engine.observe(TickSample(tick=2, expired=5)) == []
        assert len(engine.alerts) == 2

    def test_recovery_rearms_the_fast_window(self):
        engine = SLOEngine([avail_spec()])
        engine.observe(TickSample(tick=1, expired=5))  # page + ticket
        engine.observe(TickSample(tick=2, done=5))
        engine.observe(TickSample(tick=3, done=5))  # fast window all-good
        assert engine.burn_rate("avail", "fast") == 0.0
        refire = engine.observe(TickSample(tick=4, expired=5))
        pages = [a for a in engine.alerts if a.window == "fast"]
        assert [a.tick for a in pages] == [1, 4]
        assert any(a.window == "fast" for a in refire)
        # the slow window never cleared, so no duplicate ticket
        assert sum(1 for a in engine.alerts if a.window == "slow") == 1

    def test_zero_budget_contract_burns_infinitely(self):
        engine = SLOEngine([SLOSpec(name="p", kind="parity", target=1.0)])
        engine.observe(TickSample(tick=1, done=99, parity_failures=1))
        assert math.isinf(engine.burn_rate("p", "fast"))
        assert engine.burned("p")
        assert "inf" in engine.alerts[0].message
        assert engine.budget_remaining("p") == 0.0

    def test_budget_remaining_tracks_lifetime_spend(self):
        engine = SLOEngine([avail_spec()])
        engine.observe(TickSample(tick=1, done=90, expired=10))
        # error rate 0.1 == the whole budget: nothing left
        assert engine.budget_remaining("avail") == pytest.approx(0.0)
        engine.observe(TickSample(tick=2, done=100))
        assert engine.budget_remaining("avail") == pytest.approx(0.5)


class TestEngineSurface:
    def test_alert_log_is_structured_and_ordered(self):
        engine = SLOEngine([avail_spec()])
        engine.observe(TickSample(tick=3, expired=5))
        log = engine.alert_log()
        assert [e["tick"] for e in log] == [3, 3]
        assert log[0].keys() == {
            "tick", "slo", "kind", "window", "severity",
            "burn_rate", "error_rate", "message",
        }
        json.dumps(log)  # archivable as-is

    def test_trajectory_records_p50_p99_per_tick(self):
        engine = SLOEngine([avail_spec()])
        engine.observe(TickSample(tick=1, done=3, latencies=(1, 2, 3)))
        engine.observe(TickSample(tick=2, done=1, latencies=(10,)))
        assert engine.trajectory[0] == (1, 2.0, 3.0)
        # the window accumulates: p99 over (1,2,3,10) is 10
        assert engine.trajectory[1] == (2, 2.0, 10.0)

    def test_metrics_emitted_with_inf_sentinel(self):
        reg = MetricsRegistry()
        engine = SLOEngine(
            [SLOSpec(name="p", kind="parity", target=1.0)],
            metrics=reg,
            run="t",
        )
        engine.observe(TickSample(tick=1, done=4, parity_failures=1))
        snap = reg.snapshot()
        assert snap["counters"]["slo.alerts{run=t,severity=page,slo=p}"] == 1
        assert snap["counters"]["slo.good{run=t,slo=p}"] == 4
        assert snap["counters"]["slo.bad{run=t,slo=p}"] == 1
        # inf is not JSON-clean; the gauge carries the -1.0 sentinel
        assert snap["gauges"]["slo.burn_rate{run=t,slo=p,window=fast}"] == -1.0
        json.dumps(snap)

    def test_summary_counts_pages_and_tickets(self):
        engine = SLOEngine([avail_spec()])
        engine.observe(TickSample(tick=1, expired=5))
        text = engine.summary()
        assert "1 page(s)" in text and "1 ticket(s)" in text


class TestSnapshotSampling:
    def test_counter_deltas_reconstruct_the_tick(self):
        reg = MetricsRegistry()
        reg.inc("stream.done", 3, run="s")
        reg.inc("stream.shed", 1, run="s")
        prev = reg.snapshot()
        reg.inc("stream.done", 4, run="s")
        reg.inc("stream.expired", 2, run="s")
        reg.inc("stream.submitted", 6, run="s")
        reg.inc("stream.done", 9, run="other")  # filtered out
        sample = sample_from_snapshots(prev, reg.snapshot(), tick=7, run="s")
        assert sample.tick == 7
        assert sample.done == 4
        assert sample.expired == 2
        assert sample.submitted == 6
        assert sample.shed == 0
