"""The chaos drill controller, unit-level: arming, victim choice, SLAs.

The controller only needs duck-typed "live" entries (request id, cset,
tree size, deadline), so these tests drive it with stand-ins and real
communication sets — the full in-service path is covered by the canary
tests.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.comms.communication import Communication, CommunicationSet
from repro.exceptions import ReproError
from repro.obs import MetricsRegistry
from repro.service.streaming import StreamStatus
from repro.slo import ChaosDrillController, DrillSpec


def cs(*pairs):
    return CommunicationSet([Communication(s, d) for s, d in pairs])


def live(rid: int, deadline_tick: int, cset=None, n_leaves: int = 8):
    return SimpleNamespace(
        request_id=rid,
        deadline_tick=deadline_tick,
        request=SimpleNamespace(cset=cset if cset is not None else cs((0, 3), (1, 2))),
        key=SimpleNamespace(n_leaves=n_leaves),
    )


class TestDrillSpec:
    def test_validation(self):
        with pytest.raises(ReproError):
            DrillSpec(tick=0)
        with pytest.raises(ReproError):
            DrillSpec(tick=1, model="meteor")
        with pytest.raises(ReproError):
            DrillSpec(tick=1, detection_sla=0)
        with pytest.raises(ReproError):
            DrillSpec(tick=1, min_slack=0)

    def test_defaults(self):
        spec = DrillSpec(tick=3)
        assert spec.model == "dead"
        assert spec.detection_sla == 4 and spec.reroute_sla == 8


class TestArmingAndVictims:
    def test_idle_before_its_tick(self):
        ctrl = ChaosDrillController([DrillSpec(tick=5)])
        assert ctrl.maybe_drill([live(1, 50)], now=2) == []
        assert ctrl.records == []

    def test_claims_the_widest_slack_victim(self):
        reg = MetricsRegistry()
        ctrl = ChaosDrillController([DrillSpec(tick=2)], metrics=reg, run="t")
        roomy, tight = live(1, 50), live(2, 10)
        claimed = ctrl.maybe_drill([tight, roomy], now=3)
        assert claimed == [roomy]
        [record] = ctrl.records
        assert record.victim_id == 1
        assert record.armed_tick == 3 and record.executed_tick == 3
        assert record.fault_switch is not None
        counters = reg.snapshot()["counters"]
        assert counters["chaos.drills{run=t}"] == 1

    def test_min_slack_guard_defers_the_drill(self):
        ctrl = ChaosDrillController([DrillSpec(tick=1, min_slack=4)])
        # slack 3 <= min_slack: nobody safe to victimise this tick
        assert ctrl.maybe_drill([live(1, 5)], now=2) == []
        assert ctrl.records == []
        # the drill stays armed and fires when headroom appears
        assert ctrl.maybe_drill([live(2, 40)], now=3) != []
        assert ctrl.records[0].victim_id == 2

    def test_one_drill_per_spec(self):
        ctrl = ChaosDrillController([DrillSpec(tick=1)])
        assert ctrl.maybe_drill([live(1, 50)], now=1) != []
        assert ctrl.maybe_drill([live(2, 50)], now=2) == []
        assert len(ctrl.records) == 1


class TestMeasurement:
    def test_detection_within_sla_and_events_drain_once(self):
        ctrl = ChaosDrillController([DrillSpec(tick=2, detection_sla=4)])
        ctrl.maybe_drill([live(7, 60)], now=2)
        [record] = ctrl.records
        assert record.detected
        assert record.detection_ticks == 0  # same-tick localisation
        assert record.met_detection_sla
        detections, missed = ctrl.take_tick_events()
        assert detections == (0,) and missed == 0
        assert ctrl.take_tick_events() == ((), 0)  # reported exactly once

    def test_on_settled_closes_the_reroute(self):
        ctrl = ChaosDrillController([DrillSpec(tick=2, reroute_sla=8)])
        ctrl.maybe_drill([live(7, 60)], now=2)
        settled = [SimpleNamespace(request_id=7, status=StreamStatus.DONE)]
        ctrl.on_settled(settled, now=3)
        [record] = ctrl.records
        assert record.rerouted_tick == 3
        assert record.reroute_ticks == 1
        assert record.met_reroute_sla
        assert ctrl.all_met_sla

    def test_unrelated_settlements_are_ignored(self):
        ctrl = ChaosDrillController([DrillSpec(tick=2)])
        ctrl.maybe_drill([live(7, 60)], now=2)
        ctrl.on_settled(
            [SimpleNamespace(request_id=99, status=StreamStatus.DONE)], now=3
        )
        assert ctrl.records[0].reroute_ticks is None
        assert not ctrl.all_met_sla

    def test_deterministic_fault_choice(self):
        picks = set()
        for _ in range(3):
            ctrl = ChaosDrillController([DrillSpec(tick=2, seed=11)])
            ctrl.maybe_drill([live(7, 60)], now=2)
            picks.add(ctrl.records[0].fault_switch)
        assert len(picks) == 1  # same seed, same tick, same switch

    def test_record_serialises(self):
        ctrl = ChaosDrillController([DrillSpec(tick=2)])
        ctrl.maybe_drill([live(7, 60)], now=2)
        out = ctrl.records[0].to_dict()
        json.dumps(out)
        assert out["victim_id"] == 7
        assert out["detection_sla"] == 4
        assert "met_reroute_sla" in out

    def test_summary_reads(self):
        ctrl = ChaosDrillController([DrillSpec(tick=2), DrillSpec(tick=90)])
        ctrl.maybe_drill([live(7, 60)], now=2)
        text = ctrl.summary()
        assert "1 run" in text and "1 still pending" in text
