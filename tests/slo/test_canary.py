"""The canary harness end to end: record, round-trip, replay, gate.

Small trees (64 leaves) and short traces keep these fast while
exercising the same code path ``scripts/run_canary.py`` drives at scale:
a healthy replay must promote against itself, a throttled replay must
burn and be refused, and an in-service chaos drill must hit both SLAs
without disturbing parity.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.io import load_arrivals, save_arrivals, stream_request_to_dict
from repro.slo import (
    DrillSpec,
    default_slos,
    promotion_gate,
    record_workload,
    replay,
)

N = 64
COUNT = 24


@pytest.fixture(scope="module")
def arrivals():
    return record_workload(n_leaves=N, count=COUNT, seed=3, deadline=64)


def specs(budget=8):
    return default_slos(latency_budget=budget, fast_window=4, slow_window=8)


@pytest.fixture(scope="module")
def baseline(arrivals):
    return replay(
        arrivals, label="baseline", specs=specs(), max_inflight=8
    )


class TestRecording:
    def test_deterministic_and_mixed(self, arrivals):
        again = record_workload(n_leaves=N, count=COUNT, seed=3, deadline=64)
        as_dicts = [stream_request_to_dict(r) for r in arrivals]
        assert as_dicts == [stream_request_to_dict(r) for r in again]
        assert len(arrivals) == COUNT
        assert len({r.tenant for r in arrivals}) == 3
        assert len({r.priority for r in arrivals}) > 1

    def test_round_trips_through_the_trace_file(self, arrivals, tmp_path):
        path = tmp_path / "trace.json"
        save_arrivals(path, arrivals)
        loaded = load_arrivals(path)
        assert [stream_request_to_dict(r) for r in loaded] == [
            stream_request_to_dict(r) for r in arrivals
        ]
        assert json.loads(path.read_text())["format"] == "cst-padr/arrival-trace"


class TestHealthyReplay:
    def test_burn_free_and_fully_served(self, baseline):
        assert baseline.alerts == ()
        assert baseline.report.n_done == COUNT
        assert set(baseline.payloads) == {
            rid for rid, r in baseline.report.results.items()
        }
        assert baseline.trajectory  # one (tick, p50, p99) entry per tick

    def test_promotes_against_itself(self, arrivals, baseline):
        candidate = replay(
            arrivals, label="again", specs=specs(), max_inflight=8
        )
        decision = promotion_gate(baseline, candidate)
        assert decision.promote, decision.reasons
        assert "PROMOTE" in decision.summary()

    def test_run_serialises(self, baseline):
        out = baseline.to_dict()
        json.dumps(out)
        assert out["done"] == COUNT
        assert out["alerts"] == []


class TestDrilledReplay:
    @pytest.fixture(scope="class")
    def drilled(self, arrivals):
        return replay(
            arrivals,
            label="drilled",
            specs=specs(),
            drills=(DrillSpec(tick=2, model="dead", seed=5),),
            max_inflight=8,
        )

    def test_drill_ran_and_met_both_slas(self, drilled):
        [record] = drilled.drills
        assert record.detected
        assert record.met_detection_sla
        assert record.met_reroute_sla

    def test_victim_still_settles_done_with_parity(self, baseline, drilled):
        # the drill delays the victim one tick; it must not change any
        # payload — the gate's bit-identical comparison proves it.
        assert drilled.report.n_done == COUNT
        decision = promotion_gate(baseline, drilled)
        assert decision.promote, decision.reasons

    def test_zero_budget_detection_slo_stayed_quiet(self, drilled):
        assert not any(a.slo == "chaos-detection" for a in drilled.alerts)


class TestRegressionGate:
    @pytest.fixture(scope="class")
    def throttled(self, arrivals):
        # one execution slot and a tight latency budget: queueing delay
        # must burn the latency SLO and the deadline tail availability.
        slow = [dataclasses.replace(r, deadline=12) for r in arrivals]
        return replay(
            slow, label="throttled", specs=specs(budget=4), max_inflight=1
        )

    def test_burns_and_is_refused(self, baseline, throttled):
        assert throttled.alerts, "throttled replay must raise burn alerts"
        decision = promotion_gate(baseline, throttled)
        assert not decision.promote
        assert any("alert" in r for r in decision.reasons)
        assert "REFUSE" in decision.summary()

    def test_refusal_reasons_name_the_regression(self, baseline, throttled):
        decision = promotion_gate(baseline, throttled)
        text = " ".join(decision.reasons)
        assert "p99" in text or "not DONE" in text or "alert" in text


class TestGateConditions:
    def test_parity_mismatch_refused(self, baseline):
        rid = next(iter(baseline.payloads))
        tampered = dict(baseline.payloads)
        tampered[rid] = {"corrupted": True}
        candidate = dataclasses.replace(baseline, payloads=tampered)
        decision = promotion_gate(baseline, candidate)
        assert not decision.promote
        assert any("parity" in r for r in decision.reasons)

    def test_missing_done_request_refused(self, baseline):
        rid = next(iter(baseline.payloads))
        shrunk = {k: v for k, v in baseline.payloads.items() if k != rid}
        candidate = dataclasses.replace(baseline, payloads=shrunk)
        decision = promotion_gate(baseline, candidate)
        assert not decision.promote
        assert any("not DONE" in r for r in decision.reasons)

    def test_victimless_drill_refused(self, baseline):
        from repro.slo import DrillRecord

        ghost = DrillRecord(spec=DrillSpec(tick=2), armed_tick=2)
        candidate = dataclasses.replace(baseline, drills=(ghost,))
        decision = promotion_gate(baseline, candidate)
        assert not decision.promote
        assert any("never found a victim" in r for r in decision.reasons)

    def test_decision_serialises(self, baseline):
        decision = promotion_gate(baseline, baseline)
        out = decision.to_dict()
        json.dumps(out)
        assert out["promote"] is True
        assert out["reasons"] == []
