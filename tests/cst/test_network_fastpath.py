"""Tests for the selective commit fast path and sparse role sweeps."""

import numpy as np

from repro.comms.generators import crossing_chain, random_well_nested
from repro.core.csa import PADRScheduler
from repro.cst.events import CommitEvent, EventLog
from repro.cst.faults import StuckSwitchFault, clear_faults, inject
from repro.cst.network import CSTNetwork
from repro.cst.power import PowerPolicy
from repro.types import Role


class TestCommitFastPath:
    """commit_round(staged_ids) must be observationally equivalent."""

    def _schedule_power(self, *, policy, event_log=None, n=32):
        cset = crossing_chain(4, n)
        network = CSTNetwork.of_size(n, policy=policy, event_log=event_log)
        schedule = PADRScheduler().schedule(cset, network=network)
        return schedule, network

    def test_lazy_policy_same_power_as_full_sweep(self):
        """Fast path active under the paper policy: same schedule + power
        as with an event log attached (which forces the full sweep)."""
        fast, _ = self._schedule_power(policy=PowerPolicy.paper())
        full, _ = self._schedule_power(
            policy=PowerPolicy.paper(), event_log=EventLog()
        )
        assert [r.performed for r in fast.rounds] == [r.performed for r in full.rounds]
        assert fast.power.total_units == full.power.total_units
        assert fast.power.per_switch_changes == full.power.per_switch_changes

    def test_eager_policy_clears_unstaged_switches(self):
        """Eager teardown must keep sweeping every switch: a configured
        switch that stages nothing next round must drop its connections."""
        eager, network = self._schedule_power(policy=PowerPolicy.eager())
        # after the final commit under eager teardown nothing may linger
        # beyond that round's staging — re-commit with an empty staging and
        # every crossbar must clear.
        network.commit_round()
        assert all(len(sw.configuration) == 0 for sw in network.switches.values())

    def test_event_log_records_every_switch_commit(self):
        log = EventLog()
        _, network = self._schedule_power(policy=PowerPolicy.paper(), event_log=log)
        commits = log.of_kind(CommitEvent)
        n_switches = len(network.switches)
        # full sweep per round: every switch logs a commit, every round.
        assert len(commits) == n_switches * network.rounds_run

    def test_fault_injection_disables_fast_path(self):
        network = CSTNetwork.of_size(8)
        assert network.fault_injected is False
        inject(network, 2, StuckSwitchFault())
        assert network.fault_injected is True
        clear_faults(network)
        assert network.fault_injected is False


class TestSparseRoleSweeps:
    def test_reassignment_clears_stale_roles(self):
        network = CSTNetwork.of_size(16)
        network.assign_roles({0: Role.SOURCE, 5: Role.DESTINATION})
        network.assign_roles({3: Role.SOURCE, 9: Role.DESTINATION})
        assert network.pes[0].role is Role.NEITHER
        assert network.pes[5].role is Role.NEITHER
        assert network.pes[3].role is Role.SOURCE
        assert network.pes[9].role is Role.DESTINATION
        assert sorted(network.roled_pes) == [3, 9]

    def test_all_done_checks_only_roled_pes(self):
        network = CSTNetwork.of_size(16)
        network.assign_roles({3: Role.SOURCE, 9: Role.DESTINATION})
        assert not network.all_done  # obligations outstanding
        network.assign_roles({})
        assert network.all_done  # NEITHER PEs are vacuously done

    def test_successive_sets_schedule_correctly(self):
        """Back-to-back scheduling on one network (the stream pattern) must
        not leak roles between sets."""
        rng = np.random.default_rng(3)
        network = CSTNetwork.of_size(64)
        sched = PADRScheduler()
        for _ in range(5):
            cset = random_well_nested(6, 64, rng)
            s = sched.schedule(cset, network=network)
            delivered = {c for r in s.rounds for c in r.performed}
            assert delivered == set(cset)
