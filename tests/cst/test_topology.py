"""Unit tests for the CST geometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import InvalidNodeError, TopologyError
from repro.types import (
    CONN_L_TO_R,
    CONN_L_UP,
    CONN_R_UP,
    Connection,
    Direction,
    InPort,
    OutPort,
    Side,
)
from repro.cst.topology import CSTTopology, DirectedEdge


class TestConstruction:
    def test_counts(self):
        t = CSTTopology(8)
        assert t.n_leaves == 8
        assert t.n_switches == 7
        assert t.height == 3
        assert t.root == 1

    def test_rejects_non_power_of_two(self):
        with pytest.raises(TopologyError):
            CSTTopology(6)

    def test_rejects_single_leaf(self):
        with pytest.raises(TopologyError):
            CSTTopology(1)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            CSTTopology(8.0)

    def test_of_memoises(self):
        assert CSTTopology.of(16) is CSTTopology.of(16)

    def test_equality_by_size(self):
        assert CSTTopology(8) == CSTTopology(8)
        assert CSTTopology(8) != CSTTopology(16)
        assert hash(CSTTopology(8)) == hash(CSTTopology(8))


class TestClassification:
    def test_leaves_and_switches(self, topo8):
        assert topo8.is_switch(1)
        assert topo8.is_switch(7)
        assert topo8.is_leaf(8)
        assert topo8.is_leaf(15)

    def test_out_of_range(self, topo8):
        with pytest.raises(InvalidNodeError):
            topo8.is_leaf(16)
        with pytest.raises(InvalidNodeError):
            topo8.is_leaf(0)


class TestLeafMapping:
    def test_roundtrip(self, topo8):
        for pe in range(8):
            assert topo8.pe_index(topo8.leaf_heap_id(pe)) == pe

    def test_leaf_ids_contiguous(self, topo8):
        assert [topo8.leaf_heap_id(i) for i in range(8)] == list(range(8, 16))

    def test_pe_index_rejects_switch(self, topo8):
        with pytest.raises(InvalidNodeError):
            topo8.pe_index(3)

    def test_leaf_heap_id_rejects_out_of_range(self, topo8):
        with pytest.raises(InvalidNodeError):
            topo8.leaf_heap_id(8)


class TestNavigation:
    def test_children_and_parent(self, topo8):
        assert topo8.children(1) == (2, 3)
        assert topo8.parent(2) == 1
        assert topo8.parent(3) == 1

    def test_root_has_no_parent(self, topo8):
        with pytest.raises(InvalidNodeError):
            topo8.parent(1)

    def test_leaf_has_no_children(self, topo8):
        with pytest.raises(InvalidNodeError):
            topo8.children(9)

    def test_side_of(self, topo8):
        assert topo8.side_of(2) is Side.LEFT
        assert topo8.side_of(3) is Side.RIGHT
        assert topo8.side_of(8) is Side.LEFT
        assert topo8.side_of(9) is Side.RIGHT

    def test_levels(self, topo8):
        assert topo8.level(1) == 0
        assert topo8.level(4) == 2
        assert topo8.level(8) == 3

    def test_switches_at_level(self, topo8):
        assert list(topo8.switches_at_level(0)) == [1]
        assert list(topo8.switches_at_level(2)) == [4, 5, 6, 7]
        with pytest.raises(TopologyError):
            topo8.switches_at_level(3)

    def test_ancestors(self, topo8):
        assert list(topo8.ancestors(11)) == [5, 2, 1]
        assert list(topo8.ancestors(1)) == []

    def test_subtree_leaf_range(self, topo8):
        assert list(topo8.subtree_leaf_range(1)) == list(range(8))
        assert list(topo8.subtree_leaf_range(2)) == [0, 1, 2, 3]
        assert list(topo8.subtree_leaf_range(7)) == [6, 7]
        assert list(topo8.subtree_leaf_range(12)) == [4]


class TestLCA:
    def test_lca_of_pes(self, topo8):
        assert topo8.lca_of_pes(0, 7) == 1
        assert topo8.lca_of_pes(0, 1) == 4
        assert topo8.lca_of_pes(2, 3) == 5
        assert topo8.lca_of_pes(0, 3) == 2

    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
    )
    def test_lca_subtree_contains_both(self, a, b):
        t = CSTTopology.of(16)
        lca = t.lca_of_pes(a, b)
        leaves = t.subtree_leaf_range(lca)
        assert a in leaves and b in leaves


class TestPathEdges:
    def test_adjacent_pair(self, topo8):
        edges = topo8.path_edges(0, 1)
        assert edges == (
            DirectedEdge(8, Direction.UP),
            DirectedEdge(9, Direction.DOWN),
        )

    def test_cross_root(self, topo8):
        edges = topo8.path_edges(0, 7)
        ups = [e for e in edges if e.direction is Direction.UP]
        downs = [e for e in edges if e.direction is Direction.DOWN]
        assert [e.child for e in ups] == [8, 4, 2]
        assert [e.child for e in downs] == [3, 7, 15]

    def test_left_oriented_path(self, topo8):
        # paths exist for left-oriented communications too
        edges = topo8.path_edges(5, 2)
        assert DirectedEdge(topo8.leaf_heap_id(5), Direction.UP) in edges
        assert DirectedEdge(topo8.leaf_heap_id(2), Direction.DOWN) in edges

    def test_self_communication_rejected(self, topo8):
        with pytest.raises(TopologyError):
            topo8.path_edges(3, 3)

    @given(
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=31),
    )
    def test_edge_count_matches_path_length(self, a, b):
        if a == b:
            return
        t = CSTTopology.of(32)
        edges = t.path_edges(a, b)
        # one edge per hop; switches = edges - 1
        assert len(edges) == t.path_length(a, b) + 1

    @given(
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=31),
    )
    def test_no_edge_repeats(self, a, b):
        if a == b:
            return
        edges = CSTTopology.of(32).path_edges(a, b)
        assert len(set(edges)) == len(edges)


class TestPathConnections:
    def test_lca_turns_left_to_right(self, topo8):
        conns = topo8.path_connections(0, 7)
        assert conns[1] == CONN_L_TO_R

    def test_up_path_connections(self, topo8):
        conns = topo8.path_connections(0, 7)
        assert conns[4] == CONN_L_UP  # leaf 8 is left child of 4
        assert conns[2] == CONN_L_UP

    def test_down_path_connections(self, topo8):
        conns = topo8.path_connections(0, 7)
        assert conns[3] == Connection(InPort.P, OutPort.R)
        assert conns[7] == Connection(InPort.P, OutPort.R)

    def test_right_child_source_uses_r_up(self, topo8):
        conns = topo8.path_connections(1, 2)
        assert conns[4] == CONN_R_UP

    def test_travel_order(self, topo8):
        switches = list(topo8.path_connections(0, 7).keys())
        assert switches == [4, 2, 1, 3, 7]

    def test_left_oriented_lca_turns_right_to_left(self, topo8):
        conns = topo8.path_connections(7, 0)
        assert conns[1] == Connection(InPort.R, OutPort.L)

    @given(
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=31),
    )
    def test_connections_cover_exactly_path_switches(self, a, b):
        if a == b:
            return
        t = CSTTopology.of(32)
        conns = t.path_connections(a, b)
        lca = t.lca_of_pes(a, b)
        assert lca in conns
        # every switch in the mapping lies on the leaf-to-leaf walk
        for v in conns:
            assert t.is_switch(v)

    def test_path_length_values(self, topo8):
        assert topo8.path_length(0, 1) == 1
        assert topo8.path_length(0, 7) == 5
        assert topo8.path_length(0, 3) == 3
        assert topo8.path_length(2, 2) == 0
