"""Fault injection: every fault model must be *caught*, never absorbed.

These are the negative tests of the verification story: with a defect in
the substrate, either the CSA's strict runtime checks fire, or (in
non-strict mode) the verifier flags the missing/misrouted deliveries.
"""

import pytest

from repro.exceptions import ProtocolError
from repro.comms.generators import crossing_chain, paper_figure2_set
from repro.core.csa import PADRScheduler
from repro.cst.faults import (
    DeadSwitchFault,
    FaultError,
    MisrouteFault,
    StuckSwitchFault,
    clear_faults,
    inject,
)
from repro.cst.network import CSTNetwork
from repro.cst.switch import SwitchConfiguration
from repro.types import CONN_DOWN_L, CONN_DOWN_R, CONN_L_TO_R, CONN_L_UP
from repro.analysis.verifier import verify_schedule


def lenient_scheduler():
    return PADRScheduler(strict=False, check_postconditions=False)


class TestFaultModels:
    def test_stuck_keeps_previous(self):
        fault = StuckSwitchFault()
        prev = SwitchConfiguration([CONN_L_TO_R])
        new = SwitchConfiguration([CONN_L_UP])
        assert fault.corrupt(new, prev) == prev

    def test_dead_drops_everything(self):
        fault = DeadSwitchFault()
        cfg = SwitchConfiguration([CONN_L_TO_R, CONN_DOWN_L])
        assert len(fault.corrupt(cfg, cfg)) == 0

    def test_misroute_swaps_outputs(self):
        fault = MisrouteFault()
        out = fault.corrupt(SwitchConfiguration([CONN_DOWN_L]), SwitchConfiguration())
        assert CONN_DOWN_R in out

    def test_misroute_drops_same_side_results(self):
        # l_i->r_o becomes l_i->l_o (illegal): realised as a drop
        out = MisrouteFault().corrupt(
            SwitchConfiguration([CONN_L_TO_R]), SwitchConfiguration()
        )
        assert len(out) == 0


class TestInjection:
    def test_inject_unknown_switch(self):
        net = CSTNetwork.of_size(8)
        with pytest.raises(FaultError):
            inject(net, 99, DeadSwitchFault())

    def test_inject_and_clear(self):
        net = CSTNetwork.of_size(8)
        inject(net, 1, DeadSwitchFault())
        assert clear_faults(net) == 1
        assert clear_faults(net) == 0

    def test_reinjection_replaces(self):
        net = CSTNetwork.of_size(8)
        inject(net, 1, DeadSwitchFault())
        inject(net, 1, StuckSwitchFault())
        assert clear_faults(net) == 1


class TestFaultsAreDetected:
    def test_dead_root_strict_mode_raises(self):
        cset = crossing_chain(2)
        net = CSTNetwork.of_size(4)
        inject(net, 1, DeadSwitchFault())
        with pytest.raises(ProtocolError, match="dropped"):
            PADRScheduler().schedule(cset, network=net)

    def test_dead_root_nonstrict_verifier_flags(self):
        cset = crossing_chain(2)
        net = CSTNetwork.of_size(4)
        inject(net, 1, DeadSwitchFault())
        s = lenient_scheduler().schedule(cset, network=net)
        report = verify_schedule(s, cset)
        assert not report.ok
        assert any("never performed" in f for f in report.failures)

    def test_stuck_switch_detected(self):
        # the root freezes after round 0 of a width-2 chain: round 1's
        # matched pair can still flow (same config), but a stuck *spine*
        # switch breaks the source sweep.
        cset = crossing_chain(4)
        net = CSTNetwork.of_size(8)
        inject(net, 4, StuckSwitchFault())  # leaves 0,1's parent
        s = lenient_scheduler().schedule(cset, network=net)
        report = verify_schedule(s, cset)
        assert not report.ok

    def test_misroute_detected_by_verifier(self):
        cset = paper_figure2_set()
        net = CSTNetwork.of_size(16)
        inject(net, 2, MisrouteFault())
        s = lenient_scheduler().schedule(cset, network=net)
        report = verify_schedule(s, cset)
        assert not report.ok

    def test_healthy_network_param_behaves_identically(self):
        cset = paper_figure2_set()
        via_param = PADRScheduler().schedule(cset, network=CSTNetwork.of_size(16))
        direct = PADRScheduler().schedule(cset, 16)
        assert via_param.n_rounds == direct.n_rounds
        assert list(via_param.performed()) == list(direct.performed())

    def test_network_size_conflict_rejected(self):
        from repro.exceptions import SchedulingError

        with pytest.raises(SchedulingError, match="conflicts"):
            PADRScheduler().schedule(
                crossing_chain(2), n_leaves=8, network=CSTNetwork.of_size(4)
            )


class TestFaultPropertyRobustness:
    """Property: under ANY single-switch fault, the pipeline either raises
    a ProtocolError (strict runtime detection), or produces a schedule
    whose verification verdict is exactly 'all deliveries correct'.  No
    fault can crash the simulator in an uncontrolled way or corrupt the verifier's verdict silently."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        switch_id=st.integers(min_value=1, max_value=15),
        kind=st.sampled_from(["stuck", "dead", "misroute"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_single_fault_is_contained(self, switch_id, kind):
        from repro.exceptions import ReproError

        fault = {
            "stuck": StuckSwitchFault(),
            "dead": DeadSwitchFault(),
            "misroute": MisrouteFault(),
        }[kind]
        cset = paper_figure2_set()
        net = CSTNetwork.of_size(16)
        inject(net, switch_id, fault)
        try:
            s = lenient_scheduler().schedule(cset, network=net)
        except ReproError:
            return  # contained: detected at run time
        report = verify_schedule(s, cset)
        correct = sorted(s.performed()) == sorted(cset.comms)
        assert report.ok == correct
