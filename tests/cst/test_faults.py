"""Fault injection: every fault model must be *caught*, never absorbed.

These are the negative tests of the verification story: with a defect in
the substrate, either the CSA's strict runtime checks fire, or (in
non-strict mode) the verifier flags the missing/misrouted deliveries.
"""

import pytest

from repro.exceptions import ProtocolError
from repro.comms.generators import crossing_chain, paper_figure2_set
from repro.core.csa import PADRScheduler
from repro.cst.faults import (
    DeadSwitchFault,
    FaultError,
    MisrouteFault,
    StuckSwitchFault,
    clear_faults,
    inject,
)
from repro.cst.network import CSTNetwork
from repro.cst.switch import SwitchConfiguration
from repro.types import CONN_DOWN_L, CONN_DOWN_R, CONN_L_TO_R, CONN_L_UP
from repro.analysis.verifier import verify_schedule


def lenient_scheduler():
    return PADRScheduler(strict=False, check_postconditions=False)


class TestFaultModels:
    def test_stuck_keeps_previous(self):
        fault = StuckSwitchFault()
        prev = SwitchConfiguration([CONN_L_TO_R])
        new = SwitchConfiguration([CONN_L_UP])
        assert fault.corrupt(new, prev) == prev

    def test_dead_drops_everything(self):
        fault = DeadSwitchFault()
        cfg = SwitchConfiguration([CONN_L_TO_R, CONN_DOWN_L])
        assert len(fault.corrupt(cfg, cfg)) == 0

    def test_misroute_swaps_outputs(self):
        fault = MisrouteFault()
        out = fault.corrupt(SwitchConfiguration([CONN_DOWN_L]), SwitchConfiguration())
        assert CONN_DOWN_R in out

    def test_misroute_drops_same_side_results(self):
        # l_i->r_o becomes l_i->l_o (illegal): realised as a drop
        out = MisrouteFault().corrupt(
            SwitchConfiguration([CONN_L_TO_R]), SwitchConfiguration()
        )
        assert len(out) == 0


class TestInjection:
    def test_inject_unknown_switch(self):
        net = CSTNetwork.of_size(8)
        with pytest.raises(FaultError):
            inject(net, 99, DeadSwitchFault())

    def test_inject_and_clear(self):
        net = CSTNetwork.of_size(8)
        inject(net, 1, DeadSwitchFault())
        assert clear_faults(net) == 1
        assert clear_faults(net) == 0

    def test_reinjection_replaces(self):
        net = CSTNetwork.of_size(8)
        inject(net, 1, DeadSwitchFault())
        inject(net, 1, StuckSwitchFault())
        assert clear_faults(net) == 1


class TestStagedRequestsSurviveWrapUnwrap:
    """Faults strike the hardware between commits; requests already staged
    in the current uncommitted round belong to the control plane and must
    survive both inject() and clear_faults()."""

    @staticmethod
    def _stage_path(net, src, dst):
        conns = net.topology.path_connections(src, dst)
        net.stage({v: (c,) for v, c in conns.items()})

    def test_inject_preserves_pending_staged_requests(self):
        # path 0 -> 2 on 8 leaves descends through switch 5; a misroute
        # there swaps the staged l_o to r_o, landing the payload on PE 3.
        # Before the carry, the wrapper lost the staged request entirely
        # and the payload was dropped at switch 5 instead.
        net = CSTNetwork.of_size(8)
        self._stage_path(net, 0, 2)
        inject(net, 5, MisrouteFault())
        net.commit_round()
        assert net.trace_from(0).delivered_pe == 3

    def test_clear_faults_preserves_pending_staged_requests(self):
        # repair happens between stage and commit: the staged circuit must
        # complete untouched once the fault is gone.
        net = CSTNetwork.of_size(8)
        self._stage_path(net, 0, 2)
        inject(net, 5, DeadSwitchFault())
        clear_faults(net)
        net.commit_round()
        assert net.trace_from(0).delivered_pe == 2

    def test_inject_preserves_configuration_and_counters(self):
        net = CSTNetwork.of_size(8)
        self._stage_path(net, 0, 1)
        net.commit_round()
        before = net.switches[4]
        inject(net, 4, StuckSwitchFault())
        wrapped = net.switches[4]
        assert wrapped.configuration == before.configuration
        assert wrapped.config_changes == before.config_changes
        assert wrapped.rounds_committed == before.rounds_committed


class TestMisrouteErrorNarrowing:
    def test_conflicting_swap_resolves_to_first_connection(self):
        # two swapped connections colliding is modelled as hardware chaos
        # (hold the first); exercised via the public corrupt() contract.
        out = MisrouteFault().corrupt(
            SwitchConfiguration([CONN_DOWN_L, CONN_L_UP]), SwitchConfiguration()
        )
        assert len(out) >= 1

    def test_non_conflict_errors_propagate(self, monkeypatch):
        """Only PortConflictError is hardware chaos; a programming error in
        configuration construction must not be silently absorbed."""
        import repro.cst.faults as faults_mod

        class Boom(Exception):
            pass

        def explode(conns):
            raise Boom("constructor bug")

        intended = SwitchConfiguration([CONN_DOWN_L])
        monkeypatch.setattr(faults_mod, "SwitchConfiguration", explode)
        with pytest.raises(Boom):
            MisrouteFault().corrupt(intended, SwitchConfiguration())


class TestFaultSignature:
    def test_signature_tracks_injection_and_clear(self):
        net = CSTNetwork.of_size(8)
        assert net.fault_signature() == ()
        inject(net, 2, DeadSwitchFault())
        inject(net, 5, MisrouteFault())
        assert net.fault_signature() == (
            (2, "DeadSwitchFault"),
            (5, "MisrouteFault"),
        )
        inject(net, 2, StuckSwitchFault())  # replacement changes the name
        assert net.fault_signature()[0] == (2, "StuckSwitchFault")
        clear_faults(net)
        assert net.fault_signature() == ()


class TestFaultsAreDetected:
    def test_dead_root_strict_mode_raises(self):
        cset = crossing_chain(2)
        net = CSTNetwork.of_size(4)
        inject(net, 1, DeadSwitchFault())
        with pytest.raises(ProtocolError, match="dropped"):
            PADRScheduler().schedule(cset, network=net)

    def test_dead_root_nonstrict_verifier_flags(self):
        cset = crossing_chain(2)
        net = CSTNetwork.of_size(4)
        inject(net, 1, DeadSwitchFault())
        s = lenient_scheduler().schedule(cset, network=net)
        report = verify_schedule(s, cset)
        assert not report.ok
        assert any("never performed" in f for f in report.failures)

    def test_stuck_switch_detected(self):
        # the root freezes after round 0 of a width-2 chain: round 1's
        # matched pair can still flow (same config), but a stuck *spine*
        # switch breaks the source sweep.
        cset = crossing_chain(4)
        net = CSTNetwork.of_size(8)
        inject(net, 4, StuckSwitchFault())  # leaves 0,1's parent
        s = lenient_scheduler().schedule(cset, network=net)
        report = verify_schedule(s, cset)
        assert not report.ok

    def test_misroute_detected_by_verifier(self):
        cset = paper_figure2_set()
        net = CSTNetwork.of_size(16)
        inject(net, 2, MisrouteFault())
        s = lenient_scheduler().schedule(cset, network=net)
        report = verify_schedule(s, cset)
        assert not report.ok

    def test_healthy_network_param_behaves_identically(self):
        cset = paper_figure2_set()
        via_param = PADRScheduler().schedule(cset, network=CSTNetwork.of_size(16))
        direct = PADRScheduler().schedule(cset, n_leaves=16)
        assert via_param.n_rounds == direct.n_rounds
        assert list(via_param.performed()) == list(direct.performed())

    def test_network_size_conflict_rejected(self):
        from repro.exceptions import SchedulingError

        with pytest.raises(SchedulingError, match="conflicts"):
            PADRScheduler().schedule(
                crossing_chain(2), n_leaves=8, network=CSTNetwork.of_size(4)
            )


class TestFaultPropertyRobustness:
    """Property: under ANY single-switch fault, the pipeline either raises
    a ProtocolError (strict runtime detection), or produces a schedule
    whose verification verdict is exactly 'all deliveries correct'.  No
    fault can crash the simulator in an uncontrolled way or corrupt the verifier's verdict silently."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        switch_id=st.integers(min_value=1, max_value=15),
        kind=st.sampled_from(["stuck", "dead", "misroute"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_single_fault_is_contained(self, switch_id, kind):
        from repro.exceptions import ReproError

        fault = {
            "stuck": StuckSwitchFault(),
            "dead": DeadSwitchFault(),
            "misroute": MisrouteFault(),
        }[kind]
        cset = paper_figure2_set()
        net = CSTNetwork.of_size(16)
        inject(net, switch_id, fault)
        try:
            s = lenient_scheduler().schedule(cset, network=net)
        except ReproError:
            return  # contained: detected at run time
        report = verify_schedule(s, cset)
        correct = sorted(s.performed()) == sorted(cset.comms)
        assert report.ok == correct
