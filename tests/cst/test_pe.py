"""Unit tests for processing elements."""

import pytest

from repro.types import Role
from repro.cst.pe import ProcessingElement


class TestRoleWords:
    def test_source_word(self):
        assert ProcessingElement(0, Role.SOURCE).role_word() == (1, 0)

    def test_destination_word(self):
        assert ProcessingElement(0, Role.DESTINATION).role_word() == (0, 1)

    def test_neither_word(self):
        assert ProcessingElement(0).role_word() == (0, 0)


class TestTransfer:
    def test_default_payload_identifies_pe(self):
        pe = ProcessingElement(7, Role.SOURCE)
        assert pe.payload == ("pe", 7)

    def test_write_marks_sent(self):
        pe = ProcessingElement(3, Role.SOURCE)
        datum = pe.write(round_no=2)
        assert datum == ("pe", 3)
        assert pe.sent_round == 2
        assert pe.done

    def test_double_write_rejected(self):
        pe = ProcessingElement(3, Role.SOURCE)
        pe.write(0)
        with pytest.raises(ValueError):
            pe.write(1)

    def test_non_source_cannot_write(self):
        with pytest.raises(ValueError):
            ProcessingElement(1, Role.DESTINATION).write(0)

    def test_latch_records_arrival(self):
        pe = ProcessingElement(4, Role.DESTINATION)
        pe.latch("x", round_no=1)
        assert pe.received == ["x"]
        assert pe.received_round == 1
        assert pe.done

    def test_non_destination_cannot_latch(self):
        with pytest.raises(ValueError):
            ProcessingElement(4, Role.SOURCE).latch("x", 0)

    def test_neither_is_always_done(self):
        assert ProcessingElement(0, Role.NEITHER).done

    def test_source_not_done_before_write(self):
        assert not ProcessingElement(0, Role.SOURCE).done

    def test_destination_not_done_before_latch(self):
        assert not ProcessingElement(0, Role.DESTINATION).done

    def test_reset_transfer_state(self):
        pe = ProcessingElement(0, Role.SOURCE)
        pe.write(0)
        pe.reset_transfer_state()
        assert pe.sent_round is None
        assert not pe.done

    def test_custom_payload_preserved(self):
        pe = ProcessingElement(0, Role.SOURCE, payload="hello")
        assert pe.write(0) == "hello"
