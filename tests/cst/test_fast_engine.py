"""Unit tests for the fast-path wave engine (pruning + accounting)."""

import pytest

from repro.cst.engine import CSTEngine, EngineTrace, ReferenceWaveEngine
from repro.cst.events import EventLog
from repro.cst.network import CSTNetwork


def make_engine(n=8, cls=CSTEngine, event_log=None):
    return cls(CSTNetwork.of_size(n, event_log=event_log))


class TestFrontierPruning:
    """downward_wave(prune=...) walks only the live frontier."""

    def test_single_live_path(self):
        eng = make_engine(8)
        # only the leftmost path stays live: emit forwards the word left,
        # kills the right; prune declares 0 dead.
        leaf_words = eng.downward_wave(
            "x",
            lambda v, w: (w, 0),
            prune=lambda node, w: w == 0,
        )
        assert leaf_words == {0: "x"}
        # live links: 1->2, 2->4, 4->leaf0 — three physical transmissions.
        assert eng.trace.physical_messages == 3
        # the paper's model still charges every link.
        assert eng.trace.messages == 14

    def test_root_word_dead_skips_everything(self):
        eng = make_engine(8)
        called = []
        leaf_words = eng.downward_wave(
            0,
            lambda v, w: called.append(v) or (w, w),
            prune=lambda node, w: True,
        )
        assert leaf_words == {}
        assert called == []  # not even the root switch ran
        assert eng.trace.physical_messages == 0
        assert eng.trace.messages == 14

    def test_no_prune_reaches_every_leaf(self):
        eng = make_engine(8)
        leaf_words = eng.downward_wave("x", lambda v, w: (w, w))
        assert set(leaf_words) == set(range(8))
        assert eng.trace.physical_messages == eng.trace.messages == 14

    def test_event_log_forces_full_walk(self):
        """Log fidelity beats pruning: every node logs every wave."""
        log = EventLog()
        eng = make_engine(8, event_log=log)
        leaf_words = eng.downward_wave(
            "x",
            lambda v, w: (w, 0),
            prune=lambda node, w: w == 0,
        )
        assert set(leaf_words) == set(range(8))  # full walk, all leaves
        assert eng.trace.physical_messages == 14
        from repro.cst.events import ControlEvent

        assert len(log.of_kind(ControlEvent)) == 14

    def test_reference_engine_ignores_prune(self):
        eng = make_engine(8, cls=ReferenceWaveEngine)
        leaf_words = eng.downward_wave(
            "x",
            lambda v, w: (w, 0),
            prune=lambda node, w: w == 0,
        )
        assert set(leaf_words) == set(range(8))
        assert eng.trace.physical_messages == eng.trace.messages == 14


class TestUpwardWaveBuffer:
    def test_collect_false_returns_heap_indexed_buffer(self):
        eng = make_engine(8)
        buf = eng.upward_wave(
            leaf_word=lambda pe: 1,
            combine=lambda v, l, r: l + r,
            collect=False,
        )
        assert buf[1] == 8
        assert buf[4] == 2
        assert buf[8] == 1
        # physical always equals logical on the upward wave.
        assert eng.trace.physical_messages == eng.trace.messages == 14

    def test_collect_true_matches_buffer(self):
        eng = make_engine(8)
        sent = eng.upward_wave(lambda pe: 1, lambda v, l, r: l + r)
        assert sent[1] == 8 and len(sent) == 15


class TestPerWaveCap:
    def test_samples_capped_totals_exact(self):
        trace = EngineTrace()
        extra = 7
        for _ in range(EngineTrace.PER_WAVE_CAP + extra):
            trace.record_wave(14, 42)
        assert len(trace.per_wave_messages) == EngineTrace.PER_WAVE_CAP
        assert trace.uncapped_waves == extra
        # totals keep full fidelity past the cap.
        assert trace.waves == EngineTrace.PER_WAVE_CAP + extra
        assert trace.messages == 14 * trace.waves
        assert trace.words == 42 * trace.waves

    def test_physical_defaults_to_logical(self):
        trace = EngineTrace()
        trace.record_wave(14, 42)
        assert trace.physical_messages == 14
        assert trace.physical_words == 42
        trace.record_wave(14, 42, physical_messages=3, physical_words=9)
        assert trace.physical_messages == 17
        assert trace.physical_words == 51


class TestEngineFlags:
    def test_vectorized_phase1_preference(self):
        assert CSTEngine.prefers_vectorized_phase1 is True
        assert ReferenceWaveEngine.prefers_vectorized_phase1 is False
