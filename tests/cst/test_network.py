"""Unit tests for the CST network: wiring, staging, tracing, transfer."""

import pytest

from repro.exceptions import ProtocolError
from repro.types import (
    CONN_DOWN_R,
    CONN_L_TO_R,
    CONN_L_UP,
    CONN_R_UP,
    Connection,
    InPort,
    OutPort,
    Role,
)
from repro.cst.network import CSTNetwork
from repro.cst.power import PowerPolicy


class TestConstruction:
    def test_of_size(self):
        net = CSTNetwork.of_size(8)
        assert len(net.switches) == 7
        assert len(net.pes) == 8
        assert net.rounds_run == 0

    def test_assign_roles(self, net8):
        net8.assign_roles({0: Role.SOURCE, 5: Role.DESTINATION})
        assert net8.pes[0].role is Role.SOURCE
        assert net8.pes[5].role is Role.DESTINATION
        assert net8.pes[3].role is Role.NEITHER

    def test_assign_roles_resets_transfer_state(self, net8):
        net8.assign_roles({0: Role.SOURCE})
        net8.pes[0].write(0)
        net8.assign_roles({0: Role.SOURCE})
        assert not net8.pes[0].done


class TestTracing:
    def _stage_path(self, net, src, dst):
        net.stage(
            {k: (v,) for k, v in net.topology.path_connections(src, dst).items()}
        )
        net.commit_round()

    def test_adjacent_delivery(self, net8):
        self._stage_path(net8, 0, 1)
        tr = net8.trace_from(0)
        assert tr.delivered_pe == 1
        assert tr.hops == (4,)

    def test_cross_root_delivery(self, net8):
        self._stage_path(net8, 0, 7)
        tr = net8.trace_from(0)
        assert tr.delivered_pe == 7
        assert tr.hops == (4, 2, 1, 3, 7)

    def test_left_oriented_delivery(self, net8):
        self._stage_path(net8, 6, 1)
        assert net8.trace_from(6).delivered_pe == 1

    def test_unconfigured_drop(self, net8):
        tr = net8.trace_from(0)
        assert not tr.delivered
        assert tr.delivered_pe is None
        assert tr.hops == (4,)

    def test_partial_path_drop(self, net8):
        # only the first switch configured: signal dies at switch 2
        net8.stage({4: (CONN_L_UP,)})
        net8.commit_round()
        tr = net8.trace_from(0)
        assert not tr.delivered
        assert tr.hops == (4, 2)

    def test_root_up_output_is_protocol_error(self, net8):
        net8.stage({4: (CONN_L_UP,), 2: (CONN_L_UP,), 1: (CONN_L_UP,)})
        net8.commit_round()
        with pytest.raises(ProtocolError):
            net8.trace_from(0)


class TestTransfer:
    def test_transfer_latches_payload(self, net8):
        net8.assign_roles({0: Role.SOURCE, 7: Role.DESTINATION})
        net8.stage({k: (v,) for k, v in net8.topology.path_connections(0, 7).items()})
        net8.commit_round()
        results = net8.transfer([0], round_no=0)
        assert results[0].delivered_pe == 7
        assert net8.pes[7].received == [("pe", 0)]
        assert net8.all_done

    def test_two_simultaneous_disjoint_transfers(self, net8):
        net8.assign_roles(
            {0: Role.SOURCE, 1: Role.DESTINATION, 4: Role.SOURCE, 5: Role.DESTINATION}
        )
        staged = {}
        for s, d in [(0, 1), (4, 5)]:
            for k, v in net8.topology.path_connections(s, d).items():
                staged.setdefault(k, []).append(v)
        net8.stage({k: tuple(v) for k, v in staged.items()})
        net8.commit_round()
        results = net8.transfer([0, 4], round_no=0)
        assert [r.delivered_pe for r in results] == [1, 5]


class TestPowerIntegration:
    def test_power_report_counts_rounds(self, net8):
        net8.stage({1: (CONN_L_TO_R,)})
        net8.commit_round()
        net8.commit_round()
        report = net8.power_report()
        assert report.rounds == 2
        assert report.total_units == 1

    def test_policy_threaded_to_switches(self):
        net = CSTNetwork.of_size(4, policy=PowerPolicy.rebuild())
        for _ in range(3):
            net.stage({1: (CONN_L_TO_R,)})
            net.commit_round()
        assert net.meter.units_of(1) == 3

    def test_config_changes_view(self, net8):
        net8.stage({1: (CONN_L_TO_R,)})
        net8.commit_round()
        changes = net8.config_changes()
        assert changes[1] == 1
        assert changes[4] == 0

    def test_reset_clears_everything(self, net8):
        net8.assign_roles({0: Role.SOURCE})
        net8.stage({1: (CONN_L_TO_R,)})
        net8.commit_round()
        net8.reset()
        assert net8.rounds_run == 0
        assert net8.meter.total_units == 0
        assert len(net8.switches[1].configuration) == 0
