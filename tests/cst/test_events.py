"""Unit tests for structured event tracing."""

from repro.comms.generators import crossing_chain, paper_figure2_set
from repro.core.csa import PADRScheduler
from repro.cst.events import CommitEvent, ControlEvent, EventLog, TransferEvent
from repro.cst.network import CSTNetwork


def traced_run(cset, n):
    log = EventLog()
    network = CSTNetwork.of_size(n, event_log=log)
    schedule = PADRScheduler().schedule(cset, network=network)
    return log, schedule


class TestEventLogMechanics:
    def test_empty_log(self):
        log = EventLog()
        assert len(log) == 0
        assert log.summary()["commits"] == 0
        assert log.render() == ""

    def test_sequence_numbers_monotonic(self):
        log, _ = traced_run(crossing_chain(2), 4)
        seqs = [e.seq for e in log]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_wave_numbering(self):
        log, schedule = traced_run(crossing_chain(3), 8)
        # 1 phase-1 wave + one wave per round
        assert log.wave == 1 + schedule.n_rounds


class TestEventContents:
    def test_control_events_cover_every_link(self):
        log, schedule = traced_run(crossing_chain(2), 4)
        up = [e for e in log.of_kind(ControlEvent) if e.direction == "up"]
        down = [e for e in log.of_kind(ControlEvent) if e.direction == "down"]
        # phase 1: one up word per switch... (leaves' words are implicit);
        # phase 2: one down word per non-root node per round.
        assert len(up) == 3  # switches of a 4-leaf tree
        assert len(down) == (2 * 4 - 2) * schedule.n_rounds

    def test_commit_events_one_per_switch_per_round(self):
        log, schedule = traced_run(crossing_chain(2), 4)
        commits = log.of_kind(CommitEvent)
        assert len(commits) == 3 * schedule.n_rounds

    def test_transfer_events_match_deliveries(self):
        cset = paper_figure2_set()
        log, schedule = traced_run(cset, 16)
        transfers = log.of_kind(TransferEvent)
        assert len(transfers) == len(cset)
        delivered = {(e.source_pe, e.delivered_pe) for e in transfers}
        assert delivered == {(c.src, c.dst) for c in cset}

    def test_commits_of_specific_switch(self):
        log, schedule = traced_run(crossing_chain(4), 8)
        root_commits = log.commits_of(1)
        assert len(root_commits) == schedule.n_rounds
        # Theorem 8 visible in the log: the root changes in round 0 only
        assert sum(1 for e in root_commits if e.changed) == 1


class TestRendering:
    def test_render_contains_all_kinds(self):
        log, _ = traced_run(crossing_chain(2), 4)
        text = log.render()
        assert "ctrl" in text and "commit" in text and "data" in text

    def test_changed_only_filter(self):
        log, _ = traced_run(crossing_chain(4), 8)
        full = log.render().count("commit")
        filtered = log.render(changed_only=True).count("commit")
        assert filtered < full

    def test_in_wave(self):
        log, _ = traced_run(crossing_chain(2), 4)
        w1 = log.in_wave(1)
        assert w1 and all(e.wave == 1 for e in w1)

    def test_summary_counts(self):
        log, schedule = traced_run(crossing_chain(2), 4)
        s = log.summary()
        assert s["transfers"] == 2
        assert s["waves"] == 1 + schedule.n_rounds
        assert s["changed_commits"] <= s["commits"]
