"""Unit tests for power policies, meter and reports."""

import pytest

from repro.cst.power import PowerMeter, PowerPolicy, PowerReport


class TestPowerPolicy:
    def test_paper_defaults(self):
        p = PowerPolicy.paper()
        assert not p.eager_teardown
        assert not p.recharge
        assert p.unit_cost == 1

    def test_eager(self):
        p = PowerPolicy.eager()
        assert p.eager_teardown and not p.recharge

    def test_rebuild(self):
        p = PowerPolicy.rebuild()
        assert p.eager_teardown and p.recharge

    def test_naive_alias(self):
        assert PowerPolicy.naive() == PowerPolicy.eager()

    def test_recharge_requires_eager(self):
        with pytest.raises(ValueError):
            PowerPolicy(eager_teardown=False, recharge=True)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PowerPolicy.paper().unit_cost = 2  # type: ignore[misc]


class TestPowerMeter:
    def test_charges_accumulate_per_switch(self):
        m = PowerMeter()
        m.charge(3, 2)
        m.charge(3, 1)
        m.charge(5, 1)
        assert m.units_of(3) == 3
        assert m.units_of(5) == 1
        assert m.total_units == 4

    def test_zero_charge_is_noop(self):
        m = PowerMeter()
        m.charge(1, 0)
        assert m.total_units == 0
        assert m.units_of(1) == 0

    def test_negative_charge_rejected(self):
        m = PowerMeter()
        with pytest.raises(ValueError):
            m.charge(1, -1)

    def test_unit_cost_multiplier(self):
        m = PowerMeter(policy=PowerPolicy(unit_cost=3))
        m.charge(1, 2)
        assert m.total_units == 6

    def test_changes_tracked(self):
        m = PowerMeter()
        m.note_change(2)
        m.note_change(2)
        assert m.changes_of(2) == 2
        assert m.changes_of(9) == 0

    def test_reset(self):
        m = PowerMeter()
        m.charge(1, 1)
        m.note_change(1)
        m.reset()
        assert m.total_units == 0
        assert m.changes_of(1) == 0


class TestPowerReport:
    def test_report_aggregates(self):
        m = PowerMeter()
        m.charge(1, 2)
        m.charge(2, 5)
        m.note_change(2)
        r = m.report(rounds=4)
        assert r.total_units == 7
        assert r.max_switch_units == 5
        assert r.max_switch_changes == 1
        assert r.rounds == 4

    def test_empty_report(self):
        r = PowerMeter().report(rounds=0)
        assert r.total_units == 0
        assert r.max_switch_units == 0
        assert r.max_switch_changes == 0
        assert r.mean_switch_units == 0.0

    def test_mean(self):
        m = PowerMeter()
        m.charge(1, 2)
        m.charge(2, 4)
        assert m.report(1).mean_switch_units == 3.0

    def test_summary_mentions_key_figures(self):
        m = PowerMeter()
        m.charge(1, 2)
        text = m.report(3).summary()
        assert "total=2" in text
        assert "rounds=3" in text


class TestWireWeightedModel:
    """The H-tree wire model: upper-level links cost more per connection."""

    def test_htree_factory(self):
        p = PowerPolicy.htree()
        assert p.wire_weight_base == 2
        assert not p.eager_teardown

    def test_rejects_zero_base(self):
        with pytest.raises(ValueError):
            PowerPolicy(wire_weight_base=0)

    def test_root_costs_more_than_leaf_level(self):
        from repro.comms.generators import crossing_chain
        from repro.core.csa import PADRScheduler

        cset = crossing_chain(2)  # 4-leaf tree, height 2
        s = PADRScheduler().schedule(cset, policy=PowerPolicy.htree())
        units = s.power.per_switch_units
        # root (level 0) weight 4; leaf-level switches (level 1) weight 2
        assert units[1] == 4   # one l_i->r_o connection, weight 2^2
        assert units[2] == 2 * 2  # two connections over the run, weight 2

    def test_flat_model_unchanged(self):
        from repro.comms.generators import crossing_chain
        from repro.core.csa import PADRScheduler

        cset = crossing_chain(4)
        flat = PADRScheduler().schedule(cset)
        weighted = PADRScheduler().schedule(cset, policy=PowerPolicy.htree())
        # same configuration changes, different accounting only
        assert flat.power.max_switch_changes == weighted.power.max_switch_changes
        assert weighted.power.total_units > flat.power.total_units

    def test_meter_without_height_is_flat(self):
        m = PowerMeter(policy=PowerPolicy.htree())
        m.charge(1, 1)
        assert m.total_units == 1

    def test_theorem8_shape_survives_weighting(self):
        """Per-switch cost stays flat in w under the physical model too —
        the weight is a w-independent constant per switch."""
        from repro.comms.generators import crossing_chain
        from repro.core.csa import PADRScheduler

        maxima = []
        for w in (4, 16, 64):
            s = PADRScheduler().schedule(
                crossing_chain(w), policy=PowerPolicy.htree()
            )
            maxima.append(s.power.max_switch_units)
        # grows with tree size (deeper trees -> heavier roots), but for a
        # fixed tree it is what it is; normalise by the root weight:
        for w, m in zip((4, 16, 64), maxima):
            n = 2 * w if (2 * w & (2 * w - 1)) == 0 else None
            # root weight = 2^height = n; the CSA's root pays one
            # connection once: max units <= weight * 3
            import math

            height = int(math.log2(2 * w))
            assert m <= (2 ** height) * 3
