"""Unit tests for the synchronous message-wave engine."""

from repro.cst.engine import CSTEngine
from repro.cst.network import CSTNetwork


def make_engine(n=8):
    return CSTEngine(CSTNetwork.of_size(n))


class TestUpwardWave:
    def test_sum_reduction(self):
        eng = make_engine(8)
        sent = eng.upward_wave(
            leaf_word=lambda pe: 1,
            combine=lambda v, l, r: l + r,
        )
        assert sent[1] == 8  # root aggregates every leaf
        assert sent[4] == 2
        assert sent[8] == 1  # leaves transmit their own word

    def test_children_processed_before_parents(self):
        eng = make_engine(8)
        order: list[int] = []
        eng.upward_wave(
            leaf_word=lambda pe: 0,
            combine=lambda v, l, r: order.append(v) or 0,
        )
        pos = {v: i for i, v in enumerate(order)}
        for v in range(1, 4):
            assert pos[v] > pos.get(2 * v, -1)
            assert pos[v] > pos.get(2 * v + 1, -1)

    def test_message_accounting(self):
        eng = make_engine(8)
        eng.upward_wave(lambda pe: 0, lambda v, l, r: 0, words_per_message=2)
        # every non-root node transmits once: 8 leaves + 6 internal = 14
        assert eng.trace.messages == 14
        assert eng.trace.words == 28
        assert eng.trace.waves == 1


class TestDownwardWave:
    def test_broadcast(self):
        eng = make_engine(8)
        leaf_words = eng.downward_wave("x", lambda v, w: (w, w))
        assert set(leaf_words) == set(range(8))
        assert all(w == "x" for w in leaf_words.values())

    def test_path_dependent_words(self):
        eng = make_engine(4)
        # label each leaf with its root-to-leaf LR path
        leaf_words = eng.downward_wave("", lambda v, w: (w + "L", w + "R"))
        assert leaf_words == {0: "LL", 1: "LR", 2: "RL", 3: "RR"}

    def test_parents_processed_before_children(self):
        eng = make_engine(8)
        order: list[int] = []

        def emit(v, w):
            order.append(v)
            return (w, w)

        eng.downward_wave(0, emit)
        pos = {v: i for i, v in enumerate(order)}
        for v in range(2, 8):
            assert pos[v] > pos[v // 2]

    def test_message_accounting(self):
        eng = make_engine(8)
        eng.downward_wave(0, lambda v, w: (w, w), words_per_message=3)
        assert eng.trace.messages == 14
        assert eng.trace.words == 42


class TestTrafficSummary:
    def test_summary_keys(self):
        eng = make_engine(4)
        eng.upward_wave(lambda pe: 0, lambda v, l, r: 0)
        eng.downward_wave(0, lambda v, w: (w, w))
        summary = eng.traffic_summary()
        assert summary["waves"] == 2
        assert summary["messages"] == 12
        assert summary["mean_messages_per_wave"] == 6.0
