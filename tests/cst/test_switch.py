"""Unit tests for the 3-sided switch crossbar and change accounting."""

import pytest

from repro.exceptions import PortConflictError
from repro.types import (
    CONN_DOWN_L,
    CONN_DOWN_R,
    CONN_L_TO_R,
    CONN_L_UP,
    CONN_R_TO_L,
    CONN_R_UP,
    InPort,
    OutPort,
)
from repro.cst.power import PowerMeter, PowerPolicy
from repro.cst.switch import Switch, SwitchConfiguration


def make_switch(policy=None):
    meter = PowerMeter(policy=policy or PowerPolicy.paper())
    return Switch(1, meter), meter


class TestSwitchConfiguration:
    def test_empty_is_idle(self):
        cfg = SwitchConfiguration()
        assert len(cfg) == 0
        assert cfg == SwitchConfiguration.idle()

    def test_full_crossbar_all_three(self):
        cfg = SwitchConfiguration([CONN_L_TO_R, CONN_R_UP, CONN_DOWN_L])
        assert len(cfg) == 3
        assert cfg.output_for(InPort.L) is OutPort.R
        assert cfg.output_for(InPort.R) is OutPort.P
        assert cfg.output_for(InPort.P) is OutPort.L

    def test_input_used_twice_rejected(self):
        with pytest.raises(PortConflictError):
            SwitchConfiguration([CONN_L_TO_R, CONN_L_UP])

    def test_output_used_twice_rejected(self):
        with pytest.raises(PortConflictError):
            SwitchConfiguration([CONN_L_UP, CONN_R_UP])

    def test_with_connection_displaces_same_input(self):
        cfg = SwitchConfiguration([CONN_L_TO_R]).with_connection(CONN_L_UP)
        assert cfg.output_for(InPort.L) is OutPort.P
        assert len(cfg) == 1

    def test_with_connection_displaces_same_output(self):
        cfg = SwitchConfiguration([CONN_L_UP]).with_connection(CONN_R_UP)
        assert cfg.output_for(InPort.R) is OutPort.P
        assert cfg.output_for(InPort.L) is None

    def test_with_connection_keeps_unrelated(self):
        cfg = SwitchConfiguration([CONN_L_TO_R]).with_connection(CONN_DOWN_L)
        assert len(cfg) == 2

    def test_input_for(self):
        cfg = SwitchConfiguration([CONN_L_TO_R])
        assert cfg.input_for(OutPort.R) is InPort.L
        assert cfg.input_for(OutPort.P) is None

    def test_contains(self):
        cfg = SwitchConfiguration([CONN_L_TO_R])
        assert CONN_L_TO_R in cfg
        assert CONN_R_TO_L not in cfg

    def test_without_ports(self):
        cfg = SwitchConfiguration([CONN_L_TO_R, CONN_DOWN_L])
        smaller = cfg.without_ports([CONN_L_TO_R])
        assert CONN_L_TO_R not in smaller
        assert CONN_DOWN_L in smaller

    def test_hash_consistent_with_eq(self):
        a = SwitchConfiguration([CONN_L_TO_R, CONN_DOWN_L])
        b = SwitchConfiguration([CONN_DOWN_L, CONN_L_TO_R])
        assert a == b
        assert hash(a) == hash(b)


class TestSwitchRoundProtocol:
    def test_first_connection_costs_one_unit(self):
        sw, meter = make_switch()
        sw.require(CONN_L_TO_R)
        sw.commit_round()
        assert meter.units_of(1) == 1
        assert sw.config_changes == 1

    def test_held_connection_is_free(self):
        sw, meter = make_switch()
        for _ in range(5):
            sw.require(CONN_L_TO_R)
            sw.commit_round()
        assert meter.units_of(1) == 1  # paid once, held for free
        assert sw.config_changes == 1

    def test_lazy_keeps_unrequested_connection(self):
        sw, _ = make_switch()
        sw.require(CONN_L_TO_R)
        sw.commit_round()
        sw.commit_round()  # nothing staged
        assert CONN_L_TO_R in sw.configuration

    def test_eager_clears_unrequested(self):
        sw, _ = make_switch(PowerPolicy.eager())
        sw.require(CONN_L_TO_R)
        sw.commit_round()
        sw.commit_round()
        assert len(sw.configuration) == 0

    def test_eager_does_not_recharge_identical(self):
        sw, meter = make_switch(PowerPolicy.eager())
        for _ in range(4):
            sw.require(CONN_L_TO_R)
            sw.commit_round()
        assert meter.units_of(1) == 1

    def test_rebuild_recharges_every_round(self):
        sw, meter = make_switch(PowerPolicy.rebuild())
        for _ in range(4):
            sw.require(CONN_L_TO_R)
            sw.commit_round()
        assert meter.units_of(1) == 4

    def test_replacing_connection_charges_again(self):
        sw, meter = make_switch()
        sw.require(CONN_L_TO_R)
        sw.commit_round()
        sw.require(CONN_L_UP)  # displaces l_i->r_o
        sw.commit_round()
        assert meter.units_of(1) == 2
        assert sw.config_changes == 2

    def test_conflicting_staged_connections_rejected(self):
        sw, _ = make_switch()
        sw.require(CONN_L_UP)
        sw.require(CONN_R_UP)  # both claim p_o
        with pytest.raises(PortConflictError):
            sw.commit_round()

    def test_three_simultaneous_connections(self):
        sw, meter = make_switch()
        sw.require_all([CONN_L_TO_R, CONN_R_UP, CONN_DOWN_L])
        sw.commit_round()
        assert len(sw.configuration) == 3
        assert meter.units_of(1) == 3  # at most three units per round (paper §2.3)

    def test_idle_round_counts_no_change(self):
        sw, _ = make_switch()
        sw.commit_round()
        assert sw.config_changes == 0
        assert sw.rounds_committed == 1

    def test_reset(self):
        sw, _ = make_switch()
        sw.require(CONN_L_TO_R)
        sw.commit_round()
        sw.reset()
        assert len(sw.configuration) == 0
        assert sw.config_changes == 0
        assert sw.rounds_committed == 0
